# Convenience entry points. Everything runs offline on the baked-in
# python toolchain; PYTHONPATH=src avoids needing an editable install.

PY ?= python
PYTHONPATH := src
export PYTHONPATH

# Pinned seed matrix for the chaos suite; override per-run:
#   CHAOS_SEEDS="1 2 0xBEEF" make chaos
CHAOS_SEEDS ?= 0xDA05 1 7
export CHAOS_SEEDS

.PHONY: test chaos bench bench-cache bench-rebuild bench-async \
	bench-flows bench-tenants bench-fdb bench-hdf5 trace trace-cache \
	timeline all

# Tier-1: the full fast suite (chaos determinism/scenario tests included).
test:
	$(PY) -m pytest -x -q

# The chaos suite alone, against the pinned seed matrix.
chaos:
	$(PY) -m pytest -q -m chaos tests/faults

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Cache ablation alone: cached-vs-uncached DFuse FPP sweep.
bench-cache:
	mkdir -p artifacts
	$(PY) -m pytest benchmarks/bench_cache.py --benchmark-only \
		--benchmark-json=artifacts/bench-cache.json

# Rebuild ablation alone: IOR FPP during rebuild vs healthy, swept
# over the rebuild throttle fraction.
bench-rebuild:
	mkdir -p artifacts
	$(PY) -m pytest benchmarks/bench_rebuild.py --benchmark-only \
		--benchmark-json=artifacts/bench-rebuild.json

# Async ablation alone: throughput vs event-queue depth for the
# async-capable interfaces (DFS + native DAOS array).
bench-async:
	mkdir -p artifacts
	$(PY) -m pytest benchmarks/bench_async_depth.py --benchmark-only \
		--benchmark-json=artifacts/bench-async.json

# Flow-solver throughput: churn scenarios + the 16x16 figure point under
# both solvers. Writes artifacts/BENCH_flows.json and gates against the
# committed baseline benchmarks/BENCH_flows.json (>20% normalized
# ops/sec regression, byte-identity, solver-speedup floor).
bench-flows:
	mkdir -p artifacts
	PYTHONPATH=src:benchmarks $(PY) benchmarks/bench_flows.py \
		--out artifacts/BENCH_flows.json --check

# Multi-tenant serving sweep: tenant count x arrival rate x QoS on/off,
# plus the chaos noisy-neighbour cell. The sweep is seeded end to end,
# so it runs twice and the machine-independent projections must match
# byte for byte — the artifact doubles as a determinism gate.
bench-tenants:
	mkdir -p artifacts
	PYTHONPATH=src:benchmarks $(PY) benchmarks/bench_tenants.py \
		--out artifacts/BENCH_tenants.json \
		--stable-out artifacts/BENCH_tenants.stable.json
	PYTHONPATH=src:benchmarks $(PY) benchmarks/bench_tenants.py \
		--out artifacts/BENCH_tenants.rerun.json \
		--stable-out artifacts/BENCH_tenants.rerun.stable.json
	cmp artifacts/BENCH_tenants.stable.json \
		artifacts/BENCH_tenants.rerun.stable.json
	rm artifacts/BENCH_tenants.rerun.json \
		artifacts/BENCH_tenants.rerun.stable.json

# Field-database sweep: object size x backend x sync/async plus the
# Lustre contrast and the 100k-field acceptance run. Seeded end to end:
# runs twice and the machine-independent projections (which hash the
# 100k run's full report and timeline JSON) must match byte for byte.
bench-fdb:
	mkdir -p artifacts
	PYTHONPATH=src:benchmarks $(PY) benchmarks/bench_fdb.py \
		--out artifacts/BENCH_fdb.json \
		--stable-out artifacts/BENCH_fdb.stable.json
	PYTHONPATH=src:benchmarks $(PY) benchmarks/bench_fdb.py \
		--out artifacts/BENCH_fdb.rerun.json \
		--stable-out artifacts/BENCH_fdb.rerun.stable.json
	cmp artifacts/BENCH_fdb.stable.json \
		artifacts/BENCH_fdb.rerun.stable.json
	rm artifacts/BENCH_fdb.rerun.json \
		artifacts/BENCH_fdb.rerun.stable.json

# HDF5 interface sweep: posix-vol vs daos-vol vs DFS at the Figure 2
# point, fpp + shared collective, sync vs --aio-depth 4. Seeded end to
# end: runs twice and the machine-independent projections must match
# byte for byte (which also pins the native paths to the pre-VOL seed
# figures).
bench-hdf5:
	mkdir -p artifacts
	PYTHONPATH=src:benchmarks $(PY) benchmarks/bench_hdf5.py \
		--out artifacts/BENCH_hdf5.json \
		--stable-out artifacts/BENCH_hdf5.stable.json
	PYTHONPATH=src:benchmarks $(PY) benchmarks/bench_hdf5.py \
		--out artifacts/BENCH_hdf5.rerun.json \
		--stable-out artifacts/BENCH_hdf5.rerun.stable.json
	cmp artifacts/BENCH_hdf5.stable.json \
		artifacts/BENCH_hdf5.rerun.stable.json
	rm artifacts/BENCH_hdf5.rerun.json \
		artifacts/BENCH_hdf5.rerun.stable.json

# One instrumented fig-1 point: emit a Chrome trace + metrics snapshot
# and validate the trace against the trace-event schema. The JSON lands
# in artifacts/ (uploaded as a CI artifact; open it at ui.perfetto.dev).
trace:
	mkdir -p artifacts
	$(PY) benchmarks/run_figures.py --ppn 4 \
		--trace-out artifacts/fig1-trace.json \
		--metrics-out artifacts/fig1-metrics.json
	$(PY) -m repro.obs.validate artifacts/fig1-trace.json

# Continuous telemetry for the fig-1 DFS point: scrape the run every
# 2 ms into a timeline JSON (per-window rates, gauge means, tail-latency
# percentiles) with one intentionally-unmeetable SLO so the artifact
# demonstrates a breach event end to end, then schema-validate it.
timeline:
	mkdir -p artifacts
	$(PY) benchmarks/run_figures.py --ppn 4 \
		--timeline-out artifacts/fig1-timeline.json \
		--timeline-interval 0.002 \
		--slo "ior.write.latency p99 < 1e-9 over 1 windows" \
		--trace-out artifacts/fig1-timeline-trace.json
	$(PY) -m repro.obs.validate artifacts/fig1-timeline.json
	$(PY) -m repro.obs.validate artifacts/fig1-timeline-trace.json

# The same instrumented point with the writeback cache enabled: the
# trace must validate with the extra "cache" layer spans present.
trace-cache:
	mkdir -p artifacts
	$(PY) benchmarks/run_figures.py --ppn 4 --cache-mode writeback \
		--trace-out artifacts/fig1-cached-trace.json \
		--metrics-out artifacts/fig1-cached-metrics.json
	$(PY) -m repro.obs.validate artifacts/fig1-cached-trace.json

all: test chaos
