#!/usr/bin/env python
"""Replicated object classes and metadata-service fault tolerance.

The paper notes DAOS "has demonstrated ... resiliency for HPC
applications": this example exercises the resilience layers this repo
implements — Raft-replicated pool/container metadata surviving a service
leader crash, RP_2G1 (2-way replicated) objects surviving a storage
target exclusion, and the online rebuild engine resyncing the excluded
target back to full health while `pool_query` tracks progress
(DESIGN.md §9).

Run:  python examples/failure_resilience.py
"""

from repro.cluster import nextgenio
from repro.daos.api import RP_2G1


def main() -> None:
    cluster = nextgenio(client_nodes=1)
    client = cluster.new_client(0)

    def scenario():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("precious", oclass="RP_2G1")

        # --- metadata resilience: crash the Raft leader mid-session ---
        leader = cluster.daos.svc.leader()
        print(f"metadata service leader: raft node {leader.node_id}; "
              "crashing it...")
        leader.crash()
        cluster.sim.schedule(5.0, leader.restart)
        # the next metadata op rides out the election transparently
        cont2 = yield from pool.create_container("post-failover")
        new_leader = None
        while new_leader is None:
            yield 0.05
            new_leader = cluster.daos.svc.leader()
        print(f"  -> container {cont2.props['label']!r} created; new "
              f"leader is raft node {new_leader.node_id}")

        # --- data resilience: lose a target under a replicated object ---
        oid = yield from cont.alloc_oid(RP_2G1)
        obj = cont.open_object(oid)
        yield from obj.write(0, b"forecast state vector" * 1000)
        replicas = obj.layout.targets_for_dkey(0)
        print(f"object {oid} replicated on targets {replicas}")
        yield from cluster.daos.exclude_target(
            pool.pool_map.uuid, replicas[0]
        )
        yield from pool.refresh_map()
        print(f"  excluded leader target {replicas[0]} "
              f"(pool map v{pool.pool_map.version})")
        survivor = cont.open_object(oid)
        data = yield from survivor.read(0, 21)
        print(f"  read from surviving replica: {data.materialize()!r}")

        # --- self-healing: write through the window, then reintegrate ---
        yield from obj.write(0, b"revised state vector " * 1000)
        query = cluster.daos.pool_query(pool.pool_map.uuid)
        print(f"pool health: {query['up_targets']}/{query['n_targets']} "
              f"targets up, map v{query['version']}")
        yield from cluster.daos.reintegrate_target(
            pool.pool_map.uuid, replicas[0]
        )
        query = yield from cluster.daos.wait_rebuild(pool.pool_map.uuid)
        rb = query["rebuild"]
        print(f"  reintegrated target {replicas[0]}: rebuild "
              f"{rb['status']}, {rb['bytes_moved']} bytes resynced, "
              f"{query['up_targets']}/{query['n_targets']} targets up")
        yield from pool.refresh_map()
        healed = cont.open_object(oid)
        data = yield from healed.read(0, 21)
        print(f"  read after self-heal: {data.materialize()!r}")
        obj.close()
        survivor.close()
        healed.close()
        return data.materialize()

    data = cluster.run(scenario(), limit=1e6)
    assert data == b"revised state vector "
    print("resilience scenario complete.")


if __name__ == "__main__":
    main()
