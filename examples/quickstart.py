#!/usr/bin/env python
"""Quickstart: boot a simulated DAOS system and run IOR on it.

This reproduces, in one minute on a laptop, the kind of measurement the
paper performs on the NEXTGenIO machine: the same IOR invocation through
three different access interfaces.

Run:  python examples/quickstart.py
"""

from repro.cluster import nextgenio
from repro.ior import IorParams, run_ior
from repro.units import fmt_bw


def main() -> None:
    # The paper's testbed: 8 server nodes x 2 engines, Optane-class
    # media, dual-rail fabric — plus 2 client nodes for us.
    cluster = nextgenio(client_nodes=2)
    print(f"booted: {len(cluster.servers)} servers, "
          f"{cluster.daos.n_targets} targets, pool '{cluster.pool.label}'\n")

    for api in ("DFS", "MPIIO", "HDF5"):
        params = IorParams(
            api=api,
            file_per_proc=True,   # the paper's "easy" mode (-F)
            oclass="S2",          # the class the paper finds best overall
            block_size="16m",
            transfer_size="1m",
        )
        result = run_ior(cluster, params, ppn=16)
        print(f"{api:6s}  write {fmt_bw(result.max_write_bw):>12s}   "
              f"read {fmt_bw(result.max_read_bw):>12s}")

    print("\n(DFS ~ MPI-IO over DFuse; HDF5 over DFuse much lower — "
          "Figure 1 of the paper in miniature.)")


if __name__ == "__main__":
    main()
