#!/usr/bin/env python
"""benchio-style bulk I/O comparison (the paper's reference [17]).

benchio is the first author's bulk-I/O benchmark: every rank writes one
large contiguous slab of a shared global array, comparing access
strategies. This port compares four ways of writing the same 1 GiB
global array from 64 ranks and prints the classic table.

Run:  python examples/benchio_style.py
"""

from repro.cluster import nextgenio
from repro.daos.api import PatternPayload
from repro.dfs import Dfs
from repro.dfuse import DFuseMount
from repro.mpi import MpiWorld
from repro.mpiio import DfsDriver, MpiFile, UfsDriver
from repro.units import GiB, MiB, fmt_bw

GLOBAL_BYTES = 1 * GiB


def strategy_runner(cluster, label, make_writer):
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container(f"benchio-{label}",
                                                oclass="SX")
        yield from Dfs.mount(cont)
        return f"benchio-{label}"

    cont_label = cluster.run(setup())
    world = MpiWorld(cluster.sim, cluster.fabric, cluster.clients, ppn=16)
    slab = GLOBAL_BYTES // world.nprocs

    def rank_main(ctx):
        rank_client = cluster.new_client(cluster.clients.index(ctx.node))
        pool = yield from rank_client.connect_pool("tank")
        cont = yield from pool.open_container(cont_label)
        dfs = yield from Dfs.mount(cont)
        writer = make_writer(ctx, dfs)
        yield from ctx.barrier()
        start = ctx.sim.now
        payload = PatternPayload(seed=1, origin=ctx.rank * slab, nbytes=slab)
        yield from writer(ctx.rank * slab, payload)
        end = yield from ctx.allreduce(ctx.sim.now, op=max)
        return GLOBAL_BYTES / (end - start)

    return min(world.run_to_completion(rank_main))


def main() -> None:
    cluster = nextgenio(client_nodes=4)

    def dfs_writer(ctx, dfs):
        def write(offset, payload):
            if ctx.rank == 0:
                handle = yield from dfs.open_file(
                    "/global.dat", create=True, oclass="SX"
                )
                yield from ctx.barrier()
            else:
                yield from ctx.barrier()
                handle = yield from dfs.open_file("/global.dat")
            yield from handle.write(offset, payload)
            handle.close()

        return write

    def posix_writer(ctx, dfs):
        mount = DFuseMount(dfs)

        def write(offset, payload):
            if ctx.rank == 0:
                handle = yield from mount.open("/posix.dat", ("w", "creat"))
                yield from ctx.barrier()
            else:
                yield from ctx.barrier()
                handle = yield from mount.open("/posix.dat", ("r", "w"))
            yield from handle.pwrite(offset, payload)
            yield from handle.close()

        return write

    def mpiio_writer(collective):
        def factory(ctx, dfs):
            mount = DFuseMount(dfs)

            def write(offset, payload):
                fh = yield from MpiFile.open(
                    ctx, "/mpiio.dat", UfsDriver(mount), create=True
                )
                if collective:
                    yield from fh.write_at_all(offset, payload)
                else:
                    yield from fh.write_at(offset, payload)
                yield from fh.close()

            return write

        return factory

    strategies = [
        ("DFS shared file", dfs_writer),
        ("POSIX (DFuse) shared", posix_writer),
        ("MPI-IO independent", mpiio_writer(False)),
        ("MPI-IO collective", mpiio_writer(True)),
    ]
    print(f"benchio-style: 64 ranks, {GLOBAL_BYTES // GiB} GiB global array, "
          f"{GLOBAL_BYTES // 64 // MiB} MiB slab per rank\n")
    for label, factory in strategies:
        bandwidth = strategy_runner(cluster, label.split()[0].lower()
                                    + label.split()[-1], factory)
        print(f"  {label:24s} {fmt_bw(bandwidth):>14s}")


if __name__ == "__main__":
    main()
