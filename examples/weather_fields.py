#!/usr/bin/env python
"""Weather-field archiving on the field database (the ECMWF use case).

The paper's authors come from numerical weather prediction: their
motivating workload stores millions of *fields* (2-D grids, a few MiB
each) addressed by metadata (parameter, level, step) — an FDB-style
object store. :mod:`repro.fdb` is that subsystem; this example is the
thin demo on top of it: archive one forecast cycle's grid through the
native KV mapping with writes pipelined through an event queue (the
async libdaos path, as a real archiver keeps several fields in flight),
land a flush landmark, then retrieve one parameter across all steps the
way product generation would.

Run:  python examples/weather_fields.py
"""

from repro.fdb import FdbParams, FieldQuery, build_report, run_fdb
from repro.units import MiB, fmt_bw, fmt_size

GRID_BYTES = 2 * MiB  # one 2-D field, e.g. O1280 surface grid packed
AIO_DEPTH = 4  # fields kept in flight while archiving


def main() -> None:
    params = FdbParams(
        backend="kv",          # field bytes as KV values, KV index
        n_params=4,            # t2m, u10, v10, msl
        n_steps=4,             # steps 0, 3, 6, 9
        field_bytes=GRID_BYTES,
        depth=AIO_DEPTH,
        retrieve_params=("t2m",),  # product generation wants one param
    )
    result, _cluster = run_fdb(params)
    report = build_report(result)

    archive, retrieve = report["archive"], report["retrieve"]
    print(f"archived {archive['fields']} fields "
          f"({fmt_size(int(archive['bytes']))}) at "
          f"{fmt_bw(archive['bandwidth'])}")
    landmark = report["landmarks"][0]
    print(f"landmark {landmark['name']!r} after {landmark['fields']} fields")
    print(f"retrieved {retrieve['fields']} t2m fields "
          f"({fmt_size(int(retrieve['bytes']))}) at "
          f"{fmt_bw(retrieve['bandwidth'])}")
    print("matched keys:", ", ".join(result["matched"]))


if __name__ == "__main__":
    main()
