#!/usr/bin/env python
"""Weather-field I/O on the native DAOS API (the ECMWF use case).

The paper's authors come from numerical weather prediction: their
motivating workload stores millions of *fields* (2-D grids, a few MiB
each) indexed by metadata (parameter, level, step) — an FDB-style object
store. This example builds exactly that on libdaos: a KV object as the
field index, one array object per field, no filesystem anywhere. Field
writes are pipelined through an event queue (the async libdaos path), as
a real archiver would keep several fields in flight.

Run:  python examples/weather_fields.py
"""

import zlib

from repro.cluster import nextgenio
from repro.daos.api import (
    S2,
    DaosArray,
    DaosKV,
    EventQueue,
    ObjId,
    PatternPayload,
)
from repro.units import MiB, fmt_bw, fmt_size

GRID_BYTES = 2 * MiB  # one 2-D field, e.g. O1280 surface grid packed
PARAMS = ("t2m", "u10", "v10", "msl")
STEPS = range(0, 12, 3)
AIO_DEPTH = 4  # fields kept in flight while archiving


def field_seed(param: str, step: int) -> int:
    """Stable content seed (``hash()`` is salted per process — using it
    here would make payloads differ between runs)."""
    return zlib.crc32(f"{param}/{step}".encode()) & 0xFFFF


def producer(cont, sim):
    """One forecast step: write every field and index it, pipelined."""
    index = yield from DaosKV.create(cont, S2)
    eq = EventQueue(sim, depth=AIO_DEPTH, name="archiver")
    start = sim.now
    nbytes = 0

    def archive_one(param, step):
        field = yield from DaosArray.create(
            cont, cell_size=4, chunk_cells=MiB // 4, oclass=S2
        )
        try:
            yield from field.write(
                0,
                PatternPayload(
                    seed=field_seed(param, step), origin=0, nbytes=GRID_BYTES
                ),
            )
            yield from index.put(
                f"fc/{param}/step={step:03d}",
                (field.obj.oid.hi, field.obj.oid.lo),
            )
        finally:
            field.close()
        return GRID_BYTES

    for step in STEPS:
        for param in PARAMS:
            yield from eq.submit(
                archive_one(param, step), name=f"fc/{param}/{step}"
            )
    for event in (yield from eq.drain()):
        nbytes += event.result
    yield from eq.close()
    elapsed = sim.now - start
    return index, nbytes, elapsed


def consumer(cont, index_oid, sim):
    """A product-generation task: read one parameter across all steps."""
    index = DaosKV.open(cont, index_oid)
    keys = yield from index.list(prefix="fc/t2m/")
    start = sim.now
    nbytes = 0
    for key in keys:
        hi, lo = yield from index.get(key)
        field = yield from DaosArray.open(cont, ObjId(hi, lo))
        data = yield from field.read(0, GRID_BYTES // field.cell_size)
        assert data.nbytes == GRID_BYTES
        nbytes += data.nbytes
        field.close()
    index.close()
    return keys, nbytes, sim.now - start


def main() -> None:
    cluster = nextgenio(client_nodes=1)
    client = cluster.new_client(0)

    def run():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("fdb", oclass="S2")
        index, wrote, w_elapsed = yield from producer(cont, cluster.sim)
        keys, read, r_elapsed = yield from consumer(
            cont, index.oid, cluster.sim
        )
        index.close()
        return wrote, w_elapsed, keys, read, r_elapsed

    wrote, w_elapsed, keys, read, r_elapsed = cluster.run(run())
    print(f"archived {len(PARAMS) * len(list(STEPS))} fields "
          f"({fmt_size(wrote)}) at {fmt_bw(wrote / w_elapsed)}")
    print(f"retrieved {len(keys)} t2m fields ({fmt_size(read)}) "
          f"at {fmt_bw(read / r_elapsed)}")
    print("index keys:", ", ".join(keys))


if __name__ == "__main__":
    main()
