#!/usr/bin/env python
"""Parallel checkpoint/restart with HDF5 over MPI-IO over DFuse.

A classic HPC pattern on top of the full interface stack this repo
builds: an SPMD job writes a 2-D domain-decomposed field into one shared
HDF5 file with collective I/O, then a *differently-sized* job restarts
from it — the self-describing format making redistribution trivial.

Run:  python examples/checkpoint_hdf5.py
"""

from repro.cluster import nextgenio
from repro.daos.api import PatternPayload
from repro.dfs import Dfs
from repro.dfuse import DFuseMount
from repro.hdf5 import H5File, MpioVfd
from repro.mpi import MpiWorld
from repro.mpiio import UfsDriver
from repro.units import KiB, fmt_bw

ROWS, COLS = 512, 4096  # global grid (u1 cells for simplicity)


def make_mount(cluster, ctx, cont_label):
    client = cluster.new_client(cluster.clients.index(ctx.node))

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.open_container(cont_label)
        dfs = yield from Dfs.mount(cont)
        return DFuseMount(dfs)

    return go()


def checkpoint(ctx, cluster, cont_label):
    mount = yield from make_mount(cluster, ctx, cont_label)
    vfd = MpioVfd(ctx, UfsDriver(mount), collective=True)
    h5 = yield from H5File.create(vfd, "/ckpt.h5")
    field = yield from h5.create_dataset(
        "field", (ROWS, COLS), dtype="u1",
        attrs={"iteration": 42, "decomposition": "rows"},
    )
    my_rows = ROWS // ctx.size
    row0 = ctx.rank * my_rows
    payload = PatternPayload(seed=7, origin=row0 * COLS,
                             nbytes=my_rows * COLS)
    start = ctx.sim.now
    yield from field.write((row0, 0), (my_rows, COLS), payload)
    yield from h5.close()
    yield from ctx.barrier()
    return ROWS * COLS / (ctx.sim.now - start)


def restart(ctx, cluster, cont_label):
    mount = yield from make_mount(cluster, ctx, cont_label)
    vfd = MpioVfd(ctx, UfsDriver(mount), collective=True)
    h5 = yield from H5File.open(vfd, "/ckpt.h5")
    field = h5.dataset("field")
    assert field.attrs["iteration"] == 42
    my_rows = ROWS // ctx.size  # new decomposition: different rank count
    row0 = ctx.rank * my_rows
    data = yield from field.read((row0, 0), (my_rows, COLS))
    expected = PatternPayload(seed=7, origin=row0 * COLS,
                              nbytes=my_rows * COLS)
    ok = data == expected
    yield from h5.close()
    return ok


def main() -> None:
    cluster = nextgenio(client_nodes=4)
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("ckpt", oclass="SX")
        yield from Dfs.mount(cont)
        return "ckpt"

    label = cluster.run(setup())

    writers = MpiWorld(cluster.sim, cluster.fabric, cluster.clients, ppn=4)
    rates = writers.run_to_completion(
        lambda ctx: checkpoint(ctx, cluster, label)
    )
    print(f"checkpoint: {writers.nprocs} ranks wrote "
          f"{ROWS}x{COLS} at {fmt_bw(max(rates))}")

    # restart with half the ranks — the file describes itself
    readers = MpiWorld(cluster.sim, cluster.fabric, cluster.clients[:2], ppn=4)
    verdicts = readers.run_to_completion(
        lambda ctx: restart(ctx, cluster, label)
    )
    print(f"restart: {readers.nprocs} ranks verified their slabs: "
          f"{'all OK' if all(verdicts) else 'CORRUPTION'}")


if __name__ == "__main__":
    main()
