#!/usr/bin/env python
"""Parallel checkpoint/restart with HDF5 — through two connectors.

A classic HPC pattern on top of the full interface stack this repo
builds: an SPMD job writes a 2-D domain-decomposed field into one shared
HDF5 file, then a *differently-sized* job restarts from it — the
self-describing format making redistribution trivial.

Act 1 rides the paper's POSIX stack: HDF5 over collective MPI-IO over a
DFuse mount.  Act 2 writes the same checkpoint through the DAOS VOL
connector (`repro.hdf5.DaosVol`): the dataset lands in a DAOS array and
the catalog in a KV object — no mount, no MPI-IO, no staging — while
the H5File/Dataset calls stay identical.

Run:  python examples/checkpoint_hdf5.py
"""

from repro.cluster import nextgenio
from repro.daos.api import PatternPayload
from repro.dfs import Dfs
from repro.dfuse import DFuseMount
from repro.hdf5 import DaosVol, H5File, MpioVfd
from repro.mpi import MpiWorld
from repro.mpiio import UfsDriver
from repro.units import fmt_bw

ROWS, COLS = 512, 4096  # global grid (u1 cells for simplicity)


def make_mount(cluster, ctx, cont_label):
    client = cluster.new_client(cluster.clients.index(ctx.node))

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.open_container(cont_label)
        dfs = yield from Dfs.mount(cont)
        return DFuseMount(dfs)

    return go()


def mpio_storage(ctx, cluster, cont_label):
    mount = yield from make_mount(cluster, ctx, cont_label)
    return MpioVfd(ctx, UfsDriver(mount), collective=True)


def daos_storage(ctx, cluster, cont_label):
    client = cluster.new_client(cluster.clients.index(ctx.node))
    pool = yield from client.connect_pool("tank")
    cont = yield from pool.open_container(cont_label)
    return DaosVol(cont)


def my_slab(ctx):
    my_rows = ROWS // ctx.size
    row0 = ctx.rank * my_rows
    return row0, my_rows


def write_slab(ctx, field):
    row0, my_rows = my_slab(ctx)
    payload = PatternPayload(seed=7, origin=row0 * COLS,
                             nbytes=my_rows * COLS)
    yield from field.write((row0, 0), (my_rows, COLS), payload)
    return None


def verify_slab(ctx, field):
    row0, my_rows = my_slab(ctx)
    data = yield from field.read((row0, 0), (my_rows, COLS))
    expected = PatternPayload(seed=7, origin=row0 * COLS,
                              nbytes=my_rows * COLS)
    return data == expected


def checkpoint_mpio(ctx, cluster, cont_label):
    vfd = yield from mpio_storage(ctx, cluster, cont_label)
    h5 = yield from H5File.create(vfd, "/ckpt.h5")
    field = yield from h5.create_dataset(
        "field", (ROWS, COLS), dtype="u1",
        attrs={"iteration": 42, "decomposition": "rows"},
    )
    start = ctx.sim.now
    yield from write_slab(ctx, field)
    yield from h5.close()
    yield from ctx.barrier()
    return ROWS * COLS / (ctx.sim.now - start)


def checkpoint_daos(ctx, cluster, cont_label):
    # No collective create here: rank 0 publishes the KV catalog, the
    # other ranks open it after a barrier and write independently.
    vol = yield from daos_storage(ctx, cluster, cont_label)
    if ctx.rank == 0:
        h5 = yield from H5File.create(vol, "/ckpt-daos.h5")
        field = yield from h5.create_dataset(
            "field", (ROWS, COLS), dtype="u1",
            attrs={"iteration": 42, "decomposition": "rows"},
        )
        yield from h5.flush()
        yield from ctx.barrier()
    else:
        yield from ctx.barrier()
        h5 = yield from H5File.open(vol, "/ckpt-daos.h5")
        field = h5.dataset("field")
    start = ctx.sim.now
    yield from write_slab(ctx, field)
    yield from h5.close()
    yield from ctx.barrier()
    return ROWS * COLS / (ctx.sim.now - start)


def restart(ctx, cluster, cont_label, make_storage, path):
    storage = yield from make_storage(ctx, cluster, cont_label)
    h5 = yield from H5File.open(storage, path)
    field = h5.dataset("field")
    assert field.attrs["iteration"] == 42
    ok = yield from verify_slab(ctx, field)  # new decomposition
    yield from h5.close()
    return ok


def main() -> None:
    cluster = nextgenio(client_nodes=4)
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("ckpt", oclass="SX")
        yield from Dfs.mount(cont)
        return "ckpt"

    label = cluster.run(setup())

    for name, ckpt, storage, path in [
        ("mpio-vfd", checkpoint_mpio, mpio_storage, "/ckpt.h5"),
        ("daos-vol", checkpoint_daos, daos_storage, "/ckpt-daos.h5"),
    ]:
        writers = MpiWorld(cluster.sim, cluster.fabric, cluster.clients,
                           ppn=4)
        rates = writers.run_to_completion(
            lambda ctx: ckpt(ctx, cluster, label)
        )
        print(f"checkpoint [{name}]: {writers.nprocs} ranks wrote "
              f"{ROWS}x{COLS} at {fmt_bw(max(rates))}")

        # restart with half the ranks — the file describes itself
        readers = MpiWorld(cluster.sim, cluster.fabric,
                           cluster.clients[:2], ppn=4)
        verdicts = readers.run_to_completion(
            lambda ctx: restart(ctx, cluster, label, storage, path)
        )
        print(f"restart [{name}]: {readers.nprocs} ranks verified their "
              f"slabs: {'all OK' if all(verdicts) else 'CORRUPTION'}")


if __name__ == "__main__":
    main()
