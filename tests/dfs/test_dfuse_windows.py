"""Property test for DFuse request-window segmentation (pure logic)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import MiB


class _Shim:
    max_transfer = MiB
    from repro.dfuse.fuse import DFuseMount as _M

    _windows = _M._windows


@settings(max_examples=100, deadline=None)
@given(offset=st.integers(0, 16 * MiB), length=st.integers(0, 8 * MiB))
def test_property_windows_partition_range(offset, length):
    shim = _Shim()
    windows = shim._windows(offset, length)
    cursor = offset
    for w_offset, take in windows:
        assert w_offset == cursor
        assert take > 0
        assert take <= MiB
        # a window never crosses an aligned MiB boundary
        assert (w_offset % MiB) + take <= MiB
        cursor += take
    assert cursor == offset + length
    # aligned full-MiB requests are single windows
    if offset % MiB == 0 and length == MiB:
        assert len(windows) == 1
