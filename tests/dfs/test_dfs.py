"""DFS namespace + file tests (integration over a small cluster)."""

import pytest

from repro.cluster import small_cluster
from repro.daos.vos.payload import PatternPayload
from repro.dfs import Dfs
from repro.errors import DerExist, DerIsDir, DerNonexist, DerNotDir
from repro.units import KiB, MiB


@pytest.fixture(scope="module")
def cluster():
    return small_cluster(server_nodes=2, client_nodes=2, targets_per_engine=2)


@pytest.fixture(scope="module")
def dfs(cluster):
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("posix-fs", oclass="S2")
        return (yield from Dfs.mount(cont))

    return cluster.run(setup())


def test_mount_formats_then_remounts(cluster, dfs):
    client = cluster.new_client(1)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.open_container("posix-fs")
        dfs2 = yield from Dfs.mount(cont)
        names = yield from dfs2.readdir("/")
        dfs2.umount()
        return names

    assert isinstance(cluster.run(go()), list)


def test_mkdir_readdir_nested(cluster, dfs):
    def go():
        yield from dfs.mkdir("/data")
        yield from dfs.mkdir("/data/run1")
        yield from dfs.mkdir("/data/run2")
        return (yield from dfs.readdir("/data"))

    assert cluster.run(go()) == ["run1", "run2"]


def test_mkdir_existing_fails(cluster, dfs):
    def go():
        yield from dfs.mkdir("/dup")
        try:
            yield from dfs.mkdir("/dup")
        except DerExist:
            return "exists"

    assert cluster.run(go()) == "exists"


def test_mkdir_missing_parent_fails(cluster, dfs):
    def go():
        try:
            yield from dfs.mkdir("/no/such/parent")
        except DerNonexist:
            return "enoent"

    assert cluster.run(go()) == "enoent"


def test_file_create_write_read(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/data/file0", create=True)
        yield from f.write(0, b"contents")
        data = yield from f.read(0, 100)
        f.close()
        return data.materialize()

    assert cluster.run(go()) == b"contents"  # short read at EOF


def test_open_missing_without_create(cluster, dfs):
    def go():
        try:
            yield from dfs.open_file("/data/ghost")
        except DerNonexist:
            return "enoent"

    assert cluster.run(go()) == "enoent"


def test_open_excl_on_existing(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/excl-file", create=True)
        f.close()
        try:
            yield from dfs.open_file("/excl-file", create=True, excl=True)
        except DerExist:
            return "eexist"

    assert cluster.run(go()) == "eexist"


def test_open_trunc_resets_size(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/trunc-me", create=True)
        yield from f.write(0, b"x" * 1000)
        f.close()
        f2 = yield from dfs.open_file("/trunc-me", trunc=True)
        size = yield from f2.get_size()
        f2.close()
        return size

    assert cluster.run(go()) == 0


def test_stat_reports_array_derived_size(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/sized", create=True)
        yield from f.write(3 * MiB, b"end")
        f.close()
        entry, size = yield from dfs.stat("/sized")
        return entry.kind, size

    kind, size = cluster.run(go())
    assert kind == "file"
    assert size == 3 * MiB + 3


def test_file_io_crossing_chunks(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/big", create=True, chunk_size=MiB)
        pattern = PatternPayload(seed=4, origin=0, nbytes=4 * MiB)
        yield from f.write(700 * KiB, pattern)
        back = yield from f.read(700 * KiB, 4 * MiB)
        f.close()
        return back

    assert cluster.run(go()) == PatternPayload(seed=4, origin=0, nbytes=4 * MiB)


def test_unlink_removes_and_frees(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/doomed", create=True)
        yield from f.write(0, b"y" * 4096)
        f.close()
        yield from dfs.unlink("/doomed")
        try:
            yield from dfs.stat("/doomed")
        except DerNonexist:
            return "gone"

    assert cluster.run(go()) == "gone"


def test_unlink_directory_is_error(cluster, dfs):
    def go():
        yield from dfs.mkdir("/a-dir")
        try:
            yield from dfs.unlink("/a-dir")
        except DerIsDir:
            return "eisdir"

    assert cluster.run(go()) == "eisdir"


def test_rmdir_empty_and_nonempty(cluster, dfs):
    def go():
        yield from dfs.mkdir("/rm-parent")
        yield from dfs.mkdir("/rm-parent/child")
        try:
            yield from dfs.rmdir("/rm-parent")
        except DerExist:
            nonempty = True
        yield from dfs.rmdir("/rm-parent/child")
        yield from dfs.rmdir("/rm-parent")
        try:
            yield from dfs.stat("/rm-parent")
        except DerNonexist:
            return nonempty, "gone"

    assert cluster.run(go()) == (True, "gone")


def test_rename_moves_entry(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/old-name", create=True)
        yield from f.write(0, b"payload")
        f.close()
        yield from dfs.mkdir("/newdir")
        yield from dfs.rename("/old-name", "/newdir/new-name")
        try:
            yield from dfs.stat("/old-name")
            old_exists = True
        except DerNonexist:
            old_exists = False
        f2 = yield from dfs.open_file("/newdir/new-name")
        data = yield from f2.read(0, 7)
        f2.close()
        return old_exists, data.materialize()

    assert cluster.run(go()) == (False, b"payload")


def test_path_component_through_file_is_enotdir(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/plainfile", create=True)
        f.close()
        try:
            yield from dfs.open_file("/plainfile/sub", create=True)
        except DerNotDir:
            return "enotdir"

    assert cluster.run(go()) == "enotdir"


def test_per_file_oclass_override(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/wide", create=True, oclass="SX")
        n = len(f.obj.layout.all_targets)
        f.close()
        f2 = yield from dfs.open_file("/narrow", create=True, oclass="S1")
        m = len(f2.obj.layout.all_targets)
        f2.close()
        return n, m

    n, m = cluster.run(go())
    assert n == 8 and m == 1
