"""DfsFile edge cases: cross-handle size visibility, zero-length I/O,
chunk-boundary straddling at the stripe edge, and EOF clamping.

All of these run in the default ``none`` cache mode — they pin the base
file-layer semantics the caching tier is layered on top of.
"""

import pytest

from repro.cluster import small_cluster
from repro.daos.vos.payload import PatternPayload
from repro.dfs import Dfs
from repro.units import KiB, MiB

CHUNK = 64 * KiB


@pytest.fixture(scope="module")
def cluster():
    return small_cluster(server_nodes=2, client_nodes=2,
                         targets_per_engine=2)


@pytest.fixture(scope="module")
def dfs(cluster):
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("edges", oclass="S2")
        return (yield from Dfs.mount(cont))

    return cluster.run(setup())


def pat(origin, nbytes, seed=37):
    return PatternPayload(seed, origin, nbytes)


# --------------------------------------------------- cross-handle size
def test_second_handle_sees_growth_through_first(cluster, dfs):
    """Regression: the per-handle size cache must not go stale when a
    different handle extends the file. Handle B learns size 1 MiB, A
    appends another MiB, and B's next read must return the new bytes
    without reopening or re-stat-ing."""

    def go():
        a = yield from dfs.open_file("/grow", create=True)
        yield from a.write(0, pat(0, MiB))
        b = yield from dfs.open_file("/grow")
        first = yield from b.get_size()  # B's size cache now primed
        yield from a.write(MiB, pat(MiB, MiB))  # growth through A
        tail = yield from b.read(MiB, MiB)  # entirely past B's cached size
        a.close()
        b.close()
        return first, tail.materialize()

    first, tail = cluster.run(go())
    assert first == MiB
    assert tail == pat(MiB, MiB).materialize()


def test_shared_state_is_per_file_not_per_mount(cluster, dfs):
    def go():
        a = yield from dfs.open_file("/sep-a", create=True)
        b = yield from dfs.open_file("/sep-b", create=True)
        yield from a.write(0, pat(0, 4 * KiB))
        size_b = yield from b.get_size()
        a.close()
        b.close()
        return size_b

    assert cluster.run(go()) == 0  # /sep-a's growth must not leak


# --------------------------------------------------- zero-length I/O
def test_zero_length_write_is_a_noop(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/zero-w", create=True)
        wrote = yield from f.write(0, b"")
        size = yield from f.get_size()
        f.close()
        return wrote, size

    assert cluster.run(go()) == (0, 0)


def test_zero_length_read(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/zero-r", create=True)
        yield from f.write(0, pat(0, KiB))
        part = yield from f.read(512, 0)
        f.close()
        return part.nbytes

    assert cluster.run(go()) == 0


# --------------------------------------------------- chunk straddling
def test_write_straddling_chunk_boundary_at_stripe_edge(cluster, dfs):
    """With chunk_size=64 KiB on S2, chunk 0 and chunk 1 live on
    different targets — an extent crossing the boundary splits into two
    shard pieces and must reassemble exactly."""

    def go():
        f = yield from dfs.open_file("/straddle", create=True,
                                     chunk_size=CHUNK, oclass="S2")
        start = CHUNK - 100
        yield from f.write(start, pat(start, 200))
        back = yield from f.read(start, 200)
        size = yield from f.get_size()
        f.close()
        return back.materialize(), size

    data, size = cluster.run(go())
    assert data == pat(CHUNK - 100, 200).materialize()
    assert size == CHUNK + 100


def test_write_spanning_many_chunks_with_ragged_ends(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/span", create=True,
                                     chunk_size=CHUNK, oclass="S2")
        start, nbytes = CHUNK // 2 + 7, 3 * CHUNK + 11
        yield from f.write(start, pat(start, nbytes))
        whole = yield from f.read(0, start + nbytes)
        f.close()
        return whole.materialize(), start, nbytes

    data, start, nbytes = cluster.run(go())
    assert len(data) == start + nbytes
    assert data[:start] == b"\x00" * start  # hole reads back as zeros
    assert data[start:] == pat(start, nbytes).materialize()


def test_read_exactly_one_chunk_on_the_boundary(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/aligned", create=True,
                                     chunk_size=CHUNK, oclass="S2")
        yield from f.write(0, pat(0, 4 * CHUNK))
        middle = yield from f.read(CHUNK, CHUNK)
        f.close()
        return middle.materialize()

    assert cluster.run(go()) == pat(CHUNK, CHUNK).materialize()


# --------------------------------------------------- EOF clamping
def test_read_entirely_past_eof_returns_empty(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/eof", create=True)
        yield from f.write(0, pat(0, KiB))
        past = yield from f.read(10 * KiB, KiB)
        f.close()
        return past.nbytes

    assert cluster.run(go()) == 0


def test_read_straddling_eof_is_short(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/eof-short", create=True)
        yield from f.write(0, pat(0, KiB))
        part = yield from f.read(512, 4 * KiB)
        f.close()
        return part.materialize()

    assert cluster.run(go()) == pat(512, 512).materialize()


def test_read_from_empty_file(cluster, dfs):
    def go():
        f = yield from dfs.open_file("/empty", create=True)
        part = yield from f.read(0, KiB)
        f.close()
        return part.nbytes

    assert cluster.run(go()) == 0
