"""DFuse mount tests: POSIX semantics + FUSE cost model."""

import pytest

from repro.cluster import small_cluster
from repro.daos.vos.payload import PatternPayload
from repro.dfs import Dfs
from repro.dfuse import DFuseMount
from repro.errors import FsError
from repro.units import KiB, MiB


@pytest.fixture(scope="module")
def cluster():
    return small_cluster(server_nodes=2, client_nodes=2, targets_per_engine=2)


@pytest.fixture(scope="module")
def mount(cluster):
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("fuse-cont", oclass="S2")
        dfs = yield from Dfs.mount(cont)
        return DFuseMount(dfs)

    return cluster.run(setup())


def test_open_write_read_via_posix(cluster, mount):
    def go():
        f = yield from mount.open("/hello.txt", ("w", "creat"))
        yield from f.pwrite(0, b"posix data")
        data = yield from f.pread(0, 64)
        yield from f.close()
        return data.materialize()

    assert cluster.run(go()) == b"posix data"


def test_errors_translated_to_errno(cluster, mount):
    def go():
        try:
            yield from mount.open("/missing-file")
        except FsError as err:
            return err.errno_name

    assert cluster.run(go()) == "ENOENT"


def test_mkdir_stat_readdir(cluster, mount):
    def go():
        yield from mount.mkdir("/d")
        f = yield from mount.open("/d/x", ("w", "creat"))
        yield from f.pwrite(0, b"1234")
        yield from f.close()
        st = yield from mount.stat("/d/x")
        st_dir = yield from mount.stat("/d")
        names = yield from mount.readdir("/d")
        return st, st_dir.is_dir, names

    st, is_dir, names = cluster.run(go())
    assert st.size == 4 and not st.is_dir
    assert st.blksize == MiB  # dfuse advertises the DFS chunk size
    assert is_dir and names == ["x"]


def test_unlink_rename(cluster, mount):
    def go():
        f = yield from mount.open("/r1", ("w", "creat"))
        yield from f.pwrite(0, b"v")
        yield from f.close()
        yield from mount.rename("/r1", "/r2")
        yield from mount.unlink("/r2")
        try:
            yield from mount.stat("/r2")
        except FsError as err:
            return err.errno_name

    assert cluster.run(go()) == "ENOENT"


def test_large_write_segmented_into_fuse_requests(cluster, mount):
    # Aligned 4 MiB write -> 4 requests; unaligned 4 MiB write -> 5.
    def timed(offset):
        def go():
            f = yield from mount.open(f"/seg{offset}", ("w", "creat"))
            start = cluster.sim.now
            yield from f.pwrite(offset, PatternPayload(1, 0, 4 * MiB))
            elapsed = cluster.sim.now - start
            yield from f.close()
            return elapsed

        return cluster.run(go())

    aligned = timed(0)
    unaligned = timed(64 * KiB)
    assert unaligned > aligned


def test_window_splitting_logic(mount):
    windows = mount._windows(0, 4 * MiB)
    assert len(windows) == 4
    windows = mount._windows(64 * KiB, 4 * MiB)
    assert len(windows) == 5
    assert windows[0] == (64 * KiB, MiB - 64 * KiB)
    assert sum(n for _, n in windows) == 4 * MiB
    assert mount._windows(10, 0) == []


def test_truncate_and_size(cluster, mount):
    def go():
        f = yield from mount.open("/t", ("w", "creat"))
        yield from f.pwrite(0, b"z" * 100)
        yield from f.truncate(10)
        size = yield from f.size()
        yield from f.fsync()
        yield from f.close()
        return size

    assert cluster.run(go()) == 10


def test_pread_short_at_eof(cluster, mount):
    def go():
        f = yield from mount.open("/short", ("w", "creat"))
        yield from f.pwrite(0, b"abc")
        data = yield from f.pread(0, 2 * MiB)
        yield from f.close()
        return data.materialize()

    assert cluster.run(go()) == b"abc"


def test_posix_io_costs_more_than_dfs(cluster, mount):
    """DFuse adds kernel-crossing overhead vs. the native DFS API."""

    def time_posix():
        def go():
            f = yield from mount.open("/cost-posix", ("w", "creat"))
            start = cluster.sim.now
            for i in range(16):
                yield from f.pwrite(i * 64 * KiB, b"q" * (64 * KiB))
            elapsed = cluster.sim.now - start
            yield from f.close()
            return elapsed

        return cluster.run(go())

    def time_dfs():
        def go():
            f = yield from mount.dfs.open_file("/cost-dfs", create=True)
            start = cluster.sim.now
            for i in range(16):
                yield from f.write(i * 64 * KiB, b"q" * (64 * KiB))
            elapsed = cluster.sim.now - start
            f.close()
            return elapsed

        return cluster.run(go())

    assert time_posix() > time_dfs()
