"""FoundationDB-style deterministic-simulation chaos harness.

``run_chaos`` is the one entry point: build a seeded cluster, arm a
fault schedule, drive a workload task to completion, let the dust
settle, then assert every Raft safety invariant. The returned
:class:`ChaosRun` carries the deterministic event trace — two runs with
the same seed must produce byte-identical traces, which is itself one of
the asserted properties (``tests/faults/test_determinism.py``).

Writing a chaos test (see DESIGN.md §6):

1. a *workload*: ``def workload(cluster, injector) -> generator`` doing
   real client I/O, using ``injector.note(...)`` to stamp progress into
   the trace and returning a deterministic (reprable) result;
2. a *schedule factory*: ``def schedule(cluster) -> FaultSchedule`` —
   explicit ``.at(...)`` timelines or ``FaultSchedule.random``;
3. ``run = run_chaos(workload, schedule, seed=...)`` then assert on
   ``run.result`` / ``run.trace`` / ``run.summary``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.cluster import small_cluster
from repro.daos.oclass import RP_2G1
from repro.errors import DerDataLoss, DerTimedOut
from repro.faults import (
    EventTrace,
    FaultInjector,
    FaultSchedule,
    Heal,
    PartitionLeader,
    check_raft_safety,
    check_replica_consistency,
)

DEFAULT_SEED = 0xDA05


@dataclass
class ChaosRun:
    """Everything a chaos test may want to assert on."""

    seed: int
    result: object
    trace: EventTrace
    summary: Dict[str, int]
    cluster: object
    #: storage-level replica/EC-parity consistency counters
    consistency: Dict[str, int] = None

    @property
    def trace_bytes(self) -> bytes:
        return self.trace.as_bytes()


def run_chaos(
    workload: Callable,
    schedule_factory: Callable,
    *,
    seed: int = DEFAULT_SEED,
    server_nodes: int = 3,
    client_nodes: int = 1,
    targets_per_engine: int = 2,
    settle: float = 5.0,
    limit: float = 1e6,
) -> ChaosRun:
    """Run ``workload(cluster, injector)`` under ``schedule_factory(cluster)``.

    Three server nodes give the metadata service a 3-replica Raft group
    (quorum 2), the minimum that survives single-fault chaos.
    """
    cluster = small_cluster(
        server_nodes=server_nodes,
        client_nodes=client_nodes,
        targets_per_engine=targets_per_engine,
        seed=seed,
    )
    injector = cluster.inject(schedule_factory(cluster))
    task = cluster.sim.spawn(workload(cluster, injector), "chaos:workload")
    result = cluster.sim.run_until_complete(task, limit=limit)
    # Let in-flight elections, heals and injector tasks settle before
    # judging safety.
    cluster.sim.run(until=cluster.sim.now + settle)
    # Drain any rebuild a late reintegration left running, then hold the
    # storage layer to the replica-consistency invariant: every group's
    # available members agree, EC parity checks out.
    drain = cluster.sim.spawn(
        _drain_rebuilds(cluster), "chaos:drain-rebuild"
    )
    cluster.sim.run_until_complete(drain, limit=limit)
    consistency = check_replica_consistency(cluster.daos)
    injector.note(
        "replica consistency ok %s" % sorted(consistency.items())
    )
    summary = check_raft_safety(cluster.daos.svc)
    injector.note(
        "chaos done result=%r summary=%s" % (result, sorted(summary.items()))
    )
    return ChaosRun(
        seed=seed,
        result=result,
        trace=injector.trace,
        summary=summary,
        cluster=cluster,
        consistency=consistency,
    )


def _drain_rebuilds(cluster):
    for pool_uuid in sorted(cluster.daos._pool_maps):
        yield from cluster.daos.rebuild.wait(pool_uuid)


# --------------------------------------------------------------------------
# Canonical scenarios, reused by determinism and acceptance tests.
# --------------------------------------------------------------------------

_PAYLOAD = b"forecast state vector" * 512  # ~10.5 KiB, two RP_2G1 replicas


def rp2g1_partition_schedule(cluster) -> FaultSchedule:
    """Isolate the Raft leader 100 us after arming — mid way through the
    workload's ``create_container`` commit — and heal 1.5 s later."""
    return FaultSchedule().at(1e-4, PartitionLeader()).at(1.5, Heal())


def rp2g1_partition_workload(cluster, inj):
    """The acceptance story: create an RP_2G1 container while the Raft
    leader is partitioned away, write, exclude a replica target, and
    verify a degraded read loses nothing."""
    client = cluster.new_client(0)
    pool = yield from client.connect_pool("tank")
    cont = yield from pool.create_container("precious", oclass="RP_2G1")
    inj.note("container created (rode out the partition)")

    oid = yield from cont.alloc_oid(RP_2G1)
    obj = cont.open_object(oid)
    yield from obj.write(0, _PAYLOAD)
    replicas = obj.layout.targets_for_dkey(0)
    inj.note(f"object written, replicas on targets {sorted(replicas)}")

    version = yield from cluster.daos.exclude_target(
        pool.pool_map.uuid, replicas[0]
    )
    yield from pool.refresh_map()
    inj.note(f"excluded target {replicas[0]} (pool map v{version})")

    survivor = cont.open_object(oid)
    back = yield from survivor.read(0, len(_PAYLOAD))
    data = back.materialize()
    if data != _PAYLOAD:
        raise AssertionError(
            f"data loss: {len(data)} bytes read, first divergence at "
            f"{next((i for i, (a, b) in enumerate(zip(data, _PAYLOAD)) if a != b), len(data))}"
        )
    inj.note(f"degraded read verified ({len(data)} bytes, zero loss)")
    obj.close()
    survivor.close()
    return len(data)


def run_rp2g1_partition_chaos(seed: int = DEFAULT_SEED) -> ChaosRun:
    return run_chaos(
        rp2g1_partition_workload, rp2g1_partition_schedule, seed=seed
    )


def kv_chaos_workload(cluster, inj, n_ops: int = 40, pace: float = 0.15):
    """Replicated-KV storm used under random schedules: every op retries
    through engine crashes and exclusions, and every acknowledged write
    is read back and verified at the end (no data loss)."""
    client = cluster.new_client(0)
    pool = yield from client.connect_pool("tank")
    cont = yield from pool.create_container("chaos-kv", oclass="RP_2G1")
    oid = yield from cont.alloc_oid(RP_2G1)
    obj = cont.open_object(oid)
    wrote = {}
    for i in range(n_ops):
        dkey = f"k{i % 8:02d}"
        value = f"v{i}"
        for _attempt in range(40):
            try:
                yield from obj.put(dkey, b"a", value)
                wrote[dkey] = value
                break
            except (DerTimedOut, DerDataLoss) as exc:
                inj.note(f"put {dkey} retrying: {exc}")
                yield 0.05
                yield from pool.refresh_map()
        else:
            inj.note(f"put {dkey} gave up (group fully excluded)")
            wrote.pop(dkey, None)
        yield pace
    verified = 0
    yield from pool.refresh_map()
    for dkey in sorted(wrote):
        for _attempt in range(40):
            try:
                got = yield from obj.get(dkey, b"a")
                break
            except (DerTimedOut, DerDataLoss) as exc:
                inj.note(f"get {dkey} retrying: {exc}")
                yield 0.05
                yield from pool.refresh_map()
        else:
            raise AssertionError(f"acknowledged key {dkey} unreadable")
        if got != wrote[dkey]:
            raise AssertionError(
                f"data loss on {dkey}: wrote {wrote[dkey]!r}, read {got!r}"
            )
        verified += 1
    obj.close()
    inj.note(f"verified {verified} acknowledged keys")
    return verified


def random_chaos_schedule(cluster, horizon: float = 6.0,
                          n_faults: int = 4) -> FaultSchedule:
    """Seed-driven schedule over every fault domain of ``cluster``."""
    return FaultSchedule.random(
        cluster.rng,
        horizon=horizon,
        server_nodes=[s.name for s in cluster.servers],
        engine_ranks=range(len(cluster.daos.engines)),
        target_ids=range(cluster.daos.n_targets),
        replica_ids=range(len(cluster.daos.svc.nodes)),
        n_faults=n_faults,
    )


def run_random_kv_chaos(seed: int = DEFAULT_SEED) -> ChaosRun:
    return run_chaos(kv_chaos_workload, random_chaos_schedule, seed=seed)
