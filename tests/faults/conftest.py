"""Chaos-suite fixtures: the pinned seed matrix.

``CHAOS_SEEDS`` (space- or comma-separated ints, ``0x`` accepted) widens
or changes the matrix without touching code, e.g.::

    CHAOS_SEEDS="1 2 3 0xBEEF" make chaos
"""

import os

DEFAULT_SEEDS = (0xDA05, 1, 7)


def _seed_matrix():
    raw = os.environ.get("CHAOS_SEEDS", "").replace(",", " ")
    if raw.strip():
        return tuple(int(tok, 0) for tok in raw.split())
    return DEFAULT_SEEDS


def pytest_generate_tests(metafunc):
    if "chaos_seed" in metafunc.fixturenames:
        metafunc.parametrize("chaos_seed", _seed_matrix())
