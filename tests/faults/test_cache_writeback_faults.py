"""Fault-correctness of the write-behind cache (DESIGN.md §8).

The guarantee under test: an engine crash while write-behind data is
still buffered must surface a typed :class:`CacheWritebackError` on
``fsync``/``close`` — naming the exact dirty extents — and never
silently drop bytes. The buffer keeps the data across the failure, so a
retry after the engines restart commits everything, and a full
read-back proves zero loss.
"""

import pytest

from repro.cache.config import CacheConfig
from repro.daos.vos.payload import PatternPayload
from repro.dfs import Dfs
from repro.errors import CacheWritebackError
from repro.faults import CrashEngine, FaultSchedule, RestartEngine
from repro.units import KiB

from tests.faults.harness import run_chaos

pytestmark = pytest.mark.chaos

_NBYTES = 256 * KiB
_CRASH_AT = 0.5
_RESTART_AT = 2.0


def crash_all_engines_schedule(cluster) -> FaultSchedule:
    """Crash every engine mid-run (no target survives to absorb the
    flush), restart them all later."""
    schedule = FaultSchedule()
    for rank in range(len(cluster.daos.engines)):
        schedule.at(_CRASH_AT, CrashEngine(rank))
        schedule.at(_RESTART_AT, RestartEngine(rank))
    return schedule


def writeback_crash_workload(cluster, inj):
    client = cluster.new_client(0)
    pool = yield from client.connect_pool("tank")
    cont = yield from pool.create_container("wb-chaos", oclass="S1")
    cache = CacheConfig(mode="writeback", capacity="4m", wb_watermark="16m")
    dfs = yield from Dfs.mount(cont, cache=cache)
    handle = yield from dfs.open_file("/f", create=True)
    payload = PatternPayload(99, 0, _NBYTES)
    yield from handle.write(0, payload)  # buffered, below watermark
    inj.note(f"buffered {handle.wb.dirty_bytes} dirty bytes")

    # ride past the crash, then try to make the data durable
    yield _CRASH_AT + 0.2
    outcome = {}
    try:
        yield from handle.sync()
    except CacheWritebackError as err:
        outcome["fsync_error"] = (err.path, err.lost_bytes, list(err.pending))
        inj.note(f"fsync surfaced typed error: {err}")
    try:
        handle.close()
    except CacheWritebackError as err:
        outcome["close_error"] = err.lost_bytes
        inj.note("close refused to drop dirty bytes")
    outcome["dirty_after_crash"] = handle.wb.dirty_bytes

    # wait for the engines to come back, then retry the same handle
    while cluster.sim.now < _RESTART_AT + 0.2:
        yield 0.1
    yield from handle.sync()
    outcome["dirty_after_retry"] = handle.wb.dirty_bytes
    handle.close()
    inj.note("retry flush committed after restart")

    reader = yield from dfs.open_file("/f")
    back = yield from reader.read(0, _NBYTES)
    outcome["verified"] = back.materialize() == payload.materialize()
    reader.close()
    inj.note(f"read-back verified={outcome['verified']}")
    return outcome


def test_engine_crash_surfaces_typed_error_then_retry_commits(chaos_seed):
    run = run_chaos(
        writeback_crash_workload, crash_all_engines_schedule, seed=chaos_seed
    )
    out = run.result
    path, lost, pending = out["fsync_error"]
    assert path == "/f"
    assert lost == _NBYTES
    assert pending == [(0, _NBYTES)]
    # close also refused to drop the same bytes, and nothing was lost
    assert out["close_error"] == _NBYTES
    assert out["dirty_after_crash"] == _NBYTES
    # after restart the same buffer flushed clean and the data is real
    assert out["dirty_after_retry"] == 0
    assert out["verified"] is True
    assert b"typed error" in run.trace_bytes
    assert b"retry flush committed" in run.trace_bytes


def test_cache_chaos_trace_is_deterministic(chaos_seed):
    a = run_chaos(writeback_crash_workload, crash_all_engines_schedule,
                  seed=chaos_seed)
    b = run_chaos(writeback_crash_workload, crash_all_engines_schedule,
                  seed=chaos_seed)
    assert a.trace_bytes == b.trace_bytes
    assert a.result == b.result
