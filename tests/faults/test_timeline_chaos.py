"""Acceptance: the SLO/stall watchdog catches an engine crash mid-write.

A paced DFS write workload runs while every engine crashes and later
restarts. The timeline must show the per-window wire throughput dropping
to zero across the outage while ``client.io.inflight`` stays positive
(ops burning RPC timeouts), and the default stall rule must emit a
breach inside the outage — the silent-hang signature, caught live
instead of by iteration-limit timeout.

All times below are relative to the scraper's origin (cluster bootstrap
has already advanced the simulated clock when the workload starts; the
fault schedule arms at that same instant).
"""

import pytest

from repro.cluster import small_cluster
from repro.daos.vos.payload import PatternPayload
from repro.dfs import Dfs
from repro.errors import DerTimedOut
from repro.faults import CrashEngine, FaultSchedule, RestartEngine
from repro.units import MiB

pytestmark = pytest.mark.chaos

_SEED = 0xDA05
_INTERVAL = 0.01
_CRASH_AT = 0.1
_RESTART_AT = 0.4
_RUN_FOR = 0.6
_CHUNK = MiB


def _crash_all_schedule(cluster) -> FaultSchedule:
    schedule = FaultSchedule()
    for rank in range(len(cluster.daos.engines)):
        schedule.at(_CRASH_AT, CrashEngine(rank))
        schedule.at(_RESTART_AT, RestartEngine(rank))
    return schedule


def _paced_writer(cluster):
    """Write 1 MiB chunks on a steady cadence, retrying through the
    outage — exactly the client behaviour a stall watchdog must flag."""
    client = cluster.new_client(0)

    def go():
        t_end = cluster.sim.now + _RUN_FOR
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("tl-chaos", oclass="S1")
        dfs = yield from Dfs.mount(cont)
        handle = yield from dfs.open_file("/f", create=True)
        offset = 0
        retries = 0
        while cluster.sim.now < t_end:
            payload = PatternPayload(7, offset, _CHUNK)
            while True:
                try:
                    yield from handle.write(offset, payload)
                    break
                except DerTimedOut:
                    retries += 1
                    yield 0.002  # back off briefly, keep ops in flight
            offset += _CHUNK
            yield _INTERVAL
        handle.close()
        return offset, retries

    return go()


def _run_timeline_chaos():
    cluster = small_cluster(server_nodes=3, client_nodes=1,
                            targets_per_engine=2, seed=_SEED)
    cluster.observe(tracing=True, timeline_interval=_INTERVAL)
    cluster.inject(_crash_all_schedule(cluster))
    task = cluster.sim.spawn(_paced_writer(cluster), "chaos:paced-writer")
    result = cluster.sim.run_until_complete(task, limit=1e6)
    return cluster, result


def test_engine_crash_shows_in_timeline_and_breaches_stall_rule():
    cluster, (written, retries) = _run_timeline_chaos()
    store = cluster.sim.timeline.store
    t0 = store.origin
    assert written >= 8 * _CHUNK  # made real progress around the outage
    assert retries > 0  # the outage was actually felt

    rate = store.series["fabric.xfer.bytes:rate"]
    rate.finalize()

    # before the crash: bytes were moving
    pre = [v for t, v in rate.points if t <= t0 + _CRASH_AT]
    assert pre and max(pre) > 0.0

    # mid-outage: wire throughput visibly drops to zero...
    for dt in (0.2, 0.25, 0.3, 0.35):
        assert rate.value_at(t0 + dt) == 0.0, dt
    # ...while ops stay in flight, burning RPC timeouts
    guard = store.series["client.io.inflight:mean"]
    guard.finalize()
    inflight = [guard.value_at(t0 + dt) for dt in (0.2, 0.25, 0.3, 0.35)]
    assert any(v and v > 0.0 for v in inflight)

    # after the restart: throughput recovers
    post = [v for t, v in rate.points if t > t0 + _RESTART_AT + 0.05]
    assert post and max(post) > 0.0

    # the watchdog fired, inside the outage, once for the whole stall
    stalls = [b for b in store.breaches if b.kind == "stall"]
    assert len(stalls) == 1, stalls
    breach = stalls[0]
    assert _CRASH_AT < breach.time - t0 <= _RESTART_AT + 0.05
    assert breach.metric == "fabric.xfer.bytes"
    assert breach.extra["guard"] == "client.io.inflight"
    assert breach.extra["guard_mean"] > 0.0
    assert cluster.sim.metrics.counters["obs.slo.breaches"].value == len(
        store.breaches
    )
    # the breach also landed in the trace as a typed instant
    instants = [s for s in cluster.sim.tracer.spans if s.name == "slo.breach"]
    assert len(instants) == len(store.breaches)
    assert instants[0].attrs["kind"] == "stall"


def test_chaos_timeline_is_deterministic():
    a_cluster, a_result = _run_timeline_chaos()
    b_cluster, b_result = _run_timeline_chaos()
    assert a_result == b_result
    assert (a_cluster.sim.timeline.store.to_json()
            == b_cluster.sim.timeline.store.to_json())
