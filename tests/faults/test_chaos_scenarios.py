"""Chaos scenarios: real client workloads under injected faults.

The canonical acceptance scenario (ISSUE: partition the Raft leader
during ``create_container``, exclude a target under an RP_2G1 object)
plus seed-matrix random chaos sweeping every fault domain at once.
Every run already asserts the full Raft safety set inside
``run_chaos``; the tests add the workload-level guarantees.
"""

import pytest

from repro.faults import FaultSchedule, check_raft_safety

from tests.faults.harness import (
    _PAYLOAD,
    run_random_kv_chaos,
    run_rp2g1_partition_chaos,
)

pytestmark = pytest.mark.chaos


def test_rp2g1_leader_partition_zero_data_loss(chaos_seed):
    run = run_rp2g1_partition_chaos(chaos_seed)
    # The workload read back every byte through the surviving replica.
    assert run.result == len(_PAYLOAD)
    assert b"zero loss" in run.trace_bytes
    assert b"inject PartitionLeader()" in run.trace_bytes
    # All three metadata replicas are up again after the heal, and the
    # full safety sweep (run inside run_chaos) stayed green.
    assert run.summary["live"] == 3
    assert run.summary["max_commit"] >= 6  # pool + container + exclusion
    # check_raft_safety is idempotent: re-running it on the settled
    # cluster reproduces the same summary.
    assert check_raft_safety(run.cluster.daos.svc) == run.summary


def test_rp2g1_partition_stalls_then_completes(chaos_seed):
    """The partition lands before the container exists and the create
    only completes after the heal — i.e. the fault really did hit the
    metadata path mid-flight."""
    run = run_rp2g1_partition_chaos(chaos_seed)
    lines = run.trace.lines

    def time_of(needle):
        for line in lines:
            stamp, _, text = line.partition(" ")
            if needle in text:
                return float(stamp)
        raise AssertionError(f"{needle!r} not in trace:\n" + "\n".join(lines))

    assert (
        time_of("inject PartitionLeader()")
        < time_of("inject Heal()")
        <= time_of("container created")
    )


def test_random_chaos_kv_no_acknowledged_loss(chaos_seed):
    """Random multi-domain chaos: the KV workload retries through engine
    crashes/replica crashes/partitions and verifies every acknowledged
    key at the end (the workload raises on any loss)."""
    run = run_random_kv_chaos(chaos_seed)
    assert 0 < run.result <= 8
    # Every disruption with a scheduled recovery healed: all 3 metadata
    # replicas live, exactly the invariant-checked summary reported.
    assert run.summary["live"] == 3
    assert b"arm schedule" in run.trace_bytes


def test_random_schedule_is_liveness_safe():
    """Random schedules never overlap two disruptions, so a quorum
    always eventually returns."""
    from repro.cluster import small_cluster

    cluster = small_cluster(server_nodes=3, client_nodes=1)
    sched = FaultSchedule.random(
        cluster.rng,
        horizon=8.0,
        server_nodes=[s.name for s in cluster.servers],
        engine_ranks=range(4),
        target_ids=range(8),
        replica_ids=range(3),
        n_faults=5,
    )
    entries = sched.sorted()
    assert len(entries) >= 5
    assert sched.horizon <= 8.0
    # windows (disruption -> recovery) must not interleave; target
    # exclusions now close with a reintegration (the rebuild engine
    # resyncs the window, so random chaos may pair them with writes)
    open_since = None
    for delay, event in entries:
        name = type(event).__name__
        is_recovery = name in (
            "Heal",
            "RestartEngine",
            "RestartReplica",
            "MediaRestore",
            "ReintegrateTarget",
        ) or (name == "FlakyLink" and event.drop_prob == 0.0)
        if is_recovery:
            assert open_since is not None, f"recovery {event} with no fault open"
            open_since = None
        else:
            assert open_since is None, (
                f"{event} at {delay} overlaps fault opened at {open_since}"
            )
            open_since = delay
