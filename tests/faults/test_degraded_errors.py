"""Error-path consistency in degraded mode.

Losing the only copy of data is :class:`DerDataLoss` (→ EIO at the
POSIX layer) — a different failure from "never existed"
(:class:`DerNonexist` → ENOENT). These tests pin the typed error on
every degraded path: unreplicated reads *and* writes, EC past its
parity budget, and the POSIX translation.
"""

import pytest

from repro.cluster import small_cluster
from repro.daos.oclass import oclass_by_name
from repro.errors import DaosError, DerDataLoss, DerNonexist, fs_error_from_daos

PAYLOAD = b"x" * 4096


def run_catching(cluster, gen):
    """Drive ``gen``; return ("ok", result) or ("err", DaosError)."""

    def wrapper():
        try:
            result = yield from gen
        except DaosError as exc:
            return ("err", exc)
        return ("ok", result)

    return cluster.run(wrapper())


def expect_data_loss(cluster, gen):
    status, value = run_catching(cluster, gen)
    assert status == "err", f"expected DerDataLoss, got ok: {value!r}"
    assert isinstance(value, DerDataLoss), value
    assert value.code == "DER_DATA_LOSS"
    return value


def _excluded_setup(oclass_name, server_nodes=2):
    """Cluster + object of ``oclass_name`` with data written, plus the
    targets holding dkey/chunk 0."""
    cluster = small_cluster(server_nodes=server_nodes, client_nodes=1)
    client = cluster.new_client(0)
    state = {}

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("c", oclass=oclass_name)
        oid = yield from cont.alloc_oid(oclass_by_name(oclass_name))
        obj = cont.open_object(oid)
        yield from obj.write(0, PAYLOAD)
        state.update(pool=pool, cont=cont, obj=obj)
        return obj.layout.targets_for_dkey(0)

    targets = cluster.run(setup())
    return cluster, state, targets


def _exclude(cluster, state, tid):
    def go():
        yield from cluster.daos.exclude_target(
            state["pool"].pool_map.uuid, tid
        )
        yield from state["pool"].refresh_map()

    cluster.run(go())


def test_s1_read_after_exclusion_raises_data_loss():
    cluster, state, targets = _excluded_setup("S1")
    assert len(targets) == 1
    _exclude(cluster, state, targets[0])
    err = expect_data_loss(cluster, state["obj"].read(0, len(PAYLOAD)))
    assert "excluded" in str(err)


def test_s1_write_after_exclusion_raises_data_loss():
    cluster, state, targets = _excluded_setup("S1")
    _exclude(cluster, state, targets[0])
    expect_data_loss(cluster, state["obj"].write(0, PAYLOAD))


def test_s1_kv_ops_after_exclusion_raise_data_loss():
    cluster, state, targets = _excluded_setup("S1")
    _exclude(cluster, state, targets[0])
    expect_data_loss(cluster, state["obj"].put("k", b"a", "v"))
    expect_data_loss(cluster, state["obj"].get("k", b"a"))


def test_rp2_survives_one_exclusion_dies_on_two():
    cluster, state, targets = _excluded_setup("RP_2G1")
    assert len(targets) == 2
    _exclude(cluster, state, targets[0])
    status, data = run_catching(cluster, state["obj"].read(0, len(PAYLOAD)))
    assert status == "ok"
    assert data.materialize() == PAYLOAD  # degraded but whole
    _exclude(cluster, state, targets[1])
    expect_data_loss(cluster, state["obj"].read(0, len(PAYLOAD)))


def test_ec_beyond_parity_budget_raises_data_loss():
    # EC_2P1 tolerates one lost shard; two is unrecoverable.
    cluster, state, targets = _excluded_setup("EC_2P1G1", server_nodes=3)
    assert len(targets) == 3
    _exclude(cluster, state, targets[0])
    status, data = run_catching(cluster, state["obj"].read(0, len(PAYLOAD)))
    assert status == "ok"
    assert data.materialize() == PAYLOAD  # reconstructed from parity
    _exclude(cluster, state, targets[1])
    expect_data_loss(cluster, state["obj"].read(0, len(PAYLOAD)))


def test_reintegration_restores_readability():
    """Reintegration brings the target back through REBUILDING: it serves
    no reads until the resync converges (here instantly — nothing was
    written during the window), then the pool map flips it UP."""
    cluster, state, targets = _excluded_setup("S1")
    _exclude(cluster, state, targets[0])
    expect_data_loss(cluster, state["obj"].read(0, len(PAYLOAD)))

    def reintegrate():
        yield from cluster.daos.reintegrate_target(
            state["pool"].pool_map.uuid, targets[0]
        )
        # while REBUILDING the target still serves no reads
        yield from state["pool"].refresh_map()
        try:
            yield from state["obj"].read(0, len(PAYLOAD))
        except DerDataLoss:
            pass
        else:
            raise AssertionError("REBUILDING target served a read")
        yield from cluster.daos.wait_rebuild(state["pool"].pool_map.uuid)
        yield from state["pool"].refresh_map()

    cluster.run(reintegrate())
    assert state["pool"].pool_map.statuses == {}
    status, data = run_catching(cluster, state["obj"].read(0, len(PAYLOAD)))
    assert status == "ok"
    assert data.materialize() == PAYLOAD


def test_data_loss_maps_to_eio_at_posix_layer():
    err = fs_error_from_daos(DerDataLoss("all replicas excluded"))
    assert err.errno_name == "EIO"
    # ...and stays distinct from the not-found path.
    assert fs_error_from_daos(DerNonexist("nope")).errno_name == "ENOENT"
