"""Rebuild under chaos: writes racing an exclusion window.

The acceptance scenario for the rebuild engine in its natural habitat:
a client keeps streaming array writes while a schedule yanks a target
out mid-stream and reintegrates it before the stream ends. After the
resync drains, the full object must read back byte-identical — for the
replicated AND the erasure-coded class. ``run_chaos`` additionally holds
every settled run to the replica-consistency invariant (all live group
members agree, EC parity verifies).
"""

import pytest

from repro.daos.oclass import oclass_by_name
from repro.daos.vos.payload import PatternPayload
from repro.errors import DerDataLoss, DerTimedOut
from repro.faults import ExcludeTarget, FaultSchedule, ReintegrateTarget
from repro.units import MiB

from tests.faults.harness import run_chaos, run_random_kv_chaos

pytestmark = pytest.mark.chaos

#: the window [0.4s, 1.4s) lands mid-stream: ~10 of the 24 chunks are
#: written while the victim is DOWN or REBUILDING
_VICTIM = 1
_CHUNKS = 24
_PACE = 0.1


def window_schedule(cluster) -> FaultSchedule:
    return (
        FaultSchedule()
        .at(0.4, ExcludeTarget(_VICTIM))
        .at(1.4, ReintegrateTarget(_VICTIM))
    )


def streaming_workload(oclass_name):
    """Write _CHUNKS MiB-chunks paced so the exclusion window splits the
    stream, then drain the rebuild and verify every byte."""

    def workload(cluster, inj):
        client = cluster.new_client(0)
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("stream", oclass=oclass_name)
        oid = yield from cont.alloc_oid(oclass_by_name(oclass_name))
        obj = cont.open_object(oid)
        pattern = PatternPayload(seed=6, origin=0, nbytes=_CHUNKS * MiB)
        for i in range(_CHUNKS):
            chunk = pattern.slice(i * MiB, (i + 1) * MiB)
            for _attempt in range(40):
                try:
                    yield from obj.write(i * MiB, chunk, chunk_size=MiB)
                    break
                except (DerTimedOut, DerDataLoss) as exc:
                    inj.note(f"write chunk {i} retrying: {exc}")
                    yield 0.05
                    yield from pool.refresh_map()
            else:
                raise AssertionError(f"chunk {i} never acknowledged")
            yield _PACE
        inj.note(f"stream done ({_CHUNKS} chunks)")
        yield from cluster.daos.wait_rebuild(pool.pool_map.uuid)
        yield from pool.refresh_map()
        back = yield from obj.read(0, _CHUNKS * MiB, chunk_size=MiB)
        data = back.materialize()
        if data != pattern.materialize():
            raise AssertionError("read-back diverged after resync")
        inj.note("read-back byte-identical after resync")
        obj.close()
        return len(data)

    return workload


@pytest.mark.parametrize("oclass_name", ["RP_2GX", "EC_2P1GX"])
def test_write_during_window_resyncs_byte_identical(oclass_name):
    run = run_chaos(streaming_workload(oclass_name), window_schedule)
    assert run.result == _CHUNKS * MiB
    # the schedule really opened and closed the window...
    assert f"target {_VICTIM} DOWN".encode() in run.trace_bytes
    assert f"target {_VICTIM} REBUILDING".encode() in run.trace_bytes
    # ...and the workload verified every byte afterwards
    assert b"read-back byte-identical after resync" in run.trace_bytes
    # the settled pool is fully healthy again
    pool_uuid = run.cluster.pool.uuid
    query = run.cluster.daos.pool_query(pool_uuid)
    assert query["targets"] == {}
    assert run.cluster.daos.rebuild.busy(pool_uuid) is False
    # storage-level invariant counters cover the streamed object
    assert run.consistency["objects"] >= 1


def test_random_chaos_draws_reintegration_and_stays_consistent():
    """Random schedules now pair every exclusion with a reintegration
    (seed 0xDA05 draws one); the KV storm rides through it and the
    settled cluster passes the replica-consistency sweep."""
    run = run_random_kv_chaos(0xDA05)
    assert b"inject ExcludeTarget" in run.trace_bytes
    assert b"inject ReintegrateTarget" in run.trace_bytes
    assert b"REBUILDING" in run.trace_bytes
    assert b"replica consistency ok" in run.trace_bytes
    assert run.consistency["pools"] >= 1
    assert run.consistency["groups"] >= 1
