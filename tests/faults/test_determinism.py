"""Determinism properties: the foundation the whole chaos suite rests on.

FoundationDB-style simulation testing is only as good as its
reproducibility: a failing seed must replay the identical execution.
These tests pin that contract at three levels — the event-heap FIFO
tie-break in ``sim.core``, byte-identical chaos traces, and exact
reproduction of IOR figures.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import small_cluster
from repro.ior import IorParams, run_ior
from repro.sim.core import Simulator
from repro.units import KiB

from tests.faults.harness import (
    run_random_kv_chaos,
    run_rp2g1_partition_chaos,
)

pytestmark = pytest.mark.chaos


# --------------------------------------------------------------- sim.core
@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(
        st.sampled_from([0.0, 1e-6, 2e-6, 1e-3, 1.0]),
        min_size=1,
        max_size=24,
    )
)
def test_event_heap_fifo_tie_break(delays):
    """Events scheduled for the same instant run in scheduling order —
    the invariant that makes every other test here meaningful."""

    def run_once():
        sim = Simulator()
        order = []
        for i, delay in enumerate(delays):
            sim.schedule(delay, order.append, (delay, i))
        sim.run()
        return order

    first = run_once()
    # (delay, insertion-index) tuples: lexicographic sort IS the
    # FIFO-within-timestamp contract.
    assert first == sorted((d, i) for i, d in enumerate(delays))
    assert run_once() == first


# ----------------------------------------------------------- chaos traces
def test_same_seed_same_trace_canonical(chaos_seed):
    a = run_rp2g1_partition_chaos(chaos_seed)
    b = run_rp2g1_partition_chaos(chaos_seed)
    assert a.trace_bytes == b.trace_bytes
    assert a.trace.digest() == b.trace.digest()
    assert a.summary == b.summary
    assert a.result == b.result


def test_same_seed_same_trace_random_schedule(chaos_seed):
    a = run_random_kv_chaos(chaos_seed)
    b = run_random_kv_chaos(chaos_seed)
    assert a.trace_bytes == b.trace_bytes
    assert a.summary == b.summary


def test_different_seed_different_trace():
    a = run_rp2g1_partition_chaos(0xDA05)
    b = run_rp2g1_partition_chaos(0xDA06)
    # Boot timing, elections and fault timestamps are all seed-driven;
    # two seeds agreeing byte-for-byte would mean the seed is ignored.
    assert a.trace_bytes != b.trace_bytes


# ------------------------------------------------------------ IOR figures
@pytest.mark.slow
def test_ior_figures_exactly_reproducible(chaos_seed):
    """The paper-reproduction figures themselves are a deterministic
    function of the seed: not close — identical."""

    def run_once():
        cluster = small_cluster(
            server_nodes=2, client_nodes=2, seed=chaos_seed
        )
        params = IorParams(
            api="DFS",
            block_size=256 * KiB,
            transfer_size=64 * KiB,
            segments=1,
        )
        result = run_ior(cluster, params, ppn=2)
        return (result.max_write_bw, result.max_read_bw)

    assert run_once() == run_once()


@pytest.mark.slow
def test_ior_figures_identical_with_tracing_on(chaos_seed):
    """Observability must be a pure observer: spans and metrics never
    schedule events, never yield, and draw from dedicated RNG streams,
    so the same seed yields byte-identical figures traced or untraced."""

    def run_once(observe: bool):
        cluster = small_cluster(
            server_nodes=2, client_nodes=2, seed=chaos_seed
        )
        if observe:
            tracer, metrics = cluster.observe()
            assert tracer is cluster.sim.tracer
            assert metrics is cluster.sim.metrics
        params = IorParams(
            api="DFS",
            block_size=256 * KiB,
            transfer_size=64 * KiB,
            segments=1,
        )
        result = run_ior(cluster, params, ppn=2)
        return (result.max_write_bw, result.max_read_bw)

    assert run_once(observe=False) == run_once(observe=True)
