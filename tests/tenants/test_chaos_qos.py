"""Chaos serving: per-tenant QoS vs. a rebuild-induced noisy neighbour.

The acceptance scenario for the tenants subsystem: three hog tenants
stream large bulk jobs while one latency-sensitive tenant issues small
requests, and mid-run a permanent target exclusion kicks off a rebuild
that competes for the same weak engine. With QoS *off* the hogs (plus
rebuild traffic) saturate the target and push the light tenant's p99
through its SLO; with QoS *on* the same token-bucket family that paces
the rebuild caps each hog at 2 MiB/s and the light tenant's tail stays
bounded — same fleet, same seed, same fault schedule.

The cluster is deliberately tiny (one 200 MB/s target per engine) so
that contention is visible: on default hardware the fair-sharing flow
solver absorbs this fleet without measurable queueing.
"""

import json

import pytest

from repro.cluster import build_cluster
from repro.faults import ExcludeTarget, FaultSchedule
from repro.hardware.specs import EngineSpec, FabricSpec
from repro.tenants import (
    BulkWork,
    Dispatcher,
    PoissonArrivals,
    ServingConfig,
    TenantSpec,
    build_report,
)
from repro.units import GiB, KiB, MiB

pytestmark = pytest.mark.chaos

#: SLO bound on the light tenant's windowed p99. Sits between the two
#: regimes: QoS-on keeps the exact p99 in the (16.8ms, 33.6ms] latency
#: bucket, QoS-off pushes it into (33.6ms, 67.1ms].
SLO_BOUND = 0.05
SLO_RULE = (
    f"tenant.request.latency{{tenant=light}} p99 < {SLO_BOUND} over 2 windows"
)


def _weak_cluster():
    return build_cluster(
        server_nodes=2,
        client_nodes=2,
        engine_spec=EngineSpec(
            targets=1, target_write_bw=200e6, target_read_bw=400e6
        ),
        fabric_spec=FabricSpec(rpc_timeout=0.5),
        capacity_per_target=4 * GiB,
        seed=77,
    )


def _fleet():
    hogs = [
        TenantSpec(
            id=f"hog{i}",
            workload=BulkWork(nbytes=16 * MiB, xfer=1 * MiB),
            rate=16.0,
            qos_bw=2 * MiB,
            qos_burst=2 * MiB,
        )
        for i in range(3)
    ]
    light = TenantSpec(
        id="light",
        workload=BulkWork(nbytes=512 * KiB, xfer=512 * KiB),
        rate=5.0,
        qos_bw=1e12,  # effectively uncapped even when QoS is enabled
    )
    return hogs, light


def _run(qos_enabled):
    cluster = _weak_cluster()
    cluster.observe(
        tracing=False,
        metrics=True,
        timeline_interval=0.5,
        slo_rules=[SLO_RULE],
    )
    hogs, light = _fleet()
    config = ServingConfig(
        duration=6.0,
        qos_enabled=qos_enabled,
        max_inflight=32,
        max_inflight_per_tenant=4,
        aio_depth=16,
        n_containers=2,
        oclass="RP_2G1",  # replicated, so the exclusion triggers rebuild
    )
    dispatcher = Dispatcher(
        cluster, hogs + [light], PoissonArrivals(cluster.rng), config
    )
    cluster.inject(
        FaultSchedule().at(2.0, ExcludeTarget(tid=0, permanent=True))
    )
    result = cluster.run(dispatcher.serve())
    report = build_report(result, store=cluster.sim.timeline.store)
    rebuild_bytes = sum(
        counter.value
        for name, counter in cluster.sim.metrics.counters.items()
        if name.startswith("rebuild.bytes_moved")
    )
    return report, rebuild_bytes


def test_qos_off_noisy_neighbours_breach_the_light_tenant_slo():
    report, rebuild_bytes = _run(qos_enabled=False)
    light = report["tenants"]["light"]
    assert light["completed"] > 20 and light["failed"] == 0
    # the exclusion really cost something: data moved during the run
    assert rebuild_bytes > 100 * MiB
    # unpaced hogs push the light tenant past its p99 bound...
    assert light["latency"]["p99"] > SLO_BOUND * 0.8
    # ...and the SLO engine flags exactly the violating tenant
    assert set(report["slo_breaches"]) == {"light"}
    assert report["tenants"]["light"]["slo_breaches"] >= 1
    for breach in report["slo_breaches"]["light"]:
        assert breach["metric"] == "tenant.request.latency{tenant=light}"


def test_qos_on_keeps_the_light_tenant_tail_bounded():
    report, rebuild_bytes = _run(qos_enabled=True)
    light = report["tenants"]["light"]
    assert light["completed"] > 20 and light["failed"] == 0
    assert rebuild_bytes > 0  # the fault still fired and rebuilt
    # token buckets paced the hogs: they spent real time waiting...
    for i in range(3):
        assert report["tenants"][f"hog{i}"]["qos_waited"] > 0.0
    # ...and the light tenant's exact p99 stays under the SLO bound
    assert light["latency"]["p99"] < SLO_BOUND
    assert report["slo_breaches"] == {}
    assert all(t["slo_breaches"] == 0 for t in report["tenants"].values())


def test_qos_flattens_the_hog_share_of_bytes():
    report_off, _ = _run(qos_enabled=False)
    report_on, _ = _run(qos_enabled=True)
    hog_off = sum(report_off["tenants"][f"hog{i}"]["bytes"] for i in range(3))
    hog_on = sum(report_on["tenants"][f"hog{i}"]["bytes"] for i in range(3))
    # open loop: the offered load is identical, the *served* load is not
    assert report_off["tenants"]["light"]["arrivals"] == \
        report_on["tenants"]["light"]["arrivals"]
    assert hog_on < hog_off / 2
    # capping the hogs improves byte-share fairness for the fleet
    assert report_on["fairness_bytes"] > report_off["fairness_bytes"] * 0.9


def test_chaos_run_is_deterministic():
    report1, rebuild1 = _run(qos_enabled=False)
    report2, rebuild2 = _run(qos_enabled=False)
    assert rebuild1 == rebuild2
    assert json.dumps(report1, sort_keys=True) == \
        json.dumps(report2, sort_keys=True)
