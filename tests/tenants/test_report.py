"""Report math: exact quantiles, Jain fairness, breach grouping."""

import pytest

from repro.tenants import (
    breaches_by_tenant,
    build_report,
    exact_quantile,
    jain_fairness,
    render_report,
)


def test_exact_quantile_nearest_rank():
    vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    assert exact_quantile(vals, 0.50) == 5.0
    assert exact_quantile(vals, 0.99) == 10.0
    assert exact_quantile(vals, 0.0) == 1.0
    assert exact_quantile([], 0.99) == 0.0
    assert exact_quantile([7.0], 0.999) == 7.0


def test_exact_quantile_p999_needs_a_big_sample():
    vals = sorted(float(i) for i in range(1, 2001))
    assert exact_quantile(vals, 0.999) == 1998.0  # ceil(.999*2000) = 1998
    assert exact_quantile(vals, 0.999) < vals[-1]


def test_jain_fairness_bounds():
    assert jain_fairness([5.0, 5.0, 5.0, 5.0]) == pytest.approx(1.0)
    # one tenant hogs everything: J -> 1/n
    assert jain_fairness([12.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
    assert jain_fairness([]) == 1.0
    assert jain_fairness([0.0, 0.0]) == 1.0
    skewed = jain_fairness([10.0, 1.0, 1.0, 1.0])
    assert 0.25 < skewed < 1.0


class _Breach:
    def __init__(self, metric, time=1.0):
        self.metric = metric
        self.time = time
        self.rule = f"{metric} p99 < 1 over 1 windows"

    def to_json(self):
        return {"metric": self.metric, "time": self.time, "rule": self.rule}


class _Store:
    def __init__(self, breaches):
        self.breaches = breaches


def test_breaches_group_by_tenant_label():
    store = _Store([
        _Breach("tenant.request.latency{tenant=t1}"),
        _Breach("tenant.request.latency{tenant=t1}", time=2.0),
        _Breach("tenant.request.latency{tenant=t2}"),
        _Breach("fabric.xfer.bytes"),  # fleet-level rule, no label
    ])
    grouped = breaches_by_tenant(store)
    assert sorted(grouped) == ["", "t1", "t2"]
    assert len(grouped["t1"]) == 2
    assert len(grouped["t2"]) == 1
    assert breaches_by_tenant(None) == {}


def _result(latencies_by_tenant, duration=10.0):
    tenants = {}
    for tid, lats in latencies_by_tenant.items():
        tenants[tid] = {
            "arrivals": len(lats), "admitted": len(lats), "rejected": 0,
            "completed": len(lats), "failed": 0,
            "bytes": 1000.0 * len(lats), "latencies": list(lats),
            "kind": "bulk", "qos_waited": 0.0,
        }
    return {
        "tenants": tenants,
        "admission": {"admitted": 0, "rejected": {}},
        "config": {"duration": duration, "qos_enabled": False,
                   "n_tenants": len(tenants)},
        "end_time": duration,
    }


def test_build_report_aggregates_and_per_tenant_tails():
    result = _result({"a": [0.1, 0.2, 0.3], "b": [0.4]})
    report = build_report(result)
    assert report["totals"]["completed"] == 4
    assert report["latency"]["p50"] == 0.2
    assert report["latency"]["p999"] == 0.4
    assert report["tenants"]["a"]["latency"]["p99"] == 0.3
    assert report["tenants"]["b"]["latency"]["p99"] == 0.4
    assert report["fairness_bytes"] == pytest.approx(
        jain_fairness([3000.0, 1000.0]))
    assert report["throughput"] == pytest.approx(400.0)
    assert report["rejection_rate"] == 0.0


def test_build_report_excludes_idle_tenants_from_fairness():
    result = _result({"a": [0.1], "idle": []})
    report = build_report(result)
    # idle offered no load -> fairness over active tenants only
    assert report["fairness_bytes"] == pytest.approx(1.0)


def test_render_report_is_printable():
    result = _result({"a": [0.1, 0.2], "b": [0.3]})
    store = _Store([_Breach("tenant.request.latency{tenant=a}")])
    text = render_report(build_report(result, store=store))
    assert "fairness" in text
    assert "SLO breaches: 1" in text
    assert "a" in text and "p99" in text
