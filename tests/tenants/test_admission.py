"""Admission control: bounds, typed rejection, release accounting."""

import pytest

from repro.errors import DerBusy, DerInval
from repro.tenants import (
    REASON_GLOBAL,
    REASON_TENANT,
    AdmissionController,
    TenantRejected,
)


def test_per_tenant_limit_binds_first():
    adm = AdmissionController(max_inflight=10, max_inflight_per_tenant=2)
    adm.admit("a")
    adm.admit("a")
    with pytest.raises(TenantRejected) as exc:
        adm.admit("a")
    assert exc.value.reason == REASON_TENANT
    assert exc.value.tenant_id == "a"
    assert exc.value.limit == 2
    # another tenant still gets in
    adm.admit("b")
    assert adm.inflight == 3
    assert adm.rejected == {REASON_GLOBAL: 0, REASON_TENANT: 1}


def test_global_limit_rejects_across_tenants():
    adm = AdmissionController(max_inflight=3, max_inflight_per_tenant=2)
    adm.admit("a")
    adm.admit("a")
    adm.admit("b")
    with pytest.raises(TenantRejected) as exc:
        adm.admit("c")
    assert exc.value.reason == REASON_GLOBAL
    assert adm.rejected[REASON_GLOBAL] == 1


def test_rejection_is_a_der_busy():
    adm = AdmissionController(max_inflight=1, max_inflight_per_tenant=1)
    adm.admit("a")
    with pytest.raises(DerBusy):  # facade-level handlers see DER_BUSY
        adm.admit("b")


def test_release_reopens_the_window():
    adm = AdmissionController(max_inflight=1, max_inflight_per_tenant=1)
    adm.admit("a")
    adm.release("a")
    adm.admit("b")  # no longer rejected
    assert adm.inflight == 1
    assert adm.inflight_by_tenant == {"b": 1}
    assert adm.admitted == 2


def test_release_without_admit_is_an_error():
    adm = AdmissionController()
    with pytest.raises(DerInval):
        adm.release("ghost")
    adm.admit("a")
    adm.release("a")
    with pytest.raises(DerInval):
        adm.release("a")


def test_limits_must_be_positive():
    with pytest.raises(DerInval):
        AdmissionController(max_inflight=0)
    with pytest.raises(DerInval):
        AdmissionController(max_inflight_per_tenant=0)
