"""End-to-end serving runs: dispatch, admission, QoS, determinism.

The 1000-tenant case is the subsystem's acceptance bar: a seeded
open-loop run over the full mixed fleet must complete, produce exact
per-tenant p99/p999 tails and a fairness index, and be bitwise
deterministic — identical report JSON *and* identical timeline JSON
across two fresh processes-worth of state.
"""

import json

import pytest

from repro.cluster import small_cluster
from repro.tenants import (
    BulkWork,
    Dispatcher,
    KvBurstWork,
    MetaStormWork,
    PoissonArrivals,
    ServingConfig,
    TenantSpec,
    TraceArrivals,
    build_report,
    make_tenants,
)
from repro.units import KiB, MiB

#: Small, fast workload mix used throughout these tests.
FAST_MIX = (
    (BulkWork(nbytes=64 * KiB, xfer=32 * KiB), 2),
    (KvBurstWork(n_ops=4), 1),
    (MetaStormWork(n_ops=2), 1),
)


def _serve(tenants, config, observe=True, slo_rules=None, cluster=None):
    cluster = cluster or small_cluster()
    if observe:
        cluster.observe(tracing=False, metrics=True,
                        timeline_interval=1.0, slo_rules=slo_rules)
    dispatcher = Dispatcher(
        cluster, tenants, PoissonArrivals(cluster.rng), config
    )
    result = cluster.run(dispatcher.serve())
    return cluster, dispatcher, result


# ------------------------------------------------------------------ plumbing
def test_serving_accounting_is_consistent():
    fleet = make_tenants(8, rate=2.0, mix=FAST_MIX)
    cluster, dispatcher, result = _serve(
        fleet, ServingConfig(duration=5.0)
    )
    totals = {k: sum(t[k] for t in result["tenants"].values())
              for k in ("arrivals", "admitted", "rejected",
                        "completed", "failed")}
    assert totals["arrivals"] > 0
    assert totals["arrivals"] == totals["admitted"] + totals["rejected"]
    # the run drains: every admitted job completed or failed
    assert totals["admitted"] == totals["completed"] + totals["failed"]
    assert dispatcher.admission.inflight == 0
    assert result["end_time"] >= 5.0


def test_labeled_metrics_are_emitted():
    fleet = make_tenants(4, rate=2.0, mix=FAST_MIX)
    cluster, _, result = _serve(fleet, ServingConfig(duration=3.0))
    registry = cluster.sim.metrics
    names = set(registry.counters)
    assert "tenant.arrivals" in names
    assert "tenant.completions" in names
    for spec in fleet:
        if result["tenants"][spec.id]["arrivals"]:
            assert f"tenant.arrivals{{tenant={spec.id}}}" in names
    # per-tenant latency histograms feed the timeline/SLO pipeline
    assert "tenant.request.latency" in registry.histograms
    total = registry.counters["tenant.arrivals"].value
    assert total == sum(t["arrivals"] for t in result["tenants"].values())
    # fleet-wide inflight gauge came back to zero
    assert registry.gauges["tenant.inflight"].value == 0


def test_serving_works_without_observability():
    fleet = make_tenants(4, rate=2.0, mix=FAST_MIX)
    _, _, result = _serve(fleet, ServingConfig(duration=3.0), observe=False)
    report = build_report(result)
    assert report["totals"]["completed"] > 0
    assert report["latency"]["p99"] > 0


def test_tight_admission_window_sheds_load():
    # a tight QoS budget stretches each job to ~1 s, so 4 arrivals/s per
    # tenant pile onto a 1-deep per-tenant window and must be shed
    fleet = make_tenants(6, rate=4.0, mix=FAST_MIX)
    cluster, dispatcher, result = _serve(
        fleet,
        ServingConfig(duration=4.0, max_inflight=4,
                      max_inflight_per_tenant=1,
                      qos_enabled=True, default_qos_bw=64 * KiB),
    )
    report = build_report(result)
    assert report["totals"]["rejected"] > 0
    assert report["rejection_rate"] > 0
    by_reason = dispatcher.admission.rejected
    assert sum(by_reason.values()) == report["totals"]["rejected"]
    # rejected arrivals show up in the labeled rejection counters
    registry = cluster.sim.metrics
    assert registry.counters["tenant.rejections"].value == \
        report["totals"]["rejected"]
    # load shedding is not a failure: completed jobs all succeeded
    assert report["totals"]["failed"] == 0


def test_trace_arrivals_dispatch_exactly():
    cluster = small_cluster()
    fleet = [TenantSpec(id="a", workload=FAST_MIX[0][0]),
             TenantSpec(id="b", workload=FAST_MIX[0][0])]
    trace = TraceArrivals([(0.5, "a"), (1.0, "b"), (1.5, "a"),
                           (99.0, "a")])  # beyond the horizon: dropped
    dispatcher = Dispatcher(
        cluster, fleet, trace, ServingConfig(duration=2.0)
    )
    result = cluster.run(dispatcher.serve())
    assert result["tenants"]["a"]["arrivals"] == 2
    assert result["tenants"]["b"]["arrivals"] == 1
    assert result["tenants"]["a"]["completed"] == 2


# ------------------------------------------------------------------------ QoS
def test_qos_budget_throttles_a_tenant():
    work = BulkWork(nbytes=256 * KiB, xfer=64 * KiB)
    capped = TenantSpec(id="capped", workload=work, rate=4.0,
                        qos_bw=256 * KiB)  # ~1 job/s of budget
    free = TenantSpec(id="free", workload=work, rate=4.0)
    _, dispatcher, result = _serve(
        [capped, free],
        ServingConfig(duration=6.0, qos_enabled=True,
                      default_qos_bw=64 * MiB),
        observe=False,
    )
    report = build_report(result)
    t_capped, t_free = report["tenants"]["capped"], report["tenants"]["free"]
    # the capped tenant spent real time waiting on tokens...
    assert t_capped["qos_waited"] > 0.0
    assert t_free["qos_waited"] == 0.0
    # ...which shows up as higher request latency
    assert t_capped["latency"]["p99"] > 4 * t_free["latency"]["p99"]


def test_qos_off_and_on_share_the_code_path():
    fleet = make_tenants(4, rate=2.0, mix=FAST_MIX)
    _, _, r_off = _serve(fleet, ServingConfig(duration=3.0),
                         observe=False)
    _, _, r_on = _serve(fleet, ServingConfig(duration=3.0,
                                             qos_enabled=True,
                                             default_qos_bw=64 * MiB),
                        observe=False)
    # same seed, same arrivals either way (open loop is open loop)
    for tid in r_off["tenants"]:
        assert r_off["tenants"][tid]["arrivals"] == \
            r_on["tenants"][tid]["arrivals"]


# -------------------------------------------------------------- determinism
def _thousand_tenant_run():
    fleet = make_tenants(1000, rate=0.2, mix=FAST_MIX)
    cluster, dispatcher, result = _serve(
        fleet,
        ServingConfig(duration=5.0, max_inflight=128,
                      max_inflight_per_tenant=2),
    )
    report = build_report(result, store=cluster.sim.timeline.store)
    timeline = cluster.sim.timeline.store.to_json()
    return report, timeline


def test_thousand_tenants_deterministic_with_tails_and_fairness():
    report1, timeline1 = _thousand_tenant_run()
    report2, timeline2 = _thousand_tenant_run()
    # bitwise-identical outputs across two fresh runs
    assert json.dumps(report1, sort_keys=True) == \
        json.dumps(report2, sort_keys=True)
    assert json.dumps(timeline1, sort_keys=True) == \
        json.dumps(timeline2, sort_keys=True)
    # the full fleet served: ~rate*duration*n arrivals, nothing stuck
    totals = report1["totals"]
    assert totals["arrivals"] > 600
    assert totals["admitted"] == totals["completed"] + totals["failed"]
    assert totals["failed"] == 0
    # per-tenant exact tails are reported for every active tenant
    active = [t for t in report1["tenants"].values() if t["completed"]]
    assert len(active) > 500
    for t in active:
        assert t["latency"]["p99"] > 0
        assert t["latency"]["p999"] >= t["latency"]["p99"]
    assert report1["latency"]["p999"] >= report1["latency"]["p99"] > 0
    # mixed workloads are deliberately unequal in bytes; the index is
    # still a meaningful scalar in (0, 1]
    assert 0.0 < report1["fairness_bytes"] <= 1.0
