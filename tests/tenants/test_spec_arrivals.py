"""Tenant specs and open-loop arrival processes."""

import json

import pytest

from repro.errors import DerInval
from repro.sim.rng import RngStreams
from repro.tenants import (
    DEFAULT_MIX,
    BulkWork,
    KvBurstWork,
    MetaStormWork,
    PoissonArrivals,
    TenantSpec,
    TraceArrivals,
    make_tenants,
    mix_by_kind,
)


# ----------------------------------------------------------------------- spec
def test_tenant_id_must_be_label_safe():
    for bad in ("", "a,b", "a=b", "a{b", "a}b", "a b"):
        with pytest.raises(DerInval):
            TenantSpec(id=bad)
    TenantSpec(id="tenant-7.prod")  # dashes and dots are fine


def test_tenant_rate_must_be_positive():
    with pytest.raises(DerInval):
        TenantSpec(id="t0", rate=0.0)


def test_make_tenants_is_deterministic_and_mixed():
    fleet = make_tenants(8)
    assert [t.id for t in fleet] == [f"t{i}" for i in range(8)]
    assert fleet == make_tenants(8)  # pure function of the arguments
    kinds = mix_by_kind(fleet)
    # DEFAULT_MIX deals bulk,bulk,kv,meta round-robin
    assert kinds == {"bulk": 4, "kv": 2, "meta": 2}


def test_make_tenants_pads_ids_for_big_fleets():
    fleet = make_tenants(1000)
    assert fleet[0].id == "t000" and fleet[999].id == "t999"
    assert len({t.id for t in fleet}) == 1000


def test_make_tenants_rejects_bad_inputs():
    with pytest.raises(DerInval):
        make_tenants(0)
    with pytest.raises(DerInval):
        make_tenants(4, mix=())
    with pytest.raises(DerInval):
        make_tenants(4, mix=((BulkWork(), 0),))


def test_workload_qos_bytes():
    assert BulkWork(nbytes=100, read_back=True).qos_bytes == 200
    assert KvBurstWork(n_ops=4, value_bytes=10).qos_bytes == 40
    assert MetaStormWork(n_ops=2).qos_bytes > 0
    assert {w.kind for w, _ in DEFAULT_MIX} == {"bulk", "kv", "meta"}


# ------------------------------------------------------------------- poisson
def test_poisson_arrivals_are_seeded_and_sorted():
    fleet = make_tenants(3, rate=5.0)
    times_a = PoissonArrivals(RngStreams(seed=7)).times_for(fleet[0], 10.0)
    times_b = PoissonArrivals(RngStreams(seed=7)).times_for(fleet[0], 10.0)
    assert times_a == times_b
    assert times_a == sorted(times_a)
    assert all(0 <= t < 10.0 for t in times_a)
    # roughly rate * horizon arrivals (Poisson, generous bounds)
    assert 15 <= len(times_a) <= 120


def test_poisson_streams_are_independent_per_tenant():
    """Adding tenants to a fleet never perturbs an existing tenant's
    arrival times — streams are named by tenant id, not draw order."""
    t5 = TenantSpec(id="t5", rate=3.0)
    t6 = TenantSpec(id="t6", rate=3.0)

    def times(fleet, tenant):
        # fresh stream family, but draw the *other* fleet members first:
        # draw order must not matter, only the tenant's own stream.
        arr = PoissonArrivals(RngStreams(seed=42))
        for other in fleet:
            if other.id != tenant.id:
                arr.times_for(other, 8.0)
        return arr.times_for(tenant, 8.0)

    assert times([t5], t5) == times([t6, t5], t5)
    assert times([t6], t6) == times([t5, t6], t6)
    # distinct tenants draw distinct schedules
    assert times([t5], t5) != times([t6], t6)


def test_poisson_rate_scales_arrival_counts():
    arr = PoissonArrivals(RngStreams(seed=3))
    slow = TenantSpec(id="slow", rate=1.0)
    fast = TenantSpec(id="fast", rate=20.0)
    assert len(arr.times_for(fast, 50.0)) > 5 * len(arr.times_for(slow, 50.0))


# --------------------------------------------------------------------- trace
def test_trace_arrivals_filter_and_sort():
    trace = TraceArrivals([(3.0, "b"), (1.0, "a"), (2.0, "a"), (9.0, "a")])
    a = TenantSpec(id="a")
    assert trace.times_for(a, horizon=5.0) == [1.0, 2.0]
    assert trace.times_for(TenantSpec(id="zzz"), horizon=5.0) == []
    assert trace.entries[0] == (1.0, "a")


def test_trace_rejects_negative_times():
    with pytest.raises(DerInval):
        TraceArrivals([(-0.5, "a")])


def test_trace_from_file_both_shapes(tmp_path):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(
        [[0.5, "t0"], {"t": 1.5, "tenant": "t1"}, [1.0, "t0"]]
    ))
    trace = TraceArrivals.from_file(str(path))
    assert trace.times_for(TenantSpec(id="t0"), 10.0) == [0.5, 1.0]
    assert trace.times_for(TenantSpec(id="t1"), 10.0) == [1.5]


def test_trace_from_file_rejects_malformed(tmp_path):
    for doc in ('{"not": "a list"}', '[[1.0]]', '[{"t": 1.0}]', '[5]'):
        path = tmp_path / "bad.json"
        path.write_text(doc)
        with pytest.raises(DerInval):
            TraceArrivals.from_file(str(path))
