"""mdtest tests: correctness and the MDS-vs-distributed-KV contrast."""

import pytest

from repro.cluster import build_lustre_cluster, small_cluster
from repro.hardware.specs import EngineSpec
from repro.mdtest import MdtestParams, run_mdtest


def test_mdtest_on_daos_reports_all_phases():
    cluster = small_cluster(server_nodes=2, client_nodes=2,
                            targets_per_engine=2)
    params = MdtestParams(files_per_rank=16)
    result = run_mdtest(cluster, params, ppn=2)
    assert set(result.rates) == {"create", "stat", "remove"}
    assert all(rate > 0 for rate in result.rates.values())
    assert result.nprocs == 4


def test_mdtest_with_tiny_writes():
    cluster = small_cluster(server_nodes=2, client_nodes=1,
                            targets_per_engine=2)
    params = MdtestParams(files_per_rank=8, write_bytes=4096)
    result = run_mdtest(cluster, params, ppn=2)
    assert result.rates["create"] > 0


def test_mdtest_on_lustre_and_daos_scales_differently():
    """More clients: DAOS metadata rate keeps growing (distributed KV),
    the single Lustre MDS saturates."""
    files = 32

    def daos_rate(nodes):
        cluster = small_cluster(server_nodes=2, client_nodes=nodes,
                                targets_per_engine=4)
        result = run_mdtest(
            cluster, MdtestParams(files_per_rank=files), ppn=8
        )
        return result.rates["create"]

    def lustre_rate(nodes):
        cluster = build_lustre_cluster(
            server_nodes=2, client_nodes=nodes,
            engine_spec=EngineSpec(targets=4),
        )
        result = run_mdtest(
            cluster, MdtestParams(files_per_rank=files), ppn=8
        )
        return result.rates["create"]

    daos_speedup = daos_rate(4) / daos_rate(1)
    lustre_speedup = lustre_rate(4) / lustre_rate(1)
    assert daos_speedup > lustre_speedup
