"""End-to-end async pipelining through IOR (``aio_queue_depth``).

Acceptance bars from the event-queue work:

- depth 1 is *byte-identical* to the blocking loop — the pinned DFS FPP
  seed figure must come out bit-exact through the async machinery;
- any depth is deterministic: same seed, same depth => identical
  bandwidths, including reap order (checked via verify which consumes
  results at reap time);
- depth >= 4 measurably improves the fig-1 DFS write point at low
  client counts (the pipelining payoff the knob exists for).
"""

import pytest

from repro.cluster import nextgenio
from repro.ior import IorParams, run_ior

#: the (DFS, file_per_proc) seed figure pinned in
#: tests/cache/test_cache_determinism.py — same cluster, same params
DFS_FPP_SEED = (6142348807.511658, 4306533837.826945)


def run_point(api="DFS", depth=0, verify=False, ppn=4):
    cluster = nextgenio(client_nodes=1)
    params = IorParams(
        api=api,
        file_per_proc=True,
        oclass="SX",
        block_size="4m",
        transfer_size="1m",
        aio_queue_depth=depth,
        verify=verify,
    )
    result = run_ior(cluster, params, ppn=ppn)
    return result


def test_depth_one_byte_identical_to_blocking_seed_figure():
    result = run_point(depth=1)
    assert (result.max_write_bw, result.max_read_bw) == DFS_FPP_SEED


def test_depth_one_matches_blocking_daos_api():
    blocking = run_point(api="DAOS", depth=0)
    async_one = run_point(api="DAOS", depth=1)
    assert (blocking.max_write_bw, blocking.max_read_bw) == (
        async_one.max_write_bw,
        async_one.max_read_bw,
    )


@pytest.mark.parametrize("api", ["DFS", "DAOS"])
def test_depth_eight_deterministic(api):
    first = run_point(api=api, depth=8, verify=True)
    second = run_point(api=api, depth=8, verify=True)
    assert (first.max_write_bw, first.max_read_bw) == (
        second.max_write_bw,
        second.max_read_bw,
    )
    assert first.verify_errors == 0
    assert second.verify_errors == 0


def test_depth_four_improves_dfs_fpp_write_bandwidth():
    blocking = run_point(depth=0)
    pipelined = run_point(depth=4)
    assert pipelined.max_write_bw > 1.2 * blocking.max_write_bw


def test_verification_passes_at_depth():
    result = run_point(depth=4, verify=True)
    assert result.verify_errors == 0


def test_blocking_backends_reject_deep_queue():
    with pytest.raises(ValueError):
        IorParams(api="POSIX", aio_queue_depth=4)


def test_depth_one_on_blocking_backend_falls_back():
    # depth 1 is legal everywhere; non-async backends keep the classic
    # loop, which depth 1 is defined to be equivalent to anyway
    result = run_point(api="POSIX", depth=1)
    assert result.max_write_bw > 0
