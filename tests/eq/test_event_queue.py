"""Unit tests for the event/event-queue model (``repro.daos.eq``).

Pure-simulator tests: operations are plain task generators with known
delays, so lifecycle, windowing and reap-order claims are checked
without booting a storage stack.
"""

import pytest

from repro.daos.eq import (
    EV_ABORTED,
    EV_COMPLETED,
    EV_RUNNING,
    EventQueue,
)
from repro.errors import DerBusy, DerCanceled, DerInval
from repro.sim import Simulator


def op(sim, delay, value=None, record=None):
    """A fake data-plane op: sleep ``delay``, optionally log, return."""

    def gen():
        yield delay
        if record is not None:
            record.append((sim.now, value))
        return value

    return gen()


def run_task(sim, gen):
    task = sim.spawn(gen)
    sim.run()
    assert task.done
    if task.error is not None:
        raise task.error
    return task.result


# ---------------------------------------------------------------- lifecycle
def test_launch_completes_and_holds_result():
    sim = Simulator()
    eq = EventQueue(sim)
    event = eq.launch(op(sim, 1.5, "payload"), name="w0")
    assert event.state == EV_RUNNING
    assert not event.done
    with pytest.raises(DerBusy):
        event.result
    sim.run()
    assert event.state == EV_COMPLETED
    assert event.result == "payload"
    assert event.submit_time == 0.0
    assert event.complete_time == 1.5
    assert event.elapsed == 1.5


def test_test_reaps_a_single_event():
    sim = Simulator()
    eq = EventQueue(sim)
    event = eq.launch(op(sim, 1.0))
    assert eq.test(event) is False
    sim.run()
    assert eq.n_completed == 1
    assert eq.test(event) is True
    assert eq.n_completed == 0  # reaped
    assert eq.test(event) is True  # idempotent once done


def test_poll_reaps_in_completion_order():
    sim = Simulator()
    eq = EventQueue(sim)
    slow = eq.launch(op(sim, 3.0, "slow"))
    fast = eq.launch(op(sim, 1.0, "fast"))
    mid = eq.launch(op(sim, 2.0, "mid"))

    def reaper():
        events = yield from eq.poll(min_events=3)
        return events

    reaped = run_task(sim, reaper())
    assert reaped == [fast, mid, slow]
    assert [e.result for e in reaped] == ["fast", "mid", "slow"]


def test_poll_min_events_waits_only_for_that_many():
    sim = Simulator()
    eq = EventQueue(sim)
    eq.launch(op(sim, 1.0))
    eq.launch(op(sim, 50.0))

    def reaper():
        events = yield from eq.poll(min_events=1)
        return sim.now, len(events)

    now, n = run_task(sim, reaper())
    assert (now, n) == (1.0, 1)


def test_error_surfaces_on_result_not_at_launch():
    sim = Simulator()
    eq = EventQueue(sim)

    def bad():
        yield 1.0
        raise DerInval("broken op")

    event = eq.launch(bad())
    sim.run()  # must not raise: the error is delivered via the event
    assert event.state == EV_COMPLETED
    assert isinstance(event.error, DerInval)
    with pytest.raises(DerInval):
        event.result


def test_abort_cancels_and_marks_aborted():
    sim = Simulator()
    eq = EventQueue(sim)
    record = []
    event = eq.launch(op(sim, 5.0, "x", record))
    event.abort()
    sim.run()
    assert event.state == EV_ABORTED
    assert record == []  # op never reached its completion point
    with pytest.raises(DerCanceled):
        event.result


def test_close_aborts_everything_in_flight():
    sim = Simulator()
    eq = EventQueue(sim)
    events = [eq.launch(op(sim, float(i + 1))) for i in range(4)]

    def closer():
        yield from eq.close()

    run_task(sim, closer())
    assert all(e.state == EV_ABORTED for e in events)
    assert eq.inflight == 0
    with pytest.raises(DerInval):
        eq.launch(op(sim, 1.0))


# ------------------------------------------------------------------ window
def test_submit_enforces_inflight_window():
    sim = Simulator()
    eq = EventQueue(sim, depth=2)
    peaks = []

    def submitter():
        for i in range(6):
            yield from eq.submit(op(sim, 1.0, i))
            peaks.append(eq.inflight)
        yield from eq.drain()

    run_task(sim, submitter())
    assert max(peaks) <= 2


def test_depth_one_serializes():
    sim = Simulator()
    eq = EventQueue(sim, depth=1)
    record = []

    def submitter():
        for i in range(3):
            yield from eq.submit(op(sim, 1.0, i, record))
        yield from eq.drain()

    run_task(sim, submitter())
    # one at a time: completions at 1.0, 2.0, 3.0 — the blocking cadence
    assert record == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_unbounded_depth_runs_all_concurrently():
    sim = Simulator()
    eq = EventQueue(sim)
    record = []

    def submitter():
        for i in range(3):
            yield from eq.submit(op(sim, 1.0, i, record))
        yield from eq.drain()

    run_task(sim, submitter())
    assert [t for t, _ in record] == [1.0, 1.0, 1.0]


def test_bad_depth_rejected():
    sim = Simulator()
    with pytest.raises(DerInval):
        EventQueue(sim, depth=0)


# ------------------------------------------------------------- determinism
def test_reap_order_is_seed_deterministic():
    def one_run():
        sim = Simulator()
        eq = EventQueue(sim, depth=4)
        order = []

        def submitter():
            # staggered delays so completions interleave across the window
            for i in range(12):
                yield from eq.submit(op(sim, ((i * 7) % 5 + 1) * 0.25, i))
                for e in eq.try_reap():
                    order.append((e.name, sim.now))
            for e in (yield from eq.drain()):
                order.append((e.name, sim.now))

        run_task(sim, submitter())
        return order

    assert one_run() == one_run()
