"""Every shipped example runs warning-clean and deterministically.

Examples are the de-facto API documentation, so they must stay on the
public :mod:`repro.daos.api` facade: any DeprecationWarning (deep
import, legacy positional flag) escalates to an error here via
``-W error``. ``weather_fields`` additionally pins cross-process
determinism — its field seeds once came from Python's salted ``hash()``
and changed every run.
"""

import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


def _run(script: pathlib.Path) -> str:
    env = {
        "PYTHONPATH": str(REPO / "src"),
        "PYTHONHASHSEED": "random",  # determinism must not rely on it
    }
    proc = subprocess.run(
        [sys.executable, "-W", "error", str(script)],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed under -W error:\n{proc.stderr}"
    )
    return proc.stdout


def test_examples_are_discovered():
    names = {p.name for p in EXAMPLES}
    assert "weather_fields.py" in names and len(EXAMPLES) >= 5


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs_clean_under_w_error(script):
    out = _run(script)
    assert out  # every example prints a result block


def test_weather_fields_output_is_process_deterministic():
    script = REPO / "examples" / "weather_fields.py"
    assert _run(script) == _run(script)
