"""Tests for the simulated MPI runtime and collectives."""

import operator

import pytest

from repro.errors import MpiError
from repro.hardware import ClientNode, nextgenio_node
from repro.mpi import MpiWorld
from repro.network import Fabric
from repro.sim import Simulator


def make_world(n_nodes=2, ppn=4, nprocs=None):
    sim = Simulator()
    fabric = Fabric(sim)
    nodes = [
        ClientNode(fabric, f"c{i}", nextgenio_node(server=False))
        for i in range(n_nodes)
    ]
    world = MpiWorld(sim, fabric, nodes, ppn, nprocs)
    return sim, world


def test_rank_placement_follows_ppn():
    sim, world = make_world(n_nodes=3, ppn=2)
    assert world.nprocs == 6
    assert world.node_of(0).name == "c0"
    assert world.node_of(1).name == "c0"
    assert world.node_of(2).name == "c1"
    assert world.node_of(5).name == "c2"


def test_too_many_ranks_rejected():
    sim = Simulator()
    fabric = Fabric(sim)
    nodes = [ClientNode(fabric, "c0", nextgenio_node(server=False))]
    with pytest.raises(MpiError):
        MpiWorld(sim, fabric, nodes, ppn=2, nprocs=3)


def test_barrier_synchronizes_ranks():
    sim, world = make_world()
    after = []

    def main(ctx):
        yield ctx.compute(0.001 * ctx.rank)  # staggered arrivals
        yield from ctx.barrier()
        after.append((ctx.rank, sim.now))

    world.run_to_completion(main)
    times = {t for _, t in after}
    assert len(times) == 1  # everyone leaves together
    assert times.pop() >= 0.001 * (world.nprocs - 1)


def test_bcast_delivers_root_value():
    sim, world = make_world()

    def main(ctx):
        value = yield from ctx.bcast({"n": 42} if ctx.rank == 0 else None, root=0)
        return value["n"]

    results = world.run_to_completion(main)
    assert results == [42] * world.nprocs


def test_gather_collects_in_rank_order():
    sim, world = make_world()

    def main(ctx):
        gathered = yield from ctx.gather(ctx.rank * 10, root=2)
        return gathered

    results = world.run_to_completion(main)
    assert results[2] == [r * 10 for r in range(world.nprocs)]
    assert all(results[r] is None for r in range(world.nprocs) if r != 2)


def test_allgather_everyone_gets_all():
    sim, world = make_world(n_nodes=1, ppn=3)

    def main(ctx):
        return (yield from ctx.allgather(chr(ord("a") + ctx.rank)))

    results = world.run_to_completion(main)
    assert results == [["a", "b", "c"]] * 3


def test_scatter_distributes_by_rank():
    sim, world = make_world(n_nodes=1, ppn=4)

    def main(ctx):
        values = [i * i for i in range(ctx.size)] if ctx.rank == 0 else None
        return (yield from ctx.scatter(values, root=0))

    assert world.run_to_completion(main) == [0, 1, 4, 9]


def test_scatter_wrong_length_raises():
    sim, world = make_world(n_nodes=1, ppn=2)

    def main(ctx):
        values = [1] if ctx.rank == 0 else None
        try:
            yield from ctx.scatter(values, root=0)
        except MpiError:
            return "err"
        return "ok"

    assert world.run_to_completion(main) == ["err", "err"]


def test_reduce_and_allreduce():
    sim, world = make_world(n_nodes=2, ppn=2)

    def main(ctx):
        total = yield from ctx.reduce(ctx.rank + 1, op=operator.add, root=0)
        everywhere = yield from ctx.allreduce(ctx.rank + 1, op=max)
        return (total, everywhere)

    results = world.run_to_completion(main)
    assert results[0] == (10, 4)
    assert all(r == (None, 4) for r in results[1:])


def test_alltoallv_exchanges_payloads():
    sim, world = make_world(n_nodes=1, ppn=3)

    def main(ctx):
        sendmap = {
            dst: f"{ctx.rank}->{dst}" for dst in range(ctx.size) if dst != ctx.rank
        }
        sizes = {dst: 1024 for dst in sendmap}
        received = yield from ctx.alltoallv(sendmap, sizes)
        return received

    results = world.run_to_completion(main)
    assert results[0] == {1: "1->0", 2: "2->0"}
    assert results[1] == {0: "0->1", 2: "2->1"}


def test_alltoallv_cost_scales_with_volume():
    def elapsed(nbytes):
        sim, world = make_world(n_nodes=2, ppn=1)

        def main(ctx):
            other = 1 - ctx.rank
            yield from ctx.alltoallv({other: b""}, {other: nbytes})
            return sim.now

        return max(world.run_to_completion(main))

    small = elapsed(1024)
    big = elapsed(1024 * 1024 * 128)
    assert big > small * 10


def test_point_to_point_send_recv():
    sim, world = make_world(n_nodes=1, ppn=2)

    def main(ctx):
        if ctx.rank == 0:
            ctx.send("ping", dst=1, tag=7)
            reply = yield ctx.recv(src=1, tag=8)
            return reply
        message = yield ctx.recv(src=0, tag=7)
        ctx.send(message + "-pong", dst=0, tag=8)
        yield 0.0
        return message

    results = world.run_to_completion(main)
    assert results == ["ping-pong", "ping"]


def test_collective_sequence_matching_over_many_rounds():
    sim, world = make_world(n_nodes=1, ppn=4)

    def main(ctx):
        acc = []
        for round_no in range(5):
            value = yield from ctx.allreduce(round_no * 100 + ctx.rank, op=min)
            acc.append(value)
        return acc

    results = world.run_to_completion(main)
    assert results == [[0, 100, 200, 300, 400]] * 4


def test_double_join_same_collective_is_error():
    sim, world = make_world(n_nodes=1, ppn=2)
    comm = world.comm_world
    comm._join(0, None, lambda c: 0.0)
    with pytest.raises(MpiError):
        # simulate a broken program where rank 0 calls again while the
        # matching instance is still pending and rank 1 never arrived
        comm._counters[0] = 0
        comm._join(0, None, lambda c: 0.0)
