"""Lustre filesystem integration tests."""

import pytest

from repro.cluster import build_lustre_cluster
from repro.daos.vos.payload import PatternPayload
from repro.errors import FsError
from repro.hardware.specs import EngineSpec
from repro.units import KiB, MiB


@pytest.fixture(scope="module")
def lustre():
    return build_lustre_cluster(
        server_nodes=2,
        client_nodes=2,
        engine_spec=EngineSpec(targets=2),
        stripe_count=4,
    )


def test_create_write_read_roundtrip(lustre):
    mount = lustre.mount(0)

    def go():
        f = yield from mount.open("/file", ("w", "creat"))
        yield from f.pwrite(0, b"lustre bytes")
        data = yield from f.pread(0, 64)
        yield from f.close()
        return data.materialize()

    assert lustre.run(go()) == b"lustre bytes"


def test_striping_across_osts(lustre):
    mount = lustre.mount(0)

    def go():
        f = yield from mount.open("/striped", ("w", "creat"))
        yield from f.pwrite(0, PatternPayload(seed=1, origin=0, nbytes=8 * MiB))
        pieces = f._pieces(0, 8 * MiB)
        osts = {ost.index for ost, *_ in pieces}
        back = yield from f.pread(0, 8 * MiB)
        yield from f.close()
        return osts, back

    osts, back = lustre.run(go())
    assert len(osts) == 4  # default stripe count
    assert back == PatternPayload(seed=1, origin=0, nbytes=8 * MiB)


def test_stripe_math_object_offsets(lustre):
    mount = lustre.mount(0)

    def go():
        f = yield from mount.open("/math", ("w", "creat"))
        return f

    f = lustre.run(go())
    pieces = f._pieces(5 * MiB + 100, MiB)
    # chunk 5 -> stripe 1 (5 % 4), row 1 -> obj offset 1 MiB + 100
    ost, stripe, obj_offset, nbytes = pieces[0]
    assert stripe == 1
    assert obj_offset == MiB + 100
    assert nbytes == MiB - 100


def test_namespace_operations(lustre):
    mount = lustre.mount(1)

    def go():
        yield from mount.mkdir("/dir")
        f = yield from mount.open("/dir/a", ("w", "creat"))
        yield from f.pwrite(0, b"xyz")
        yield from f.close()
        names = yield from mount.readdir("/dir")
        st = yield from mount.stat("/dir/a")
        yield from mount.rename("/dir/a", "/dir/b")
        yield from mount.unlink("/dir/b")
        yield from mount.rmdir("/dir")
        try:
            yield from mount.stat("/dir")
        except FsError as err:
            return names, st.size, err.errno_name

    names, size, errno_name = lustre.run(go())
    assert names == ["a"] and size == 3 and errno_name == "ENOENT"


def test_open_missing_enoent(lustre):
    mount = lustre.mount(0)

    def go():
        try:
            yield from mount.open("/void")
        except FsError as err:
            return err.errno_name

    assert lustre.run(go()) == "ENOENT"


def test_truncate_preserves_prefix(lustre):
    mount = lustre.mount(0)

    def go():
        f = yield from mount.open("/trunc", ("w", "creat"))
        yield from f.pwrite(0, b"0123456789")
        yield from f.truncate(4)
        size = yield from f.size()
        data = yield from f.pread(0, 10)
        yield from f.close()
        return size, data.materialize()

    size, data = lustre.run(go())
    assert size == 4 and data == b"0123"


def test_fpp_writers_do_not_conflict(lustre):
    """File-per-process: each writer locks its own object once."""

    def writer(i):
        mount = lustre.mount(i % 2, name=f"w{i}")

        def go():
            f = yield from mount.open(f"/fpp{i}", ("w", "creat"))
            for k in range(8):
                yield from f.pwrite(k * 256 * KiB, b"d" * (256 * KiB))
            yield from f.close()

        return go()

    tasks = [lustre.sim.spawn(writer(i)) for i in range(4)]
    for task in tasks:
        lustre.sim.run_until_complete(task)
    total_revocations = sum(
        space.revocations
        for ost in lustre.fs.osts
        for space in ost.locks.values()
    )
    assert total_revocations == 0


def test_shared_file_unaligned_writers_conflict(lustre):
    """Interleaved page-sharing writers revoke each other: every byte-
    disjoint neighbour pair shares an LDLM page, so boundary conflicts
    accumulate and the object goes (and stays) contended."""
    xfer = 1_000_000  # not page aligned: neighbours share an edge page

    def precreate():
        mount = lustre.mount(0, name="pre")
        f = yield from mount.open("/shared-hard", ("w", "creat"))
        yield from f.close()

    lustre.run(precreate())

    def writer(i):
        mount = lustre.mount(i % 2, name=f"sw{i}")

        def go():
            f = yield from mount.open("/shared-hard", ("w",))
            # enough bytes per op that the writers genuinely overlap in
            # time despite the staggered MDS opens
            for k in range(6):
                offset = (k * 4 + i) * xfer  # interleaved strided
                yield from f.pwrite(offset, b"s" * xfer)
            yield from f.close()

        return go()

    tasks = [lustre.sim.spawn(writer(i)) for i in range(4)]
    for task in tasks:
        lustre.sim.run_until_complete(task)
    ino = lustre.run(_resolve_ino(lustre, "/shared-hard"))
    spaces = [
        space
        for ost in lustre.fs.osts
        for key, space in ost.locks.items()
        if key[0] == ino
    ]
    assert sum(space.revocations for space in spaces) >= 3
    assert any(space.contended for space in spaces)


def test_same_region_writers_ping_pong_every_op(lustre):
    """Two writers alternately updating one region: a revocation per op."""

    def precreate():
        mount = lustre.mount(0, name="pp-pre")
        f = yield from mount.open("/ping-pong", ("w", "creat"))
        yield from f.close()

    lustre.run(precreate())

    def writer(i):
        mount = lustre.mount(i % 2, name=f"pp{i}")

        def go():
            f = yield from mount.open("/ping-pong", ("w",))
            for k in range(12):
                yield from f.pwrite(0, b"x" * 4096)
                # think time exceeding the revocation round, so the two
                # writers keep trading the region back and forth
                yield 6e-4 + 1e-4 * i
            yield from f.close()

        return go()

    tasks = [lustre.sim.spawn(writer(i)) for i in range(2)]
    for task in tasks:
        lustre.sim.run_until_complete(task)
    ino = lustre.run(_resolve_ino(lustre, "/ping-pong"))
    revocations = sum(
        space.revocations
        for ost in lustre.fs.osts
        for key, space in ost.locks.items()
        if key[0] == ino
    )
    # Sustained mutual revocation: every hand-over of the region between
    # the two writers revokes the other's lock. The exact count depends
    # on how often the think-times interleave the writers; four
    # hand-overs across 16 ops is the deterministic floor here.
    assert revocations >= 4


def _resolve_ino(lustre, path):
    mount = lustre.mount(0, name="probe")

    def go():
        yield 0.0
        from repro.posix.vfs import normalize

        return lustre.fs.mds.resolve(normalize(path)).ino

    return go()


def test_mds_serializes_create_storm(lustre):
    """Creates from many clients queue on MDS service threads."""
    before_ops = lustre.fs.mds.ops

    def creator(i):
        mount = lustre.mount(i % 2, name=f"mk{i}")

        def go():
            f = yield from mount.open(f"/storm{i}", ("w", "creat"))
            yield from f.close()

        return go()

    start = lustre.sim.now
    tasks = [lustre.sim.spawn(creator(i)) for i in range(64)]
    for task in tasks:
        lustre.sim.run_until_complete(task)
    elapsed = lustre.sim.now - start
    assert lustre.fs.mds.ops - before_ops == 64
    # 64 creates through one MDS must take at least 64 * op_cpu / threads
    assert elapsed >= 64 * lustre.fs.mds.op_cpu / 32
