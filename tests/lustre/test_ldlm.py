"""Unit + property tests for the LDLM extent lock manager (pure logic)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lustre.ldlm import INF, PR, PW, ExtentLock, LockSpace, acquire


def run_acquire(space, owner, mode, start, end):
    """Drive the acquire() generator with zero-cost hooks; returns
    (rpc_issued, revocations_during_call)."""
    before = space.revocations

    def zero():
        return
        yield  # pragma: no cover

    def zero_revoke(_lock):
        return
        yield  # pragma: no cover

    gen = acquire(space, owner, mode, start, end, zero, zero_revoke)
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value, space.revocations - before


def test_first_lock_granted_wide():
    space = LockSpace()
    rpc, _ = run_acquire(space, "c1", PW, 100, 200)
    assert rpc is True
    assert space.holder_covers("c1", PW, 0, 10_000)  # optimistic [0, inf)
    space.check_invariants()


def test_second_acquire_is_lock_cache_hit():
    space = LockSpace()
    run_acquire(space, "c1", PW, 0, 100)
    rpc, revs = run_acquire(space, "c1", PW, 5000, 6000)
    assert rpc is False and revs == 0  # covered by the wide grant


def test_conflicting_writer_revokes():
    space = LockSpace()
    run_acquire(space, "c1", PW, 0, 100)
    rpc, revs = run_acquire(space, "c2", PW, 1000, 1100)
    assert rpc is True and revs == 1
    assert space.holder_covers("c2", PW, 1000, 1100)
    assert not space.holder_covers("c1", PW, 0, 100)
    space.check_invariants()


def test_ping_pong_counts_revocations():
    space = LockSpace()
    for i in range(10):
        owner = f"c{i % 2}"
        run_acquire(space, owner, PW, i * 100, (i + 1) * 100)
    assert space.revocations >= 9  # every alternation revokes
    space.check_invariants()


def test_readers_share():
    space = LockSpace()
    run_acquire(space, "c1", PR, 0, 100)
    rpc, revs = run_acquire(space, "c2", PR, 50, 150)
    assert revs == 0  # PR/PR compatible
    assert space.holder_covers("c1", PR, 0, 100)
    assert space.holder_covers("c2", PR, 50, 150)
    space.check_invariants()


def test_writer_revokes_readers():
    space = LockSpace()
    run_acquire(space, "c1", PR, 0, 100)
    run_acquire(space, "c2", PR, 0, 100)
    _, revs = run_acquire(space, "c3", PW, 50, 60)
    assert revs == 2
    space.check_invariants()


def test_contention_narrows_grants_so_disjoint_writers_settle():
    space = LockSpace()
    run_acquire(space, "c1", PW, 0, 4096)           # wide [0, inf)
    _, revs = run_acquire(space, "c2", PW, 8192, 12288)  # revokes c1
    assert revs == 1 and space.contended
    # After contention: exact page-rounded grants, so page-disjoint
    # writers coexist with no further revocations.
    _, revs = run_acquire(space, "c1", PW, 0, 4096)
    assert revs == 0
    assert space.holder_covers("c1", PW, 0, 4096)
    assert space.holder_covers("c2", PW, 8192, 12288)
    space.check_invariants()


def test_page_granularity_causes_unaligned_conflicts():
    # Byte-disjoint but page-sharing writers conflict forever: the
    # io500-hard collapse mechanism.
    space = LockSpace()
    run_acquire(space, "c1", PW, 0, 1000)
    run_acquire(space, "c2", PW, 5000, 6000)      # contention begins
    before = space.revocations
    run_acquire(space, "c1", PW, 1000, 2000)      # same page as c2? no...
    run_acquire(space, "c2", PW, 2000, 3000)      # page 0 region overlap
    assert space.revocations > before
    space.check_invariants()


def test_drop_owner():
    space = LockSpace()
    run_acquire(space, "c1", PW, 0, 100)
    assert space.drop_owner("c1") == 1
    assert space.drop_owner("c1") == 0
    rpc, revs = run_acquire(space, "c2", PW, 0, 10)
    assert revs == 0


def test_pw_lock_covers_pr_request():
    space = LockSpace()
    run_acquire(space, "c1", PW, 0, 100)
    rpc, _ = run_acquire(space, "c1", PR, 10, 20)
    assert rpc is False  # PW subsumes PR


@settings(max_examples=80, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 3),          # owner
            st.sampled_from([PR, PW]),  # mode
            st.integers(0, 50),         # start block
            st.integers(1, 10),         # length blocks
        ),
        max_size=60,
    )
)
def test_property_no_conflicting_overlaps_ever(ops):
    space = LockSpace()
    for owner, mode, start, length in ops:
        run_acquire(space, f"c{owner}", mode, start * 64, (start + length) * 64)
        space.check_invariants()
