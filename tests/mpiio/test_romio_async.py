"""Aggregator-side pipelining inside collective MPI-IO calls.

``aio_depth > 1`` routes each aggregator's coalesced cb_buffer chunks
through an event queue instead of the sequential loop; depths <= 1 must
keep the classic blocking behavior bit-for-bit.
"""

from repro.daos.vos.payload import PatternPayload
from repro.mpi import MpiWorld
from repro.mpiio import MpiFile, UfsDriver
from repro.units import KiB, MiB

from .conftest import make_rank_mount

BLK = MiB
CB_SMALL = 256 * KiB  # forces several chunks per aggregator


def _world(cluster):
    return MpiWorld(cluster.sim, cluster.fabric, cluster.clients, ppn=2)


def _write_main(cluster, cont_label, path, aio_depth, cb_buffer=CB_SMALL):
    def main(ctx):
        mount, _dfs = yield from make_rank_mount(cluster, cont_label, ctx)
        fh = yield from MpiFile.open(
            ctx, path, UfsDriver(mount), create=True,
            cb_buffer=cb_buffer, aio_depth=aio_depth,
        )
        pattern = PatternPayload(seed=5, origin=ctx.rank * BLK, nbytes=BLK)
        yield from ctx.barrier()
        start = ctx.sim.now
        yield from fh.write_at_all(ctx.rank * BLK, pattern)
        yield from ctx.barrier()
        elapsed = ctx.sim.now - start
        # read back another rank's block independently: pipelined writes
        # must land exactly where the sequential loop put them
        other = (ctx.rank + 1) % ctx.size
        back = yield from fh.read_at(other * BLK, BLK)
        yield from fh.close()
        ok = back == PatternPayload(seed=5, origin=other * BLK, nbytes=BLK)
        return ok, elapsed

    return main


def test_async_collective_write_content_matches_blocking(cluster, cont_label):
    results = _world(cluster).run_to_completion(
        _write_main(cluster, cont_label, "/aio-w", aio_depth=4)
    )
    assert all(ok for ok, _t in results)


def test_async_collective_read_content(cluster, cont_label):
    def main(ctx):
        mount, _dfs = yield from make_rank_mount(cluster, cont_label, ctx)
        fh = yield from MpiFile.open(
            ctx, "/aio-r", UfsDriver(mount), create=True,
            cb_buffer=CB_SMALL, aio_depth=4,
        )
        if ctx.rank == 0:
            whole = PatternPayload(seed=6, origin=0, nbytes=BLK * ctx.size)
            yield from fh.write_at(0, whole)
        yield from ctx.barrier()
        got = yield from fh.read_at_all(ctx.rank * BLK, BLK)
        yield from fh.close()
        return got == PatternPayload(seed=6, origin=ctx.rank * BLK,
                                     nbytes=BLK)

    assert all(_world(cluster).run_to_completion(main))


def test_depth_one_is_identical_to_blocking(cluster, cont_label):
    t0 = max(t for _ok, t in _world(cluster).run_to_completion(
        _write_main(cluster, cont_label, "/aio-d0", aio_depth=0)
    ))
    t1 = max(t for _ok, t in _world(cluster).run_to_completion(
        _write_main(cluster, cont_label, "/aio-d1", aio_depth=1)
    ))
    assert t0 == t1  # depths <= 1 take the verbatim sequential loop


def test_pipelining_overlaps_aggregator_chunks(cluster, cont_label):
    blocking = max(t for _ok, t in _world(cluster).run_to_completion(
        _write_main(cluster, cont_label, "/aio-seq", aio_depth=0)
    ))
    pipelined = max(t for _ok, t in _world(cluster).run_to_completion(
        _write_main(cluster, cont_label, "/aio-pipe", aio_depth=4)
    ))
    # several cb_buffer chunks per aggregator in flight at once
    assert pipelined < blocking


def test_async_runs_are_deterministic(cluster, cont_label):
    first = [t for _ok, t in _world(cluster).run_to_completion(
        _write_main(cluster, cont_label, "/aio-det-a", aio_depth=4)
    )]
    second = [t for _ok, t in _world(cluster).run_to_completion(
        _write_main(cluster, cont_label, "/aio-det-b", aio_depth=4)
    )]
    assert first == second
