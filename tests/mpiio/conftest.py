"""Shared wiring: a small DAOS cluster + MPI world + per-rank mounts."""

import pytest

from repro.cluster import small_cluster
from repro.dfs import Dfs
from repro.dfuse import DFuseMount
from repro.mpi import MpiWorld


@pytest.fixture(scope="module")
def cluster():
    return small_cluster(server_nodes=2, client_nodes=2, targets_per_engine=2)


@pytest.fixture(scope="module")
def cont_label(cluster):
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("mpiio-cont", oclass="S2")
        yield from Dfs.mount(cont)  # pre-format so rank mounts are clean
        return "mpiio-cont"

    return cluster.run(setup())


@pytest.fixture()
def world(cluster):
    return MpiWorld(cluster.sim, cluster.fabric, cluster.clients, ppn=2)


def make_rank_mount(cluster, cont_label, ctx):
    """Task helper: per-rank DFuse mount over a fresh client context."""
    client = cluster.new_client(cluster.clients.index(ctx.node))

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.open_container(cont_label)
        dfs = yield from Dfs.mount(cont)
        return DFuseMount(dfs), dfs

    return go()
