"""MPI-IO tests: independent + collective I/O over DFuse and native DFS."""

import pytest

from repro.daos.vos.payload import PatternPayload
from repro.errors import MpiError
from repro.mpiio import DfsDriver, MpiFile, UfsDriver
from repro.mpiio.romio import (
    _coalesce,
    choose_aggregators,
    domain_owner,
    split_by_domain,
)
from repro.units import KiB, MiB

from .conftest import make_rank_mount


def run_world(cluster, world, rank_fn):
    return world.run_to_completion(rank_fn)


def test_static_cyclic_file_domains():
    aggs = [0, 4]
    # ownership alternates per 1 MiB block, and is absolute: the same
    # offset always maps to the same aggregator regardless of the call.
    assert domain_owner(0, aggs) == 0
    assert domain_owner(MiB, aggs) == 4
    assert domain_owner(2 * MiB, aggs) == 0
    assert domain_owner(2 * MiB + 5, aggs) == 0
    pieces = split_by_domain(512 * KiB, 2 * MiB, aggs)
    assert pieces == [
        (0, 512 * KiB, MiB),
        (4, MiB, 2 * MiB),
        (0, 2 * MiB, 2 * MiB + 512 * KiB),
    ]
    assert sum(stop - start for _a, start, stop in pieces) == 2 * MiB


def test_coalesce_merges_adjacent():
    from repro.daos.vos.payload import BytesPayload

    runs = _coalesce(
        [(10, BytesPayload(b"bb")), (0, BytesPayload(b"aa")),
         (2, BytesPayload(b"cc"))]
    )
    assert [(off, p.materialize()) for off, p in runs] == [
        (0, b"aacc"),
        (10, b"bb"),
    ]


def test_choose_one_aggregator_per_node(cluster, world):
    def main(ctx):
        yield 0.0
        return choose_aggregators(ctx)

    results = run_world(cluster, world, main)
    assert results[0] == [0, 2]  # ppn=2 on two nodes


def test_independent_write_read_fpp(cluster, cont_label, world):
    def main(ctx):
        mount, _dfs = yield from make_rank_mount(cluster, cont_label, ctx)
        driver = UfsDriver(mount)
        fh = yield from MpiFile.open(
            ctx, f"/ind-{ctx.rank}", driver, create=True
        )
        pattern = PatternPayload(seed=ctx.rank, origin=0, nbytes=256 * KiB)
        yield from fh.write_at(0, pattern)
        back = yield from fh.read_at(0, 256 * KiB)
        yield from fh.close()
        return back == pattern

    assert all(run_world(cluster, world, main))


def test_collective_write_then_independent_read(cluster, cont_label, world):
    blk = 128 * KiB

    def main(ctx):
        mount, _dfs = yield from make_rank_mount(cluster, cont_label, ctx)
        driver = UfsDriver(mount)
        fh = yield from MpiFile.open(ctx, "/coll-shared", driver, create=True)
        pattern = PatternPayload(seed=7, origin=ctx.rank * blk, nbytes=blk)
        yield from fh.write_at_all(ctx.rank * blk, pattern)
        # read back a *different* rank's block to prove global visibility
        other = (ctx.rank + 1) % ctx.size
        back = yield from fh.read_at(other * blk, blk)
        size = yield from fh.get_size()
        yield from fh.close()
        expected = PatternPayload(seed=7, origin=other * blk, nbytes=blk)
        return back == expected and size == ctx.size * blk

    assert all(run_world(cluster, world, main))


def test_collective_read(cluster, cont_label, world):
    blk = 64 * KiB

    def main(ctx):
        mount, _dfs = yield from make_rank_mount(cluster, cont_label, ctx)
        driver = UfsDriver(mount)
        fh = yield from MpiFile.open(ctx, "/coll-read", driver, create=True)
        if ctx.rank == 0:
            whole = PatternPayload(seed=3, origin=0, nbytes=blk * ctx.size)
            yield from fh.write_at(0, whole)
        yield from ctx.barrier()
        got = yield from fh.read_at_all(ctx.rank * blk, blk)
        yield from fh.close()
        return got == PatternPayload(seed=3, origin=ctx.rank * blk, nbytes=blk)

    assert all(run_world(cluster, world, main))


def test_native_dfs_driver(cluster, cont_label, world):
    def main(ctx):
        _mount, dfs = yield from make_rank_mount(cluster, cont_label, ctx)
        driver = DfsDriver(dfs)
        fh = yield from MpiFile.open(
            ctx, f"/dfsdrv-{ctx.rank}", driver, create=True
        )
        yield from fh.write_at(0, b"native")
        data = yield from fh.read_at(0, 6)
        yield from fh.sync()
        yield from fh.close()
        return data.materialize()

    assert run_world(cluster, world, main) == [b"native"] * 4


def test_set_size_and_get_size(cluster, cont_label, world):
    def main(ctx):
        mount, _dfs = yield from make_rank_mount(cluster, cont_label, ctx)
        driver = UfsDriver(mount)
        fh = yield from MpiFile.open(
            ctx, f"/szf-{ctx.rank}", driver, create=True
        )
        yield from fh.write_at(0, b"q" * 1000)
        yield from fh.set_size(100)
        size = yield from fh.get_size()
        yield from fh.close()
        return size

    assert run_world(cluster, world, main) == [100] * 4


def test_ops_on_closed_file_raise(cluster, cont_label, world):
    def main(ctx):
        mount, _dfs = yield from make_rank_mount(cluster, cont_label, ctx)
        driver = UfsDriver(mount)
        fh = yield from MpiFile.open(
            ctx, f"/closed-{ctx.rank}", driver, create=True
        )
        yield from fh.close()
        try:
            yield from fh.write_at(0, b"x")
        except MpiError:
            return "raises"

    assert run_world(cluster, world, main) == ["raises"] * 4


def test_collective_overhead_bounded_for_ragged_writes(
    cluster, cont_label, world
):
    """Many small unaligned interleaved writes on DAOS: collective
    buffering adds an exchange phase that buys nothing on a lockless
    byte-granular store (the Lustre contrast ablation measures where it
    *does* pay), but its overhead must stay bounded."""
    xfer = 96 * KiB  # unaligned, interleaved among 4 ranks
    count = 8

    def build(mode):
        def main(ctx):
            mount, _dfs = yield from make_rank_mount(cluster, cont_label, ctx)
            driver = UfsDriver(mount)
            fh = yield from MpiFile.open(
                ctx, f"/ragged-{mode}", driver, create=True
            )
            yield from ctx.barrier()
            start = ctx.sim.now
            for k in range(count):
                offset = (k * ctx.size + ctx.rank) * xfer
                data = PatternPayload(seed=1, origin=offset, nbytes=xfer)
                if mode == "coll":
                    yield from fh.write_at_all(offset, data)
                else:
                    yield from fh.write_at(offset, data)
            yield from ctx.barrier()
            elapsed = ctx.sim.now - start
            yield from fh.close()
            return elapsed

        return main

    independent = max(run_world(cluster, world, build("ind")))
    from repro.mpi import MpiWorld

    world2 = MpiWorld(cluster.sim, cluster.fabric, cluster.clients, ppn=2)
    collective = max(world2.run_to_completion(build("coll")))
    # Exchange + barrier overhead, bounded: no pathological blow-up.
    assert collective < independent * 4.0
