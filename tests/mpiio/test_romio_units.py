"""Property tests for the ROMIO building blocks (pure logic)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.daos.vos.payload import BytesPayload
from repro.mpiio.romio import _coalesce, domain_owner, split_by_domain
from repro.units import MiB


@settings(max_examples=100, deadline=None)
@given(
    offset=st.integers(0, 10 * MiB),
    length=st.integers(1, 8 * MiB),
    n_aggs=st.integers(1, 6),
)
def test_property_split_by_domain_partitions_exactly(offset, length, n_aggs):
    aggs = list(range(0, n_aggs * 2, 2))
    pieces = split_by_domain(offset, length, aggs)
    # pieces are contiguous, ordered, cover [offset, offset+length)
    cursor = offset
    for agg, start, stop in pieces:
        assert start == cursor
        assert stop > start
        assert agg in aggs
        # ownership is consistent with the static map at every byte
        assert domain_owner(start, aggs) == agg
        assert domain_owner(stop - 1, aggs) == agg
        cursor = stop
    assert cursor == offset + length


@settings(max_examples=60, deadline=None)
@given(offset=st.integers(0, 64 * MiB), n_aggs=st.integers(1, 8))
def test_property_ownership_is_static(offset, n_aggs):
    aggs = list(range(n_aggs))
    # the same offset always maps to the same owner — the property that
    # keeps aggregator extent locks valid across collective calls
    assert domain_owner(offset, aggs) == domain_owner(offset, aggs)
    block = offset // MiB
    assert domain_owner(offset, aggs) == aggs[block % n_aggs]


@settings(max_examples=60, deadline=None)
@given(
    chunks=st.lists(st.integers(0, 20), min_size=1, max_size=12, unique=True)
)
def test_property_coalesce_preserves_content(chunks):
    pieces = [
        (c * 10, BytesPayload(bytes([c]) * 10)) for c in chunks
    ]
    runs = _coalesce(list(pieces))
    # runs are sorted, non-adjacent, and reproduce the exact byte map
    reconstructed = {}
    prev_end = None
    for off, payload in runs:
        if prev_end is not None:
            assert off > prev_end  # truly coalesced: no adjacency left
        for i, b in enumerate(payload.materialize()):
            reconstructed[off + i] = b
        prev_end = off + payload.nbytes
    expected = {}
    for off, payload in pieces:
        for i, b in enumerate(payload.materialize()):
            expected[off + i] = b
    assert reconstructed == expected
