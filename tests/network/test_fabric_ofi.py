"""Tests for the fabric latency model and OFI-like endpoints/RPC."""

import pytest

from repro.errors import NetworkError
from repro.network import Endpoint, Fabric, Rpc, RpcServer
from repro.sim import Simulator


def make_fabric():
    sim = Simulator()
    fabric = Fabric(sim, base_latency=1e-6, msg_bandwidth=1e9,
                    software_overhead=0.5e-6)
    return sim, fabric


def test_duplicate_node_rejected():
    sim, fabric = make_fabric()
    fabric.add_node("n0", 1e9)
    with pytest.raises(NetworkError):
        fabric.add_node("n0", 1e9)


def test_nic_links_have_aggregated_rail_capacity():
    sim, fabric = make_fabric()
    addr = fabric.add_node("n0", 10e9, rails=2)
    assert fabric.nic_tx(addr).capacity == pytest.approx(20e9)
    assert fabric.nic_rx(addr).capacity == pytest.approx(20e9)


def test_msg_delay_components():
    sim, fabric = make_fabric()
    a = fabric.add_node("a", 1e9)
    b = fabric.add_node("b", 1e9)
    delay = fabric.msg_delay(a, b, 1000)
    # latency 1us + 2*0.5us software + 1000B/1GBps = 1us
    assert delay == pytest.approx(3e-6)
    # loopback skips the wire
    assert fabric.msg_delay(a, a, 1000) == pytest.approx(1e-6)


def test_endpoint_send_recv_roundtrip():
    sim, fabric = make_fabric()
    a = fabric.add_node("a", 1e9)
    b = fabric.add_node("b", 1e9)
    ep_a = Endpoint(fabric, a, "ep-a")
    ep_b = Endpoint(fabric, b, "ep-b")

    def receiver():
        message = yield ep_b.recv()
        return (message.src, message.payload, sim.now)

    task = sim.spawn(receiver())
    ep_a.send("ep-b", {"x": 1}, nbytes=100)
    sim.run()
    src, payload, t = task.result
    assert src == "ep-a" and payload == {"x": 1}
    assert t > 0


def test_tagged_recv_separates_streams():
    sim, fabric = make_fabric()
    a = fabric.add_node("a", 1e9)
    ep = Endpoint(fabric, a, "ep")
    ep2 = Endpoint(fabric, a, "ep2")

    def receiver():
        msg_b = yield ep.recv(tag="beta")
        msg_a = yield ep.recv(tag="alpha")
        return [msg_a.payload, msg_b.payload]

    task = sim.spawn(receiver())
    ep2.send("ep", "A", tag="alpha")
    ep2.send("ep", "B", tag="beta")
    sim.run()
    assert task.result == ["A", "B"]


def test_unknown_endpoint_raises():
    sim, fabric = make_fabric()
    a = fabric.add_node("a", 1e9)
    ep = Endpoint(fabric, a, "ep")
    with pytest.raises(NetworkError):
        ep.send("nowhere", "x")


def test_rpc_roundtrip_and_handler_work():
    sim, fabric = make_fabric()
    a = fabric.add_node("a", 1e9)
    b = fabric.add_node("b", 1e9)
    server = RpcServer(fabric, b, "srv")

    def handle_add(_src, x, y):
        yield 1e-3  # simulated service time
        return x + y

    server.register("add", handle_add)
    client = Rpc(Endpoint(fabric, a, "cli"))

    def caller():
        result = yield from client.call("srv", "add", {"x": 2, "y": 3})
        return (result, sim.now)

    task = sim.spawn(caller())
    sim.run()
    result, t = task.result
    assert result == 5
    assert t >= 1e-3  # at least the service time plus two message delays


def test_rpc_handler_exception_propagates_to_caller():
    sim, fabric = make_fabric()
    a = fabric.add_node("a", 1e9)
    server = RpcServer(fabric, a, "srv")

    def handler(_src):
        yield 0.0
        raise ValueError("remote failure")

    server.register("boom", handler)
    client = Rpc(Endpoint(fabric, a, "cli"))

    def caller():
        try:
            yield from client.call("srv", "boom")
        except ValueError as exc:
            return str(exc)

    task = sim.spawn(caller())
    sim.run()
    assert task.result == "remote failure"


def test_rpc_unknown_op_is_error():
    sim, fabric = make_fabric()
    a = fabric.add_node("a", 1e9)
    RpcServer(fabric, a, "srv")
    client = Rpc(Endpoint(fabric, a, "cli"))

    def caller():
        try:
            yield from client.call("srv", "nope")
        except NetworkError:
            return "err"

    task = sim.spawn(caller())
    sim.run()
    assert task.result == "err"


def test_concurrent_rpcs_matched_by_id():
    sim, fabric = make_fabric()
    a = fabric.add_node("a", 1e9)
    b = fabric.add_node("b", 1e9)
    server = RpcServer(fabric, b, "srv")

    def handler(_src, delay, token):
        yield delay
        return token

    server.register("echo", handler)
    client = Rpc(Endpoint(fabric, a, "cli"))

    def caller(delay, token):
        result = yield from client.call(
            "srv", "echo", {"delay": delay, "token": token}
        )
        return result

    slow = sim.spawn(caller(1e-2, "slow"))
    fast = sim.spawn(caller(1e-4, "fast"))
    sim.run()
    assert slow.result == "slow"
    assert fast.result == "fast"


def test_server_node_builds_links():
    from repro.hardware import ServerNode, nextgenio_node

    sim, fabric = make_fabric()
    node = ServerNode(fabric, "srv0", nextgenio_node(server=True))
    assert len(node.engines) == 2
    targets = node.all_targets()
    assert len(targets) == 16
    engine = node.engines[0]
    assert engine.media_read.capacity > engine.media_write.capacity
    t = targets[0]
    assert t.read_link.capacity == pytest.approx(3.6e9)
    assert t.write_link.capacity == pytest.approx(2.2e9)
    assert t.node is node


def test_client_node_has_no_engines():
    from repro.hardware import ClientNode, nextgenio_node

    sim, fabric = make_fabric()
    node = ClientNode(fabric, "c0", nextgenio_node(server=False))
    assert node.nic_tx.capacity == pytest.approx(22e9)


def test_engine_spec_media_bandwidths():
    from repro.hardware import EngineSpec

    spec = EngineSpec()
    assert spec.media_read_bw == pytest.approx(6 * 6.8e9 * 0.80)
    assert spec.media_write_bw == pytest.approx(6 * 2.3e9 * 0.75)


# ---------------------------------------------------------------------------
# Fault plane: partition / heal / delay / drop, all centralized in
# Fabric.transmit so every endpoint (raft, RPC, engines) is covered.
# ---------------------------------------------------------------------------


def _two_endpoints():
    sim, fabric = make_fabric()
    a = fabric.add_node("a", 1e9)
    b = fabric.add_node("b", 1e9)
    ep_a = Endpoint(fabric, a, "ep-a")
    ep_b = Endpoint(fabric, b, "ep-b")
    return sim, fabric, ep_a, ep_b


def test_partition_blocks_both_directions_and_heal_restores():
    sim, fabric, ep_a, ep_b = _two_endpoints()
    pairs = fabric.partition(["a"], ["b"])
    assert fabric.is_blocked("a", "b") and fabric.is_blocked("b", "a")

    ep_a.send("ep-b", "lost", nbytes=10)
    sim.run()
    assert fabric.dropped_messages == 1

    fabric.heal(pairs)
    assert not fabric.is_blocked("a", "b")

    def receiver():
        message = yield ep_b.recv()
        return message.payload

    task = sim.spawn(receiver())
    ep_a.send("ep-b", "through", nbytes=10)
    sim.run()
    assert task.result == "through"
    # the partitioned-away message is gone for good, not delayed
    assert fabric.delivered_messages == 1


def test_partition_rejects_node_on_both_sides():
    sim, fabric, *_ = _two_endpoints()
    with pytest.raises(NetworkError):
        fabric.partition(["a"], ["a", "b"])


def test_extra_delay_slows_link():
    sim, fabric, ep_a, ep_b = _two_endpoints()

    def receiver():
        message = yield ep_b.recv()
        return sim.now

    baseline_task = sim.spawn(receiver())
    ep_a.send("ep-b", 1, nbytes=10)
    sim.run()
    baseline = baseline_task.result

    fabric.set_extra_delay("a", "b", 5e-3)
    sim2_task = sim.spawn(receiver())
    start = sim.now
    ep_a.send("ep-b", 2, nbytes=10)
    sim.run()
    assert sim2_task.result - start == pytest.approx(baseline + 5e-3)

    fabric.set_extra_delay("a", "b", 0.0)  # clears
    sim3_task = sim.spawn(receiver())
    start = sim.now
    ep_a.send("ep-b", 3, nbytes=10)
    sim.run()
    assert sim3_task.result - start == pytest.approx(baseline)


def test_drop_rule_discards_selected_messages():
    sim, fabric, ep_a, ep_b = _two_endpoints()
    flips = iter([True, False])
    fabric.set_drop_rule("a", "b", lambda: next(flips), bidirectional=False)

    def receiver():
        message = yield ep_b.recv()
        return message.payload

    task = sim.spawn(receiver())
    ep_a.send("ep-b", "first", nbytes=10)   # dropped
    ep_a.send("ep-b", "second", nbytes=10)  # delivered
    sim.run()
    assert task.result == "second"
    assert fabric.dropped_messages == 1
    assert fabric.delivered_messages == 1
    fabric.set_drop_rule("a", "b", None)
