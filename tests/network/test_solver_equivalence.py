"""Differential equivalence: IncrementalSolver vs the ReferenceSolver oracle.

The incremental solver re-solves only the dirty connected component and
runs progressive filling as numpy vector ops, but its float semantics are
built to mirror the reference solver operation-for-operation.  This
harness drives *randomized seeded sequences* of mutations — flow open /
close / ``set_cap`` / ``set_link_capacity`` — through two mirrored
networks, one per solver, over several topology shapes, and asserts:

- per-flow rates match within ``_EPS``-scaled tolerance after every
  mutation (in practice they match exactly);
- transfer completion times are identical (the mirrored simulations are
  stepped together and compared event-for-event at the end).

Shapes are chosen to exercise the solver's structural paths: single hot
link (star), the bipartite client-NIC x target pattern of the IOR
figures, striping with fractional weights, long chains (worst case for
component expansion), sparse random graphs (many independent components
— the incremental solver's best case), and disjoint islands.

``N_SEQUENCES`` x ``len(SHAPES)`` must stay >= 200 (the acceptance bar
for this suite).
"""

import math
import random
import zlib

import pytest

from repro.network.flows import _EPS, FlowNetwork
from repro.sim import Simulator

#: randomized operation sequences per topology shape
N_SEQUENCES = 40

#: mutation steps per sequence
N_STEPS = 60


# -- topology shapes ---------------------------------------------------------
# Each shape builds links on a (sim, net) pair and returns:
#   links      : list of Link
#   flow_maker : rng -> list[(Link, weight)] for a new flow


def shape_star(net, rng):
    hot = net.add_link("hot", rng.uniform(50.0, 200.0))
    spokes = [net.add_link(f"s{i}", rng.uniform(10.0, 100.0)) for i in range(4)]

    def maker(rng):
        return [(hot, 1.0), (rng.choice(spokes), 1.0)]

    return [hot] + spokes, maker


def shape_bipartite(net, rng):
    """Client NICs x storage targets — the IOR figure pattern."""
    nics = [net.add_link(f"nic{i}", rng.uniform(80.0, 120.0)) for i in range(4)]
    tgts = [net.add_link(f"tgt{i}", rng.uniform(20.0, 60.0)) for i in range(6)]

    def maker(rng):
        return [(rng.choice(nics), 1.0), (rng.choice(tgts), 1.0)]

    return nics + tgts, maker


def shape_striped(net, rng):
    """One NIC per flow, striped over k targets with weight 1/k."""
    nics = [net.add_link(f"nic{i}", rng.uniform(80.0, 120.0)) for i in range(3)]
    tgts = [net.add_link(f"tgt{i}", rng.uniform(10.0, 40.0)) for i in range(8)]

    def maker(rng):
        k = rng.randint(2, 4)
        chosen = rng.sample(tgts, k)
        return [(rng.choice(nics), 1.0)] + [(t, 1.0 / k) for t in chosen]

    return nics + tgts, maker


def shape_chain(net, rng):
    """Flows span adjacent links of a chain — worst case for component
    expansion (everything is eventually connected)."""
    chain = [net.add_link(f"c{i}", rng.uniform(30.0, 90.0)) for i in range(10)]

    def maker(rng):
        start = rng.randint(0, len(chain) - 3)
        span = rng.randint(2, 3)
        return [(l, 1.0) for l in chain[start : start + span]]

    return chain, maker


def shape_sparse(net, rng):
    """Random sparse pairs: usually several independent components."""
    links = [net.add_link(f"r{i}", rng.uniform(10.0, 150.0)) for i in range(12)]

    def maker(rng):
        return [(l, rng.uniform(0.25, 1.0)) for l in rng.sample(links, 2)]

    return links, maker


def shape_islands(net, rng):
    """Disjoint 2-link islands; mutations in one island must never
    perturb the rates of another (the incremental solver skips them)."""
    islands = [
        (net.add_link(f"i{i}a", rng.uniform(20.0, 80.0)),
         net.add_link(f"i{i}b", rng.uniform(20.0, 80.0)))
        for i in range(5)
    ]

    def maker(rng):
        a, b = rng.choice(islands)
        return [(a, 1.0), (b, 1.0)]

    return [l for pair in islands for l in pair], maker


SHAPES = {
    "star": shape_star,
    "bipartite": shape_bipartite,
    "striped": shape_striped,
    "chain": shape_chain,
    "sparse": shape_sparse,
    "islands": shape_islands,
}


# -- mirrored-pair harness ---------------------------------------------------


class MirroredPair:
    """Two networks, one per solver, receiving identical mutations."""

    def __init__(self, shape, seed):
        self.rng = random.Random(seed)
        self.sims = (Simulator(), Simulator())
        self.nets = tuple(
            FlowNetwork(sim, solver=name)
            for sim, name in zip(self.sims, ("reference", "incremental"))
        )
        # same seed for both builds => mirrored topologies; keep parallel
        # link lists so ops can address "the same link" on both sides
        made = [shape(net, random.Random(seed + 1)) for net in self.nets]
        self.links = tuple(m[0] for m in made)
        self.makers = tuple(m[1] for m in made)
        self.flows = ([], [])  # parallel open-flow lists
        self.completions = ([], [])  # (label, sim time) per side

    def check_rates(self):
        ref_flows, inc_flows = self.flows
        assert len(ref_flows) == len(inc_flows)
        for i, (rf, incf) in enumerate(zip(ref_flows, inc_flows)):
            scale = max(1.0, abs(rf.rate))
            assert abs(rf.rate - incf.rate) <= _EPS * scale, (
                f"flow {i}: reference rate {rf.rate!r} != "
                f"incremental rate {incf.rate!r}"
            )

    def step_op(self, op_rng):
        """Apply one random mutation to both sides."""
        roll = op_rng.random()
        n_open = len(self.flows[0])
        if roll < 0.45 or n_open == 0:
            # open a flow (sometimes capped, sometimes with a transfer)
            maker_seed = op_rng.randrange(1 << 30)
            cap = None
            if op_rng.random() < 0.3:
                cap = op_rng.uniform(0.5, 120.0)
            nbytes = None
            if op_rng.random() < 0.6:
                nbytes = op_rng.uniform(1.0, 500.0)
            for side, net in enumerate(self.nets):
                spec = self.makers[side](random.Random(maker_seed))
                flow = net.open(spec, cap=cap)
                self.flows[side].append(flow)
                if nbytes is not None:
                    label = len(self.completions[side])
                    tr = flow.transfer(nbytes)
                    sim = self.sims[side]
                    done = self.completions[side]
                    tr._subscribe(
                        lambda value=None, l=label, s=sim, d=done: d.append(
                            (l, s.now)
                        )
                    )
        elif roll < 0.65:
            idx = op_rng.randrange(n_open)
            for side, net in enumerate(self.nets):
                net.close(self.flows[side].pop(idx))
        elif roll < 0.85:
            idx = op_rng.randrange(n_open)
            new_cap = None if op_rng.random() < 0.25 else op_rng.uniform(0.5, 120.0)
            for side in range(2):
                self.flows[side][idx].set_cap(new_cap)
        else:
            li = op_rng.randrange(len(self.links[0]))
            new_capacity = op_rng.uniform(1.0, 150.0)
            for side, net in enumerate(self.nets):
                net.set_link_capacity(self.links[side][li], new_capacity)
        # advance both simulations by the same wall step so transfers
        # progress (and complete) between mutations
        dt = op_rng.uniform(0.0, 2.0)
        for side, sim in enumerate(self.sims):
            sim.run(until=sim.now + dt)

    def run_sequence(self, n_steps):
        op_rng = random.Random(self.rng.randrange(1 << 30))
        for _ in range(n_steps):
            self.step_op(op_rng)
            self.check_rates()
        # drain outstanding events, then compare completion times. Exact
        # equality holds within a connected component; across components
        # the reference's global level accumulation can differ in the
        # last ulp, so compare with a tight relative tolerance.
        for side in range(2):
            self.sims[side].run(until=self.sims[side].now + 1e4)
        ref_done = dict(self.completions[0])
        inc_done = dict(self.completions[1])
        assert ref_done.keys() == inc_done.keys(), (
            "different transfers completed under the two solvers"
        )
        for label, t_ref in ref_done.items():
            assert math.isclose(
                t_ref, inc_done[label], rel_tol=1e-9, abs_tol=1e-12
            ), f"transfer {label}: {t_ref!r} vs {inc_done[label]!r}"


@pytest.mark.parametrize("shape_name", sorted(SHAPES))
@pytest.mark.parametrize("seq", range(N_SEQUENCES))
def test_randomized_sequences_equivalent(shape_name, seq):
    seed = 1000 * seq + zlib.crc32(shape_name.encode()) % 997
    pair = MirroredPair(SHAPES[shape_name], seed=seed)
    pair.run_sequence(N_STEPS)


def test_suite_meets_acceptance_scale():
    """The acceptance bar: >=200 randomized sequences over >=5 shapes."""
    assert len(SHAPES) >= 5
    assert N_SEQUENCES * len(SHAPES) >= 200


# -- regression corners ------------------------------------------------------


def make_pair():
    sims = (Simulator(), Simulator())
    nets = tuple(
        FlowNetwork(sim, solver=name)
        for sim, name in zip(sims, ("reference", "incremental"))
    )
    return sims, nets


def test_corner_tiny_capacity_link():
    """Links at the validity floor (capacity must be > 0): rates collapse
    to the tiny link on both solvers identically."""
    _, nets = make_pair()
    rates = []
    for net in nets:
        tiny = net.add_link("tiny", 1e-12)
        big = net.add_link("big", 100.0)
        f1 = net.open([(tiny, 1.0), (big, 1.0)])
        f2 = net.open([(big, 1.0)])
        rates.append((f1.rate, f2.rate))
    assert rates[0] == rates[1]


def test_corner_capless_linkfree_flow_is_unbounded():
    """A flow with no links and no cap has no binding constraint: both
    solvers assign the sentinel unbounded rate."""
    from repro.network.flows import _UNBOUNDED_RATE

    _, nets = make_pair()
    for net in nets:
        flow = net.open([])
        assert flow.rate == _UNBOUNDED_RATE


def test_corner_simultaneous_cap_and_link_saturation():
    """Cap crossing and link saturation at exactly the same level: the
    cap-first fixing order must agree between solvers."""
    _, nets = make_pair()
    rates = []
    for net in nets:
        link = net.add_link("l", 100.0)
        capped = net.open([(link, 1.0)], cap=50.0)  # cap == fair share
        free = net.open([(link, 1.0)])
        rates.append((capped.rate, free.rate))
    assert rates[0] == rates[1]
    assert rates[0][0] == pytest.approx(50.0)
    assert rates[0][1] == pytest.approx(50.0)


def test_corner_zero_weight_links_dropped():
    """Zero-weight path entries are filtered at open() on both solvers."""
    _, nets = make_pair()
    rates = []
    for net in nets:
        a = net.add_link("a", 40.0)
        b = net.add_link("b", 10.0)
        flow = net.open([(a, 1.0), (b, 0.0)])
        rates.append(flow.rate)
    assert rates[0] == rates[1] == pytest.approx(40.0)


# Degenerate-topology trigger for the forced-exit fallback: two flows on
# link L whose weights differ by 13 orders of magnitude.  Summing the
# weights rounds (catastrophic cancellation), so after both flows fix via
# their tiny caps the subtract-then-clamp decrement leaves a *residual*
# denominator e = ((WBIG + WSMALL) - WBIG) - WSMALL ~ 1.9e-7 > _EPS on L.
# L then looks like a live bottleneck with no unfixed flows on it: the
# next step picks it, fixes nothing, and the solver must force-exit,
# leaving the third flow (connected through M so it shares the component)
# stalled at rate 0.  The old code broke out of the loop silently here.
FE_WBIG = 10000000007.0
FE_WSMALL = 0.00014285714285714287


def _build_forced_exit(net):
    L = net.add_link("L", 100.0)
    M = net.add_link("M", 1e12)
    a = net.open([(L, FE_WBIG)], cap=1e-12)
    b = net.open([(L, FE_WSMALL), (M, 0.5)], cap=2e-12)
    c = net.open([(M, 1.0)])  # victim: stalls at 0 on forced exit
    return a, b, c


def test_forced_exit_residual_is_real():
    """The premise of the construction, pinned: the weight pair leaves a
    denominator residual above _EPS."""
    residual = ((FE_WBIG + FE_WSMALL) - FE_WBIG) - FE_WSMALL
    assert residual > _EPS


@pytest.mark.parametrize("solver", ["reference", "incremental"])
def test_forced_exit_degenerate_topology(solver, caplog):
    import logging

    sim = Simulator()
    net = FlowNetwork(sim, solver=solver)
    with caplog.at_level(logging.WARNING, logger="repro.network.flows"):
        a, b, c = _build_forced_exit(net)
    assert net.forced_exits == 1
    assert (a.rate, b.rate, c.rate) == (1e-12, 1e-12, 0.0)
    assert any("forced exit" in rec.message for rec in caplog.records)


def test_forced_exit_metric_counted():
    """With metrics installed, forced exits increment the
    fabric.solver.forced_exit counter."""
    from repro.obs import install

    sim = Simulator()
    install(sim, tracing=False, metrics=True)
    net = FlowNetwork(sim, solver="incremental")
    _build_forced_exit(net)
    assert net.forced_exits == 1
    assert sim.metrics.counter("fabric.solver.forced_exit").value == 1
