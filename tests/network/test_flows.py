"""Unit + property tests for the max-min fair fluid-flow model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.network.flows import FlowNetwork
from repro.sim import Simulator


def make_net():
    sim = Simulator()
    return sim, FlowNetwork(sim)


def test_single_flow_gets_full_capacity():
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    flow = net.open([(link, 1.0)])
    assert flow.rate == pytest.approx(100.0)


def test_two_flows_share_equally():
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    f1 = net.open([(link, 1.0)])
    f2 = net.open([(link, 1.0)])
    assert f1.rate == pytest.approx(50.0)
    assert f2.rate == pytest.approx(50.0)


def test_close_restores_rate():
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    f1 = net.open([(link, 1.0)])
    f2 = net.open([(link, 1.0)])
    net.close(f2)
    assert f1.rate == pytest.approx(100.0)
    assert f2.rate == 0.0


def test_cap_binds_and_spare_goes_to_others():
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    capped = net.open([(link, 1.0)], cap=10.0)
    free = net.open([(link, 1.0)])
    assert capped.rate == pytest.approx(10.0)
    assert free.rate == pytest.approx(90.0)


def test_consumption_weights_model_striping():
    # One flow striped over 4 target links: weight 1/4 on each. Each target
    # has capacity 25 => total consumption per target = rate/4 <= 25 so the
    # flow can run at 100 even though each target is only 25.
    sim, net = make_net()
    targets = [net.add_link(f"t{i}", 25.0) for i in range(4)]
    flow = net.open([(t, 0.25) for t in targets])
    assert flow.rate == pytest.approx(100.0)


def test_weighted_flow_competes_on_hot_target():
    # Striped flow (1/2 on t0,t1) vs dedicated flow on t0.
    # Max-min: equal rates r: t0 consumption r/2 + r = 30 -> r = 20; then the
    # striped flow is NOT limited elsewhere (t1 has headroom) but equal-rate
    # progressive filling fixes both at the t0 saturation point... dedicated
    # flow fixed at 20; striped flow continues growing on t1: 20/2 + extra...
    sim, net = make_net()
    t0 = net.add_link("t0", 30.0)
    t1 = net.add_link("t1", 30.0)
    striped = net.open([(t0, 0.5), (t1, 0.5)])
    dedicated = net.open([(t0, 1.0)])
    # t0 saturates when r*(1.5) = 30 => level 20; both fixed there since both
    # cross t0 (equal-rate max-min: flows on the bottleneck are fixed).
    assert dedicated.rate == pytest.approx(20.0)
    assert striped.rate == pytest.approx(20.0)


def test_multi_link_path_bottleneck():
    sim, net = make_net()
    a = net.add_link("a", 100.0)
    b = net.add_link("b", 40.0)
    flow = net.open([(a, 1.0), (b, 1.0)])
    assert flow.rate == pytest.approx(40.0)


def test_two_bottlenecks_progressive():
    # f1 crosses l1(100) only; f2 crosses l1 and l2(30); f3 crosses l2 only.
    # l2: f2+f3 -> level 15 fixes f2,f3. l1: f1 then takes 100-15=85.
    sim, net = make_net()
    l1 = net.add_link("l1", 100.0)
    l2 = net.add_link("l2", 30.0)
    f1 = net.open([(l1, 1.0)])
    f2 = net.open([(l1, 1.0), (l2, 1.0)])
    f3 = net.open([(l2, 1.0)])
    assert f2.rate == pytest.approx(15.0)
    assert f3.rate == pytest.approx(15.0)
    assert f1.rate == pytest.approx(85.0)


def test_transfer_completes_at_fluid_time():
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    flow = net.open([(link, 1.0)])

    def proc():
        yield flow.transfer(200.0)
        return sim.now

    task = sim.spawn(proc())
    sim.run()
    assert task.result == pytest.approx(2.0)


def test_transfer_integrates_rate_changes():
    # Flow alone at 100 B/s for 1 s (100 B done), then a competitor arrives
    # and rate drops to 50: remaining 100 B takes 2 s more -> total 3 s.
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    f1 = net.open([(link, 1.0)])

    def main():
        yield f1.transfer(200.0)
        return sim.now

    def competitor():
        yield 1.0
        net.open([(link, 1.0)])

    task = sim.spawn(main())
    sim.spawn(competitor())
    sim.run()
    assert task.result == pytest.approx(3.0)


def test_transfer_speeds_up_when_competitor_leaves():
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    f1 = net.open([(link, 1.0)])
    f2 = net.open([(link, 1.0)])

    def main():
        yield f1.transfer(150.0)
        return sim.now

    def competitor():
        yield 1.0
        net.close(f2)

    task = sim.spawn(main())
    sim.spawn(competitor())
    sim.run()
    # 1 s at 50 B/s = 50 B; remaining 100 B at 100 B/s = 1 s; total 2 s.
    assert task.result == pytest.approx(2.0)


def test_zero_byte_transfer_completes_immediately():
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    flow = net.open([(link, 1.0)])

    def proc():
        yield flow.transfer(0)
        return sim.now

    task = sim.spawn(proc())
    sim.run()
    assert task.result == 0.0


def test_concurrent_transfers_on_same_flow_share_flow_rate():
    # Two 100-byte transfers on one flow at rate 100: the fluid model gives
    # the *flow* 100 B/s; both transfers progress at the flow rate
    # independently (they model successive ops, not extra parallelism).
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    flow = net.open([(link, 1.0)])
    done = []

    def proc(i):
        yield flow.transfer(100.0)
        done.append((i, sim.now))

    sim.spawn(proc(0))
    sim.spawn(proc(1))
    sim.run()
    assert [t for _, t in done] == [pytest.approx(1.0), pytest.approx(1.0)]


def test_set_link_capacity_mid_transfer_reschedules():
    # 200 B on a 100 B/s link; at t=1 s (100 B done) the link degrades to
    # 25 B/s: remaining 100 B takes 4 s more -> completion at t=5 s.
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    flow = net.open([(link, 1.0)])

    def main():
        yield flow.transfer(200.0)
        return sim.now

    def degrade():
        yield 1.0
        net.set_link_capacity(link, 25.0)

    task = sim.spawn(main())
    sim.spawn(degrade())
    sim.run()
    assert task.result == pytest.approx(5.0)
    assert flow.rate == pytest.approx(25.0)


def test_set_link_capacity_mid_transfer_speedup():
    # The other direction: the link gets faster mid-flight, and the
    # already-scheduled (now stale) completion event must be superseded.
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    flow = net.open([(link, 1.0)])

    def main():
        yield flow.transfer(300.0)
        return sim.now

    def upgrade():
        yield 1.0
        net.set_link_capacity(link, 400.0)

    task = sim.spawn(main())
    sim.spawn(upgrade())
    sim.run()
    # 1 s at 100 B/s = 100 B; remaining 200 B at 400 B/s = 0.5 s.
    assert task.result == pytest.approx(1.5)


def test_set_cap_mid_transfer_reschedules():
    # Cap applied mid-flight: 1 s at 100 B/s (100 B done), then cap 20:
    # remaining 100 B at 20 B/s = 5 s more -> t=6 s.
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    flow = net.open([(link, 1.0)])

    def main():
        yield flow.transfer(200.0)
        return sim.now

    def throttle():
        yield 1.0
        flow.set_cap(20.0)

    task = sim.spawn(main())
    sim.spawn(throttle())
    sim.run()
    assert task.result == pytest.approx(6.0)
    assert flow.rate == pytest.approx(20.0)


def test_clear_cap_mid_transfer_restores_link_rate():
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    flow = net.open([(link, 1.0)], cap=10.0)

    def main():
        yield flow.transfer(110.0)
        return sim.now

    def uncork():
        yield 1.0
        flow.set_cap(None)

    task = sim.spawn(main())
    sim.spawn(uncork())
    sim.run()
    # 1 s at 10 B/s = 10 B; remaining 100 B at 100 B/s = 1 s.
    assert task.result == pytest.approx(2.0)


def test_chained_mutations_accumulate_exact_bytes():
    # Several mutations during one transfer: remaining-bytes accounting
    # must integrate every rate segment. 600 B total:
    #   t in [0,1): 100 B/s (competitor-free)      -> 100 B
    #   t in [1,2): 50 B/s (competitor arrives)    -> 50 B
    #   t in [2,3): 25 B/s (link degraded to 50)   -> 25 B
    #   t in [3,4): 50 B/s (competitor leaves)     -> 50 B
    #   t >= 4:     cap 75 binds under link 50 -> still 50 B/s
    # remaining at t=4: 600-225=375 B at 50 B/s -> 7.5 s -> t=11.5 s.
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    flow = net.open([(link, 1.0)])

    def main():
        yield flow.transfer(600.0)
        return sim.now

    def script():
        competitor = net.open([(link, 1.0)])
        net.close(competitor)  # net effect nil before t=0 transfers start
        yield 1.0
        competitor = net.open([(link, 1.0)])
        yield 1.0
        net.set_link_capacity(link, 50.0)
        yield 1.0
        net.close(competitor)
        yield 1.0
        flow.set_cap(75.0)

    task = sim.spawn(main())
    sim.spawn(script())
    sim.run()
    assert task.result == pytest.approx(11.5)


def test_invalid_inputs_rejected():
    sim, net = make_net()
    with pytest.raises(NetworkError):
        net.add_link("bad", 0.0)
    link = net.add_link("l", 10.0)
    with pytest.raises(NetworkError):
        net.add_link("l", 10.0)
    with pytest.raises(NetworkError):
        net.open([(link, 1.0)], cap=0.0)
    with pytest.raises(NetworkError):
        net.link("missing")
    flow = net.open([(link, 1.0)])
    with pytest.raises(NetworkError):
        flow.transfer(-5)


def test_close_unknown_flow_is_noop():
    sim, net = make_net()
    link = net.add_link("l", 10.0)
    flow = net.open([(link, 1.0)])
    net.close(flow)
    net.close(flow)  # second close must not raise
    assert link.n_flows == 0


def test_utilization_reporting():
    sim, net = make_net()
    link = net.add_link("l", 100.0)
    net.open([(link, 1.0)], cap=25.0)
    assert link.utilization() == pytest.approx(0.25)


@settings(max_examples=60, deadline=None)
@given(
    capacities=st.lists(st.floats(1.0, 1e4), min_size=1, max_size=5),
    flow_specs=st.lists(
        st.tuples(
            st.lists(st.integers(0, 4), min_size=1, max_size=5, unique=True),
            st.one_of(st.none(), st.floats(0.5, 1e4)),
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_allocation_is_feasible_and_work_conserving(capacities, flow_specs):
    """Property: no link oversubscribed; no flow can be raised unilaterally."""
    sim = Simulator()
    net = FlowNetwork(sim)
    links = [net.add_link(f"l{i}", c) for i, c in enumerate(capacities)]
    flows = []
    for link_ids, cap in flow_specs:
        chosen = [links[i % len(links)] for i in link_ids]
        # dedupe (same link twice would double-count weight)
        chosen = list(dict.fromkeys(chosen))
        flows.append(net.open([(l, 1.0) for l in chosen], cap=cap))

    slack = {l: l.capacity for l in links}
    for flow in flows:
        assert flow.rate >= 0
        if flow.cap is not None:
            assert flow.rate <= flow.cap + 1e-6
        for link, weight in flow.links:
            slack[link] -= flow.rate * weight
    for link, s in slack.items():
        assert s >= -1e-6 * link.capacity  # feasibility

    # Max-min/work-conservation: every flow is blocked by its cap or by at
    # least one saturated link on its path.
    for flow in flows:
        capped = flow.cap is not None and flow.rate >= flow.cap - 1e-6
        saturated = any(
            slack[link] <= 1e-6 * link.capacity for link, _ in flow.links
        )
        assert capped or saturated
