"""Solver byte-identity gate at figure scale.

The incremental solver's float semantics mirror the reference solver
operation-for-operation, and every IOR figure point keeps its flow graph
a single connected component (all flows share client NICs and striped
target links).  So the two solvers must agree *byte-for-byte* on figure
outputs — pure float equality, no tolerance — exactly like the cache-off
gate in ``tests/cache/test_cache_determinism.py``.

One fig-1 point (file-per-process) and one fig-2 point (shared file)
are pinned here at the 1-node scale used by the other determinism gates.
Any drift means the incremental solver's arithmetic diverged from the
oracle and is a bug, not a recalibration.
"""

import pytest

from repro.cluster import nextgenio
from repro.ior import IorParams, run_ior

#: the DFS file-per-process seed figure from test_cache_determinism.py —
#: the incremental solver must also hit it exactly
DFS_FPP_SEED = (6142348807.511658, 4306533837.826945)


def run_point(file_per_proc, interleaved, flow_solver):
    cluster = nextgenio(client_nodes=1, flow_solver=flow_solver)
    params = IorParams(
        api="DFS",
        file_per_proc=file_per_proc,
        interleaved=interleaved,
        oclass="SX",
        block_size="4m",
        transfer_size="1m",
    )
    result = run_ior(cluster, params, ppn=4)
    return result.max_write_bw, result.max_read_bw


@pytest.mark.parametrize(
    "file_per_proc,interleaved",
    [(True, False), (False, True)],
    ids=["fig1-fpp", "fig2-shared"],
)
def test_incremental_byte_identical_to_reference(file_per_proc, interleaved):
    ref = run_point(file_per_proc, interleaved, "reference")
    inc = run_point(file_per_proc, interleaved, "incremental")
    assert ref == inc


def test_incremental_hits_pinned_seed_figure():
    """Transitively pins the incremental solver against the seed tree:
    the pre-rewrite figures were produced by (what is now) the reference
    solver, so the incremental solver must reproduce them exactly."""
    assert run_point(True, False, "incremental") == DFS_FPP_SEED
