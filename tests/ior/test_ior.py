"""IOR port tests: every backend, both modes, verification, timing."""

import pytest

from repro.cluster import build_lustre_cluster, small_cluster
from repro.hardware.specs import EngineSpec
from repro.ior import IorParams, run_ior
from repro.units import KiB, MiB


@pytest.fixture()
def cluster():
    return small_cluster(server_nodes=2, client_nodes=2, targets_per_engine=2)


SMALL = dict(block_size=2 * MiB, transfer_size=256 * KiB)


def test_params_validation():
    with pytest.raises(ValueError):
        IorParams(api="NFS")
    with pytest.raises(ValueError):
        IorParams(block_size="1m", transfer_size="300k")
    with pytest.raises(ValueError):
        IorParams(collective=True, api="DFS")
    with pytest.raises(ValueError):
        IorParams(interleaved=True, file_per_proc=True)
    params = IorParams(block_size="1m", transfer_size="256k")
    assert params.transfers_per_block == 4
    assert "ior" in params.cli()


def test_offset_layouts():
    params = IorParams(block_size=4 * KiB, transfer_size=KiB)
    # shared segmented: rank blocks contiguous within a segment
    assert params.offset(4, 0, 0, 0) == 0
    assert params.offset(4, 1, 0, 0) == 4 * KiB
    assert params.offset(4, 0, 1, 0) == 16 * KiB
    assert params.offset(4, 2, 0, 3) == 8 * KiB + 3 * KiB
    # fpp
    fpp = IorParams(block_size=4 * KiB, transfer_size=KiB, file_per_proc=True)
    assert fpp.offset(4, 3, 0, 2) == 2 * KiB
    assert fpp.offset(4, 3, 1, 0) == 4 * KiB
    assert fpp.file_path(3).endswith("00000003")
    # interleaved (io500-hard style)
    hard = IorParams(block_size=4 * KiB, transfer_size=KiB, interleaved=True)
    assert hard.offset(4, 0, 0, 0) == 0
    assert hard.offset(4, 1, 0, 0) == KiB
    assert hard.offset(4, 0, 0, 1) == 4 * KiB


@pytest.mark.parametrize(
    "api", ["POSIX", "DFS", "MPIIO", "HDF5", "DAOS", "HDF5-DAOS"]
)
def test_fpp_write_read_verify(cluster, api):
    params = IorParams(
        api=api, file_per_proc=True, verify=True, oclass="S2", **SMALL
    )
    result = run_ior(cluster, params, ppn=2)
    assert result.nprocs == 4
    assert result.verify_errors == 0
    assert result.max_write_bw > 0
    assert result.max_read_bw > 0


@pytest.mark.parametrize(
    "api", ["POSIX", "DFS", "MPIIO", "HDF5", "DAOS", "HDF5-DAOS"]
)
def test_shared_file_write_read_verify(cluster, api):
    params = IorParams(api=api, verify=True, oclass="SX", **SMALL)
    result = run_ior(cluster, params, ppn=2)
    assert result.verify_errors == 0
    assert result.max_write_bw > 0


def test_collective_mpiio_shared(cluster):
    params = IorParams(api="MPIIO", collective=True, verify=True, **SMALL)
    result = run_ior(cluster, params, ppn=2)
    assert result.verify_errors == 0


def test_collective_hdf5_shared(cluster):
    params = IorParams(api="HDF5", collective=True, verify=True, **SMALL)
    result = run_ior(cluster, params, ppn=2)
    assert result.verify_errors == 0


@pytest.mark.parametrize("file_per_proc", [True, False])
def test_hdf5_daos_async_pipelines_and_verifies(cluster, file_per_proc):
    params = IorParams(
        api="HDF5-DAOS", file_per_proc=file_per_proc, verify=True,
        fsync=True, oclass="S2", aio_queue_depth=4, **SMALL,
    )
    result = run_ior(cluster, params, ppn=2)
    assert result.verify_errors == 0
    assert result.max_write_bw > 0


def test_mpiio_collective_async_verifies(cluster):
    params = IorParams(
        api="MPIIO", collective=True, verify=True, aio_queue_depth=4, **SMALL
    )
    result = run_ior(cluster, params, ppn=2)
    assert result.verify_errors == 0


def test_hdf5_collective_async_verifies(cluster):
    params = IorParams(
        api="HDF5", collective=True, verify=True, aio_queue_depth=4, **SMALL
    )
    result = run_ior(cluster, params, ppn=2)
    assert result.verify_errors == 0


def test_segments_and_fsync(cluster):
    params = IorParams(
        api="DFS", segments=3, fsync=True, verify=True, oclass="S2",
        block_size=MiB, transfer_size=256 * KiB,
    )
    result = run_ior(cluster, params, ppn=2)
    assert result.verify_errors == 0
    phase = result.phases[0]
    assert phase.nbytes == 3 * MiB * 4


def test_repetitions_reported(cluster):
    params = IorParams(api="DFS", repetitions=2, oclass="S2", **SMALL)
    result = run_ior(cluster, params, ppn=1)
    assert len([p for p in result.phases if p.op == "write"]) == 2
    assert len([p for p in result.phases if p.op == "read"]) == 2
    assert "Max Write" in result.summary()


def test_write_only_and_read_requires_data(cluster):
    params = IorParams(api="DFS", read=False, oclass="S2", **SMALL)
    result = run_ior(cluster, params, ppn=2)
    assert result.max_read_bw == 0
    assert [p.op for p in result.phases] == ["write"]


def test_interleaved_layout_verifies(cluster):
    params = IorParams(
        api="DFS", interleaved=True, verify=True, oclass="SX", **SMALL
    )
    result = run_ior(cluster, params, ppn=2)
    assert result.verify_errors == 0


def test_reorder_tasks_off(cluster):
    params = IorParams(
        api="DFS", file_per_proc=True, reorder_tasks=False, verify=True,
        oclass="S2", **SMALL,
    )
    result = run_ior(cluster, params, ppn=2)
    assert result.verify_errors == 0


def test_ior_on_lustre():
    lustre = build_lustre_cluster(
        server_nodes=2, client_nodes=2, engine_spec=EngineSpec(targets=2)
    )
    params = IorParams(api="POSIX", file_per_proc=True, verify=True, **SMALL)
    result = run_ior(lustre, params, ppn=2)
    assert result.verify_errors == 0
    assert result.max_write_bw > 0


def test_ior_mpiio_on_lustre():
    lustre = build_lustre_cluster(
        server_nodes=2, client_nodes=2, engine_spec=EngineSpec(targets=2)
    )
    params = IorParams(api="MPIIO", collective=True, verify=True, **SMALL)
    result = run_ior(lustre, params, ppn=2)
    assert result.verify_errors == 0


def test_bandwidth_is_finite_and_sane(cluster):
    params = IorParams(api="DFS", file_per_proc=True, oclass="S2", **SMALL)
    result = run_ior(cluster, params, ppn=2)
    # cannot exceed the aggregate client NIC capacity (2 nodes x 22 GB/s)
    assert result.max_write_bw < 44e9
    assert result.max_read_bw < 44e9
