"""Tests for IOR reporting, the pattern module, and the bench harness."""

import pytest

from repro.bench.sweep import FigureData, Series
from repro.bench.tables import render_figure
from repro.daos.vos.payload import BytesPayload, PatternPayload
from repro.ior.config import IorParams
from repro.ior.pattern import file_seed, make_payload, verify_payload
from repro.ior.report import IorResult, PhaseResult
from repro.units import GiB, MiB


def test_pattern_seed_depends_on_path_only():
    assert file_seed("/a") == file_seed("/a")
    assert file_seed("/a") != file_seed("/b")


def test_make_and_verify_payload():
    payload = make_payload("/f", 4096, 128)
    assert verify_payload("/f", 4096, payload)
    assert not verify_payload("/f", 0, payload)
    assert not verify_payload("/g", 4096, payload)
    # a sliced window still verifies at its own offset
    assert verify_payload("/f", 4096 + 10, payload.slice(10, 100))


def test_verify_accepts_equal_bytes_content():
    payload = make_payload("/f", 0, 64)
    raw = BytesPayload(payload.materialize())
    assert verify_payload("/f", 0, raw)


def test_phase_result_bandwidth():
    phase = PhaseResult(op="write", repetition=0, seconds=2.0, nbytes=4 * GiB)
    assert phase.bandwidth == pytest.approx(2 * GiB)
    zero = PhaseResult(op="write", repetition=0, seconds=0.0, nbytes=1)
    assert zero.bandwidth == 0.0


def test_ior_result_max_selection_and_summary():
    params = IorParams(api="DFS", block_size=MiB, transfer_size=MiB)
    result = IorResult(params=params, nprocs=4, client_nodes=2)
    result.phases = [
        PhaseResult("write", 0, 2.0, 4 * GiB),
        PhaseResult("write", 1, 1.0, 4 * GiB),
        PhaseResult("read", 0, 1.0, 4 * GiB, verify_errors=3),
    ]
    assert result.max_write_bw == pytest.approx(4 * GiB)
    assert result.max_read_bw == pytest.approx(4 * GiB)
    assert result.verify_errors == 3
    text = result.summary()
    assert "Max Write" in text and "Max Read" in text
    assert "VERIFY ERRORS: 3" in text
    assert "-a DFS" in params.cli()


def test_series_and_figure_rendering():
    series_a = Series("alpha")
    series_a.add(1, 2 * GiB)
    series_a.add(4, 8 * GiB)
    series_b = Series("beta")
    series_b.add(1, 1 * GiB)  # no point at x=4
    fig = FigureData("Fig X", "demo", "nodes", "bw", [series_a, series_b])
    assert fig.labels() == ["alpha", "beta"]
    assert fig.series_by_label("beta").at(1) == GiB
    assert fig.series_by_label("beta").at(4) is None
    with pytest.raises(KeyError):
        fig.series_by_label("gamma")
    text = render_figure(fig)
    assert "Fig X" in text
    assert "alpha" in text and "beta" in text
    assert "2.00" in text and "8.00" in text
    assert "-" in text.splitlines()[-1]  # missing cell placeholder


def test_figure_series_xs():
    series = Series("s")
    series.add(2, 1.0)
    series.add(8, 2.0)
    assert series.xs == [2, 8]
