"""Tests for the IOR CLI, pool query, and the IO500-style harness."""

import pytest

from repro.bench.io500 import HARD_XFER, Io500Result, run_io500
from repro.cluster import small_cluster
from repro.ior.cli import build_parser, main, params_from_args
from repro.units import GiB, MiB


def test_cli_parser_defaults():
    args = build_parser().parse_args([])
    params = params_from_args(args)
    assert params.api == "DFS"
    assert params.block_size == 16 * MiB
    assert params.write and params.read


def test_cli_option_passthrough():
    args = build_parser().parse_args(
        ["-a", "DFS", "-F", "-b", "4m", "-t", "1m", "-O", "oclass=S2",
         "-O", "chunk_size=1m", "-R"]
    )
    params = params_from_args(args)
    assert params.file_per_proc and params.verify
    assert params.oclass == "S2"
    assert params.chunk_size == MiB


def test_cli_bad_option_rejected():
    args = build_parser().parse_args(["-O", "nonsense"])
    with pytest.raises(SystemExit):
        params_from_args(args)


def test_cli_write_and_read_only_conflict():
    args = build_parser().parse_args(["-w", "-r"])
    with pytest.raises(SystemExit):
        params_from_args(args)


def test_cli_end_to_end_daos(capsys):
    code = main(["-a", "DFS", "-F", "-b", "2m", "-t", "256k", "-R",
                 "-N", "1", "--ppn", "2", "--servers", "2",
                 "-O", "oclass=S2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Max Write" in out and "Max Read" in out


def test_cli_end_to_end_lustre(capsys):
    code = main(["-a", "POSIX", "-F", "-b", "2m", "-t", "256k", "-R",
                 "-N", "1", "--ppn", "2", "--servers", "2", "--lustre"])
    assert code == 0
    assert "Max Write" in capsys.readouterr().out


def test_cli_lustre_rejects_daos_apis():
    with pytest.raises(SystemExit):
        main(["-a", "DFS", "--lustre", "-N", "1", "--servers", "2"])


def test_pool_query_accounts_usage():
    cluster = small_cluster(server_nodes=2, client_nodes=1,
                            targets_per_engine=2)
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        before = yield from pool.query()
        cont = yield from pool.create_container("space", oclass="S2")
        oid = yield from cont.alloc_oid()
        obj = cont.open_object(oid)
        yield from obj.write(0, b"z" * (4 * MiB))
        obj.close()
        after = yield from pool.query()
        return before, after

    before, after = cluster.run(go())
    assert before["targets"] == 8
    assert after["capacity"] == before["capacity"]
    assert after["used"] >= before["used"] + 4 * MiB
    assert len(after["per_target"]) == 8


def test_io500_scoring_math():
    result = Io500Result(
        bandwidth={"a": 4 * GiB, "b": 16 * GiB},
        metadata={"c": 1e3, "d": 100e3},
    )
    assert result.bw_score == pytest.approx(8.0)
    assert result.md_score == pytest.approx(10.0)
    assert result.score == pytest.approx((8.0 * 10.0) ** 0.5)


def test_io500_harness_runs_all_phases():
    cluster = small_cluster(server_nodes=2, client_nodes=2,
                            targets_per_engine=2)
    result = run_io500(cluster, ppn=2, easy_block="1m",
                       hard_transfers=8, md_files=8)
    assert set(result.bandwidth) == {
        "ior-easy-write", "ior-easy-read",
        "ior-hard-write", "ior-hard-read",
    }
    assert set(result.metadata) == {
        "mdtest-create", "mdtest-stat", "mdtest-remove",
    }
    assert result.score > 0
    assert "SCORE" in result.summary()
    # the famously unaligned hard transfer really is unaligned
    assert HARD_XFER % 4096 != 0
