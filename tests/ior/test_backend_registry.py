"""The pluggable backend registry and capability-flag validation."""

import pytest

from repro.ior import IorParams
from repro.ior.backends import (
    Backend,
    available_apis,
    backend_class,
    register_backend,
    unregister_backend,
)
from repro.ior.cli import build_parser
from repro.units import KiB, MiB

SMALL = dict(block_size=2 * MiB, transfer_size=256 * KiB)


def test_builtin_apis_registered_in_cli_order():
    assert available_apis() == (
        "POSIX", "DFS", "MPIIO", "HDF5", "DAOS", "HDF5-DAOS"
    )


def test_unknown_api_lists_the_choices():
    with pytest.raises(ValueError) as err:
        IorParams(api="NFS", **SMALL)
    message = str(err.value)
    assert "api must be one of" in message
    for api in available_apis():
        assert api in message
    assert "'NFS'" in message


def test_duplicate_registration_rejected():
    class FirstBackend(Backend):
        name = "X-TEST"

    class SecondBackend(Backend):
        name = "X-TEST"

    register_backend(FirstBackend.name, FirstBackend)
    try:
        with pytest.raises(ValueError) as err:
            register_backend(SecondBackend.name, SecondBackend)
        assert "already registered" in str(err.value)
        assert "FirstBackend" in str(err.value)
        assert backend_class("X-TEST") is FirstBackend
    finally:
        unregister_backend("X-TEST")
    with pytest.raises(ValueError):
        backend_class("X-TEST")


def test_register_rejects_unnamed_and_non_backend():
    class Anonymous(Backend):
        pass  # name stays "?"

    with pytest.raises(ValueError):
        register_backend(Anonymous.name, Anonymous)

    class NotABackend:
        name = "X-NOT"

    with pytest.raises(ValueError):
        register_backend("X-NOT", NotABackend)


def test_registered_api_extends_validation_and_params():
    class PluginBackend(Backend):
        name = "X-PLUGIN"
        supports_async = True

    register_backend(PluginBackend.name, PluginBackend)
    try:
        params = IorParams(api="X-PLUGIN", aio_queue_depth=4, **SMALL)
        assert params.api == "X-PLUGIN"
        with pytest.raises(ValueError):
            IorParams(api="X-PLUGIN", collective=True, **SMALL)
    finally:
        unregister_backend("X-PLUGIN")


def test_capability_flags_match_the_old_constraints():
    # collective: MPIIO/HDF5 only (HDF5-DAOS bypasses MPI-IO entirely)
    for api in ("POSIX", "DFS", "DAOS", "HDF5-DAOS"):
        with pytest.raises(ValueError):
            IorParams(api=api, collective=True, **SMALL)
    IorParams(api="MPIIO", collective=True, **SMALL)
    IorParams(api="HDF5", collective=True, **SMALL)

    # async depth > 1: blocked on POSIX, open on object-native apis
    with pytest.raises(ValueError):
        IorParams(api="POSIX", aio_queue_depth=4, **SMALL)
    for api in ("DFS", "DAOS", "HDF5-DAOS"):
        IorParams(api=api, aio_queue_depth=4, **SMALL)

    # depth 0/1 never needs capability
    IorParams(api="POSIX", aio_queue_depth=1, **SMALL)


def test_cross_field_hooks():
    # MPIIO async rides the two-phase aggregators: -c required
    with pytest.raises(ValueError):
        IorParams(api="MPIIO", aio_queue_depth=4, **SMALL)
    IorParams(api="MPIIO", collective=True, aio_queue_depth=4, **SMALL)
    # HDF5 async rides the collective mpio VFD: shared file + -c required
    with pytest.raises(ValueError):
        IorParams(api="HDF5", aio_queue_depth=4, **SMALL)
    with pytest.raises(ValueError):
        IorParams(api="HDF5", collective=True, file_per_proc=True,
                  aio_queue_depth=4, **SMALL)
    IorParams(api="HDF5", collective=True, aio_queue_depth=4, **SMALL)
    # HDF5-DAOS has no VFD constraints: fpp and shared both pipeline
    IorParams(api="HDF5-DAOS", file_per_proc=True, aio_queue_depth=4, **SMALL)
    IorParams(api="HDF5-DAOS", aio_queue_depth=4, **SMALL)


def test_cli_choices_come_from_the_registry():
    parser = build_parser()
    action = next(a for a in parser._actions if a.dest == "api")
    assert tuple(action.choices) == available_apis()


def test_cb_buffer_option_parsed_and_validated():
    params = IorParams(api="MPIIO", collective=True, cb_buffer="1m", **SMALL)
    assert params.cb_buffer == MiB
    with pytest.raises(ValueError):
        IorParams(api="MPIIO", collective=True, cb_buffer=0, **SMALL)
