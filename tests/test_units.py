"""Tests for size/time helpers."""

import pytest

from repro.units import (
    GiB,
    KiB,
    MiB,
    TiB,
    fmt_bw,
    fmt_size,
    fmt_time,
    parse_size,
)


def test_parse_size_suffixes():
    assert parse_size("1m") == MiB
    assert parse_size("64M") == 64 * MiB
    assert parse_size("4k") == 4 * KiB
    assert parse_size("2g") == 2 * GiB
    assert parse_size("1t") == TiB
    assert parse_size("3mib") == 3 * MiB
    assert parse_size("7b") == 7
    assert parse_size("123") == 123
    assert parse_size(512) == 512


def test_parse_size_whitespace_and_case():
    assert parse_size("  8 K ") == 8 * KiB
    assert parse_size("1GB") == GiB


def test_parse_size_errors():
    with pytest.raises(ValueError):
        parse_size("abc")
    with pytest.raises(ValueError):
        parse_size("12q")
    with pytest.raises(ValueError):
        parse_size("")
    with pytest.raises(ValueError):
        parse_size(-1)


def test_fmt_size():
    assert fmt_size(512) == "512 B"
    assert fmt_size(1536) == "1.5 KiB"
    assert fmt_size(MiB) == "1.0 MiB"
    assert fmt_size(5 * TiB) == "5.0 TiB"


def test_fmt_bw_and_time():
    assert fmt_bw(GiB) == "1.00 GiB/s"
    assert fmt_time(5e-7) == "0.5 us"
    assert fmt_time(2e-3) == "2.00 ms"
    assert fmt_time(1.5) == "1.500 s"
