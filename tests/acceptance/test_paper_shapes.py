"""Acceptance tests: the paper's qualitative results must reproduce.

These run the real benchmark pipeline at reduced scale (16 MiB blocks,
1 and 8 client nodes) and assert the *shape* claims from DESIGN.md §4.
The full-scale sweep lives in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.cluster import build_lustre_cluster, nextgenio
from repro.ior import IorParams, run_ior


def point(nodes, api, oclass, fpp=True, block="16m", interleaved=False,
          transfer="1m", cluster=None, ppn=16):
    cluster = cluster or nextgenio(client_nodes=nodes)
    params = IorParams(
        api=api, file_per_proc=fpp, oclass=oclass, block_size=block,
        transfer_size=transfer, interleaved=interleaved,
    )
    result = run_ior(cluster, params, ppn=ppn)
    return result.max_write_bw, result.max_read_bw


@pytest.fixture(scope="module")
def fpp_small():
    """DFS S1/S2/SX at 1 client node."""
    return {oc: point(1, "DFS", oc) for oc in ("S1", "S2", "SX")}


@pytest.fixture(scope="module")
def fpp_large():
    """DFS S1/S2/SX at 8 client nodes (the 'most client nodes' regime)."""
    return {oc: point(8, "DFS", oc) for oc in ("S1", "S2", "SX")}


def test_fig1b_s2_best_write_for_few_writers(fpp_small):
    writes = {oc: w for oc, (w, _r) in fpp_small.items()}
    assert writes["S2"] > writes["S1"]
    assert writes["S2"] > writes["SX"]


def test_fig1b_sx_lowest_for_few_writers(fpp_small):
    writes = {oc: w for oc, (w, _r) in fpp_small.items()}
    assert writes["SX"] < writes["S1"]
    assert writes["SX"] < writes["S2"]


def test_fig1b_sx_best_write_under_high_contention(fpp_large):
    writes = {oc: w for oc, (w, _r) in fpp_large.items()}
    assert writes["SX"] > writes["S2"]
    assert writes["SX"] > writes["S1"]


def test_fig1a_s2_best_read(fpp_small, fpp_large):
    for data in (fpp_small, fpp_large):
        reads = {oc: r for oc, (_w, r) in data.items()}
        assert reads["S2"] >= reads["S1"] * 0.98
        assert reads["S2"] > reads["SX"]


def test_fig1_dfs_and_mpiio_similar_hdf5_much_lower():
    dfs_w, dfs_r = point(1, "DFS", "S2")
    mpiio_w, mpiio_r = point(1, "MPIIO", "S2")
    hdf5_w, hdf5_r = point(1, "HDF5", "S2")
    # DFS ~ MPI-IO over DFuse (within 10%)
    assert abs(dfs_w - mpiio_w) / dfs_w < 0.10
    assert abs(dfs_r - mpiio_r) / dfs_r < 0.10
    # HDF5 over DFuse much lower, both directions
    assert hdf5_w < 0.55 * dfs_w
    assert hdf5_r < 0.55 * dfs_r


def test_fig2_interfaces_similar_dfs_highest_write():
    results = {
        api: point(4, api, "SX", fpp=False)
        for api in ("DFS", "MPIIO", "HDF5")
    }
    writes = {api: w for api, (w, _r) in results.items()}
    reads = {api: r for api, (_w, r) in results.items()}
    assert writes["DFS"] == max(writes.values())
    # "similar performance achieved across interfaces"
    assert min(writes.values()) > 0.65 * max(writes.values())
    assert min(reads.values()) > 0.65 * max(reads.values())


def test_shared_file_close_to_file_per_process_on_daos():
    fpp_w, fpp_r = point(4, "DFS", "SX", fpp=True)
    shared_w, shared_r = point(4, "DFS", "SX", fpp=False)
    assert shared_w > 0.6 * fpp_w
    assert shared_r > 0.6 * fpp_r


def test_stark_contrast_with_parallel_filesystem():
    """DAOS hard/easy ratio far above Lustre hard/easy ratio."""
    daos_fpp_w, _ = point(2, "DFS", "SX", fpp=True)
    daos_shared_w, _ = point(2, "DFS", "SX", fpp=False, interleaved=True)

    lustre = build_lustre_cluster(server_nodes=8, client_nodes=2,
                                  stripe_count=8)
    lustre_fpp_w, _ = point(2, "POSIX", None, fpp=True, cluster=lustre)
    lustre2 = build_lustre_cluster(server_nodes=8, client_nodes=2,
                                   stripe_count=8)
    # unaligned interleaved shared write: the LDLM worst case
    lustre_shared_w, _ = point(
        2, "POSIX", None, fpp=False, cluster=lustre2,
        interleaved=True, block="16000000", transfer="1000000",
    )
    daos_ratio = daos_shared_w / daos_fpp_w
    lustre_ratio = lustre_shared_w / lustre_fpp_w
    assert daos_ratio > 0.6
    assert lustre_ratio < 0.5
    assert daos_ratio > 2 * lustre_ratio
