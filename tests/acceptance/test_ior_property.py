"""End-to-end property test: IOR write-then-verify never corrupts data,
for any backend and any (small) parameter combination.

This is the strongest single statement about the stack: every byte
travels through placement, chunking, the interface layers and back, and
is compared against the pure function of (path, offset) that produced it.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import small_cluster
from repro.ior import IorParams, run_ior
from repro.units import KiB


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    api=st.sampled_from(["POSIX", "DFS", "MPIIO", "HDF5", "DAOS"]),
    fpp=st.booleans(),
    oclass=st.sampled_from(["S1", "S2", "SX"]),
    xfer_kib=st.sampled_from([64, 96, 256]),
    blocks=st.integers(2, 6),
    segments=st.integers(1, 3),
    interleaved=st.booleans(),
)
def test_property_ior_roundtrip_verifies(
    api, fpp, oclass, xfer_kib, blocks, segments, interleaved
):
    cluster = small_cluster(server_nodes=2, client_nodes=2,
                            targets_per_engine=2)
    params = IorParams(
        api=api,
        file_per_proc=fpp,
        oclass=oclass,
        transfer_size=xfer_kib * KiB,
        block_size=blocks * xfer_kib * KiB,
        segments=segments,
        interleaved=interleaved and not fpp,
        verify=True,
    )
    result = run_ior(cluster, params, ppn=2)
    assert result.verify_errors == 0
    assert result.max_write_bw > 0
    assert result.max_read_bw > 0
