"""Acceptance: both resilience layers, end to end.

The test version of ``examples/failure_resilience.py`` — Raft-replicated
pool/container metadata survives a service-leader crash mid-session, an
RP_2G1 object survives a storage-target exclusion, and the rebuild
engine resyncs the excluded target back to full health — asserted
instead of printed, on a test-sized cluster.
"""

from repro.cluster import small_cluster
from repro.daos.oclass import RP_2G1

SENTENCE = b"forecast state vector"
REVISED = b"revised state vector "


def test_failure_resilience_scenario():
    cluster = small_cluster(server_nodes=3, client_nodes=1)
    client = cluster.new_client(0)
    report = {}

    def scenario():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("precious", oclass="RP_2G1")

        # --- metadata resilience: crash the Raft leader mid-session ---
        leader = cluster.daos.svc.leader()
        leader.crash()
        cluster.sim.schedule(5.0, leader.restart)
        # the next metadata op rides out the election transparently
        cont2 = yield from pool.create_container("post-failover")
        new_leader = None
        while new_leader is None:
            yield 0.05
            new_leader = cluster.daos.svc.leader()
        report["failover"] = (leader.node_id, new_leader.node_id)
        report["post_label"] = cont2.props["label"]

        # --- data resilience: lose a target under a replicated object ---
        oid = yield from cont.alloc_oid(RP_2G1)
        obj = cont.open_object(oid)
        yield from obj.write(0, SENTENCE * 1000)
        replicas = obj.layout.targets_for_dkey(0)
        report["replicas"] = list(replicas)
        yield from cluster.daos.exclude_target(
            pool.pool_map.uuid, replicas[0]
        )
        yield from pool.refresh_map()
        report["map_version"] = pool.pool_map.version
        survivor = cont.open_object(oid)
        data = yield from survivor.read(0, len(SENTENCE))
        report["degraded_read"] = data.materialize()
        survivor.close()

        # --- self-healing: write through the window, then reintegrate ---
        yield from obj.write(0, REVISED * 1000)
        yield from cluster.daos.reintegrate_target(
            pool.pool_map.uuid, replicas[0]
        )
        query = yield from cluster.daos.wait_rebuild(pool.pool_map.uuid)
        report["rebuild"] = query["rebuild"]
        report["health"] = (query["up_targets"], query["n_targets"],
                            query["targets"])
        yield from pool.refresh_map()
        healed = cont.open_object(oid)
        data = yield from healed.read(0, len(REVISED))
        obj.close()
        healed.close()
        return data.materialize()

    data = cluster.run(scenario(), limit=1e6)
    assert report["degraded_read"] == SENTENCE  # whole, from the survivor
    assert data == REVISED  # post-heal read sees the window write

    crashed, successor = report["failover"]
    assert successor != crashed  # leadership really moved
    assert report["post_label"] == "post-failover"
    assert len(report["replicas"]) == 2  # RP_2: two distinct targets
    assert report["replicas"][0] != report["replicas"][1]
    assert report["map_version"] >= 2  # exclusion bumped the pool map

    # the rebuild drained and the pool is fully healthy again
    assert report["rebuild"]["status"] == "done"
    assert report["rebuild"]["bytes_moved"] >= len(REVISED) * 1000
    up, total, statuses = report["health"]
    assert up == total and statuses == {}

    # the restarted ex-leader rejoined: all replicas live and safe
    cluster.sim.run(until=cluster.sim.now + 6.0)
    from repro.faults import check_raft_safety

    summary = check_raft_safety(cluster.daos.svc)
    assert summary["live"] == 3
