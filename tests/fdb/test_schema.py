"""Schema-key unit tests: canonical form, validation, query expansion."""

import pytest

from repro.errors import DerInval
from repro.fdb.schema import AXES, FieldKey, FieldQuery, make_fields
from repro.units import stable_seed


def test_canonical_zero_pads_and_round_trips():
    key = FieldKey("t2m", 500, 12, 1, "20200101")
    assert key.canonical == "t2m/0500/012/001/20200101"
    assert FieldKey.from_canonical(key.canonical) == key


def test_canonical_order_is_semantic_order():
    early = FieldKey("t2m", 500, 9, 0, "20200101")
    late = FieldKey("t2m", 500, 12, 0, "20200101")
    # without zero padding "12" < "9" lexicographically — the canonical
    # form is exactly what makes ordered prefix scans return step order
    assert early.canonical < late.canonical
    assert early < late


def test_seed_is_stable_content_hash():
    key = FieldKey("t2m", 1000, 12, 0, "20200101")
    assert key.seed == stable_seed(key.canonical)
    assert key.seed == FieldKey.from_canonical(key.canonical).seed


@pytest.mark.parametrize(
    "kwargs",
    [
        {"param": ""},
        {"param": "a/b"},
        {"param": "t2m,u10"},      # reserved metric-label character
        {"param": "t{2}m"},
        {"level": -1},
        {"level": 10000},
        {"step": 1000},
        {"member": -3},
        {"step": 1.5},
        {"date": "2020011"},
        {"date": "2020-1-1"},
    ],
)
def test_bad_axis_values_rejected(kwargs):
    base = dict(param="t2m", level=500, step=0, member=0, date="20200101")
    base.update(kwargs)
    with pytest.raises(DerInval):
        FieldKey(**base)


@pytest.mark.parametrize("text", ["", "t2m/0500", "t2m/x/012/001/20200101",
                                  "t2m/0500/012/001/20200101/extra"])
def test_bad_canonical_rejected(text):
    with pytest.raises(DerInval):
        FieldKey.from_canonical(text)


def test_query_scalars_normalise_to_tuples():
    query = FieldQuery(param="t2m", step=3)
    assert query.param == ("t2m",)
    assert query.step == (3,)
    assert query.level is None


def test_query_prefix_stops_at_first_wildcard():
    assert FieldQuery().prefix() == ""
    assert FieldQuery(param="t2m").prefix() == "t2m/"
    assert FieldQuery(param="t2m", level=500).prefix() == "t2m/0500/"
    # a multi-valued axis ends the shared prefix too
    assert FieldQuery(param="t2m", level=(500, 850)).prefix() == "t2m/"
    # a wildcard in the middle hides later concrete axes from the prefix
    assert FieldQuery(param="t2m", step=3).prefix() == "t2m/"


def test_query_fully_concrete_prefix_is_the_key_itself():
    key = FieldKey("t2m", 500, 12, 1, "20200101")
    assert FieldQuery.single(key).prefix() == key.canonical


def test_query_matches_every_axis():
    key = FieldKey("t2m", 500, 12, 1, "20200101")
    assert FieldQuery(param="t2m").matches(key)
    assert FieldQuery(param=("t2m", "u10"), step=(9, 12)).matches(key)
    assert not FieldQuery(param="u10").matches(key)
    assert not FieldQuery(param="t2m", member=0).matches(key)


def test_make_fields_is_a_dense_sorted_product():
    keys = make_fields(n_params=2, n_levels=2, n_steps=3, n_members=2,
                       n_dates=2)
    assert len(keys) == 2 * 2 * 3 * 2 * 2
    assert len(set(keys)) == len(keys)
    params = {key.param for key in keys}
    assert params == {"t2m", "u10"}
    # every key is canonical-parseable and the grid is deterministic
    assert keys == make_fields(n_params=2, n_levels=2, n_steps=3,
                               n_members=2, n_dates=2)


def test_make_fields_rejects_empty_axes():
    with pytest.raises(DerInval):
        make_fields(n_params=0)


def test_axes_cover_the_key_fields():
    key = FieldKey("t2m", 500, 12, 1, "20200101")
    assert tuple(getattr(key, axis) is not None for axis in AXES) == (
        True,
    ) * 5
