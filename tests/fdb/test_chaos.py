"""Chaos: fields archived before an engine crash are retrievable after
restart, bit-for-bit.

VOS shards persist across engine crash/restart (media outlives the
process), so a flushed forecast cycle must survive: the landmark is
readable and every field verifies against its content pattern. Run per
backend family — the native KV path and the DFS file-per-field path
exercise different recovery surfaces (object RPCs vs namespace walks).
"""

import pytest

from repro.cluster import build_cluster
from repro.faults import CrashEngine, FaultSchedule, RestartEngine
from repro.fdb import (
    Archiver,
    FdbParams,
    FieldQuery,
    Retriever,
    make_fields,
    make_index,
    make_mapping,
    setup_context,
)
from repro.units import KiB

pytestmark = pytest.mark.chaos

FIELD_BYTES = 64 * KiB


@pytest.mark.parametrize("backend", ["kv", "dfs"])
def test_retrieve_after_engine_restart(backend):
    params = FdbParams(backend=backend, n_params=2, n_steps=3,
                       field_bytes=FIELD_BYTES, depth=4)
    keys = make_fields(n_params=2, n_steps=3)
    cluster = build_cluster(server_nodes=2, client_nodes=1, seed=0xDA05)
    mapping = make_mapping(backend)
    index = make_index(params.resolved_index(), backend)

    def archive():
        ctx = yield from setup_context(cluster, params)
        archiver = Archiver(ctx, mapping, index, depth=params.depth)
        yield from archiver.setup(keys)
        yield from archiver.archive(keys, FIELD_BYTES)
        landmark = yield from archiver.flush("cycle-001")
        yield from archiver.close()
        return ctx, landmark

    ctx, landmark = cluster.run(archive())
    assert landmark["fields"] == len(keys)

    # crash one engine after the flush, restart it, let both fire
    cluster.inject(
        FaultSchedule()
        .at(0.05, CrashEngine(rank=1))
        .at(0.25, RestartEngine(rank=1))
    )

    def wait():
        yield 0.5

    cluster.run(wait())

    def retrieve():
        record = yield from index.get_landmark(ctx, "cycle-001")
        retriever = Retriever(ctx, mapping, index, depth=params.depth)
        got = yield from retriever.retrieve(FieldQuery())
        return record, retriever, got

    record, retriever, got = cluster.run(retrieve())
    # the landmark survived the crash...
    assert record == landmark
    # ...and every archived field came back, content-verified
    assert [key.canonical for key in got] == sorted(
        key.canonical for key in keys
    )
    assert retriever.fields == len(keys)
    assert retriever.bytes == len(keys) * FIELD_BYTES


def test_archive_rides_through_crash_restart_window():
    """An archive burst started before a crash completes correctly once
    the engine returns: RPCs to the crashed engine time out and retry,
    no acknowledged field is lost."""
    params = FdbParams(backend="kv", n_params=2, n_steps=3,
                       field_bytes=FIELD_BYTES, depth=4)
    keys = make_fields(n_params=2, n_steps=3)
    cluster = build_cluster(server_nodes=2, client_nodes=1, seed=0xDA05)
    mapping = make_mapping("kv")
    index = make_index("kv", "kv")
    cluster.inject(
        FaultSchedule()
        .at(0.05, CrashEngine(rank=1))
        .at(0.25, RestartEngine(rank=1))
    )

    def go():
        ctx = yield from setup_context(cluster, params)
        archiver = Archiver(ctx, mapping, index, depth=params.depth)
        yield from archiver.setup(keys)
        yield 0.04  # land the burst right before the crash window
        yield from archiver.archive(keys, FIELD_BYTES)
        landmark = yield from archiver.flush("cycle-001")
        yield from archiver.close()
        retriever = Retriever(ctx, mapping, index, depth=params.depth)
        got = yield from retriever.retrieve(FieldQuery())
        return landmark, got

    landmark, got = cluster.run(go())
    assert landmark["fields"] == len(keys)
    assert len(got) == len(keys)
