"""``repro-fdb`` CLI smoke: arguments land in FdbParams, artifacts write."""

import json

import pytest

from repro.fdb.cli import build_parser, main, params_from_args
from repro.units import MiB


def test_defaults_map_to_params():
    args = build_parser().parse_args([])
    params = args and params_from_args(args)
    assert params.backend == "kv"
    assert params.resolved_index() == "kv"
    assert params.field_bytes == 2 * MiB
    assert not params.sync
    assert params.verify


def test_size_suffixes_parse():
    args = build_parser().parse_args(
        ["--field-size", "64k", "--chunk-size", "2m"]
    )
    params = params_from_args(args)
    assert params.field_bytes == 64 * 1024
    assert params.chunk_bytes == 2 * MiB


def test_slo_rule_forces_a_timeline():
    args = build_parser().parse_args(
        ["--slo", "fdb.field.latency{backend=kv,phase=archive} "
                  "p99 < 10 over 3 windows"]
    )
    params = params_from_args(args)
    assert params.timeline_interval is not None
    assert len(params.slo_rules) == 1


def test_end_to_end_writes_report_and_timeline(tmp_path):
    report_path = tmp_path / "report.json"
    timeline_path = tmp_path / "timeline.json"
    rc = main([
        "--backend", "array", "--params", "2", "--steps", "2",
        "--field-size", str(64 * 1024), "--depth", "4",
        "--retrieve-param", "t2m",
        "--timeline-interval", "0.0002",
        "--report-out", str(report_path),
        "--timeline-out", str(timeline_path),
    ])
    assert rc == 0
    report = json.loads(report_path.read_text())
    assert report["config"]["backend"] == "array"
    assert report["archive"]["fields"] == 4
    assert report["retrieve"]["fields"] == 2
    timeline = json.loads(timeline_path.read_text())
    assert any(name.startswith("fdb.") for name in timeline["series"])


def test_unknown_backend_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--backend", "gpfs"])
