"""Mixed-backend FDB runs: verified round-trips, bitwise determinism.

Every backend archives a seeded grid, flushes a landmark and retrieves
the grid back with content verification on (a wrong byte anywhere raises
inside the run). Determinism is pinned the strong way: two full runs —
separate clusters, same params — must produce byte-identical report
*and* timeline JSON.
"""

import json

import pytest

from repro.fdb import (
    FdbParams,
    FieldQuery,
    build_report,
    render_report,
    run_fdb,
)
from repro.units import KiB

#: small grid every backend test shares: 2 params x 3 steps = 6 fields
GRID = dict(n_params=2, n_steps=3, field_bytes=64 * KiB, depth=4)


def _run(params):
    result, cluster = run_fdb(params)
    store = cluster.sim.timeline.store if cluster.sim.timeline else None
    report = build_report(result, store=store)
    timeline = store.to_json() if store is not None else None
    return result, report, timeline


@pytest.mark.parametrize("backend", ["kv", "array", "dfs", "lustre"])
def test_round_trip_verified_and_deterministic(backend):
    # interval sized to the ~1ms simulated run so windows actually fire
    params = FdbParams(backend=backend, timeline_interval=0.0002, **GRID)
    result, report, timeline = _run(params)

    assert timeline["n_windows"] > 0 and timeline["series"]

    assert report["archive"]["fields"] == 6
    assert report["retrieve"]["fields"] == 6  # verify=True checked bytes
    assert report["retrieve"]["bytes"] == 6 * 64 * KiB
    assert result["matched"] == sorted(result["matched"])
    assert report["landmarks"][0]["fields"] == 6
    render_report(report)  # must not raise

    result2, report2, timeline2 = _run(params)
    assert json.dumps(report, sort_keys=True) == json.dumps(
        report2, sort_keys=True
    )
    assert json.dumps(timeline, sort_keys=True) == json.dumps(
        timeline2, sort_keys=True
    )


def test_traced_sync_run_breakdown_sums_to_wall():
    params = FdbParams(backend="kv", tracing=True, sync=True, **GRID)
    _result, report, _timeline = _run(params)
    for phase in ("archive", "retrieve"):
        breakdown = report[phase]["breakdown"]
        assert breakdown, phase
        assert "engine" in breakdown
        # serial execution: exclusive layer times plus the wait
        # remainder sum to the phase wall exactly
        assert sum(breakdown.values()) == pytest.approx(
            report[phase]["wall"]
        )


def test_traced_async_run_breakdown_shows_pipelining():
    params = FdbParams(backend="kv", tracing=True, sync=False, **GRID)
    _result, report, _timeline = _run(params)
    breakdown = report["archive"]["breakdown"]
    assert breakdown["engine"] > 0
    # depth-4 pipelining overlaps spans, so total layer-seconds exceed
    # the wall — that surplus IS the concurrency the async path buys
    assert sum(breakdown.values()) > report["archive"]["wall"]


def test_async_pipeline_beats_sync_at_depth_4():
    sync_result, _, _ = _run(FdbParams(backend="kv", sync=True, **GRID))
    async_result, _, _ = _run(FdbParams(backend="kv", sync=False, **GRID))
    assert async_result["archive"]["wall"] < sync_result["archive"]["wall"]
    assert async_result["retrieve"]["wall"] < sync_result["retrieve"]["wall"]


def test_retrieve_params_narrow_the_scatter():
    params = FdbParams(backend="array", retrieve_params=("t2m",), **GRID)
    result, report, _ = _run(params)
    assert report["archive"]["fields"] == 6
    assert report["retrieve"]["fields"] == 3  # one param's steps only
    assert all(name.startswith("t2m/") for name in result["matched"])


def test_query_object_narrows_by_non_prefix_axis():
    """Axis predicates past the shared prefix are post-filtered (the
    index scan sees only the param prefix, the query trims the rest)."""
    from repro.fdb import Archiver, Retriever, make_fields, make_index, make_mapping
    from repro.fdb.run import setup_context
    from repro.cluster import build_cluster

    keys = make_fields(n_params=2, n_steps=3)
    params = FdbParams(backend="kv", **GRID)
    cluster = build_cluster(server_nodes=2, client_nodes=1)
    mapping, index = make_mapping("kv"), make_index("kv", "kv")

    def go():
        ctx = yield from setup_context(cluster, params)
        archiver = Archiver(ctx, mapping, index, depth=4)
        yield from archiver.setup(keys)
        yield from archiver.archive(keys, params.field_bytes)
        yield from archiver.flush("c1")
        yield from archiver.close()
        retriever = Retriever(ctx, mapping, index, depth=4)
        got = yield from retriever.retrieve(FieldQuery(step=(0, 6)))
        return [key.canonical for key in got]

    got = cluster.run(go())
    assert got == sorted(
        key.canonical for key in keys if key.step in (0, 6)
    )
