"""Tests for the cluster builders and presets."""

import pytest

from repro.cluster import (
    build_cluster,
    build_lustre_cluster,
    nextgenio,
    small_cluster,
)
from repro.units import GiB


def test_nextgenio_preset_geometry():
    cluster = nextgenio(client_nodes=3)
    assert len(cluster.servers) == 8
    assert len(cluster.clients) == 3
    assert cluster.daos.n_targets == 8 * 2 * 8  # servers x engines x targets
    assert cluster.pool.label == "tank"
    assert cluster.pool.n_targets == 128
    # a stable metadata leader exists after boot
    assert cluster.daos.svc.leader() is not None


def test_small_cluster_geometry():
    cluster = small_cluster(server_nodes=2, client_nodes=1,
                            targets_per_engine=2)
    assert cluster.daos.n_targets == 8
    assert cluster.pool.capacity_per_target == 4 * GiB


def test_cluster_new_client_binds_to_node():
    cluster = small_cluster(server_nodes=2, client_nodes=2,
                            targets_per_engine=2)
    client0 = cluster.new_client(0)
    client1 = cluster.new_client(1)
    assert client0.node is cluster.clients[0]
    assert client1.node is cluster.clients[1]
    assert client0.name != client1.name


def test_build_cluster_custom_seed_changes_nothing_structural():
    a = build_cluster(server_nodes=2, client_nodes=1, seed=1)
    b = build_cluster(server_nodes=2, client_nodes=1, seed=2)
    assert a.daos.n_targets == b.daos.n_targets
    assert a.pool.uuid == b.pool.uuid  # uuids are sequence-derived


def test_lustre_cluster_geometry_and_mount():
    cluster = build_lustre_cluster(server_nodes=2, client_nodes=2,
                                   stripe_count=4)
    assert len(cluster.fs.osts) == 2 * 2 * 8  # nodes x engines x targets
    assert cluster.fs.mds.default_stripe_count == 4
    mount = cluster.mount(1, name="probe")
    assert mount.node is cluster.clients[1]


def test_target_refs_resolve_hardware():
    cluster = small_cluster(server_nodes=2, client_nodes=1,
                            targets_per_engine=2)
    for tid in range(cluster.daos.n_targets):
        ref = cluster.daos.target(tid)
        assert ref.tid == tid
        assert ref.hw.write_link.capacity > 0
        assert ref.engine.target_hw(ref.local_tid) is ref.hw
