"""ExtentMap: the interval primitive under the page cache and writeback."""

import pytest

from repro.cache.extents import ExtentMap
from repro.daos.vos.payload import BytesPayload, PatternPayload, as_payload


def pat(origin, nbytes, seed=7):
    return PatternPayload(seed, origin, nbytes)


def test_insert_and_lookup_exact():
    m = ExtentMap()
    m.insert(100, pat(100, 50))
    cover = m.lookup(100, 50)
    assert len(cover) == 1
    start, length, ext = cover[0]
    assert (start, length) == (100, 50)
    assert ext.payload.materialize() == pat(100, 50).materialize()
    assert m.total_bytes == 50


def test_lookup_reports_holes_in_order():
    m = ExtentMap()
    m.insert(10, pat(10, 10))
    m.insert(40, pat(40, 10))
    cover = m.lookup(0, 60)
    shape = [(s, n, e is None) for s, n, e in cover]
    assert shape == [
        (0, 10, True),
        (10, 10, False),
        (20, 20, True),
        (40, 10, False),
        (50, 10, True),
    ]
    assert m.cached_bytes_in(0, 60) == 20


def test_zero_length_lookup_is_empty():
    m = ExtentMap()
    m.insert(0, pat(0, 10))
    assert m.lookup(5, 0) == []
    assert m.cached_bytes_in(5, 0) == 0


def test_insert_empty_payload_rejected():
    with pytest.raises(ValueError):
        ExtentMap().insert(0, as_payload(b""))


def test_overwrite_newest_wins():
    m = ExtentMap()
    m.insert(0, BytesPayload(b"a" * 30))
    m.insert(10, BytesPayload(b"b" * 10))
    assert m.total_bytes == 30
    parts = [
        (s, ext.payload.slice(s - ext.start, s - ext.start + n).materialize())
        for s, n, ext in m.lookup(0, 30)
    ]
    assert parts == [(0, b"a" * 10), (10, b"b" * 10), (20, b"a" * 10)]


def test_overwrite_straddling_trims_both_sides():
    m = ExtentMap()
    m.insert(0, BytesPayload(b"x" * 10))
    m.insert(20, BytesPayload(b"y" * 10))
    m.insert(5, BytesPayload(b"Z" * 20))  # clips both neighbours
    assert m.spans() == [(0, 5), (5, 20), (25, 5)]
    assert m.total_bytes == 30


def test_merge_coalesces_adjacent_extents():
    m = ExtentMap()
    m.insert(0, pat(0, 10), merge=True)
    m.insert(20, pat(20, 10), merge=True)
    assert len(m) == 2
    # the gap-filler bridges both neighbours into one extent
    m.insert(10, pat(10, 10), merge=True)
    assert m.spans() == [(0, 30)]
    ext = next(iter(m))
    assert ext.payload.materialize() == pat(0, 30).materialize()


def test_merge_stays_lazy_for_pattern_payloads():
    m = ExtentMap()
    for i in range(8):
        m.insert(i * 100, pat(i * 100, 100), merge=True)
    ext = next(iter(m))
    assert isinstance(ext.payload, PatternPayload)
    assert ext.nbytes == 800


def test_remove_range_partial():
    m = ExtentMap()
    m.insert(0, pat(0, 100))
    assert m.remove_range(30, 40) == 40
    assert m.spans() == [(0, 30), (70, 30)]
    assert m.total_bytes == 60
    # the trimmed halves keep the right data
    lo = m.lookup(0, 30)[0][2]
    hi = m.lookup(70, 30)[0][2]
    assert lo.payload.materialize() == pat(0, 30).materialize()
    assert hi.payload.materialize() == pat(70, 30).materialize()


def test_remove_range_no_overlap_is_noop():
    m = ExtentMap()
    m.insert(0, pat(0, 10))
    assert m.remove_range(50, 10) == 0
    assert m.spans() == [(0, 10)]


def test_remove_identity():
    m = ExtentMap()
    kept = m.insert(0, pat(0, 10))
    other = m.insert(10, pat(10, 10))
    assert m.remove(other) is True
    assert m.remove(other) is False
    assert m.spans() == [(0, 10)]
    assert m.remove(kept) is True
    assert m.total_bytes == 0


def test_pop_first_run_takes_contiguous_prefix():
    m = ExtentMap()
    m.insert(0, pat(0, 10), merge=True)
    m.insert(10, pat(10, 10), merge=True)
    m.insert(50, pat(50, 10), merge=True)
    off, payload = m.pop_first_run(max_bytes=100)
    assert (off, payload.nbytes) == (0, 20)
    assert payload.materialize() == pat(0, 20).materialize()
    assert m.spans() == [(50, 10)]


def test_pop_first_run_respects_cap_and_splits():
    m = ExtentMap()
    m.insert(0, pat(0, 100), merge=True)
    off, payload = m.pop_first_run(max_bytes=64)
    assert (off, payload.nbytes) == (0, 64)
    assert m.spans() == [(64, 36)]
    off2, payload2 = m.pop_first_run(max_bytes=64)
    assert (off2, payload2.nbytes) == (64, 36)
    assert payload2.materialize() == pat(64, 36).materialize()
    assert m.total_bytes == 0


def test_pop_first_run_empty_returns_none():
    assert ExtentMap().pop_first_run(64) is None


def test_clear():
    m = ExtentMap()
    m.insert(0, pat(0, 10))
    assert m.clear() == 10
    assert m.total_bytes == 0
    assert len(m) == 0
