"""Cache-off byte-identity: the zero-cost guarantee, pinned.

The subsystem's acceptance bar is that the default ``none`` mode leaves
every simulated timing untouched — these figures were captured on the
seed tree *before* repro.cache existed and must stay bit-exact (pure
float equality, no tolerance). Any drift means a disabled-path
perturbation and is a bug, not a recalibration.

The second half pins that cached runs are themselves deterministic:
same seed + same config => identical bandwidth, twice.
"""

import pytest

from repro.cluster import nextgenio
from repro.ior import IorParams, run_ior

#: (api, file_per_proc, interleaved) -> (write_bw, read_bw), captured at
#: commit c446e9d (pre-cache seed): 1 client node, 4m block, 1m
#: transfer, ppn 4, oclass SX.
SEED_FIGURES = {
    ("POSIX", True, False): (6024349749.956886, 4248193884.219982),
    ("DFS", True, False): (6142348807.511658, 4306533837.826945),
    ("POSIX", False, True): (6129249588.669746, 4248193884.219982),
    ("MPIIO", True, False): (6010942525.4891, 4241522557.070989),
    ("HDF5", True, False): (1641572949.8746657, 1876602550.7834647),
}


def run_point(api, fpp, interleaved, cache_mode="none"):
    cluster = nextgenio(client_nodes=1)
    params = IorParams(
        api=api,
        file_per_proc=fpp,
        interleaved=interleaved,
        oclass="SX",
        block_size="4m",
        transfer_size="1m",
        cache_mode=cache_mode,
    )
    result = run_ior(cluster, params, ppn=4)
    return result.max_write_bw, result.max_read_bw


@pytest.mark.parametrize("api,fpp,interleaved", sorted(SEED_FIGURES))
def test_cache_off_figures_byte_identical_to_seed(api, fpp, interleaved):
    assert run_point(api, fpp, interleaved) == SEED_FIGURES[
        (api, fpp, interleaved)
    ]


@pytest.mark.parametrize("mode", ["readonly", "writeback"])
def test_cached_runs_are_deterministic(mode):
    first = run_point("POSIX", True, False, cache_mode=mode)
    second = run_point("POSIX", True, False, cache_mode=mode)
    assert first == second


def test_writeback_improves_dfuse_fpp_write_bandwidth():
    """The acceptance-criteria claim, at figure scale: DFuse (POSIX api)
    file-per-process writes must get measurably faster in writeback."""
    base_w, base_r = run_point("POSIX", True, False, cache_mode="none")
    wb_w, wb_r = run_point("POSIX", True, False, cache_mode="writeback")
    assert wb_w > base_w * 1.2, (wb_w, base_w)
    assert wb_r >= base_r  # reads never regress
