"""Integration: the caching tier wired through DFS and DFuse.

Runs real workloads over a small cluster in the three cache modes and
checks (a) data correctness under caching, (b) the aggregation wins the
subsystem exists for (writeback faster than pass-through, read-ahead
hits), and (c) instrumentation shows up in the metrics registry.
"""

import pytest

from repro.cache.config import CacheConfig
from repro.cluster import small_cluster
from repro.daos.vos.payload import PatternPayload
from repro.dfs import Dfs
from repro.dfuse import DFuseMount
from repro.units import KiB, MiB


@pytest.fixture()
def cluster():
    return small_cluster(server_nodes=2, client_nodes=2,
                         targets_per_engine=2)


def mount_dfs(cluster, mode, name, **cfg_over):
    """Task helper factory: a fresh container + Dfs in ``mode``."""
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container(name, oclass="S2")
        cache = (CacheConfig(mode=mode, capacity="8m", **cfg_over)
                 if mode != "none" else None)
        return (yield from Dfs.mount(cont, cache=cache))

    return cluster.run(setup())


def pat(origin, nbytes, seed=21):
    return PatternPayload(seed, origin, nbytes)


# ------------------------------------------------------------- correctness
@pytest.mark.parametrize("mode", ["none", "readonly", "writeback"])
def test_dfs_write_read_roundtrip(cluster, mode):
    dfs = mount_dfs(cluster, mode, f"rt-{mode}")

    def go():
        f = yield from dfs.open_file("/f", create=True)
        for i in range(8):
            yield from f.write(i * 256 * KiB, pat(i * 256 * KiB, 256 * KiB))
        yield from f.sync()
        out = []
        for i in range(8):
            part = yield from f.read(i * 256 * KiB, 256 * KiB)
            out.append(part.materialize())
        yield from f.flush()
        f.close()
        return b"".join(out)

    assert cluster.run(go()) == pat(0, 2 * MiB).materialize()


@pytest.mark.parametrize("mode", ["readonly", "writeback"])
def test_dfuse_roundtrip_and_stat(cluster, mode):
    dfs = mount_dfs(cluster, mode, f"fuse-{mode}")
    mount = DFuseMount(dfs, cache=dfs.cache)

    def go():
        fh = yield from mount.open("/f", ("w", "creat"))
        yield from fh.pwrite(0, pat(0, 3 * MiB))
        yield from fh.fsync()
        # read twice: second pass must come from the page cache
        first = yield from fh.pread(0, 3 * MiB)
        second = yield from fh.pread(0, 3 * MiB)
        st = yield from mount.stat("/f")
        st2 = yield from mount.stat("/f")  # attr-cache hit
        yield from fh.close()
        return first.materialize(), second.materialize(), st.size, st2.size

    first, second, size, size2 = cluster.run(go())
    expected = pat(0, 3 * MiB).materialize()
    assert first == expected and second == expected
    assert size == 3 * MiB and size2 == 3 * MiB


def test_writeback_read_your_writes_before_flush(cluster):
    dfs = mount_dfs(cluster, "writeback", "ryw", wb_watermark="64m")

    def go():
        f = yield from dfs.open_file("/f", create=True)
        yield from f.write(0, pat(0, 64 * KiB))
        assert f.wb.dirty_bytes == 64 * KiB  # still buffered
        back = yield from f.read(0, 64 * KiB)
        data = back.materialize()
        yield from f.sync()
        assert f.wb.dirty_bytes == 0
        f.close()
        return data

    assert cluster.run(go()) == pat(0, 64 * KiB).materialize()


def test_writeback_dirty_data_survives_lru_pressure(cluster):
    """Dirty write-behind data is never evicted — only the (clean) page
    cache obeys the LRU budget."""
    dfs = mount_dfs(cluster, "writeback", "pressure",
                    wb_watermark="64m")
    mount = DFuseMount(dfs, cache=dfs.cache)

    def go():
        fh = yield from mount.open("/f", ("w", "creat"))
        # dirty bytes exceed the 8 MiB page budget, but live in the
        # write-behind buffer, not the page cache
        yield from fh.pwrite(0, pat(0, 12 * MiB))
        back = yield from fh.pread(0, 12 * MiB)
        yield from fh.close()
        return back.materialize()

    assert cluster.run(go()) == pat(0, 12 * MiB).materialize()


def test_truncate_invalidates_other_handle(cluster):
    dfs = mount_dfs(cluster, "readonly", "trunc-inval")

    def go():
        a = yield from dfs.open_file("/f", create=True)
        yield from a.write(0, pat(0, MiB))
        b = yield from dfs.open_file("/f")
        before = yield from b.get_size()
        yield from a.truncate(64 * KiB)
        after = yield from b.read(0, MiB)  # epoch bump forces re-query
        a.close()
        b.close()
        return before, after.nbytes

    before, after = cluster.run(go())
    assert before == MiB
    assert after == 64 * KiB


# ------------------------------------------------------------- performance
def timed_fpp_write(cluster, mode, nbytes=4 * MiB, xfer=256 * KiB):
    dfs = mount_dfs(cluster, mode, f"perf-{mode}")
    mount = DFuseMount(dfs, cache=dfs.cache)
    sim = cluster.sim

    def go():
        fh = yield from mount.open("/f", ("w", "creat"))
        t0 = sim.now
        for off in range(0, nbytes, xfer):
            yield from fh.pwrite(off, pat(off, xfer))
        yield from fh.fsync()
        elapsed = sim.now - t0
        yield from fh.close()
        return elapsed

    return cluster.run(go())


def test_writeback_beats_passthrough_on_dfuse_writes():
    base = timed_fpp_write(
        small_cluster(server_nodes=2, client_nodes=2, targets_per_engine=2),
        "none",
    )
    cached = timed_fpp_write(
        small_cluster(server_nodes=2, client_nodes=2, targets_per_engine=2),
        "writeback",
    )
    # coalescing 16 transfers into large contiguous writes must pay
    # measurably less per-op overhead than pass-through
    assert cached < base * 0.9, (cached, base)


def test_readahead_serves_sequential_stream(cluster):
    dfs = mount_dfs(cluster, "readonly", "ra-seq", readahead_window="1m")
    cluster.observe(tracing=False, metrics=True)

    def go():
        f = yield from dfs.open_file("/f", create=True)
        yield from f.write(0, pat(0, 4 * MiB))
        f.close()
        g = yield from dfs.open_file("/f")
        for off in range(0, 4 * MiB, 128 * KiB):
            part = yield from g.read(off, 128 * KiB)
            assert part.nbytes == 128 * KiB
        g.close()
        return g.ra.prefetched_bytes

    prefetched = cluster.run(go())
    assert prefetched > 0
    counters = cluster.sim.metrics.counters
    ra_hits = sum(
        c.value for n, c in counters.items()
        if n.startswith("cache.ra.hit_bytes{node=")
    )
    assert ra_hits > 0


# ------------------------------------------------------------- metrics/obs
def test_cache_metrics_and_spans_flow_through_obs(cluster):
    cluster.observe(tracing=True, metrics=True)
    dfs = mount_dfs(cluster, "writeback", "obs")
    mount = DFuseMount(dfs, cache=dfs.cache)

    def go():
        fh = yield from mount.open("/f", ("w", "creat"))
        yield from fh.pwrite(0, pat(0, 2 * MiB))
        yield from fh.fsync()
        yield from fh.pread(0, 2 * MiB)
        yield from fh.pread(0, 2 * MiB)
        yield from fh.close()
        return None

    cluster.run(go())
    counters = cluster.sim.metrics.counters
    assert counters["cache.wb.buffered_bytes"].value == 2 * MiB
    assert counters["cache.wb.flush_writes"].value >= 1
    page_hits = sum(
        c.value for n, c in counters.items()
        if n.startswith("cache.page.hit_bytes{node=")
    )
    assert page_hits >= 2 * MiB
    assert "cache.wb.flush_latency" in cluster.sim.metrics.histograms
    layers = {span.layer for span in cluster.sim.tracer.spans}
    assert "cache" in layers
