"""CacheConfig validation/budgeting, ReadAhead detection, TtlCache."""

import pytest

from repro.cache.attrs import TtlCache
from repro.cache.config import NODE_MEMORY_FRACTION, CacheConfig
from repro.cache.readahead import ReadAhead
from repro.hardware.specs import NodeSpec
from repro.units import GiB, KiB, MiB


class FakeSim:
    def __init__(self):
        self.now = 0.0
        self.metrics = None


# ------------------------------------------------------------------ config
def test_default_mode_is_zero_cost_none():
    cfg = CacheConfig()
    assert cfg.mode == "none"
    assert not cfg.enabled
    assert not cfg.writeback


def test_bad_mode_rejected():
    with pytest.raises(ValueError):
        CacheConfig(mode="writethrough")


def test_size_fields_accept_suffix_strings():
    cfg = CacheConfig(mode="readonly", capacity="256m",
                      readahead_window="4m", wb_watermark="8m",
                      wb_max_extent="32m")
    assert cfg.capacity == 256 * MiB
    assert cfg.readahead_window == 4 * MiB
    assert cfg.wb_watermark == 8 * MiB
    assert cfg.wb_max_extent == 32 * MiB


def test_resolve_budget_from_node_memory_split_by_ppn():
    spec = NodeSpec(memory=192 * GiB)
    cfg = CacheConfig(mode="readonly").resolve(spec, ppn=16)
    assert cfg.capacity == int(192 * GiB * NODE_MEMORY_FRACTION) // 16
    assert cfg.copy_bw == spec.memory_copy_bw
    # explicit capacity wins over the hardware model
    explicit = CacheConfig(mode="readonly", capacity=MiB).resolve(spec, 16)
    assert explicit.capacity == MiB


def test_resolve_floors_tiny_budgets():
    spec = NodeSpec(memory=MiB)
    cfg = CacheConfig(mode="readonly").resolve(spec, ppn=64)
    assert cfg.capacity == 64 * KiB


def test_copy_cost_scales_with_bandwidth():
    cfg = CacheConfig(mode="readonly", capacity=MiB, copy_bw=1e9)
    assert cfg.copy_cost(1_000_000) == pytest.approx(1e-3)


# ------------------------------------------------------------------ readahead
def ra(min_run=2, window="1m"):
    return ReadAhead(CacheConfig(mode="readonly", capacity=MiB,
                                 readahead_min_run=min_run,
                                 readahead_window=window))


def test_sequential_detection_needs_min_run():
    eng = ra(min_run=3)
    eng.observe(0, 100)
    assert not eng.sequential and eng.window() == 0
    eng.observe(100, 100)
    assert not eng.sequential
    eng.observe(200, 100)
    assert eng.sequential
    assert eng.window() == MiB


def test_random_access_resets_run():
    eng = ra()
    eng.observe(0, 100)
    eng.observe(100, 100)
    assert eng.sequential
    eng.observe(5000, 100)  # seek
    assert not eng.sequential
    eng.observe(5100, 100)
    assert eng.sequential  # re-detected


def test_backward_read_is_not_sequential():
    eng = ra()
    eng.observe(1000, 100)
    eng.observe(900, 100)
    assert not eng.sequential


# ------------------------------------------------------------------ ttl cache
def test_ttl_cache_expires_on_sim_clock():
    sim = FakeSim()
    cache = TtlCache(sim, ttl=1.0)
    cache.put("/a", "stat-a")
    assert cache.get("/a") == "stat-a"
    sim.now = 0.9
    assert cache.get("/a") == "stat-a"
    sim.now = 2.1
    assert cache.get("/a") is None  # expired
    assert len(cache) == 0


def test_ttl_cache_invalidate_and_prefix():
    sim = FakeSim()
    cache = TtlCache(sim, ttl=100.0)
    cache.put("/d", "dir")
    cache.put("/d/x", 1)
    cache.put("/d/y", 2)
    cache.put("/other", 3)
    cache.invalidate("/d/x")
    assert cache.get("/d/x") is None
    cache.invalidate_prefix("/d")
    assert cache.get("/d") is None
    assert cache.get("/d/y") is None
    assert cache.get("/other") == 3
