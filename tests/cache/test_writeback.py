"""WriteBehind: coalescing, watermark, latched errors, typed surfacing."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.writeback import DIRTY_GAUGE, WriteBehind
from repro.daos.vos.payload import PatternPayload
from repro.errors import CacheWritebackError, DerTimedOut


class FakeGauge:
    def __init__(self):
        self.value = 0.0

    def add(self, now, delta):
        self.value += delta


class FakeMetrics:
    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.observed = []

    def incr(self, name, amount=1.0):
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge(self, name):
        return self.gauges.setdefault(name, FakeGauge())

    def observe(self, name, value):
        self.observed.append((name, value))


class FakeSim:
    def __init__(self, metrics=True):
        self.now = 0.0
        self.metrics = FakeMetrics() if metrics else None


def drive(gen):
    """Run a task generator to completion outside the simulator."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


def pat(origin, nbytes):
    return PatternPayload(13, origin, nbytes)


def make_wb(**over):
    cfg = CacheConfig(mode="writeback", capacity="1m", **over)
    return WriteBehind(cfg, FakeSim(), path="/f")


def test_buffer_coalesces_sequential_writes():
    wb = make_wb()
    for i in range(8):
        wb.buffer(i * 100, pat(i * 100, 100))
    assert wb.dirty_bytes == 800
    assert wb.pending() == [(0, 800)]  # one merged extent, not eight


def test_watermark_threshold():
    wb = make_wb(wb_watermark=300)
    wb.buffer(0, pat(0, 200))
    assert not wb.need_flush
    wb.buffer(200, pat(200, 100))
    assert wb.need_flush


def test_flush_issues_coalesced_writes_capped_at_max_extent():
    wb = make_wb(wb_max_extent=256)
    for i in range(6):
        wb.buffer(i * 100, pat(i * 100, 100))
    calls = []

    def write_fn(offset, payload):
        calls.append((offset, payload.nbytes))
        yield 0.0

    assert drive(wb.flush(write_fn)) is True
    assert wb.dirty_bytes == 0
    assert calls == [(0, 256), (256, 256), (512, 88)]
    got = b"".join(pat(off, n).materialize() for off, n in calls)
    assert got == pat(0, 600).materialize()


def test_flush_failure_keeps_data_and_latches():
    wb = make_wb()
    wb.buffer(0, pat(0, 500))

    def broken(offset, payload):
        raise DerTimedOut("engine down")
        yield  # pragma: no cover

    assert drive(wb.flush(broken)) is False
    assert wb.dirty_bytes == 500  # nothing lost
    assert isinstance(wb.error, DerTimedOut)
    with pytest.raises(CacheWritebackError) as err:
        wb.raise_pending()
    assert err.value.path == "/f"
    assert err.value.lost_bytes == 500
    assert err.value.pending == [(0, 500)]
    assert isinstance(err.value.cause, DerTimedOut)


def test_retry_after_recovery_clears_latch():
    wb = make_wb()
    wb.buffer(0, pat(0, 100))
    attempts = {"n": 0}

    def flaky(offset, payload):
        attempts["n"] += 1
        if attempts["n"] == 1:
            raise DerTimedOut("first try fails")
        yield 0.0

    assert drive(wb.flush(flaky)) is False
    assert drive(wb.flush(flaky)) is True
    assert wb.error is None
    assert wb.dirty_bytes == 0
    wb.raise_pending()  # no-op once clean


def test_dirty_gauge_tracks_buffer_and_flush():
    wb = make_wb()
    gauge = wb.sim.metrics.gauge(DIRTY_GAUGE)
    wb.buffer(0, pat(0, 300))
    assert gauge.value == 300

    def ok(offset, payload):
        yield 0.0

    drive(wb.flush(ok))
    assert gauge.value == 0
    counters = wb.sim.metrics.counters
    assert counters["cache.wb.flush_writes"] == 1
    assert counters["cache.wb.flushed_bytes"] == 300
    assert any(n == "cache.wb.flush_latency"
               for n, _v in wb.sim.metrics.observed)


def test_overlay_serves_read_your_writes():
    wb = make_wb()
    wb.buffer(100, pat(100, 50))
    cover = wb.overlay(80, 100)
    shape = [(s, n, e is None) for s, n, e in cover]
    assert shape == [(80, 20, True), (100, 50, False), (150, 30, True)]
    assert wb.high_water() == 150


def test_discard_drops_everything():
    wb = make_wb()
    wb.buffer(0, pat(0, 100))
    wb.error = DerTimedOut("x")
    assert wb.discard() == 100
    assert wb.dirty_bytes == 0
    assert wb.error is None
