"""PageCache: LRU under a byte budget, epoch invalidation, metrics."""

import pytest

from repro.cache.pages import PageCache
from repro.daos.vos.payload import PatternPayload


class FakeMetrics:
    def __init__(self):
        self.counters = {}

    def incr(self, name, amount=1.0):
        self.counters[name] = self.counters.get(name, 0.0) + amount


class FakeSim:
    def __init__(self):
        self.metrics = FakeMetrics()


def pat(origin, nbytes, seed=3):
    return PatternPayload(seed, origin, nbytes)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PageCache(0)


def test_miss_then_hit():
    sim = FakeSim()
    cache = PageCache(1000, sim)
    assert [seg for seg in cache.lookup("f", 0, 0, 100)] == [(0, 100, None)]
    cache.insert("f", 0, 0, pat(0, 100))
    cover = cache.lookup("f", 0, 0, 100)
    assert len(cover) == 1
    assert cover[0][2].materialize() == pat(0, 100).materialize()
    c = sim.metrics.counters
    assert c["cache.page.miss_bytes"] == 100
    assert c["cache.page.hit_bytes"] == 100


def test_partial_hit_returns_holes():
    cache = PageCache(1000)
    cache.insert("f", 0, 50, pat(50, 50))
    cover = cache.lookup("f", 0, 0, 150)
    shape = [(s, n, p is None) for s, n, p in cover]
    assert shape == [(0, 50, True), (50, 50, False), (100, 50, True)]


def test_lru_evicts_oldest_first():
    sim = FakeSim()
    cache = PageCache(300, sim)
    cache.insert("f", 0, 0, pat(0, 100))
    cache.insert("f", 0, 100, pat(100, 100))
    cache.insert("f", 0, 200, pat(200, 100))
    assert cache.used_bytes == 300
    # touch the oldest extent so the middle one becomes LRU
    cache.lookup("f", 0, 0, 100)
    cache.insert("f", 0, 300, pat(300, 100))
    assert cache.used_bytes == 300
    assert sim.metrics.counters["cache.page.evictions"] == 1
    # [100,200) was evicted; [0,100) survived its touch
    assert cache.lookup("f", 0, 100, 100)[0][2] is None
    assert cache.lookup("f", 0, 0, 100)[0][2] is not None


def test_eviction_spans_files():
    cache = PageCache(200)
    cache.insert("a", 0, 0, pat(0, 100))
    cache.insert("b", 0, 0, pat(0, 100, seed=9))
    cache.insert("c", 0, 0, pat(0, 100, seed=11))
    assert cache.used_bytes == 200
    assert cache.lookup("a", 0, 0, 100)[0][2] is None  # oldest, evicted
    assert cache.lookup("b", 0, 0, 100)[0][2] is not None


def test_oversized_insert_keeps_budget_tail():
    cache = PageCache(100)
    cache.insert("f", 0, 0, pat(0, 250))
    assert cache.used_bytes == 100
    # the most recent bytes of the stream survive
    cover = cache.lookup("f", 0, 150, 100)
    assert cover[0][2].materialize() == pat(150, 100).materialize()
    assert cache.lookup("f", 0, 0, 150)[0][2] is None


def test_epoch_bump_invalidates_file():
    sim = FakeSim()
    cache = PageCache(1000, sim)
    cache.insert("f", 0, 0, pat(0, 100))
    cache.insert("g", 0, 0, pat(0, 100))
    assert cache.lookup("f", 1, 0, 100)[0][2] is None  # stale epoch dropped
    assert cache.used_bytes == 100  # g untouched
    assert sim.metrics.counters["cache.page.epoch_invalidations"] == 1
    # data cached under the new epoch serves normally
    cache.insert("f", 1, 0, pat(0, 100, seed=5))
    assert cache.lookup("f", 1, 0, 100)[0][2] is not None


def test_invalidate_file_and_range():
    cache = PageCache(1000)
    cache.insert("f", 0, 0, pat(0, 100))
    cache.invalidate_range("f", 25, 50)
    cover = cache.lookup("f", 0, 0, 100)
    shape = [(s, n, p is None) for s, n, p in cover]
    assert shape == [(0, 25, False), (25, 50, True), (75, 25, False)]
    assert cache.used_bytes == 50
    cache.invalidate_file("f")
    assert cache.used_bytes == 0
    assert cache.lookup("f", 0, 0, 100)[0][2] is None


def test_overwrite_insert_accounting_stays_consistent():
    cache = PageCache(1000)
    cache.insert("f", 0, 0, pat(0, 100))
    cache.insert("f", 0, 50, pat(50, 100, seed=8))  # overlaps the first
    assert cache.used_bytes == 150
    got = b"".join(
        p.materialize() for _s, _n, p in cache.lookup("f", 0, 0, 150)
    )
    expected = (
        pat(0, 50).materialize() + pat(50, 100, seed=8).materialize()
    )
    assert got == expected
