"""Unit tests for the shared QoS primitives (``repro.qos``)."""

import pytest

from repro.errors import DerInval
from repro.qos import TokenBucket, bottleneck_cap
from repro.rebuild.throttle import RebuildThrottle
from repro.sim.core import Simulator


class _Link:
    def __init__(self, capacity):
        self.capacity = capacity


# --------------------------------------------------------------- bottleneck
def test_bottleneck_cap_picks_binding_link():
    links = [(_Link(100.0), 1.0), (_Link(400.0), 8.0), (_Link(60.0), 1.0)]
    # binding ratio is 400/8 = 50; a quarter of that is 12.5
    assert bottleneck_cap(links, 0.25) == pytest.approx(12.5)


def test_bottleneck_cap_disabled_at_full_fraction():
    links = [(_Link(100.0), 1.0)]
    assert bottleneck_cap(links, 1.0) is None
    assert bottleneck_cap(links, 2.0) is None


def test_bottleneck_cap_ignores_zero_weights():
    links = [(_Link(10.0), 0.0)]
    assert bottleneck_cap(links, 0.5) is None
    assert bottleneck_cap([], 0.5) is None


def test_rebuild_throttle_is_a_thin_wrapper():
    """The extraction must keep RebuildThrottle's results bit-identical."""
    links = [
        (_Link(3.337e9), 1.0),
        (_Link(7.5e9), 2.25),
        (_Link(11.2e9), 3.125),
    ]
    for fraction in (0.05, 0.25, 0.33333333, 0.9999, 1.0):
        expected = None
        if fraction < 1.0:
            expected = fraction * min(
                link.capacity / weight for link, weight in links
            )
        got = RebuildThrottle(fraction).cap_for(links)
        shared = bottleneck_cap(links, fraction)
        assert got == expected  # exact float equality, not approx
        assert shared == expected


# --------------------------------------------------------------- token bucket
def test_bucket_validates_parameters():
    sim = Simulator()
    with pytest.raises(DerInval):
        TokenBucket(sim, rate=0.0, burst=10.0)
    with pytest.raises(DerInval):
        TokenBucket(sim, rate=-5.0, burst=10.0)
    with pytest.raises(DerInval):
        TokenBucket(sim, rate=1.0, burst=0.0)


def test_bucket_starts_full_and_try_acquire_depletes():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=100.0, burst=50.0)
    assert bucket.level == 50.0
    assert bucket.try_acquire(30.0)
    assert bucket.level == pytest.approx(20.0)
    assert not bucket.try_acquire(30.0)  # only 20 left
    assert bucket.level == pytest.approx(20.0)  # failed try leaves level alone


def test_bucket_refills_at_rate_capped_by_burst():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=10.0, burst=40.0)
    assert bucket.try_acquire(40.0)

    def wait_then_look(delay):
        yield delay
        return bucket.level

    task = sim.spawn(wait_then_look(2.0))
    assert sim.run_until_complete(task) == pytest.approx(20.0)
    task = sim.spawn(wait_then_look(100.0))
    assert sim.run_until_complete(task) == pytest.approx(40.0)  # burst ceiling


def test_acquire_waits_exactly_the_deficit():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=10.0, burst=10.0)

    def consumer():
        w0 = yield from bucket.acquire(10.0)  # free: bucket starts full
        w1 = yield from bucket.acquire(25.0)  # deficit of 25 -> 2.5 s
        return w0, w1, sim.now

    task = sim.spawn(consumer())
    w0, w1, t = sim.run_until_complete(task)
    assert w0 == 0.0
    assert w1 == pytest.approx(2.5)
    assert t == pytest.approx(2.5)


def test_concurrent_acquirers_share_the_rate():
    """N concurrent equal acquirers finish at cumulative-debt times."""
    sim = Simulator()
    bucket = TokenBucket(sim, rate=100.0, burst=100.0)
    done = []

    def consumer(name):
        yield from bucket.acquire(100.0)
        done.append((name, sim.now))

    for i in range(3):
        sim.spawn(consumer(i))
    sim.run()
    # first acquire drains the full bucket instantly; each later one
    # waits for its own 100-token debt on top of the previous.
    assert done == [(0, 0.0), (1, pytest.approx(1.0)), (2, pytest.approx(2.0))]


def test_bucket_long_run_rate_is_bounded():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=1000.0, burst=200.0)
    issued = []

    def consumer():
        total = 0.0
        while sim.now < 1.0:
            yield from bucket.acquire(50.0)
            total += 50.0
        return total

    task = sim.spawn(consumer())
    total = sim.run_until_complete(task)
    # burst + rate * horizon, with a one-acquire slop
    assert total <= 200.0 + 1000.0 * 1.0 + 50.0
    assert total >= 1000.0  # and the rate is actually usable


def test_unlimited_bucket_is_free():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=None, burst=1.0)
    assert bucket.try_acquire(1e12)

    def consumer():
        waited = yield from bucket.acquire(1e12)
        return waited, sim.now

    task = sim.spawn(consumer())
    assert sim.run_until_complete(task) == (0.0, 0.0)


def test_acquire_is_deterministic():
    def run():
        sim = Simulator()
        bucket = TokenBucket(sim, rate=333.0, burst=97.0)
        times = []

        def consumer(n):
            yield from bucket.acquire(n)
            times.append((n, sim.now))

        for n in (13.0, 55.0, 8.0, 90.0, 41.0):
            sim.spawn(consumer(n))
        sim.run()
        return times

    assert run() == run()
