"""The sim-time metrics scraper: labeled series, windowed percentiles,
SLO/stall rules, park/revive, and the timeline JSON schema."""

import json

import pytest

from repro.errors import DeadlockError
from repro.obs import install
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    format_metric_name,
    parse_metric_name,
)
from repro.obs.slo import (
    DEFAULT_STALL_WINDOWS,
    SloRule,
    StallRule,
    default_rules,
    parse_slo,
)
from repro.obs.timeline import Series, TimelineScraper, write_timeline
from repro.obs.validate import validate_timeline
from repro.sim.core import Simulator
from repro.sim.sync import Condition


# ------------------------------------------------------------------- labels
def test_label_names_round_trip():
    full = format_metric_name(
        "rebuild.bytes_moved", {"target": 5, "pool": "tank"}
    )
    assert full == "rebuild.bytes_moved{pool=tank,target=5}"  # keys sorted
    base, labels = parse_metric_name(full)
    assert base == "rebuild.bytes_moved"
    assert labels == {"pool": "tank", "target": "5"}


def test_label_reserved_characters_rejected():
    for bad in ({"a": "x,y"}, {"a": "x=y"}, {"a": "{"}, {"k=": "v"},
                {"a": "x}y"}, {"": "v"}):
        with pytest.raises(ValueError):
            format_metric_name("m", bad)
    with pytest.raises(ValueError):
        parse_metric_name("m{unclosed")
    with pytest.raises(ValueError):
        parse_metric_name("m{novalue}")


def test_format_rejects_reserved_characters_in_base():
    for bad_base in ("a{b", "a}b", "a=b", "a,b", "a{k=v}"):
        with pytest.raises(ValueError):
            format_metric_name(bad_base, {"k": "v"})
        with pytest.raises(ValueError):
            format_metric_name(bad_base)


def test_parse_rejects_unroundtrippable_names():
    # Every one of these used to parse "successfully" into labels that
    # format_metric_name would then refuse — a silent round-trip break.
    for malformed in (
        "a{k=v}}",      # extra closing brace swallowed into the value
        "a{k=v=w}",     # '=' inside a value
        "a{k={x}",      # '{' inside a value
        "a}b",          # stray brace, no label body
        "a=b",          # stray '=' outside any label body
        "a,b",          # stray ',' outside any label body
        "a}b{k=v}",     # brace inside the base
        "a{k}=v}",      # brace inside the key
    ):
        with pytest.raises(ValueError):
            parse_metric_name(malformed)


def test_parse_format_round_trip_is_exact():
    cases = [
        ("plain.name", {}),
        ("tenant.request.latency", {"tenant": "t007"}),
        ("rebuild.bytes_moved", {"pool": "tank", "target": "5"}),
        ("m", {"k": ""}),  # empty value survives the trip
    ]
    for base, labels in cases:
        full = format_metric_name(base, labels)
        got_base, got_labels = parse_metric_name(full)
        assert (got_base, got_labels) == (base, labels)
        assert format_metric_name(got_base, got_labels) == full


def test_registry_keys_on_canonical_labeled_name():
    class _Clock:
        now = 0.0

    reg = MetricsRegistry(_Clock())
    reg.incr("ior.ops", labels={"rank": 1})
    reg.incr("ior.ops", labels={"rank": 1})
    reg.incr("ior.ops")  # unlabeled aggregate is a distinct series
    assert reg.counters["ior.ops{rank=1}"].value == 2
    assert reg.counters["ior.ops"].value == 1


# ----------------------------------------------- windowed percentile math
def test_window_quantiles_match_brute_force_recompute():
    """The per-window quantile (bucket deltas) must equal the quantile of
    a histogram built from only that window's raw values."""
    full = Histogram("lat")
    warmup = [0.001 * (i + 1) for i in range(50)]
    for v in warmup:
        full.observe(v)
    before = (full.count, list(full.buckets))

    window_values = [0.0004 * (i + 1) for i in range(37)]
    for v in window_values:
        full.observe(v)

    dcount = full.count - before[0]
    dbuckets = [b - lb for b, lb in zip(full.buckets, before[1])]

    brute = Histogram("window-only")
    for v in window_values:
        brute.observe(v)

    assert dcount == brute.count
    assert dbuckets == brute.buckets
    for q in (0.5, 0.95, 0.99, 0.999):
        assert bucket_quantile(dbuckets, dcount, q) == bucket_quantile(
            brute.buckets, brute.count, q
        )


def test_bucket_quantile_edge_cases():
    assert bucket_quantile([0] * 64, 0, 0.5) == 0.0
    h = Histogram("one")
    h.observe(0.25)
    est = bucket_quantile(h.buckets, 1, 0.5)
    # unclamped interpolation lands inside the matched log2 bucket
    assert 0.125 < est <= 0.5


# ------------------------------------------------------------- scraping
def _observed_sim(interval=0.1, rules=()):
    sim = Simulator()
    install(sim, tracing=False, timeline_interval=interval,
            slo_rules=list(rules))
    return sim


def test_scraper_samples_counter_rates_and_gauge_means():
    sim = _observed_sim(interval=0.1)
    reg = sim.metrics

    def work():
        g = reg.gauge("client.io.inflight")
        for _ in range(10):
            reg.incr("fabric.xfer.bytes", 1000.0)
            g.add(sim.now, 1)
            yield 0.05
            g.add(sim.now, -1)
            yield 0.05

    sim.run_until_complete(sim.spawn(work(), "work"))
    store = sim.timeline.store
    assert store.n_windows >= 9
    rate = store.series["fabric.xfer.bytes:rate"]
    # 1000 bytes every 0.1 s => a steady 10 kB/s once warm
    assert rate.value_at(0.5) == pytest.approx(10_000.0)
    mean = store.series["client.io.inflight:mean"]
    # inflight alternates 1/0 every 50 ms => window mean 0.5
    assert mean.value_at(0.5) == pytest.approx(0.5)


def test_scraper_windows_align_to_interval_grid():
    sim = _observed_sim(interval=0.1)

    def work():
        for _ in range(5):
            sim.metrics.incr("c")
            yield 0.1

    sim.run_until_complete(sim.spawn(work(), "work"))
    points = sim.timeline.store.series["c:rate"].points
    for t, _v in points:
        k = t / 0.1
        assert abs(k - round(k)) < 1e-9, t


def test_window_quantile_series_match_per_window_observations():
    sim = _observed_sim(interval=0.1)
    reg = sim.metrics
    per_window = [0.001, 0.004, 0.016]  # one distinct latency per window

    def work():
        for v in per_window:
            yield 0.02  # land strictly inside the window
            reg.observe("ior.write.latency", v)
            yield 0.08
        yield 0.15  # keep the heap alive past the last window's tick

    sim.run_until_complete(sim.spawn(work(), "work"))
    scraper = sim.timeline
    store = scraper.store
    p99 = store.series["ior.write.latency:p99"]
    store.series["ior.write.latency:p99"].finalize()
    # each window held exactly one observation: its p99 is that value's
    # bucket interpolation, computable by brute force per window
    for i, v in enumerate(per_window):
        t = 0.1 * (i + 1)
        brute = Histogram("w")
        brute.observe(v)
        expected = bucket_quantile(brute.buckets, 1, 0.99)
        assert p99.value_at(t) == pytest.approx(expected)
    # the count series records every window, including empty ones
    count = store.series["ior.write.latency:count"]
    assert count.value_at(0.1 * len(per_window)) == 1.0


def test_sliding_quantile_merges_recent_windows():
    sim = _observed_sim(interval=0.1)
    reg = sim.metrics
    values = [[0.001, 0.002], [0.064], [0.008, 0.032]]

    def work():
        for window in values:
            yield 0.02
            for v in window:
                reg.observe("lat", v)
            yield 0.08
        yield 0.15  # keep the heap alive past the last window's tick

    sim.run_until_complete(sim.spawn(work(), "work"))
    scraper = sim.timeline
    flat = [v for w in values for v in w]
    brute = Histogram("merged")
    for v in flat:
        brute.observe(v)
    merged = scraper.sliding_quantile("lat", 0.95, nwindows=len(values) + 2)
    assert merged == pytest.approx(
        bucket_quantile(brute.buckets, brute.count, 0.95)
    )
    # a short slide only sees the newest windows (the trailing window is
    # empty, so 2 windows back reaches exactly the last observed one)
    last = Histogram("last")
    for v in values[-1]:
        last.observe(v)
    assert scraper.sliding_quantile("lat", 0.95, nwindows=2) == pytest.approx(
        bucket_quantile(last.buckets, last.count, 0.95)
    )
    # the trailing empty window alone has no samples to estimate from
    assert scraper.sliding_quantile("lat", 0.95, nwindows=1) is None
    assert scraper.sliding_quantile("unknown", 0.5) is None


# ------------------------------------------------------------ park/revive
def test_deadlock_error_survives_an_installed_scraper():
    """A recurring scraper tick must not keep the heap alive forever and
    mask DeadlockError for a task that can never resume."""
    sim = _observed_sim(interval=0.001)

    def stuck():
        yield Condition(sim)  # never notified

    with pytest.raises(DeadlockError):
        sim.run_until_complete(sim.spawn(stuck(), "stuck"))


def test_scraper_parks_and_revives_across_idle_gaps():
    sim = _observed_sim(interval=0.1)

    def burst(n):
        for _ in range(n):
            sim.metrics.incr("c")
            yield 0.1

    sim.run_until_complete(sim.spawn(burst(3), "first"))
    sim.run()  # drain the one already-scheduled tick
    assert sim.timeline._parked  # heap empty => parked
    windows_before = sim.timeline.store.n_windows

    sim.run(until=10.0)  # idle time passes with nothing scheduled
    assert sim.timeline.store.n_windows == windows_before  # no idle ticks

    sim.run_until_complete(sim.spawn(burst(2), "second"))
    store = sim.timeline.store
    assert store.n_windows > windows_before
    # revived ticks stay on the origin-aligned grid
    for t, _v in store.series["c:rate"].points:
        k = t / 0.1
        assert abs(k - round(k)) < 1e-9, t


def test_rates_use_actual_elapsed_across_park_gaps():
    sim = _observed_sim(interval=0.1)

    def burst():
        sim.metrics.incr("c", 100.0)
        yield 0.1

    sim.run_until_complete(sim.spawn(burst(), "first"))
    sim.run(until=5.0)

    def second():
        sim.metrics.incr("c", 100.0)
        yield 0.25  # outlive the first revived tick despite float skew

    sim.run_until_complete(sim.spawn(second(), "second"))
    rate = sim.timeline.store.series["c:rate"]
    rate.finalize()
    # the first post-gap window spans the park gap: its rate divides by
    # the ~5 s actually elapsed, not the nominal 0.1 s interval
    gap_rates = [v for t, v in rate.points if 4.9 < t <= 5.2]
    assert gap_rates and all(v < 1000.0 / 4.0 for v in gap_rates)


# --------------------------------------------------------------- SLO rules
def test_parse_threshold_rule():
    rule = parse_slo("ior.write.latency p99 < 2e-3 over 3 windows")
    assert isinstance(rule, SloRule)
    assert (rule.metric, rule.stat, rule.op) == (
        "ior.write.latency", "p99", "<"
    )
    assert rule.threshold == 2e-3 and rule.windows == 3
    assert rule.violated(5e-3) and not rule.violated(1e-3)
    assert not rule.violated(None)  # undefined stat never violates


def test_parse_stall_rule_with_and_without_windows():
    short = parse_slo("stall fabric.xfer.bytes while client.io.inflight")
    assert isinstance(short, StallRule)
    assert short.windows == DEFAULT_STALL_WINDOWS
    full = parse_slo(
        "stall fabric.xfer.bytes while client.io.inflight over 4 windows"
    )
    assert full.windows == 4
    assert full.violated(0.0, 2.0)
    assert not full.violated(1.0, 2.0)  # progress happened
    assert not full.violated(0.0, 0.0)  # nothing in flight
    assert not full.violated(None, 2.0)


@pytest.mark.parametrize("bad", [
    "",
    "only three tokens",
    "m p99 < over 3 windows",
    "m p17 < 1.0 over 3 windows",
    "m p99 != 1.0 over 3 windows",
    "m p99 < notanumber over 3 windows",
    "m p99 < 1.0 over zero windows",
    "m p99 < 1.0 over 0 windows",
    "m p99 < 1.0 during 3 windows",
    "stall onlyprogress",
    "stall a whoops b",
    "stall a while b over x windows",
])
def test_bad_rules_raise_value_error(bad):
    with pytest.raises(ValueError):
        parse_slo(bad)


def test_default_rules_is_the_stall_watchdog():
    (rule,) = default_rules()
    assert isinstance(rule, StallRule)
    assert rule.progress == "fabric.xfer.bytes"
    assert rule.guard == "client.io.inflight"


def test_threshold_breach_streak_and_rearm():
    """N consecutive violating windows breach once; a clean window
    re-arms the rule for a second breach."""
    rule = "g value > 0 over 2 windows"
    sim = _observed_sim(interval=0.1, rules=[rule])
    reg = sim.metrics

    def work():
        g = reg.gauge("g")
        g.set(sim.now, 0.0)     # violating (0 fails "> 0")
        yield 0.45              # windows 1-4 violate => breach at window 2
        g.set(sim.now, 1.0)     # clean => streak reset, rule re-armed
        yield 0.2
        g.set(sim.now, 0.0)     # violate again
        yield 0.25              # two more violating windows => 2nd breach

    sim.run_until_complete(sim.spawn(work(), "work"))
    breaches = sim.timeline.store.breaches
    assert len(breaches) == 2
    assert all(b.kind == "threshold" and b.rule == rule for b in breaches)
    assert breaches[0].time == pytest.approx(0.2)
    assert breaches[1].time > 0.65
    assert reg.counters["obs.slo.breaches"].value == 2


def test_labeled_series_rule_breaches_only_the_violating_tenant():
    """A p99 rule over one labeled series (``tenant.request.latency
    {tenant=t1}``) fires for exactly that tenant — a sibling label
    violating harder never trips it — and re-arms after clean windows."""
    rule = "tenant.request.latency{tenant=t1} p99 < 0.01 over 2 windows"
    sim = _observed_sim(interval=0.1, rules=[rule])
    reg = sim.metrics

    def work():
        h1 = reg.histogram("tenant.request.latency", {"tenant": "t1"})
        h2 = reg.histogram("tenant.request.latency", {"tenant": "t2"})
        # phase 1: t1 violates (50 ms >> 10 ms bound), t2 is clean
        for _ in range(4):
            h1.observe(0.05)
            h2.observe(0.001)
            yield 0.1
        # phase 2: t1 recovers; t2 now violates wildly — not its rule
        for _ in range(3):
            h1.observe(0.001)
            h2.observe(9.0)
            yield 0.1
        # phase 3: t1 violates again => the re-armed rule fires once more
        for _ in range(3):
            h1.observe(0.05)
            h2.observe(9.0)
            yield 0.1

    sim.run_until_complete(sim.spawn(work(), "work"))
    breaches = sim.timeline.store.breaches
    assert len(breaches) == 2
    assert all(
        b.metric == "tenant.request.latency{tenant=t1}" for b in breaches
    )
    # first breach after two violating windows, second only in phase 3
    assert breaches[0].time == pytest.approx(0.2)
    assert breaches[1].time > 0.7
    # the scraper tracked both labeled series independently
    store = sim.timeline.store
    assert "tenant.request.latency{tenant=t2}:p99" in store.series
    t2_p99 = store.series["tenant.request.latency{tenant=t2}:p99"]
    assert t2_p99.value_at(0.95) > 1.0  # t2 really was violating


def test_breach_lands_in_trace_and_metrics_and_store():
    sim = Simulator()
    install(sim, tracing=True, timeline_interval=0.1,
            slo_rules=["c rate > 1e12 over 1 windows"])

    def work():
        sim.metrics.incr("c")  # rate is defined but tiny => violates
        yield 0.25

    sim.run_until_complete(sim.spawn(work(), "work"))
    store = sim.timeline.store
    assert store.breaches, "no breach recorded"
    assert sim.metrics.counters["obs.slo.breaches"].value == len(
        store.breaches
    )
    instants = [s for s in sim.tracer.spans if s.name == "slo.breach"]
    assert len(instants) == len(store.breaches)
    assert instants[0].attrs["rule"] == "c rate > 1e12 over 1 windows"


# ------------------------------------------------------------ JSON schema
def test_store_json_passes_validator_and_round_trips(tmp_path):
    sim = Simulator()
    install(sim, tracing=False, timeline_interval=0.1,
            slo_rules=["lat p99 < 1e-9 over 1 windows"])
    reg = sim.metrics

    def work():
        g = reg.gauge("depth")
        for i in range(4):
            reg.incr("bytes", 100.0)
            reg.observe("lat", 0.002 * (i + 1))
            g.set(sim.now, float(i))
            yield 0.1

    sim.run_until_complete(sim.spawn(work(), "work"))
    path = tmp_path / "timeline.json"
    write_timeline(sim.timeline.store, str(path))
    doc = json.loads(path.read_text())
    assert validate_timeline(doc) == []
    assert doc["n_windows"] >= 3
    assert doc["dropped_points"] == 0
    kinds = {s["kind"] for s in doc["series"].values()}
    assert {"rate", "value", "mean", "count", "quantile"} <= kinds
    assert doc["breaches"] and doc["breaches"][0]["kind"] == "threshold"


def test_step_compression_reconstructs_exactly():
    """Unchanged values are suppressed, but the flushed points still
    reconstruct the step curve exactly at every recorded tick."""
    series = Series("c:rate", "rate")
    ticks = [round(0.1 * (k + 1), 10) for k in range(20)]
    for t in ticks:
        series.record(t, 1000.0 if t <= 1.0 else 3000.0)
    series.finalize()
    # 20 ticks compress to 4 points: first, last-flat, change, last
    assert [p for p in series.points] == [
        (0.1, 1000.0), (1.0, 1000.0), (1.1, 3000.0), (2.0, 3000.0),
    ]
    assert series.value_at(0.5) == 1000.0
    assert series.value_at(1.0) == 1000.0  # the flushed last flat tick
    assert series.value_at(1.05) == 1000.0  # step holds until the change
    assert series.value_at(1.5) == 3000.0
    assert series.value_at(0.05) is None  # before the first sample
    assert series.dropped == 0
    series.finalize()  # idempotent
    assert len(series.points) == 4


def test_interval_must_be_positive():
    sim = Simulator()
    reg = MetricsRegistry(sim)
    with pytest.raises(ValueError):
        TimelineScraper(sim, reg, interval=0.0)
