"""Zero-perturbation gate for the timeline scraper.

The scraper's acceptance bar: sampling every interval must not move a
single simulated timestamp. Scraper-on runs are compared bit-exactly
(pure float equality) against scraper-off runs and against the pinned
pre-observability seed figures — any drift is a perturbation bug, not a
recalibration.
"""

import pytest

from repro.cluster import nextgenio, small_cluster
from repro.ior import IorParams, run_ior
from repro.units import KiB

from tests.cache.test_cache_determinism import SEED_FIGURES

SMALL = dict(block_size=256 * KiB, transfer_size=64 * KiB)


def _run(observe_kwargs, api="DFS", cluster_factory=None, **params_over):
    cluster = (cluster_factory or (
        lambda: small_cluster(server_nodes=2, client_nodes=1)
    ))()
    if observe_kwargs is not None:
        cluster.observe(**observe_kwargs)
    params = IorParams(api=api, file_per_proc=True, oclass="SX",
                       **{**SMALL, **params_over})
    result = run_ior(cluster, params, ppn=2)
    return result.max_write_bw, result.max_read_bw


def test_scraper_on_equals_scraper_off():
    baseline = _run(None)
    scraped = _run(dict(timeline_interval=0.001))
    assert scraped == baseline


def test_scraper_with_slo_rules_equals_scraper_off():
    baseline = _run(None)
    watched = _run(dict(
        timeline_interval=0.001,
        slo_rules=["ior.write.latency p99 < 1e-9 over 1 windows"],
    ))
    assert watched == baseline


def test_scraper_interval_choice_does_not_perturb():
    coarse = _run(dict(timeline_interval=0.01))
    fine = _run(dict(timeline_interval=0.0005))
    assert coarse == fine == _run(None)


@pytest.mark.parametrize("api,fpp,interleaved", [("DFS", True, False),
                                                 ("POSIX", True, False)])
def test_scraped_figures_byte_identical_to_seed(api, fpp, interleaved):
    """The pinned pre-cache seed figures survive a live scraper."""
    cluster = nextgenio(client_nodes=1)
    cluster.observe(timeline_interval=0.005)
    params = IorParams(
        api=api,
        file_per_proc=fpp,
        interleaved=interleaved,
        oclass="SX",
        block_size="4m",
        transfer_size="1m",
        cache_mode="none",
    )
    result = run_ior(cluster, params, ppn=4)
    assert (result.max_write_bw, result.max_read_bw) == SEED_FIGURES[
        (api, fpp, interleaved)
    ]
    # and the scraper genuinely ran: windows were sampled
    assert cluster.sim.timeline.store.n_windows > 0


def test_scraped_runs_are_deterministic():
    """Same seed + same interval => identical timeline JSON, twice."""
    def timeline_doc():
        cluster = small_cluster(server_nodes=2, client_nodes=1)
        cluster.observe(timeline_interval=0.001)
        params = IorParams(api="DFS", file_per_proc=True, oclass="SX",
                           **SMALL)
        run_ior(cluster, params, ppn=2)
        return cluster.sim.timeline.store.to_json()

    assert timeline_doc() == timeline_doc()
