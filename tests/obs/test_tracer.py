"""Tracer unit tests: nesting, propagation, zero-cost disable, export."""

import json

import pytest

from repro.cluster import small_cluster
from repro.daos.oclass import S1
from repro.obs import chrome_trace, install, validate_chrome_trace
from repro.obs.tracer import NULL_TRACER, Tracer, tracer_of
from repro.sim.core import Simulator


# ---------------------------------------------------------------- basics
def test_span_nesting_within_a_task():
    sim = Simulator()
    tracer, _ = install(sim, metrics=False)

    def work():
        with tracer.span("outer", "client", node="n0"):
            yield 1.0
            with tracer.span("inner", "rpc"):
                yield 0.5
        yield 0.25

    sim.run_until_complete(sim.spawn(work(), "w"))
    outer, inner = tracer.spans
    assert outer.name == "outer" and inner.name == "inner"
    assert inner.parent_id == outer.span_id
    assert inner.node == "n0"  # inherited from parent
    assert outer.start == 0.0 and outer.end == pytest.approx(1.5)
    assert inner.start == pytest.approx(1.0) and inner.end == pytest.approx(1.5)


def test_interleaved_tasks_do_not_cross_parent():
    """Two concurrent tasks each keep their own span stack."""
    sim = Simulator()
    tracer, _ = install(sim, metrics=False)

    def work(label, delay):
        with tracer.span(f"outer-{label}", "ior", node=label):
            yield delay
            with tracer.span(f"inner-{label}", "ior"):
                yield delay

    a = sim.spawn(work("a", 1.0), "a")
    b = sim.spawn(work("b", 1.5), "b")
    sim.run()
    assert a.done and b.done
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["inner-a"].parent_id == by_name["outer-a"].span_id
    assert by_name["inner-b"].parent_id == by_name["outer-b"].span_id


def test_bind_parents_spawned_task_spans():
    sim = Simulator()
    tracer, _ = install(sim, metrics=False)

    def child():
        with tracer.span("child-work", "engine", node="server"):
            yield 1.0

    def parent():
        with tracer.span("parent-op", "client", node="client") as span:
            task = sim.spawn(child(), "child")
            tracer.bind(task, span)
            yield task

    sim.run_until_complete(sim.spawn(parent(), "parent"))
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["child-work"].parent_id == by_name["parent-op"].span_id


# ---------------------------------------------------- client→engine round trip
def test_spans_nest_across_client_engine_round_trip():
    """A KV put produces the full parent chain: client span → server rpc
    span (via trace_ctx propagation) → engine service span; plus fabric
    message events hanging off the client span."""
    cluster = small_cluster(server_nodes=2, client_nodes=1)
    tracer, _ = cluster.observe(metrics=False)

    client = cluster.new_client()

    def workload():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("c0", oclass="S1")
        oid = yield from cont.alloc_oid(S1)
        obj = cont.open_object(oid)
        yield from obj.put(b"dkey", b"akey", b"value")
        obj.close()

    cluster.run(workload())
    by_name = {}
    for span in tracer.spans:
        by_name.setdefault(span.name, []).append(span)

    puts = by_name.get("client.kv_put", [])
    assert len(puts) == 1
    put = puts[0]
    assert put.layer == "client" and put.node == "client0"
    assert put.end is not None and put.end > put.start

    rpcs = [s for s in by_name.get("rpc.kv_update", [])]
    assert rpcs, "server-side rpc span missing"
    for rpc in rpcs:
        assert rpc.parent_id == put.span_id  # trace_ctx crossed the wire
        assert rpc.layer == "rpc"
        assert rpc.start >= put.start and rpc.end <= put.end + 1e-9

    services = by_name.get("engine.service", [])
    assert services, "engine service span missing"
    rpc_ids = {r.span_id for r in rpcs}
    assert any(s.parent_id in rpc_ids for s in services)  # bind() worked

    msgs = [s for s in tracer.spans if s.name == "fabric.msg"]
    assert any(m.parent_id == put.span_id for m in msgs)


# -------------------------------------------------------------- disabled path
def test_disabled_tracer_records_nothing():
    sim = Simulator()
    assert sim.tracer is None
    tracer = tracer_of(sim)
    assert tracer is NULL_TRACER

    with tracer.span("x", "client"):
        pass
    tracer.begin("y", "client")
    tracer.end(None)
    tracer.instant("z", "faults")
    tracer.event("w", "fabric", None, 0.0, 1.0)
    assert len(tracer) == 0
    assert tracer.current_span_id() is None


def test_untraced_cluster_adds_zero_events():
    cluster = small_cluster(server_nodes=2, client_nodes=1)
    client = cluster.new_client()

    def workload():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("c0", oclass="S1")
        oid = yield from cont.alloc_oid(S1)
        obj = cont.open_object(oid)
        yield from obj.put(b"k", b"a", b"v")
        obj.close()

    cluster.run(workload())
    assert cluster.sim.tracer is None
    assert len(tracer_of(cluster.sim)) == 0


# ------------------------------------------------------------- chrome export
def test_trace_json_round_trips_with_monotonic_timestamps():
    cluster = small_cluster(server_nodes=2, client_nodes=1)
    tracer, _ = cluster.observe(metrics=False)
    client = cluster.new_client()

    def workload():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("c0", oclass="S1")
        oid = yield from cont.alloc_oid(S1)
        obj = cont.open_object(oid)
        for i in range(4):
            yield from obj.put(f"k{i}".encode(), b"a", b"v")
            yield from obj.get(f"k{i}".encode(), b"a")
        obj.close()

    cluster.run(workload())
    doc = chrome_trace(tracer)
    blob = json.dumps(doc)
    parsed = json.loads(blob)
    assert parsed == doc
    assert validate_chrome_trace(parsed) == []

    data_events = [e for e in parsed["traceEvents"] if e["ph"] != "M"]
    assert data_events
    timestamps = [e["ts"] for e in data_events]
    assert timestamps == sorted(timestamps)
    assert all(ts >= 0 for ts in timestamps)
    # one pid per node with a metadata record
    meta = [e for e in parsed["traceEvents"] if e["ph"] == "M"
            and e["name"] == "process_name"]
    names = {e["args"]["name"] for e in meta}
    assert "client0" in names and any(n.startswith("server") for n in names)


def test_validate_catches_malformed_documents():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "Q"}]}) != []
    bad_ts = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": -1.0, "dur": 1.0, "pid": 1, "tid": 0},
    ]}
    assert validate_chrome_trace(bad_ts) != []
    out_of_order = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": 5.0, "dur": 1.0, "pid": 1, "tid": 0},
        {"name": "b", "ph": "X", "ts": 1.0, "dur": 1.0, "pid": 1, "tid": 0},
    ]}
    assert validate_chrome_trace(out_of_order) != []


def test_install_is_idempotent():
    sim = Simulator()
    t1, m1 = install(sim)
    t2, m2 = install(sim)
    assert t1 is t2 and m1 is m2
    assert isinstance(t1, Tracer)
