"""Metrics registry and Stats reservoir/gauge semantics."""

import json
import math

import pytest

from repro.obs.metrics import (
    GAUGE_TIMELINE_CAP,
    Histogram,
    MetricsRegistry,
    RESERVOIR_CAP,
    write_metrics,
)
from repro.sim.trace import Stats, RESERVOIR_CAP as STATS_RESERVOIR_CAP


class _Clock:
    """Duck-typed stand-in for Simulator: registries only read ``now``."""

    def __init__(self, now: float = 0.0):
        self.now = now


# ------------------------------------------------------------------ gauges
def test_gauge_mean_uses_observed_window_not_absolute_time():
    clock = _Clock(now=10.0)
    reg = MetricsRegistry(clock)
    g = reg.gauge("engine.e0.t0.inflight")  # created at t=10
    g.set(10.0, 4.0)
    clock.now = 20.0
    # window is [10, 20): mean must be 4.0, not 4.0 * 10/20 = 2.0
    assert g.mean(clock.now) == pytest.approx(4.0)
    snap = reg.snapshot()
    assert snap["gauges"]["engine.e0.t0.inflight"]["mean"] == pytest.approx(4.0)


def test_gauge_time_weighted_mean_and_extrema():
    reg = MetricsRegistry(_Clock())
    g = reg.gauge("fabric.link.l0.utilization")
    g.set(0.0, 2.0)
    g.set(1.0, 4.0)
    g.set(2.0, 0.0)
    # 2.0 over [0,1) + 4.0 over [1,2) = 6.0 over a 2 s window
    assert g.mean(2.0) == pytest.approx(3.0)
    assert g.vmin == 0.0 and g.vmax == 4.0
    assert list(g.timeline) == [(0.0, 2.0), (1.0, 4.0), (2.0, 0.0)]


def test_gauge_timeline_is_bounded():
    reg = MetricsRegistry(_Clock())
    g = reg.gauge("x")
    for i in range(GAUGE_TIMELINE_CAP + 100):
        g.set(float(i), float(i))
    assert len(g.timeline) == GAUGE_TIMELINE_CAP
    assert g.timeline[0][0] == 100.0  # oldest points evicted


# -------------------------------------------------------------- histograms
def test_histogram_percentiles_bracket_known_distribution():
    h = Histogram("lat")
    values = [0.001 * (i + 1) for i in range(100)]  # 1 ms .. 100 ms
    for v in values:
        h.observe(v)
    assert h.count == 100
    assert h.mean == pytest.approx(sum(values) / 100)
    # log2 buckets are coarse: accept a factor-of-two bracket around the
    # exact quantile, plus the exact-extrema clamp.
    assert 0.025 <= h.p50 <= 0.1
    assert 0.05 <= h.p95 <= 0.1
    assert h.quantile(0.0) == h.vmin == pytest.approx(0.001)
    assert h.quantile(1.0) == h.vmax == pytest.approx(0.1)
    assert h.p50 <= h.p95 <= h.p99


def test_histogram_empty_and_tiny_values():
    h = Histogram("lat")
    assert h.quantile(0.5) == 0.0 and h.mean == 0.0
    h.observe(0.0)  # below the smallest bucket bound
    assert h.p50 == 0.0
    h.observe(5.0)
    assert h.vmax == 5.0
    assert h.p99 <= 5.0


def test_histogram_single_value_quantiles_are_exact():
    h = Histogram("lat")
    h.observe(0.25)
    # interpolation is clamped by the observed extrema
    for q in (0.01, 0.5, 0.95, 0.99):
        assert h.quantile(q) == pytest.approx(0.25)


# -------------------------------------------------------------- reservoirs
def test_reservoir_is_bounded_with_exact_running_mean():
    reg = MetricsRegistry(_Clock())
    r = reg.reservoir("samples")
    n = RESERVOIR_CAP * 4
    for i in range(n):
        r.add(float(i))
    assert len(r.values) == RESERVOIR_CAP
    assert r.count == n
    assert r.mean == pytest.approx((n - 1) / 2.0)  # exact despite eviction
    assert all(0 <= v < n for v in r.values)


def test_reservoir_eviction_is_seed_deterministic():
    def fill(seed):
        r = MetricsRegistry(_Clock(), seed=seed).reservoir("s")
        for i in range(RESERVOIR_CAP * 3):
            r.add(float(i))
        return list(r.values)

    assert fill(1) == fill(1)
    assert fill(1) != fill(2)


# ------------------------------------------------------------------ export
def test_snapshot_is_json_serialisable_and_complete():
    clock = _Clock()
    reg = MetricsRegistry(clock)
    reg.incr("fabric.msgs.delivered", 3)
    reg.set_gauge("engine.e0.t0.inflight", 2.0)
    reg.observe("ior.write.latency", 0.004)
    reg.reservoir("r").add(1.5)
    clock.now = 1.0
    snap = json.loads(json.dumps(reg.snapshot()))
    assert snap["sim_time"] == 1.0
    assert snap["counters"]["fabric.msgs.delivered"] == 3
    assert snap["gauges"]["engine.e0.t0.inflight"]["value"] == 2.0
    hist = snap["histograms"]["ior.write.latency"]
    assert hist["count"] == 1 and hist["p50"] == pytest.approx(0.004)
    assert snap["reservoirs"]["r"]["values"] == [1.5]


def test_prometheus_exposition_format():
    reg = MetricsRegistry(_Clock())
    reg.incr("fabric.msgs.delivered")
    reg.set_gauge("engine.e0.t0.inflight", 3.0)
    reg.observe("ior.write.latency", 0.5)
    text = reg.to_prometheus()
    assert "# TYPE fabric_msgs_delivered counter" in text
    assert "fabric_msgs_delivered 1" in text
    assert "# TYPE engine_e0_t0_inflight gauge" in text
    assert "# TYPE ior_write_latency histogram" in text
    assert 'ior_write_latency_bucket{le="+Inf"} 1' in text
    assert "ior_write_latency_sum 0.5" in text
    assert "ior_write_latency_count 1" in text
    assert text.endswith("\n")


def test_prometheus_histogram_buckets_are_cumulative():
    reg = MetricsRegistry(_Clock())
    for v in (0.001, 0.002, 0.004, 0.1):
        reg.observe("lat", v)
    text = reg.to_prometheus()
    lines = [l for l in text.splitlines() if l.startswith("lat_bucket")]
    counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
    assert counts == sorted(counts)  # cumulative, non-decreasing
    assert counts[-1] == 4  # +Inf bucket equals total count
    assert lines[-1].startswith('lat_bucket{le="+Inf"}')


def test_prometheus_labels_render_in_prom_syntax():
    reg = MetricsRegistry(_Clock())
    reg.incr("ior.ops", labels={"rank": 3})
    reg.incr("ior.ops", labels={"rank": 7})
    reg.observe("ior.write.latency", 0.01, labels={"rank": 3})
    text = reg.to_prometheus()
    assert 'ior_ops{rank="3"} 1' in text
    assert 'ior_ops{rank="7"} 1' in text
    # one TYPE line per base metric, shared by the labeled series
    assert text.count("# TYPE ior_ops counter") == 1
    assert 'ior_write_latency_sum{rank="3"} 0.01' in text
    assert 'ior_write_latency_bucket{rank="3",le="+Inf"} 1' in text


def test_write_metrics_picks_format_by_extension(tmp_path):
    reg = MetricsRegistry(_Clock())
    reg.incr("c")
    prom = tmp_path / "m.prom"
    blob = tmp_path / "m.json"
    write_metrics(reg, str(prom))
    write_metrics(reg, str(blob))
    assert "# TYPE c counter" in prom.read_text()
    assert json.loads(blob.read_text())["counters"]["c"] == 1.0


# ---------------------------------------------------------- sim.trace.Stats
def test_stats_samples_are_bounded_reservoirs():
    stats = Stats(_Clock())
    n = STATS_RESERVOIR_CAP * 3
    for i in range(n):
        stats.sample("latency", float(i))
    res = stats.samples["latency"]
    assert len(res) == STATS_RESERVOIR_CAP
    assert res.count == n
    # count/total stay exact, so the mean ignores eviction entirely
    assert stats.sample_mean("latency") == pytest.approx((n - 1) / 2.0)


def test_stats_reservoirs_deterministic_across_instances():
    def fill():
        stats = Stats(_Clock())
        for i in range(STATS_RESERVOIR_CAP * 2):
            stats.sample("k", float(i))
        return list(stats.samples["k"])

    assert fill() == fill()


def test_stats_gauge_created_late_is_not_diluted():
    clock = _Clock(now=100.0)
    stats = Stats(clock)
    stats.gauge("qdepth", 8.0)  # first set at t=100
    clock.now = 110.0
    # 8.0 held over the whole observed window [100, 110)
    assert stats.gauge_mean("qdepth") == pytest.approx(8.0)


def test_stats_gauge_mean_time_weighted():
    clock = _Clock(now=0.0)
    stats = Stats(clock)
    stats.gauge("g", 2.0)
    clock.now = 1.0
    stats.gauge("g", 4.0)
    clock.now = 2.0
    stats.gauge("g", 0.0)
    assert stats.gauge_mean("g") == pytest.approx(3.0)
