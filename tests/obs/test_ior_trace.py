"""Acceptance: traced IOR runs produce complete span trees, per-layer
breakdowns that account for the measured wall time, and a valid Chrome
trace through the CLI."""

import json

import pytest

from repro.cluster import small_cluster
from repro.ior import IorParams, run_ior
from repro.ior.cli import main as ior_main
from repro.obs import validate_chrome_trace
from repro.obs.breakdown import WAIT_KEY
from repro.units import KiB


SMALL = dict(block_size=256 * KiB, transfer_size=64 * KiB)


@pytest.fixture()
def traced_run():
    cluster = small_cluster(server_nodes=2, client_nodes=1)
    tracer, metrics = cluster.observe()
    params = IorParams(api="DFS", file_per_proc=True, oclass="SX", **SMALL)
    result = run_ior(cluster, params, ppn=2)
    return cluster, tracer, metrics, result


def _descendants(tracer, root):
    """All spans transitively below ``root``."""
    children = tracer.children_index()
    out, frontier = [], [root.span_id]
    while frontier:
        batch = children.get(frontier.pop(), [])
        out.extend(batch)
        frontier.extend(s.span_id for s in batch)
    return out


def test_every_write_span_reaches_fabric_and_engine(traced_run):
    _, tracer, _, _ = traced_run
    writes = [s for s in tracer.spans if s.name == "ior.write"]
    assert writes, "no ior.write spans recorded"
    for w in writes:
        below = _descendants(tracer, w)
        layers = {s.layer for s in below}
        assert any(s.name == "fabric.flow" for s in below), (
            f"write span {w.span_id} has no fabric flow descendant"
        )
        assert layers & {"engine", "vos"}, (
            f"write span {w.span_id} never reached the engine side"
        )


def test_layer_breakdown_accounts_for_wall_time(traced_run):
    _, _, _, result = traced_run
    for phase in result.phases:
        assert phase.layer_seconds, f"{phase.op} phase missing breakdown"
        total = sum(phase.layer_seconds.values())
        assert total == pytest.approx(phase.seconds, rel=0.01)
        assert WAIT_KEY in phase.layer_seconds
        assert all(v >= 0 for v in phase.layer_seconds.values())
        # the traced IOR layer itself must appear
        assert "ior" in phase.layer_seconds


def test_latency_percentiles_per_rank(traced_run):
    _, _, _, result = traced_run
    assert result.latency
    ops = {e.op for e in result.latency}
    assert ops == {"write", "read"}
    for entry in result.latency:
        assert entry.count > 0
        assert 0 < entry.p50 <= entry.p95 <= entry.p99
    # one row per (rank, op)
    keys = [(e.op, e.rank) for e in result.latency]
    assert len(keys) == len(set(keys))


def test_summary_prints_breakdown_and_latency_table(traced_run):
    _, _, _, result = traced_run
    text = result.summary()
    assert "per-layer breakdown (per-rank seconds):" in text
    assert "per-rank op latency:" in text
    assert WAIT_KEY in text


def test_tracing_does_not_change_results():
    params = IorParams(api="DFS", file_per_proc=True, oclass="SX", **SMALL)

    def bw(observe):
        cluster = small_cluster(server_nodes=2, client_nodes=1)
        if observe:
            cluster.observe()
        result = run_ior(cluster, params, ppn=2)
        return result.max_write_bw, result.max_read_bw

    assert bw(False) == bw(True)


def test_cli_trace_out_writes_valid_chrome_trace(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    code = ior_main([
        "-a", "DFS", "-F", "-b", "2m", "-t", "256k",
        "-N", "1", "--ppn", "2", "--servers", "2", "-O", "oclass=S2",
        "--trace-out", str(trace), "--metrics-out", str(metrics),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Max Write" in out
    assert "per-layer breakdown" in out

    doc = json.loads(trace.read_text())
    assert validate_chrome_trace(doc) == []
    names = {e["name"] for e in doc["traceEvents"]}
    assert {"ior.write", "fabric.msg", "engine.service"} <= names

    snap = json.loads(metrics.read_text())
    assert snap["counters"]["fabric.msgs.delivered"] > 0
    assert any(
        n.startswith("ior.write.latency{rank=") for n in snap["histograms"]
    )
