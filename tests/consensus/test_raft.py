"""Raft protocol tests: elections, replication, failures, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.raft import LEADER, RaftCluster, RaftConfig
from repro.consensus.state_machine import AppendLogMachine, KvStateMachine
from repro.errors import NotLeaderError
from repro.network import Fabric
from repro.sim import RngStreams, Simulator


def build_cluster(n=3, seed=1, machine=AppendLogMachine):
    sim = Simulator()
    fabric = Fabric(sim)
    addrs = [fabric.add_node(f"n{i}", 10e9) for i in range(n)]
    cluster = RaftCluster(
        sim, fabric, addrs, machine, rng=RngStreams(seed=seed)
    )
    return sim, cluster


def leaders_of(cluster):
    return [n for n in cluster.nodes if n.is_leader]


def test_exactly_one_leader_elected():
    sim, cluster = build_cluster(3)
    sim.run(until=2.0)
    leaders = leaders_of(cluster)
    assert len(leaders) == 1
    # Every live node agrees on the term of the leader.
    terms = {n.current_term for n in cluster.nodes}
    assert len(terms) == 1


def test_single_node_cluster_becomes_leader():
    sim, cluster = build_cluster(1)
    sim.run(until=1.0)
    assert len(leaders_of(cluster)) == 1


def test_five_node_cluster_elects():
    sim, cluster = build_cluster(5, seed=3)
    sim.run(until=2.0)
    assert len(leaders_of(cluster)) == 1


def test_commands_replicate_to_all_nodes():
    sim, cluster = build_cluster(3)

    def client():
        leader = yield from cluster.wait_leader()
        for i in range(5):
            status, _ = yield leader.propose(("cmd", i))
            assert status == "ok"

    sim.spawn(client())
    sim.run(until=3.0)
    for i, node in enumerate(cluster.nodes):
        assert cluster.machines[i].applied == [("cmd", j) for j in range(5)]


def test_propose_on_follower_raises_not_leader():
    sim, cluster = build_cluster(3)
    sim.run(until=2.0)
    followers = [n for n in cluster.nodes if not n.is_leader]
    assert followers
    with pytest.raises(NotLeaderError):
        followers[0].propose(("x",))


def test_leader_crash_triggers_reelection_and_no_committed_loss():
    sim, cluster = build_cluster(3, seed=5)
    committed = []

    def client():
        leader = yield from cluster.wait_leader()
        for i in range(3):
            status, _ = yield leader.propose(("before", i))
            assert status == "ok"
            committed.append(("before", i))
        leader.crash()
        new_leader = None
        while new_leader is None or not new_leader.is_leader or new_leader is leader:
            yield 0.05
            new_leader = cluster.leader()
        for i in range(3):
            status, _ = yield new_leader.propose(("after", i))
            assert status == "ok"
            committed.append(("after", i))

    sim.spawn(client())
    sim.run(until=10.0)
    live = [n for n in cluster.nodes if n._alive]
    assert len(live) == 2
    for node in live:
        machine = cluster.machines[node.node_id]
        assert machine.applied == committed


def test_crashed_node_restart_catches_up():
    sim, cluster = build_cluster(3, seed=7)

    def client():
        leader = yield from cluster.wait_leader()
        victim = [n for n in cluster.nodes if n is not leader][0]
        victim.crash()
        for i in range(4):
            status, _ = yield leader.propose(("op", i))
            assert status == "ok"
        victim.restart()
        yield 2.0  # heartbeats bring the restarted node up to date
        return victim

    task = sim.spawn(client())
    sim.run(until=6.0)
    victim = task.result
    machine = cluster.machines[victim.node_id]
    assert [c for c in machine.applied] == [("op", i) for i in range(4)]


def test_minority_cannot_commit():
    sim, cluster = build_cluster(3, seed=11)
    outcome = []

    def client():
        leader = yield from cluster.wait_leader()
        others = [n for n in cluster.nodes if n is not leader]
        for node in others:
            node.crash()
        try:
            gate = leader.propose(("lost", 0))
        except NotLeaderError:
            outcome.append("stepped-down")
            return
        result = yield gate
        outcome.append(result)

    sim.spawn(client())
    sim.run(until=5.0)
    # The entry must never apply anywhere: either the gate reported an
    # error after the leader lost leadership, or nothing resolved it and
    # the proposal is still pending at the end of the run.
    if outcome and outcome[0] != "stepped-down":
        status, _ = outcome[0]
        assert status == "err"
    for machine in cluster.machines:
        assert ("lost", 0) not in machine.applied


def test_kv_state_machine_semantics():
    machine = KvStateMachine()
    assert machine.apply(("put", "a", 1)) is None
    assert machine.apply(("get", "a")) == 1
    assert machine.apply(("cas", "a", 1, 2)) is True
    assert machine.apply(("cas", "a", 1, 3)) is False
    assert machine.apply(("inc", "n", 5)) == 5
    assert machine.apply(("inc", "n", -2)) == 3
    assert machine.apply(("list", "")) == ["a", "n"]
    assert machine.apply(("del", "a")) is True
    assert machine.apply(("del", "a")) is False
    with pytest.raises(ValueError):
        machine.apply(("bogus",))


def _check_log_matching(cluster):
    """Raft State-Machine-Safety: applied sequences are prefixes of each
    other, and committed entries agree across nodes."""
    logs = [m.applied for m in cluster.machines]
    logs.sort(key=len)
    for shorter, longer in zip(logs, logs[1:]):
        assert longer[: len(shorter)] == shorter


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_ops=st.integers(1, 8),
    crash_point=st.integers(0, 8),
)
def test_property_no_divergence_under_leader_crashes(seed, n_ops, crash_point):
    sim, cluster = build_cluster(3, seed=seed)

    def client():
        sent = 0
        crashed = False
        while sent < n_ops:
            leader = cluster.leader()
            if leader is None:
                yield 0.05
                continue
            if not crashed and sent == crash_point:
                crashed = True
                leader.crash()
                yield 0.05
                # restart later so a quorum always eventually exists
                sim.schedule(1.0, leader.restart)
                continue
            try:
                gate = leader.propose(("op", sent))
            except NotLeaderError:
                yield 0.05
                continue
            status, _ = yield gate
            if status == "ok":
                sent += 1

    sim.spawn(client())
    sim.run(until=30.0)
    _check_log_matching(cluster)
    # All ops eventually commit on at least a quorum. Retries after an
    # ambiguous failure may duplicate an op (at-least-once: we implement
    # no client dedup, like raw Raft), but order must be preserved and
    # every op must appear.
    longest = max((m.applied for m in cluster.machines), key=len)
    ops = [c[1] for c in longest if c[0] == "op"]
    assert sorted(set(ops)) == list(range(n_ops))
    assert ops == sorted(ops)


# ---------------------------------------------------------------------------
# Network partitions, via the fabric fault plane (Fabric.partition/heal)
# and the reusable safety checkers from repro.faults.invariants.
# ---------------------------------------------------------------------------

from repro.faults.invariants import (  # noqa: E402
    check_applied_monotonic,
    check_committed_entries_present,
    check_commands_durable,
    check_election_safety,
    check_log_matching,
)


def _fabric_of(cluster):
    return cluster.nodes[0].endpoint.fabric


def _isolate_leader(fabric, cluster, leader):
    name = leader.endpoint.addr.name
    others = [
        n.endpoint.addr.name for n in cluster.nodes if n is not leader
    ]
    return fabric.partition([name], others)


def _check_all_invariants(cluster, acked=()):
    check_election_safety(cluster.nodes)
    check_log_matching(cluster.nodes)
    check_committed_entries_present(cluster.nodes)
    check_applied_monotonic(cluster.nodes)
    check_commands_durable(cluster.nodes, acked)


def test_partitioned_leader_cannot_commit():
    """A leader isolated from the quorum cannot commit; the majority
    elects a successor in a higher term; on heal the deposed leader's
    uncommitted entry is discarded, never applied anywhere."""
    sim, cluster = build_cluster(3, seed=13)
    fabric = _fabric_of(cluster)
    outcome = {}

    def client():
        leader = yield from cluster.wait_leader()
        status, _ = yield leader.propose(("committed", 0))
        assert status == "ok"
        _isolate_leader(fabric, cluster, leader)
        gate = leader.propose(("isolated", 0))
        new_leader = None
        while new_leader is None:
            yield 0.05
            for n in cluster.nodes:
                if n.is_leader and n is not leader:
                    new_leader = n
        status2, _ = yield new_leader.propose(("majority", 0))
        assert status2 == "ok"
        outcome["terms"] = (leader.current_term, new_leader.current_term)
        fabric.heal()
        # resolves once the old leader learns the higher term and fails
        # its pending proposals
        status1, _ = yield gate
        outcome["isolated_status"] = status1

    sim.spawn(client())
    sim.run(until=20.0)
    assert outcome["isolated_status"] == "err"
    old_term, new_term = outcome["terms"]
    assert new_term > old_term
    for machine in cluster.machines:
        assert ("isolated", 0) not in machine.applied
        assert ("majority", 0) in machine.applied  # replicated post-heal
    _check_all_invariants(
        cluster, acked=[("committed", 0), ("majority", 0)]
    )


def test_partition_heal_converges_logs():
    """Commands committed on both sides of a leader partition end up
    applied identically everywhere after the heal."""
    sim, cluster = build_cluster(3, seed=17)
    fabric = _fabric_of(cluster)
    acked = []

    def client():
        leader = yield from cluster.wait_leader()
        for i in range(3):
            status, _ = yield leader.propose(("pre", i))
            assert status == "ok"
            acked.append(("pre", i))
        pairs = _isolate_leader(fabric, cluster, leader)
        new_leader = None
        while new_leader is None:
            yield 0.05
            for n in cluster.nodes:
                if n.is_leader and n is not leader:
                    new_leader = n
        for i in range(3):
            status, _ = yield new_leader.propose(("post", i))
            assert status == "ok"
            acked.append(("post", i))
        fabric.heal(pairs)
        yield 3.0  # heartbeats propagate the authoritative log

    sim.spawn(client())
    sim.run(until=30.0)
    expected = [("pre", i) for i in range(3)] + [("post", i) for i in range(3)]
    for machine in cluster.machines:
        assert machine.applied == expected
    _check_all_invariants(cluster, acked=acked)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), n_ops=st.integers(1, 6))
def test_property_safety_under_leader_partitions(seed, n_ops):
    """For any seed: commit a batch, isolate the leader, commit a batch
    on the majority side, heal — every safety invariant holds and every
    acknowledged command survives in order."""
    sim, cluster = build_cluster(3, seed=seed)
    fabric = _fabric_of(cluster)
    acked = []

    def client():
        leader = yield from cluster.wait_leader()
        for i in range(n_ops):
            status, _ = yield leader.propose(("pre", i))
            if status == "ok":
                acked.append(("pre", i))
        _isolate_leader(fabric, cluster, leader)
        new_leader = None
        while new_leader is None:
            yield 0.05
            for n in cluster.nodes:
                if n.is_leader and n is not leader:
                    new_leader = n
        for i in range(n_ops):
            while True:
                try:
                    gate = new_leader.propose(("post", i))
                except NotLeaderError:
                    yield 0.05
                    continue
                status, _ = yield gate
                if status == "ok":
                    acked.append(("post", i))
                    break
        fabric.heal()
        yield 3.0

    sim.spawn(client())
    sim.run(until=60.0)
    _check_all_invariants(cluster, acked=acked)


def test_rsvc_client_retries_through_election():
    from repro.consensus import ReplicatedService, RsvcClient

    sim = Simulator()
    fabric = Fabric(sim)
    addrs = [fabric.add_node(f"m{i}", 10e9) for i in range(3)]
    service = ReplicatedService(sim, fabric, addrs, rng=RngStreams(seed=2))
    client = RsvcClient(service)

    def run_client():
        result = yield from client.invoke(("put", "pool:1", {"uuid": "x"}))
        assert result is None
        # crash the leader mid-session, then invoke again: must retry to
        # the new leader transparently
        leader = service.leader()
        leader.crash()
        sim.schedule(2.0, leader.restart)
        value = yield from client.invoke(("get", "pool:1"))
        return value

    task = sim.spawn(run_client())
    sim.run(until=20.0)
    assert task.result == {"uuid": "x"}
