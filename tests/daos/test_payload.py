"""Tests for lazy payloads."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.daos.vos.payload import (
    BytesPayload,
    PatternPayload,
    ZeroPayload,
    as_payload,
    concat_payloads,
)


def test_bytes_payload_roundtrip():
    payload = BytesPayload(b"hello world")
    assert payload.nbytes == 11
    assert payload.materialize() == b"hello world"
    assert payload.slice(6, 11).materialize() == b"world"


def test_bytes_payload_slice_bounds_checked():
    payload = BytesPayload(b"abc")
    with pytest.raises(ValueError):
        payload.slice(0, 4)
    with pytest.raises(ValueError):
        payload.slice(-1, 2)


def test_zero_payload():
    payload = ZeroPayload(5)
    assert payload.materialize() == b"\x00" * 5
    assert payload.slice(1, 3).nbytes == 2
    with pytest.raises(ValueError):
        ZeroPayload(-1)


def test_pattern_deterministic_and_position_dependent():
    a = PatternPayload(seed=7, origin=0, nbytes=64)
    b = PatternPayload(seed=7, origin=0, nbytes=64)
    assert a.materialize() == b.materialize()
    shifted = PatternPayload(seed=7, origin=1, nbytes=64)
    assert a.materialize() != shifted.materialize()
    other_seed = PatternPayload(seed=8, origin=0, nbytes=64)
    assert a.materialize() != other_seed.materialize()


def test_pattern_slice_matches_materialized_slice():
    payload = PatternPayload(seed=3, origin=100, nbytes=256)
    window = payload.slice(17, 203)
    assert window.materialize() == payload.materialize()[17:203]


def test_pattern_equality_is_structural():
    a = PatternPayload(seed=1, origin=10, nbytes=5)
    b = PatternPayload(seed=1, origin=10, nbytes=5)
    assert a == b
    assert a != PatternPayload(seed=1, origin=11, nbytes=5)


def test_cross_type_equality_by_content():
    zero_bytes = BytesPayload(b"\x00\x00\x00")
    assert ZeroPayload(3) == zero_bytes
    pattern = PatternPayload(seed=5, origin=0, nbytes=8)
    assert BytesPayload(pattern.materialize()) == pattern


def test_as_payload_wraps_and_passes_through():
    payload = as_payload(b"xy")
    assert isinstance(payload, BytesPayload)
    assert as_payload(payload) is payload
    with pytest.raises(TypeError):
        as_payload(123)


def test_concat_coalesces_adjacent_patterns():
    a = PatternPayload(seed=2, origin=0, nbytes=10)
    b = PatternPayload(seed=2, origin=10, nbytes=6)
    merged = concat_payloads([a, b])
    assert isinstance(merged, PatternPayload)
    assert merged.nbytes == 16
    assert merged.materialize() == a.materialize() + b.materialize()


def test_concat_coalesces_zeros_and_mixes():
    merged = concat_payloads([ZeroPayload(4), ZeroPayload(3)])
    assert isinstance(merged, ZeroPayload) and merged.nbytes == 7
    mixed = concat_payloads([BytesPayload(b"ab"), ZeroPayload(2)])
    assert mixed.materialize() == b"ab\x00\x00"


def test_concat_empty_and_zero_length_parts():
    assert concat_payloads([]).nbytes == 0
    merged = concat_payloads([BytesPayload(b""), BytesPayload(b"q")])
    assert merged.materialize() == b"q"


@given(
    seed=st.integers(0, 2**32),
    origin=st.integers(0, 2**40),
    nbytes=st.integers(0, 512),
    cut=st.integers(0, 512),
)
def test_property_pattern_slicing_consistent(seed, origin, nbytes, cut):
    payload = PatternPayload(seed, origin, nbytes)
    cut = min(cut, nbytes)
    left, right = payload.slice(0, cut), payload.slice(cut, nbytes)
    assert left.materialize() + right.materialize() == payload.materialize()
    rejoined = concat_payloads([left, right])
    assert rejoined == payload or rejoined.materialize() == payload.materialize()
