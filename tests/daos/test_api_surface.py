"""The public facade (``repro.daos.api``) and API-consistency shims."""

import warnings

import pytest

from repro.cluster import small_cluster
from repro.daos import api
from repro.errors import DerStale


@pytest.fixture(scope="module")
def cluster():
    c = small_cluster(server_nodes=2, client_nodes=1, targets_per_engine=2)
    c.observe(metrics=True)
    return c


@pytest.fixture(scope="module")
def cont(cluster):
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("api-tests", oclass="S2")
        return cont

    return cluster.run(setup())


def test_facade_exports_resolve():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_facade_covers_the_advertised_surface():
    assert api.DaosClient.__module__ == "repro.daos.client"
    assert api.EventQueue.__module__ == "repro.daos.eq"
    assert api.oclass_by_name("RP_2G1") is api.RP_2G1
    assert issubclass(api.DerStale, api.DaosError)


def test_handles_are_context_managers(cluster, cont):
    def go():
        with cluster.new_client(0) as client:
            with (yield from client.connect_pool("tank")) as pool:
                with (yield from pool.open_container("api-tests")) as c2:
                    oid = yield from c2.alloc_oid()
                    with c2.open_object(oid) as obj:
                        yield from obj.write(0, b"hello" * 100)
                        payload = yield from obj.read(0, 500)
        return payload.nbytes, pool.pool_map

    nbytes, pool_map = cluster.run(go())
    assert nbytes == 500
    assert pool_map is None  # PoolHandle.close() invalidated it


def test_legacy_positional_chunk_size_is_a_type_error(cluster, cont):
    """The PR-5 deprecation window is over: chunk_size/akey are
    keyword-only on every array op, and old positional call sites fail
    loudly instead of warning."""
    def go():
        oid = yield from cont.alloc_oid()
        obj = cont.open_object(oid)
        rejected = []
        for attempt in (
            lambda: obj.write(0, b"x" * 64, 1 << 16),
            lambda: obj.read(0, 64, 1 << 16),
            lambda: obj.size(1 << 16),
            lambda: obj.punch_range(0, 64, 1 << 16),
        ):
            try:
                yield from attempt()
            except TypeError:
                rejected.append(True)
            else:
                rejected.append(False)
        obj.close()
        return rejected

    assert cluster.run(go()) == [True, True, True, True]


def test_keyword_flags_still_work(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid()
        obj = cont.open_object(oid)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            yield from obj.write(0, b"x" * 64, chunk_size=1 << 16)
            payload = yield from obj.read(0, 64, chunk_size=1 << 16)
        obj.close()
        return payload.nbytes, [w.category for w in caught]

    nbytes, categories = cluster.run(go())
    assert nbytes == 64
    assert not categories


def test_der_stale_retries_surface_in_metrics(cluster, cont):
    metrics = cluster.sim.metrics
    assert metrics is not None

    def go():
        oid = yield from cont.alloc_oid()
        obj = cont.open_object(oid)
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            yield 0.0
            if calls["n"] == 1:
                raise DerStale("fenced by test")
            return "ok"

        result = yield from obj._retry_stale(attempt)
        obj.close()
        return result

    before = metrics.counters.get("client.der_stale.retries")
    before = before.value if before is not None else 0
    assert cluster.run(go()) == "ok"
    after = metrics.counters["client.der_stale.retries"].value
    assert after == before + 1
    assert "client.der_stale.retries{pool=tank}" in metrics.counters
