"""Unit + property tests for the VOS extent tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.daos.vos.extent import ExtentTree
from repro.daos.vos.payload import BytesPayload, PatternPayload, ZeroPayload


def test_write_read_roundtrip():
    tree = ExtentTree()
    tree.write(0, b"hello", epoch=1)
    assert tree.read(0, 5).materialize() == b"hello"
    assert tree.size == 5


def test_read_hole_is_zero_filled():
    tree = ExtentTree()
    tree.write(10, b"xy", epoch=1)
    data = tree.read(8, 6).materialize()
    assert data == b"\x00\x00xy\x00\x00"


def test_read_empty_tree():
    tree = ExtentTree()
    assert tree.read(0, 4).materialize() == b"\x00" * 4
    assert tree.read(5, 0).nbytes == 0
    assert tree.size == 0


def test_overwrite_full():
    tree = ExtentTree()
    tree.write(0, b"aaaa", epoch=1)
    tree.write(0, b"bbbb", epoch=2)
    assert tree.read(0, 4).materialize() == b"bbbb"
    assert len(tree) == 1
    tree.check_invariants()


def test_overwrite_partial_splits_old_extent():
    tree = ExtentTree()
    tree.write(0, b"aaaaaaaa", epoch=1)
    tree.write(2, b"BB", epoch=2)
    assert tree.read(0, 8).materialize() == b"aaBBaaaa"
    assert len(tree) == 3
    tree.check_invariants()


def test_overwrite_spanning_multiple_extents():
    tree = ExtentTree()
    tree.write(0, b"aaaa", epoch=1)
    tree.write(4, b"bbbb", epoch=2)
    tree.write(8, b"cccc", epoch=3)
    tree.write(2, b"XXXXXXXX", epoch=4)
    assert tree.read(0, 12).materialize() == b"aaXXXXXXXXcc"
    tree.check_invariants()


def test_capacity_delta_accounts_overwrites():
    tree = ExtentTree()
    assert tree.write(0, b"aaaa", epoch=1) == 4
    assert tree.write(2, b"bbbb", epoch=2) == 2  # 2 bytes reclaimed
    assert tree.used_bytes == 6


def test_punch_frees_and_leaves_hole():
    tree = ExtentTree()
    tree.write(0, b"abcdefgh", epoch=1)
    freed = tree.punch(2, 4)
    assert freed == 4
    assert tree.read(0, 8).materialize() == b"ab\x00\x00\x00\x00gh"
    assert tree.punch(100, 5) == 0
    assert tree.punch(0, 0) == 0
    tree.check_invariants()


def test_negative_offset_rejected():
    tree = ExtentTree()
    with pytest.raises(ValueError):
        tree.write(-1, b"x", epoch=1)


def test_zero_length_write_is_noop():
    tree = ExtentTree()
    assert tree.write(5, b"", epoch=1) == 0
    assert tree.size == 0


def test_pattern_payloads_stay_lazy_across_overwrite():
    tree = ExtentTree()
    tree.write(0, PatternPayload(seed=1, origin=0, nbytes=1024), epoch=1)
    tree.write(100, PatternPayload(seed=2, origin=100, nbytes=10), epoch=2)
    out = tree.read(0, 1024)
    expected = bytearray(PatternPayload(1, 0, 1024).materialize())
    expected[100:110] = PatternPayload(2, 100, 10).materialize()
    assert out.materialize() == bytes(expected)


def test_sequential_pattern_read_is_coalesced():
    tree = ExtentTree()
    for i in range(8):
        tree.write(i * 64, PatternPayload(seed=9, origin=i * 64, nbytes=64), epoch=i)
    result = tree.read(0, 512)
    assert isinstance(result, PatternPayload)
    assert result.nbytes == 512


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["write", "punch"]),
            st.integers(0, 200),
            st.integers(1, 64),
        ),
        max_size=60,
    )
)
def test_property_matches_bytearray_model(ops):
    tree = ExtentTree()
    model = bytearray(300)
    written_high = 0
    epoch = 0
    for op, offset, length in ops:
        epoch += 1
        if op == "write":
            data = bytes(((offset + i + epoch) % 251 for i in range(length)))
            tree.write(offset, data, epoch)
            model[offset : offset + length] = data
            written_high = max(written_high, offset + length)
        else:
            tree.punch(offset, length)
            model[offset : offset + length] = b"\x00" * length
        tree.check_invariants()
    assert tree.read(0, 300).materialize() == bytes(model)
    assert tree.size <= 300
    if written_high:
        assert tree.read(0, written_high).materialize() == bytes(model[:written_high])
