"""Unit + property tests for the VOS B+-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.daos.vos.btree import BPlusTree


def test_empty_tree():
    tree = BPlusTree()
    assert len(tree) == 0
    assert tree.get("x") is None
    assert tree.get("x", 5) == 5
    assert "x" not in tree
    assert not tree.delete("x")
    with pytest.raises(KeyError):
        tree.min_key()
    with pytest.raises(KeyError):
        tree.max_key()


def test_insert_get_replace():
    tree = BPlusTree()
    assert tree.insert("a", 1) is True
    assert tree.insert("a", 2) is False  # replace
    assert tree.get("a") == 2
    assert len(tree) == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        BPlusTree(capacity=2)


def test_many_inserts_in_order_and_reverse():
    for keys in (range(500), reversed(range(500))):
        tree = BPlusTree(capacity=8)
        for key in keys:
            tree.insert(key, key * 2)
        tree.check_invariants()
        assert len(tree) == 500
        assert [k for k in tree.keys()] == list(range(500))
        assert tree.min_key() == 0 and tree.max_key() == 499


def test_range_scan_half_open():
    tree = BPlusTree(capacity=8)
    for key in range(100):
        tree.insert(key, str(key))
    assert list(tree.keys(10, 15)) == [10, 11, 12, 13, 14]
    assert list(tree.keys(95)) == [95, 96, 97, 98, 99]
    assert list(tree.keys(None, 3)) == [0, 1, 2]
    assert list(tree.keys(40, 40)) == []


def test_range_scan_with_missing_bounds():
    tree = BPlusTree(capacity=4)
    for key in (10, 20, 30, 40, 50):
        tree.insert(key, key)
    assert list(tree.keys(15, 45)) == [20, 30, 40]


def test_delete_rebalances():
    tree = BPlusTree(capacity=4)
    keys = list(range(200))
    for key in keys:
        tree.insert(key, key)
    # delete every other key, checking invariants as we go
    for key in keys[::2]:
        assert tree.delete(key)
        tree.check_invariants()
    assert len(tree) == 100
    assert list(tree.keys()) == keys[1::2]
    for key in keys[1::2]:
        assert tree.delete(key)
    assert len(tree) == 0
    tree.check_invariants()


def test_bytes_keys():
    tree = BPlusTree(capacity=4)
    names = [f"file.{i:04d}".encode() for i in range(50)]
    for name in names:
        tree.insert(name, name.decode())
    assert list(tree.keys()) == sorted(names)
    assert tree.get(b"file.0031") == "file.0031"


@settings(max_examples=120, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 120)),
        max_size=300,
    ),
    capacity=st.sampled_from([4, 5, 8, 32]),
)
def test_property_matches_dict_model(ops, capacity):
    tree = BPlusTree(capacity=capacity)
    model = {}
    for op, key in ops:
        if op == "ins":
            assert tree.insert(key, key * 3) == (key not in model)
            model[key] = key * 3
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    tree.check_invariants()
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    for key in range(121):
        assert tree.get(key) == model.get(key)
