"""Erasure-coded object classes: parity, degraded reads, geometry."""

import pytest

from repro.cluster import small_cluster
from repro.daos.oclass import EC_2P1G1, EC_4P1G1, S2, oclass_by_name
from repro.daos.vos.payload import (
    BytesPayload,
    PatternPayload,
    XorPayload,
    ZeroPayload,
)
from repro.errors import DerDataLoss, DerInval
from repro.units import KiB, MiB


def test_xor_payload_algebra():
    a = BytesPayload(bytes(range(16)))
    b = BytesPayload(bytes(reversed(range(16))))
    parity = XorPayload([a, b])
    # XOR of parity with one part recovers the other
    recovered = XorPayload([parity, a])
    assert recovered.materialize() == b.materialize()
    # slicing commutes with XOR
    assert parity.slice(4, 12).materialize() == parity.materialize()[4:12]
    with pytest.raises(ValueError):
        XorPayload([])
    with pytest.raises(ValueError):
        XorPayload([a, ZeroPayload(3)])


def test_ec_class_geometry():
    assert EC_2P1G1.group_width == 3
    assert EC_2P1G1.shard_count(16) == 3
    assert EC_4P1G1.shard_count(16) == 5
    assert oclass_by_name("EC_2P1GX").shard_count(16) == 15  # 5 groups x 3
    assert EC_2P1G1.is_ec and not EC_2P1G1.is_replicated
    assert not S2.is_ec


@pytest.fixture(scope="module")
def cluster():
    return small_cluster(server_nodes=2, client_nodes=1,
                         targets_per_engine=2)


@pytest.fixture(scope="module")
def cont(cluster):
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        return (yield from pool.create_container("ec-tests",
                                                 oclass="EC_2P1G1"))

    return cluster.run(setup())


def test_ec_write_read_roundtrip(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid(EC_2P1G1)
        obj = cont.open_object(oid)
        pattern = PatternPayload(seed=5, origin=0, nbytes=4 * MiB)
        yield from obj.write(0, pattern, chunk_size=MiB)
        back = yield from obj.read(0, 4 * MiB, chunk_size=MiB)
        size = yield from obj.size(chunk_size=MiB)
        obj.close()
        return back, size

    back, size = cluster.run(go())
    assert back == PatternPayload(seed=5, origin=0, nbytes=4 * MiB)
    assert size == 4 * MiB


def test_ec_short_final_stripe(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid(EC_2P1G1)
        obj = cont.open_object(oid)
        data = b"q" * (MiB + 300 * KiB)  # one full stripe + a short one
        yield from obj.write(0, data, chunk_size=MiB)
        back = yield from obj.read(0, len(data), chunk_size=MiB)
        size = yield from obj.size(chunk_size=MiB)
        obj.close()
        return back.materialize(), size, len(data)

    back, size, expected = cluster.run(go())
    assert back == b"q" * expected
    assert size == expected


def test_ec_unaligned_write_rejected(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid(EC_2P1G1)
        obj = cont.open_object(oid)
        try:
            yield from obj.write(100, b"x" * KiB, chunk_size=MiB)
        except DerInval:
            return "rejected"
        finally:
            obj.close()

    assert cluster.run(go()) == "rejected"


def test_ec_chunk_not_divisible_rejected(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid(EC_2P1G1)
        obj = cont.open_object(oid)
        try:
            yield from obj.write(0, b"x" * 33, chunk_size=33)  # 33 % 2 != 0
        except DerInval:
            return "rejected"
        finally:
            obj.close()

    assert cluster.run(go()) == "rejected"


@pytest.mark.parametrize(
    "victim_pos", [0, 1, 2], ids=["data-cell-0", "data-cell-1", "parity"]
)
def test_ec_degraded_read_reconstructs_content(victim_pos):
    """Losing ANY single shard of an EC_2P1 group — either data cell or
    the parity — leaves every byte readable. A fresh cluster per victim
    keeps the exclusions independent."""
    fresh = small_cluster(server_nodes=2, client_nodes=1,
                          targets_per_engine=2)
    client = fresh.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("ec-degraded",
                                                oclass="EC_2P1G1")
        oid = yield from cont.alloc_oid(EC_2P1G1)
        obj = cont.open_object(oid)
        pattern = PatternPayload(seed=9, origin=0, nbytes=2 * MiB)
        yield from obj.write(0, pattern, chunk_size=MiB)
        # kill the chosen cell's target (cells 0..k-1 are data, k.. parity)
        victim = obj.layout.targets_for_dkey(0)[victim_pos]
        yield from fresh.daos.exclude_target(pool.pool_map.uuid, victim)
        yield from pool.refresh_map()
        degraded = cont.open_object(oid)
        back = yield from degraded.read(0, 2 * MiB, chunk_size=MiB)
        obj.close()
        degraded.close()
        return back, pattern

    back, pattern = fresh.run(go())
    assert back.materialize() == pattern.materialize()


def test_ec_double_failure_fails(cluster):
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("ec-dead",
                                                oclass="EC_2P1G1")
        oid = yield from cont.alloc_oid(EC_2P1G1)
        obj = cont.open_object(oid)
        yield from obj.write(0, b"d" * MiB, chunk_size=MiB)
        group = obj.layout.targets_for_dkey(0)
        # lose one data cell AND the parity: unrecoverable with p=1
        yield from cluster.daos.exclude_target(pool.pool_map.uuid, group[0])
        yield from cluster.daos.exclude_target(pool.pool_map.uuid, group[2])
        yield from pool.refresh_map()
        degraded = cont.open_object(oid)
        try:
            yield from degraded.read(0, MiB, chunk_size=MiB)
        except DerDataLoss:
            return "lost"
        finally:
            obj.close()
            degraded.close()

    assert cluster.run(go()) == "lost"


@pytest.fixture()
def fresh_cluster():
    # The exclusion tests above poison the module cluster's pool map;
    # amplification accounting needs every target live. Enough targets
    # that aggregate target capacity exceeds the client NIC — the wire,
    # not target service, must be the binding constraint for the
    # timing variant below.
    return small_cluster(server_nodes=2, client_nodes=1,
                         targets_per_engine=4)


def test_ec_write_amplification_in_capacity(fresh_cluster):
    """EC_2P1 stores 1.5x the bytes of the plain class for the same data."""
    cluster = fresh_cluster
    client = cluster.new_client(0)

    def used_delta(oclass_name):
        def go():
            pool = yield from client.connect_pool("tank")
            cont = yield from pool.create_container(
                f"amp-{oclass_name}", oclass=oclass_name
            )
            before = yield from pool.query()
            oid = yield from cont.alloc_oid()
            obj = cont.open_object(oid)
            yield from obj.write(
                0, PatternPayload(seed=1, origin=0, nbytes=16 * MiB),
                chunk_size=MiB,
            )
            after = yield from pool.query()
            obj.close()
            return after["used"] - before["used"]

        return cluster.run(go())

    plain = used_delta("S2")
    coded = used_delta("EC_2P1G1")
    assert plain == 16 * MiB
    assert coded == 24 * MiB  # + one parity cell per stripe


def test_ec_write_amplification_in_time_under_nic_saturation(fresh_cluster):
    """With the client NIC saturated, the 1.5x wire amplification shows
    up as ~1.5x longer writes."""
    cluster = fresh_cluster
    client = cluster.new_client(0)

    def timed(oclass_name):
        def setup():
            pool = yield from client.connect_pool("tank")
            return (
                yield from pool.create_container(
                    f"amp-t-{oclass_name}", oclass=oclass_name
                )
            )

        cont = cluster.run(setup())

        def writer(i):
            def go():
                oid = yield from cont.alloc_oid()
                obj = cont.open_object(oid)
                start = cluster.sim.now
                yield from obj.write(
                    0, PatternPayload(seed=i, origin=0, nbytes=8 * MiB),
                    chunk_size=MiB,
                )
                elapsed = cluster.sim.now - start
                obj.close()
                return elapsed

            return go()

        tasks = [cluster.sim.spawn(writer(i)).defuse() for i in range(12)]
        return max(cluster.sim.run_until_complete(t) for t in tasks)

    plain = timed("S2")
    coded = timed("EC_2P1G1")
    # The full 1.5x only shows when the NIC is the sole constraint; at
    # this test scale residual target hotspots dilute it, so assert the
    # direction with margin rather than the asymptote.
    assert coded > plain * 1.1
