"""Tests for object classes, object ids, and algorithmic placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.daos.oclass import (
    RP_2G1,
    RP_2GX,
    S1,
    S2,
    S4,
    SX,
    oclass_by_name,
    oclass_from_id,
    oclass_id,
)
from repro.daos.objid import ObjId
from repro.daos.placement import PlacementMap, dkey_hash, jump_hash
from repro.errors import DerInval


def test_shard_counts():
    assert S1.shard_count(128) == 1
    assert S2.shard_count(128) == 2
    assert SX.shard_count(128) == 128
    assert RP_2G1.shard_count(128) == 2
    assert RP_2GX.shard_count(128) == 128  # 64 groups x 2 replicas


def test_class_too_wide_for_pool():
    with pytest.raises(DerInval):
        S4.group_count(2)


def test_oclass_registry_roundtrip():
    for name in ("S1", "s2", "SX", "rp_2g1"):
        oclass = oclass_by_name(name)
        assert oclass_from_id(oclass_id(oclass)) is oclass
    with pytest.raises(DerInval):
        oclass_by_name("S3")


def test_objid_embeds_class():
    oid = ObjId.generate(S2, hi=0x1234, lo=99)
    assert oid.oclass is S2
    assert oid.app_hi == 0x1234
    assert oid.lo == 99
    assert str(oid).count(".") == 1


def test_objid_reserved_bits_checked():
    with pytest.raises(DerInval):
        ObjId.generate(S1, hi=1 << 50)
    with pytest.raises(DerInval):
        ObjId(-1, 0)


def test_jump_hash_range_and_stability():
    for buckets in (1, 2, 7, 128):
        for key in range(200):
            bucket = jump_hash(key, buckets)
            assert 0 <= bucket < buckets
            assert bucket == jump_hash(key, buckets)
    with pytest.raises(DerInval):
        jump_hash(1, 0)


def test_jump_hash_monotone_stability():
    # Consistent hashing property: growing the bucket count only moves
    # keys INTO the new bucket, never between old buckets.
    for key in range(300):
        before = jump_hash(key, 16)
        after = jump_hash(key, 17)
        assert after == before or after == 16


def test_dkey_hash_types():
    assert dkey_hash(5) == dkey_hash(5)
    assert dkey_hash("abc") == dkey_hash(b"abc")
    assert dkey_hash(b"a") != dkey_hash(b"b")
    with pytest.raises(DerInval):
        dkey_hash(3.5)


def test_layout_is_deterministic_and_distinct():
    pmap = PlacementMap(128)
    oid = ObjId.generate(S4, lo=7)
    layout1 = pmap.layout(oid)
    layout2 = PlacementMap(128).layout(oid)
    assert layout1.all_targets == layout2.all_targets
    assert len(set(layout1.all_targets)) == 4


def test_sx_layout_covers_all_targets():
    pmap = PlacementMap(16)
    layout = pmap.layout(ObjId.generate(SX, lo=3))
    assert sorted(layout.all_targets) == list(range(16))


def test_replicated_layout_groups():
    pmap = PlacementMap(16)
    layout = pmap.layout(ObjId.generate(RP_2G1, lo=1))
    assert layout.group_count == 1
    assert len(layout.groups[0]) == 2
    assert layout.groups[0][0] != layout.groups[0][1]


def test_dkey_routing_stable_and_in_range():
    pmap = PlacementMap(64)
    layout = pmap.layout(ObjId.generate(S4, lo=11))
    for chunk in range(100):
        group = layout.group_of_dkey(chunk)
        assert 0 <= group < 4
        assert layout.targets_for_dkey(chunk)[0] == layout.leader_for_dkey(chunk)
        assert layout.group_of_dkey(chunk) == layout.group_of_dkey(chunk)


def test_placement_balance_over_many_objects():
    # The balls-into-bins distribution behind the S1 hotspot mechanism:
    # uniform enough that no target gets a pathological share.
    pmap = PlacementMap(64)
    load = [0] * 64
    for i in range(2000):
        layout = pmap.layout(ObjId.generate(S1, lo=i))
        load[layout.all_targets[0]] += 1
    mean = 2000 / 64
    assert max(load) < mean * 2.2
    assert min(load) > mean * 0.2


def test_dkey_spread_within_sx_object():
    pmap = PlacementMap(32)
    layout = pmap.layout(ObjId.generate(SX, lo=5))
    hits = [0] * 32
    for chunk in range(64 * 32):
        hits[layout.leader_for_dkey(chunk)] += 1
    assert min(hits) > 0  # every target sees some chunks
    assert max(hits) < 64 * 4


@settings(max_examples=50, deadline=None)
@given(
    n_targets=st.integers(1, 200),
    lo=st.integers(0, 2**63),
    cls=st.sampled_from([S1, S2, SX]),
)
def test_property_layouts_valid(n_targets, lo, cls):
    if cls.grp_nr > n_targets:
        return
    pmap = PlacementMap(n_targets)
    layout = pmap.layout(ObjId.generate(cls, lo=lo))
    targets = layout.all_targets
    assert len(set(targets)) == len(targets)
    assert all(0 <= t < n_targets for t in targets)
    assert len(targets) == cls.shard_count(n_targets)
