"""Tests for the libdaos-style Array and flat-KV APIs."""

import pytest

from repro.cluster import small_cluster
from repro.daos.array import DaosArray
from repro.daos.kv import DaosKV
from repro.daos.oclass import S2
from repro.daos.vos.payload import PatternPayload
from repro.errors import DerInval, DerNonexist
from repro.units import KiB, MiB


@pytest.fixture(scope="module")
def cluster():
    return small_cluster(server_nodes=2, client_nodes=1, targets_per_engine=2)


@pytest.fixture(scope="module")
def cont(cluster):
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        return (yield from pool.create_container("api-tests", oclass="S2"))

    return cluster.run(setup())


def test_array_create_write_read(cluster, cont):
    def go():
        arr = yield from DaosArray.create(cont, cell_size=8, chunk_cells=1024)
        written = yield from arr.write(0, b"x" * 64)
        data = yield from arr.read(0, 8)
        size = yield from arr.get_size()
        arr.close()
        return written, data.materialize(), size

    written, data, size = cluster.run(go())
    assert written == 8  # cells
    assert data == b"x" * 64
    assert size == 8


def test_array_open_recovers_metadata(cluster, cont):
    def go():
        arr = yield from DaosArray.create(cont, cell_size=4, chunk_cells=256)
        yield from arr.write(10, b"abcd" * 3)
        oid = arr.obj.oid
        arr.close()
        reopened = yield from DaosArray.open(cont, oid)
        data = yield from reopened.read(10, 3)
        meta = (reopened.cell_size, reopened.chunk_cells)
        reopened.close()
        return data.materialize(), meta

    data, meta = cluster.run(go())
    assert data == b"abcd" * 3
    assert meta == (4, 256)


def test_array_partial_cell_write_rejected(cluster, cont):
    def go():
        arr = yield from DaosArray.create(cont, cell_size=8, chunk_cells=16)
        try:
            yield from arr.write(0, b"123")
        except DerInval:
            return "rejected"
        finally:
            arr.close()

    assert cluster.run(go()) == "rejected"


def test_array_punch(cluster, cont):
    def go():
        arr = yield from DaosArray.create(cont, cell_size=1, chunk_cells=KiB)
        yield from arr.write(0, b"z" * 100)
        yield from arr.punch(10, 20)
        data = yield from arr.read(0, 100)
        arr.close()
        return data.materialize()

    data = cluster.run(go())
    assert data[:10] == b"z" * 10
    assert data[10:30] == b"\x00" * 20
    assert data[30:] == b"z" * 70


def test_array_large_lazy_io(cluster, cont):
    def go():
        arr = yield from DaosArray.create(cont, cell_size=1, chunk_cells=MiB)
        pattern = PatternPayload(seed=42, origin=0, nbytes=16 * MiB)
        yield from arr.write(0, pattern)
        back = yield from arr.read(0, 16 * MiB)
        size = yield from arr.get_size()
        arr.close()
        return back, size

    back, size = cluster.run(go())
    assert back == PatternPayload(seed=42, origin=0, nbytes=16 * MiB)
    assert size == 16 * MiB


def test_kv_basalong(cluster, cont):
    def go():
        kv = yield from DaosKV.create(cont, S2)
        yield from kv.put("alpha", {"v": 1})
        yield from kv.put("beta", [1, 2])
        value = yield from kv.get("alpha")
        missing = yield from kv.get("gamma", default=None)
        keys = yield from kv.list()
        removed = yield from kv.remove("alpha")
        removed_again = yield from kv.remove("alpha")
        kv.close()
        return value, missing, keys, removed, removed_again

    value, missing, keys, removed, removed_again = cluster.run(go())
    assert value == {"v": 1}
    assert missing is None
    assert keys == ["alpha", "beta"]
    assert removed is True
    assert removed_again is False


def test_kv_get_missing_raises(cluster, cont):
    def go():
        kv = yield from DaosKV.create(cont)
        try:
            yield from kv.get("void")
        except DerNonexist:
            return "raises"
        finally:
            kv.close()

    assert cluster.run(go()) == "raises"


def test_kv_prefix_listing(cluster, cont):
    def go():
        kv = yield from DaosKV.create(cont)
        for name in ("run.001", "run.002", "cfg.a", "run.010"):
            yield from kv.put(name, name)
        runs = yield from kv.list(prefix="run.")
        kv.close()
        return runs

    assert cluster.run(go()) == ["run.001", "run.002", "run.010"]


def test_kv_reopen_by_oid(cluster, cont):
    def go():
        kv = yield from DaosKV.create(cont)
        yield from kv.put("persist", 7)
        oid = kv.oid
        kv.close()
        kv2 = DaosKV.open(cont, oid)
        value = yield from kv2.get("persist")
        kv2.close()
        return value

    assert cluster.run(go()) == 7
