"""Integration tests: DAOS system, client, object KV + array I/O."""

import pytest

from repro.cluster import small_cluster
from repro.daos.oclass import RP_2G1, S1, S2, SX, oclass_by_name
from repro.daos.vos.payload import PatternPayload
from repro.errors import DerDataLoss, DerExist, DerNonexist
from repro.units import KiB, MiB


@pytest.fixture(scope="module")
def cluster():
    return small_cluster(server_nodes=2, client_nodes=2, targets_per_engine=2)


@pytest.fixture(scope="module")
def cont(cluster):
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("obj-tests", oclass="S2")
        return cont

    return cluster.run(setup())


def test_pool_boot(cluster):
    assert cluster.pool.label == "tank"
    assert cluster.pool.n_targets == 8  # 2 servers x 2 engines x 2 targets
    assert cluster.daos.svc.leader() is not None


def test_pool_connect_unknown_label(cluster):
    client = cluster.new_client(0)

    def go():
        try:
            yield from client.connect_pool("nope")
        except DerNonexist:
            return "missing"

    assert cluster.run(go()) == "missing"


def test_container_create_open_and_props(cluster, cont):
    client = cluster.new_client(1)

    def go():
        pool = yield from client.connect_pool("tank")
        opened = yield from pool.open_container("obj-tests")
        return opened

    opened = cluster.run(go())
    assert opened.uuid == cont.uuid
    assert opened.default_oclass is oclass_by_name("S2")
    assert opened.chunk_size == MiB


def test_duplicate_container_label_rejected(cluster, cont):
    def go():
        try:
            yield from cont.pool.create_container("obj-tests")
        except DerExist:
            return "dup"

    assert cluster.run(go()) == "dup"


def test_oid_allocation_unique_across_clients(cluster, cont):
    client2 = cluster.new_client(1)

    def go():
        pool = yield from client2.connect_pool("tank")
        other = yield from pool.open_container("obj-tests")
        oids = []
        for _ in range(5):
            oids.append((yield from cont.alloc_oid()))
            oids.append((yield from other.alloc_oid()))
        return oids

    oids = cluster.run(go())
    assert len({(o.hi, o.lo) for o in oids}) == 10
    assert all(oid.oclass is oclass_by_name("S2") for oid in oids)


def test_kv_put_get_roundtrip(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid(S1)
        obj = cont.open_object(oid)
        yield from obj.put(b"dir-entry", b"inode", {"mode": 0o644, "size": 0})
        value = yield from obj.get(b"dir-entry", b"inode")
        obj.close()
        return value

    assert cluster.run(go()) == {"mode": 0o644, "size": 0}


def test_kv_get_missing_raises(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid(S1)
        obj = cont.open_object(oid)
        try:
            yield from obj.get(b"nope", b"x")
        except DerNonexist:
            return "missing"

    assert cluster.run(go()) == "missing"


def test_kv_punch_and_list_dkeys(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid(S2)
        obj = cont.open_object(oid)
        for name in (b"c", b"a", b"b"):
            yield from obj.put(name, b"e", name.decode())
        keys_before = yield from obj.list_dkeys()
        yield from obj.punch(b"b", b"e")
        try:
            yield from obj.get(b"b", b"e")
            visible = True
        except DerNonexist:
            visible = False
        return keys_before, visible

    keys_before, visible = cluster.run(go())
    assert keys_before == [b"a", b"b", b"c"]
    assert visible is False


def test_kv_epoch_snapshot_read(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid(S1)
        obj = cont.open_object(oid)
        yield from obj.put(b"k", b"a", "v1")
        epochs = yield from cont.snapshot()
        yield from obj.put(b"k", b"a", "v2")
        latest = yield from obj.get(b"k", b"a")
        tid = obj.layout.targets_for_dkey(b"k")[0]
        old = yield from obj.get(b"k", b"a", epoch=epochs[tid])
        return latest, old

    assert cluster.run(go()) == ("v2", "v1")


def test_array_write_read_roundtrip(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid(S2)
        obj = cont.open_object(oid)
        data = bytes(range(256)) * 16  # 4 KiB
        yield from obj.write(0, data)
        back = yield from obj.read(0, len(data))
        obj.close()
        return data, back.materialize()

    data, back = cluster.run(go())
    assert back == data


def test_array_write_crossing_chunk_boundary(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid(S2)
        obj = cont.open_object(oid)
        payload = PatternPayload(seed=11, origin=0, nbytes=3 * MiB)
        yield from obj.write(512 * KiB, payload, chunk_size=MiB)
        back = yield from obj.read(512 * KiB, 3 * MiB, chunk_size=MiB)
        size = yield from obj.size(chunk_size=MiB)
        obj.close()
        return back, size

    back, size = cluster.run(go())
    assert back == PatternPayload(seed=11, origin=0, nbytes=3 * MiB)
    assert size == 512 * KiB + 3 * MiB


def test_array_sparse_read_zero_fills(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid(S2)
        obj = cont.open_object(oid)
        yield from obj.write(2 * MiB, b"tail")
        head = yield from obj.read(0, 8)
        obj.close()
        return head.materialize()

    assert cluster.run(go()) == b"\x00" * 8


def test_array_punch_range(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid(S2)
        obj = cont.open_object(oid)
        yield from obj.write(0, b"A" * 1024)
        yield from obj.punch_range(100, 200)
        back = yield from obj.read(0, 1024)
        obj.close()
        return back.materialize()

    data = cluster.run(go())
    assert data[:100] == b"A" * 100
    assert data[100:300] == b"\x00" * 200
    assert data[300:] == b"A" * 724


def test_sx_object_spreads_chunks_across_targets(cluster, cont):
    def go():
        oid = yield from cont.alloc_oid(SX)
        obj = cont.open_object(oid)
        yield from obj.write(0, PatternPayload(seed=1, origin=0, nbytes=8 * MiB))
        touched = set()
        for chunk in range(8):
            touched.add(obj.layout.leader_for_dkey(chunk))
        obj.close()
        return touched

    touched = cluster.run(go())
    assert len(touched) >= 4  # 8 chunks over 8 targets: decent spread


def test_io_takes_simulated_time_and_scales(cluster, cont):
    def timed(nbytes):
        def go():
            oid = yield from cont.alloc_oid(S2)
            obj = cont.open_object(oid)
            start = cluster.sim.now
            yield from obj.write(
                0, PatternPayload(seed=2, origin=0, nbytes=nbytes)
            )
            elapsed = cluster.sim.now - start
            obj.close()
            return elapsed

        return cluster.run(go())

    small = timed(1 * MiB)
    big = timed(64 * MiB)
    assert small > 0
    assert big > small * 4


def test_replicated_object_survives_target_exclusion(cluster):
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("repl", oclass="RP_2G1")
        oid = yield from cont.alloc_oid(RP_2G1)
        obj = cont.open_object(oid)
        yield from obj.write(0, b"precious data")
        leader = obj.layout.targets_for_dkey(0)[0]
        yield from cluster.daos.exclude_target(pool.pool_map.uuid, leader)
        yield from pool.refresh_map()
        obj2 = cont.open_object(oid)
        back = yield from obj2.read(0, 13)
        obj.close()
        obj2.close()
        return back.materialize()

    assert cluster.run(go()) == b"precious data"


def test_unreplicated_object_fails_when_target_excluded(cluster):
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("fragile", oclass="S1")
        # Skip OIDs landing on targets excluded by earlier tests: this
        # test needs to start from a live target and lose it.
        while True:
            oid = yield from cont.alloc_oid(S1)
            obj = cont.open_object(oid)
            if obj.layout.targets_for_dkey(0)[0] not in pool.pool_map.excluded:
                break
            obj.close()
        yield from obj.write(0, b"gone")
        victim = obj.layout.targets_for_dkey(0)[0]
        yield from cluster.daos.exclude_target(pool.pool_map.uuid, victim)
        yield from pool.refresh_map()
        obj2 = cont.open_object(oid)
        try:
            yield from obj2.read(0, 4)
        except DerDataLoss:
            return "lost"
        finally:
            obj.close()
            obj2.close()

    assert cluster.run(go()) == "lost"
