"""Engine-level behaviours: capacity exhaustion, service queueing,
first-writer accounting, and stats."""

import pytest

from repro.cluster import small_cluster
from repro.daos.oclass import S1, S2
from repro.daos.vos.payload import PatternPayload
from repro.errors import DerNoSpace, DerNonexist
from repro.units import KiB, MiB


@pytest.fixture()
def tiny_cluster():
    # 16 MiB per target: easy to fill
    return small_cluster(server_nodes=2, client_nodes=1,
                         targets_per_engine=2, capacity_per_target=16 * MiB)


def test_target_runs_out_of_space(tiny_cluster):
    cluster = tiny_cluster
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("full", oclass="S1")
        oid = yield from cont.alloc_oid(S1)
        obj = cont.open_object(oid)
        written = 0
        try:
            # an S1 object lives on one 16 MiB target: the 17th MiB fails
            for i in range(17):
                yield from obj.write(i * MiB, PatternPayload(1, i * MiB, MiB))
                written += 1
        except DerNoSpace:
            return written
        finally:
            obj.close()

    written = cluster.run(go())
    assert 14 <= written <= 16


def test_punch_reclaims_space(tiny_cluster):
    cluster = tiny_cluster
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("reclaim", oclass="S1")
        oid = yield from cont.alloc_oid(S1)
        obj = cont.open_object(oid)
        for i in range(12):
            yield from obj.write(i * MiB, PatternPayload(1, i * MiB, MiB))
        before = yield from pool.query()
        yield from obj.punch_range(0, 8 * MiB)
        after = yield from pool.query()
        # the freed space is writable again
        for i in range(4):
            yield from obj.write(i * MiB, PatternPayload(2, i * MiB, MiB))
        obj.close()
        return before["used"], after["used"]

    before, after = cluster.run(go())
    assert after <= before - 8 * MiB


def test_overwrites_do_not_leak_capacity(tiny_cluster):
    cluster = tiny_cluster
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("rewrite", oclass="S1")
        oid = yield from cont.alloc_oid(S1)
        obj = cont.open_object(oid)
        # overwrite the same MiB far more times than the target could
        # hold if overwrites leaked
        for _ in range(64):
            yield from obj.write(0, PatternPayload(3, 0, MiB))
        after = yield from pool.query()
        obj.close()
        return after["used"]

    used = cluster.run(go())
    assert used < 3 * MiB


def test_engine_stats_count_rpcs_and_tree_creates():
    cluster = small_cluster(server_nodes=2, client_nodes=1,
                            targets_per_engine=2)
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("stats", oclass="S2")
        kv_obj = cont.open_object((yield from cont.alloc_oid(S2)))
        yield from kv_obj.put(b"k", b"a", 1)  # metadata RPC
        kv_obj.close()
        arr_obj = cont.open_object((yield from cont.alloc_oid(S2)))
        yield from arr_obj.write(0, b"x" * (2 * MiB))  # 2 shards: 2 creates
        arr_obj.close()

    cluster.run(go())
    rpcs = sum(e.stats.count("rpcs") for e in cluster.daos.engines)
    creates = sum(e.stats.count("tree_creates") for e in cluster.daos.engines)
    assert rpcs >= 1
    assert creates == 2


def test_first_write_cost_charged_once():
    cluster = small_cluster(server_nodes=2, client_nodes=1,
                            targets_per_engine=2)
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("warm", oclass="S1")
        oid = yield from cont.alloc_oid(S1)
        obj = cont.open_object(oid)
        start = cluster.sim.now
        yield from obj.write(0, b"a" * (256 * KiB))
        first = cluster.sim.now - start
        start = cluster.sim.now
        yield from obj.write(256 * KiB, b"b" * (256 * KiB))
        second = cluster.sim.now - start
        obj.close()
        return first, second

    first, second = cluster.run(go())
    # the first write pays VOS tree creation; the second does not
    assert first > second + 200e-6


def test_engine_target_credits_queue_metadata_storms():
    cluster = small_cluster(server_nodes=1, client_nodes=1,
                            targets_per_engine=1)
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        return (yield from pool.create_container("storm", oclass="S1"))

    cont = cluster.run(setup())

    def one_put(i):
        def go():
            oid_obj = cont.open_object(
                (yield from cont.alloc_oid(S1))
            )
            yield from oid_obj.put(b"k%d" % i, b"a", i)
            oid_obj.close()

        return go()

    # far more concurrent RPCs than one target's inflight credits
    start = cluster.sim.now
    tasks = [cluster.sim.spawn(one_put(i)).defuse() for i in range(64)]
    for task in tasks:
        cluster.sim.run_until_complete(task)
    elapsed = cluster.sim.now - start
    engine = cluster.daos.engines[0]
    # all ops served; total time at least ops x cpu / credits
    floor = 64 * engine.spec.per_rpc_cpu / engine.spec.target_inflight
    assert elapsed > floor


def test_kv_on_unknown_container_shard_fails():
    cluster = small_cluster(server_nodes=2, client_nodes=1,
                            targets_per_engine=2)
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("real", oclass="S1")
        cont.uuid = "cont-bogus"  # sabotage the handle
        oid = yield from cont.alloc_oid(S1)
        obj = cont.open_object(oid)
        try:
            yield from obj.put(b"k", b"a", 1)
        except DerNonexist:
            return "missing"
        finally:
            obj.close()

    assert cluster.run(go()) == "missing"
