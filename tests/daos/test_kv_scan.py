"""Ordered KV enumeration: deterministic listing, pagination, prefixes.

The FDB retriever leans on ``DaosKV.list``/``scan`` for predicate
expansion, so the contract is pinned here: sorted order, exact prefix
semantics (including the upper-bound carry for trailing 0xFF bytes),
cursor-based resumption, and key validation consistent with the metric
label grammar (same reserved characters).
"""

import pytest

from repro.cluster import small_cluster
from repro.daos.kv import (
    RESERVED_KEY_CHARS,
    DaosKV,
    prefix_upper_bound,
    validate_key,
)
from repro.errors import DerInval
from repro.obs.metrics import format_metric_name


@pytest.fixture(scope="module")
def cluster():
    return small_cluster(server_nodes=2, client_nodes=1, targets_per_engine=2)


@pytest.fixture(scope="module")
def kv(cluster):
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("kv-scan", oclass="S2")
        handle = yield from DaosKV.create(cont)
        for step in range(12):
            yield from handle.put(f"fc/t2m/{step:03d}", step)
        for step in range(3):
            yield from handle.put(f"fc/u10/{step:03d}", step)
        yield from handle.put("landmark", "done")
        return handle

    return cluster.run(setup())


def test_list_is_sorted_and_complete(cluster, kv):
    keys = cluster.run(kv.list())
    assert keys == sorted(keys)
    assert len(keys) == 16


def test_empty_prefix_equals_full_listing(cluster, kv):
    assert cluster.run(kv.list(prefix="")) == cluster.run(kv.list())


def test_prefix_filters_exactly(cluster, kv):
    t2m = cluster.run(kv.list(prefix="fc/t2m/"))
    assert t2m == [f"fc/t2m/{i:03d}" for i in range(12)]
    # a prefix that is itself a stored key matches only itself
    assert cluster.run(kv.list(prefix="landmark")) == ["landmark"]
    assert cluster.run(kv.list(prefix="zzz")) == []


def test_limit_truncates_in_order(cluster, kv):
    head = cluster.run(kv.list(prefix="fc/", limit=5))
    assert head == cluster.run(kv.list(prefix="fc/"))[:5]


def test_after_cursor_resumes_without_overlap(cluster, kv):
    first = cluster.run(kv.list(prefix="fc/", limit=6))
    rest = cluster.run(kv.list(prefix="fc/", after=first[-1]))
    assert first + rest == cluster.run(kv.list(prefix="fc/"))


def test_scan_paginates_to_completion(cluster, kv):
    # page far smaller than the key count: scan must stitch pages
    assert cluster.run(kv.scan(prefix="fc/", page=4)) == cluster.run(
        kv.list(prefix="fc/")
    )
    assert cluster.run(kv.scan(page=3)) == cluster.run(kv.list())


def test_reserved_chars_rejected_like_metric_labels(cluster, kv):
    """The KV key grammar reserves exactly the metric-label characters,
    so canonical field keys are always legal label values."""
    for ch in RESERVED_KEY_CHARS:
        with pytest.raises(DerInval):
            validate_key(f"bad{ch}key")
        with pytest.raises(ValueError):
            format_metric_name("m", {"label": f"bad{ch}key"})

    def go():
        try:
            yield from kv.put("bad,key", 1)
        except DerInval:
            return "rejected"
        return "accepted"

    assert cluster.run(go()) == "rejected"


@pytest.mark.parametrize("bad", ["", 123, None, b"bytes"])
def test_non_string_or_empty_keys_rejected(bad):
    with pytest.raises(DerInval):
        validate_key(bad)


def test_prefix_upper_bound_increments_last_byte():
    assert prefix_upper_bound(b"abc") == b"abd"
    assert prefix_upper_bound(b"a/") == b"a0"


def test_prefix_upper_bound_carries_past_trailing_ff():
    # UTF-8 never produces 0xFF, but the bound must stay correct for any
    # byte string the btree could hold
    assert prefix_upper_bound(b"a\xff") == b"b"
    assert prefix_upper_bound(b"a\xff\xff") == b"b"
    assert prefix_upper_bound(b"\xff\xff") is None
    assert prefix_upper_bound(b"") is None
