"""HDF5-lite integration tests over DFuse (sec2) and MPI-IO (mpio)."""

import pytest

from repro.cluster import small_cluster
from repro.daos.vos.payload import PatternPayload
from repro.dfs import Dfs
from repro.dfuse import DFuseMount
from repro.hdf5 import H5File, MpioVfd, Sec2Vfd
from repro.hdf5.file import H5Error
from repro.mpi import MpiWorld
from repro.mpiio import UfsDriver
from repro.units import KiB, MiB


@pytest.fixture(scope="module")
def cluster():
    return small_cluster(server_nodes=2, client_nodes=2, targets_per_engine=2)


@pytest.fixture(scope="module")
def mount(cluster):
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("h5-cont", oclass="S2")
        dfs = yield from Dfs.mount(cont)
        return DFuseMount(dfs)

    return cluster.run(setup())


def test_create_write_read_contiguous(cluster, mount):
    def go():
        h5 = yield from H5File.create(Sec2Vfd(mount), "/exp.h5")
        ds = yield from h5.create_dataset("temp", (64,), dtype="u1")
        yield from ds.write((0,), (64,), bytes(range(64)))
        data = yield from ds.read((10,), (4,))
        yield from h5.close()
        return data.materialize()

    assert cluster.run(go()) == bytes([10, 11, 12, 13])


def test_reopen_recovers_catalog(cluster, mount):
    def go():
        h5 = yield from H5File.create(Sec2Vfd(mount), "/persist.h5")
        h5.attrs["experiment"] = "ior"
        ds = yield from h5.create_dataset(
            "field", (4, 8), dtype="f8", attrs={"units": "K"}
        )
        yield from ds.write((0, 0), (4, 8), b"\x01" * (4 * 8 * 8))
        yield from h5.close()

        h5b = yield from H5File.open(Sec2Vfd(mount), "/persist.h5")
        ds2 = h5b.dataset("field")
        data = yield from ds2.read((1, 0), (1, 8))
        meta = (h5b.attrs, ds2.attrs, ds2.space.dims, ds2.dtype.code)
        yield from h5b.close()
        return data.materialize(), meta

    data, meta = cluster.run(go())
    assert data == b"\x01" * 64
    assert meta == ({"experiment": "ior"}, {"units": "K"}, (4, 8), "f8")


def test_2d_hyperslab_roundtrip(cluster, mount):
    def go():
        h5 = yield from H5File.create(Sec2Vfd(mount), "/grid.h5")
        ds = yield from h5.create_dataset("g", (8, 16), dtype="u1")
        yield from ds.write((0, 0), (8, 16), bytes(range(128)))
        block = yield from ds.read((2, 4), (3, 5))
        yield from h5.close()
        return block.materialize()

    expected = bytes(
        (row * 16 + col) % 256 for row in range(2, 5) for col in range(4, 9)
    )
    assert cluster.run(go()) == expected


def test_chunked_dataset_allocation_and_fill(cluster, mount):
    def go():
        h5 = yield from H5File.create(Sec2Vfd(mount), "/chunky.h5")
        ds = yield from h5.create_dataset(
            "t", (16, 32), dtype="u1", chunk_rows=4
        )
        yield from ds.write((4, 0), (4, 32), b"\x07" * 128)
        data = yield from ds.read((0, 0), (16, 32))
        allocated = len(ds.layout["chunks"])
        yield from h5.close()
        return data.materialize(), allocated

    data, allocated = cluster.run(go())
    assert allocated == 1  # only the touched chunk
    assert data[:128] == b"\x00" * 128  # fill value
    assert data[128:256] == b"\x07" * 128


def test_chunked_persists_across_reopen(cluster, mount):
    def go():
        h5 = yield from H5File.create(Sec2Vfd(mount), "/chunky2.h5")
        ds = yield from h5.create_dataset("t", (8, 8), dtype="u1", chunk_rows=2)
        yield from ds.write((2, 0), (2, 8), b"\x09" * 16)
        yield from h5.close()
        h5b = yield from H5File.open(Sec2Vfd(mount), "/chunky2.h5")
        data = yield from h5b.dataset("t").read((2, 0), (2, 8))
        yield from h5b.close()
        return data.materialize()

    assert cluster.run(go()) == b"\x09" * 16


def test_wrong_payload_size_rejected(cluster, mount):
    def go():
        h5 = yield from H5File.create(Sec2Vfd(mount), "/bad.h5")
        ds = yield from h5.create_dataset("d", (10,), dtype="f8")
        try:
            yield from ds.write((0,), (10,), b"short")
        except ValueError:
            return "rejected"
        finally:
            yield from h5.close()

    assert cluster.run(go()) == "rejected"


def test_duplicate_dataset_rejected(cluster, mount):
    def go():
        h5 = yield from H5File.create(Sec2Vfd(mount), "/dup.h5")
        yield from h5.create_dataset("d", (4,))
        try:
            yield from h5.create_dataset("d", (4,))
        except H5Error:
            return "dup"
        finally:
            yield from h5.close()

    assert cluster.run(go()) == "dup"


def test_alignment_property_controls_data_alignment(cluster, mount):
    def go():
        h5 = yield from H5File.create(Sec2Vfd(mount), "/padded.h5",
                                      alignment=MiB)
        ds = yield from h5.create_dataset("d", (KiB,), dtype="u1")
        aligned_addr = ds.layout["addr"]
        is_aligned = h5.data_aligned
        yield from h5.close()
        h5b = yield from H5File.create(Sec2Vfd(mount), "/packed.h5")
        ds2 = yield from h5b.create_dataset("d", (KiB,), dtype="u1")
        unaligned_addr = ds2.layout["addr"]
        not_aligned = h5b.data_aligned
        yield from h5b.close()
        return aligned_addr, is_aligned, unaligned_addr, not_aligned

    aligned_addr, is_aligned, unaligned_addr, not_aligned = cluster.run(go())
    assert aligned_addr % MiB == 0 and is_aligned
    assert unaligned_addr % MiB != 0 and not not_aligned


def test_unaligned_sec2_pays_staging(cluster, mount):
    def timed(alignment):
        def go():
            h5 = yield from H5File.create(
                Sec2Vfd(mount), f"/stage{alignment}.h5", alignment=alignment
            )
            ds = yield from h5.create_dataset("d", (8 * MiB,), dtype="u1")
            start = cluster.sim.now
            for i in range(8):
                yield from ds.write(
                    (i * MiB,), (MiB,),
                    PatternPayload(seed=1, origin=i * MiB, nbytes=MiB),
                )
            elapsed = cluster.sim.now - start
            yield from h5.close()
            return elapsed

        return cluster.run(go())

    slow = timed(1)
    fast = timed(MiB)
    assert slow > fast * 1.5  # staging dominates when unaligned


def test_data_aligned_tracks_vfd_preferred_io(cluster, mount):
    def probe(alignment, path):
        def go():
            vfd = Sec2Vfd(mount)
            h5 = yield from H5File.create(vfd, path, alignment=alignment)
            result = (vfd.preferred_io, h5.data_aligned)
            yield from h5.close()
            return result

        return cluster.run(go())

    pio, at_blksize = probe(mount.blksize, "/pio-eq.h5")
    assert pio == mount.blksize  # sec2 advertises the mount's I/O size
    _, above = probe(2 * mount.blksize, "/pio-above.h5")
    _, at_half = probe(mount.blksize // 2, "/pio-half.h5")
    _, at_one = probe(1, "/pio-one.h5")
    assert at_blksize and above  # alignment >= preferred_io skips staging
    assert not at_half and not at_one  # anything below still stages


def test_preferred_io_alignment_skips_staging_charge(cluster, mount):
    n_writes, nbytes = 4, MiB

    def timed(alignment, path):
        def go():
            h5 = yield from H5File.create(
                Sec2Vfd(mount), path, alignment=alignment
            )
            ds = yield from h5.create_dataset(
                "d", (n_writes * nbytes,), dtype="u1"
            )
            start = cluster.sim.now
            for i in range(n_writes):
                yield from ds.write(
                    (i * nbytes,), (nbytes,),
                    PatternPayload(seed=2, origin=i * nbytes, nbytes=nbytes),
                )
            elapsed = cluster.sim.now - start
            yield from h5.close()
            return elapsed

        return cluster.run(go())

    fast = timed(mount.blksize, "/stage-skip.h5")
    slow = timed(1, "/stage-charged.h5")
    staging = n_writes * nbytes / Sec2Vfd(mount).staging_bw
    # alignment=1 pays the conversion/sieve pipeline on every raw write;
    # alignment=preferred_io bypasses it entirely
    assert slow - fast >= staging * 0.5


def test_parallel_hdf5_over_mpio(cluster, mount):
    world = MpiWorld(cluster.sim, cluster.fabric, cluster.clients, ppn=2)
    blk = 64 * KiB

    def main(ctx):
        client = cluster.new_client(cluster.clients.index(ctx.node))
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.open_container("h5-cont")
        dfs = yield from Dfs.mount(cont)
        rank_mount = DFuseMount(dfs)
        vfd = MpioVfd(ctx, UfsDriver(rank_mount), collective=True)
        # Parallel HDF5: file creation is collective over the communicator.
        h5 = yield from H5File.create(vfd, "/phdf5.h5")
        ds = yield from h5.create_dataset("shared", (blk * ctx.size,),
                                          dtype="u1")
        pattern = PatternPayload(seed=9, origin=ctx.rank * blk, nbytes=blk)
        yield from ds.write((ctx.rank * blk,), (blk,), pattern)
        other = (ctx.rank + 1) % ctx.size
        back = yield from ds.read((other * blk,), (blk,))
        yield from h5.close()
        return back == PatternPayload(seed=9, origin=other * blk, nbytes=blk)

    assert all(world.run_to_completion(main))
