"""Unit tests for dataspaces, datatypes and the metadata framing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdf5.dataspace import Dataspace
from repro.hdf5.datatype import Datatype
from repro.hdf5.format import (
    SUPERBLOCK_SIZE,
    FormatError,
    pack_catalog,
    pack_superblock,
    unpack_catalog,
    unpack_superblock,
)


def test_datatype_sizes():
    assert Datatype("u1").itemsize == 1
    assert Datatype("f8").itemsize == 8
    with pytest.raises(ValueError):
        Datatype("x3")


def test_dataspace_validation():
    with pytest.raises(ValueError):
        Dataspace(())
    with pytest.raises(ValueError):
        Dataspace((0,))
    space = Dataspace((4, 4))
    with pytest.raises(ValueError):
        space.validate_selection((0,), (1,))
    with pytest.raises(ValueError):
        space.validate_selection((3, 0), (2, 1))


def test_runs_1d():
    space = Dataspace((100,))
    assert list(space.runs((10,), (20,))) == [(10, 20)]


def test_runs_2d_full_rows_coalesce():
    space = Dataspace((4, 8))
    # two full rows: one contiguous run
    assert list(space.runs((1, 0), (2, 8))) == [(8, 16)]


def test_runs_2d_partial_rows():
    space = Dataspace((4, 8))
    runs = list(space.runs((1, 2), (2, 3)))
    assert runs == [(10, 3), (18, 3)]


def test_runs_3d():
    space = Dataspace((2, 3, 4))
    runs = list(space.runs((0, 1, 0), (2, 2, 4)))
    # full trailing dim (4), partial middle: runs of 8 at each outer index
    assert runs == [(4, 8), (16, 8)]


@settings(max_examples=60, deadline=None)
@given(
    dims=st.lists(st.integers(1, 6), min_size=1, max_size=3),
    data=st.data(),
)
def test_property_runs_cover_selection_exactly(dims, data):
    space = Dataspace(tuple(dims))
    start = [data.draw(st.integers(0, d - 1)) for d in dims]
    count = [data.draw(st.integers(1, d - s)) for s, d in zip(start, dims)]
    covered = set()
    for offset, length in space.runs(start, count):
        for el in range(offset, offset + length):
            assert el not in covered  # no overlap
            covered.add(el)
    # exact element set: reconstruct coordinates
    import itertools

    expected = set()
    strides = [1] * len(dims)
    for axis in range(len(dims) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * dims[axis + 1]
    for coords in itertools.product(
        *[range(s, s + c) for s, c in zip(start, count)]
    ):
        expected.add(sum(c * st_ for c, st_ in zip(coords, strides)))
    assert covered == expected


def test_superblock_roundtrip():
    raw = pack_superblock(512, 100, 4096, 1 << 20)
    assert len(raw) == SUPERBLOCK_SIZE
    record = unpack_superblock(raw)
    assert record["catalog_addr"] == 512
    assert record["catalog_len"] == 100
    assert record["eof"] == 4096
    assert record["alignment"] == 1 << 20


def test_superblock_bad_magic():
    with pytest.raises(FormatError):
        unpack_superblock(b"\x00" * SUPERBLOCK_SIZE)


def test_catalog_roundtrip():
    catalog = {"datasets": {"a": {"dtype": "u1"}}, "attrs": {"k": 1}}
    assert unpack_catalog(pack_catalog(catalog)) == catalog


def test_catalog_truncated():
    frame = pack_catalog({"datasets": {}})
    with pytest.raises(FormatError):
        unpack_catalog(frame[:4])
    with pytest.raises(FormatError):
        unpack_catalog(frame[:-2])
