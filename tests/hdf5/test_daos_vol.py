"""The DAOS VOL connector: HDF5 files with no POSIX layer underneath."""

import pytest

from repro.cluster import small_cluster
from repro.daos.kv import DaosKV
from repro.daos.objid import ObjId
from repro.daos.oclass import S1
from repro.errors import DerNonexist
from repro.hdf5 import DaosVol, H5File, daos_vol_unlink
from repro.hdf5.vol import NAMESPACE_LO


@pytest.fixture(scope="module")
def cluster():
    return small_cluster(server_nodes=2, client_nodes=1, targets_per_engine=2)


@pytest.fixture(scope="module")
def cont(cluster):
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("h5-daos", oclass="S2")
        return cont

    return cluster.run(setup())


def test_create_write_read_roundtrip(cluster, cont):
    def go():
        h5 = yield from H5File.create(DaosVol(cont), "/exp.h5")
        ds = yield from h5.create_dataset("temp", (64,), dtype="u1")
        yield from ds.write((0,), (64,), bytes(range(64)))
        data = yield from ds.read((10,), (4,))
        kind, aligned = h5.vol.kind, h5.data_aligned
        yield from h5.close()
        return data.materialize(), kind, aligned

    data, kind, aligned = cluster.run(go())
    assert data == bytes([10, 11, 12, 13])
    assert kind == "daos"
    assert aligned  # no format addresses, no staging — ever


def test_reopen_recovers_catalog_from_kv(cluster, cont):
    def go():
        h5 = yield from H5File.create(DaosVol(cont), "/persist.h5")
        h5.attrs["experiment"] = "ior"
        ds = yield from h5.create_dataset(
            "field", (4, 8), dtype="f8", attrs={"units": "K"}
        )
        yield from ds.write((0, 0), (4, 8), b"\x01" * (4 * 8 * 8))
        yield from h5.close()

        h5b = yield from H5File.open(DaosVol(cont), "/persist.h5")
        ds2 = h5b.dataset("field")
        data = yield from ds2.read((1, 0), (1, 8))
        meta = (h5b.attrs, ds2.attrs, ds2.space.dims, ds2.dtype.code,
                ds2.layout["kind"])
        yield from h5b.close()
        return data.materialize(), meta

    data, meta = cluster.run(go())
    assert data == b"\x01" * 64
    assert meta == (
        {"experiment": "ior"}, {"units": "K"}, (4, 8), "f8", "daos-array"
    )


def test_2d_hyperslab_roundtrip(cluster, cont):
    def go():
        h5 = yield from H5File.create(DaosVol(cont), "/grid.h5")
        ds = yield from h5.create_dataset("g", (8, 16), dtype="u1")
        yield from ds.write((0, 0), (8, 16), bytes(range(128)))
        block = yield from ds.read((2, 4), (3, 5))
        yield from h5.close()
        return block.materialize()

    expected = bytes(
        (row * 16 + col) % 256 for row in range(2, 5) for col in range(4, 9)
    )
    assert cluster.run(go()) == expected


def test_unwritten_extents_read_as_fill_value(cluster, cont):
    def go():
        h5 = yield from H5File.create(DaosVol(cont), "/sparse.h5")
        ds = yield from h5.create_dataset("t", (16, 32), dtype="u1",
                                          chunk_rows=4)
        yield from ds.write((4, 0), (4, 32), b"\x07" * 128)
        data = yield from ds.read((0, 0), (16, 32))
        yield from h5.close()
        return data.materialize()

    data = cluster.run(go())
    assert data[:128] == b"\x00" * 128  # array holes double as fill value
    assert data[128:256] == b"\x07" * 128
    assert data[256:] == b"\x00" * (16 * 32 - 256)


def test_create_truncates_an_existing_file(cluster, cont):
    def go():
        h5 = yield from H5File.create(DaosVol(cont), "/trunc.h5")
        ds = yield from h5.create_dataset("old", (32,), dtype="u1")
        yield from ds.write((0,), (32,), b"\xaa" * 32)
        yield from h5.close()

        h5b = yield from H5File.create(DaosVol(cont), "/trunc.h5")
        names = list(h5b.datasets)
        yield from h5b.close()
        h5c = yield from H5File.open(DaosVol(cont), "/trunc.h5")
        reopened = list(h5c.datasets)
        yield from h5c.close()
        return names, reopened

    names, reopened = cluster.run(go())
    assert names == []  # truncate semantics: the old dataset is gone
    assert reopened == []


def test_metadata_lives_in_the_namespace_kv(cluster, cont):
    def go():
        h5 = yield from H5File.create(DaosVol(cont), "/ns.h5")
        yield from h5.close()
        ns = DaosKV.open(cont, ObjId.generate(S1, lo=NAMESPACE_LO))
        keys = yield from ns.scan()
        ns.close()
        return keys

    assert "/ns.h5" in cluster.run(go())


def test_unlink_removes_file_and_namespace_entry(cluster, cont):
    def go():
        h5 = yield from H5File.create(DaosVol(cont), "/gone.h5")
        ds = yield from h5.create_dataset("d", (64,), dtype="u1")
        yield from ds.write((0,), (64,), b"\x01" * 64)
        yield from h5.close()

        removed = yield from daos_vol_unlink(cont, "/gone.h5")
        again = yield from daos_vol_unlink(cont, "/gone.h5")
        try:
            yield from H5File.open(DaosVol(cont), "/gone.h5")
        except DerNonexist:
            reopened = False
        else:
            reopened = True
        return removed, again, reopened

    removed, again, reopened = cluster.run(go())
    assert removed is True
    assert again is False  # idempotent no-op
    assert reopened is False


def test_supports_async_flag():
    assert DaosVol.supports_async is True
