"""Online resync acceptance: exclude → write during window → reintegrate.

The contract under test is the ISSUE acceptance scenario: a target is
excluded, the workload keeps writing (replicated and EC objects), the
target is reintegrated, the background resync drains — and every read
afterwards is byte-identical to a run that never saw a failure, even
when reads are forced through the previously-failed target.
"""

import pytest

from repro.cluster import small_cluster
from repro.daos.oclass import oclass_by_name
from repro.daos.vos.payload import PatternPayload
from repro.errors import DerNonexist
from repro.units import MiB

BASE = PatternPayload(seed=1, origin=0, nbytes=2 * MiB)
DELTA = PatternPayload(seed=2, origin=MiB, nbytes=MiB)
EXPECTED = BASE.materialize()[:MiB] + DELTA.materialize()


def _array_scenario(oclass_name, fail=True, seed=7, read_through_victim=False):
    """Write 2 MiB, (optionally) exclude the group's first target, rewrite
    the second MiB during the window, reintegrate, drain the rebuild and
    read everything back. Returns (bytes, statuses)."""
    cluster = small_cluster(server_nodes=2, client_nodes=1,
                            targets_per_engine=2, seed=seed)
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("resync", oclass=oclass_name)
        oid = yield from cont.alloc_oid(oclass_by_name(oclass_name))
        obj = cont.open_object(oid)
        yield from obj.write(0, BASE, chunk_size=MiB)
        group = obj.layout.targets_for_dkey(0)
        uuid = pool.pool_map.uuid
        if fail:
            yield from cluster.daos.exclude_target(uuid, group[0])
            yield from pool.refresh_map()
        yield from obj.write(MiB, DELTA, chunk_size=MiB)
        if fail:
            yield from cluster.daos.reintegrate_target(uuid, group[0])
            yield from cluster.daos.wait_rebuild(uuid)
            yield from pool.refresh_map()
        if read_through_victim:
            # force reads off the rebuilt target: lose every *other*
            # group member the redundancy scheme can spare
            spares = group[1:] if oclass_name.startswith("RP") else [group[1]]
            for other in spares:
                yield from cluster.daos.exclude_target(uuid, other)
            yield from pool.refresh_map()
        back = yield from obj.read(0, 2 * MiB, chunk_size=MiB)
        obj.close()
        return back.materialize(), dict(pool.pool_map.statuses)

    return cluster.run(go())


@pytest.mark.parametrize("oclass_name", ["RP_2G1", "EC_2P1G1"])
def test_resync_matches_failure_free_run(oclass_name):
    healthy, _ = _array_scenario(oclass_name, fail=False)
    healed, statuses = _array_scenario(oclass_name, fail=True)
    assert healthy == EXPECTED
    assert healed == healthy  # byte-identical to the never-failed run
    assert statuses == {}  # pool map fully healthy again


@pytest.mark.parametrize("oclass_name", ["RP_2G1", "EC_2P1G1"])
def test_rebuilt_target_serves_window_writes(oclass_name):
    """The proof that the resync actually moved bytes: after the heal,
    reads forced through the once-DOWN target still see the writes it
    missed."""
    healed, _ = _array_scenario(oclass_name, fail=True,
                                read_through_victim=True)
    assert healed == EXPECTED


def test_kv_resync_carries_updates_and_tombstones():
    """KV singles resync at their original epochs, including punches: a
    key deleted during the exclusion window stays deleted on the rebuilt
    replica."""
    cluster = small_cluster(server_nodes=2, client_nodes=1,
                            targets_per_engine=2, seed=13)
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("kv", oclass="RP_2G1")
        oid = yield from cont.alloc_oid(oclass_by_name("RP_2G1"))
        obj = cont.open_object(oid)
        yield from obj.put("keep", b"a", "old")
        yield from obj.put("doomed", b"a", "short-lived")
        group = obj.layout.targets_for_dkey("keep")
        uuid = pool.pool_map.uuid

        yield from cluster.daos.exclude_target(uuid, group[0])
        yield from pool.refresh_map()
        # the window: update, insert and delete behind the DOWN target
        yield from obj.put("keep", b"a", "new")
        yield from obj.put("fresh", b"a", "window-born")
        yield from obj.punch("doomed", b"a")

        yield from cluster.daos.reintegrate_target(uuid, group[0])
        yield from cluster.daos.wait_rebuild(uuid)
        yield from pool.refresh_map()
        # read through the rebuilt replica only
        yield from cluster.daos.exclude_target(uuid, group[1])
        yield from pool.refresh_map()

        keep = yield from obj.get("keep", b"a")
        fresh = yield from obj.get("fresh", b"a")
        try:
            yield from obj.get("doomed", b"a")
            doomed = "resurrected"
        except DerNonexist:
            doomed = "gone"
        obj.close()
        return keep, fresh, doomed

    keep, fresh, doomed = cluster.run(go())
    assert keep == "new"
    assert fresh == "window-born"
    assert doomed == "gone"


def test_stale_client_write_is_fenced_and_retried():
    """A client holding a pre-exclusion pool map writes through a
    transparent DER_STALE refresh-retry — and the write still reaches the
    REBUILDING target, which is what makes the converge loop terminate."""
    cluster = small_cluster(server_nodes=2, client_nodes=1,
                            targets_per_engine=2, seed=17)
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("fence", oclass="RP_2G1")
        oid = yield from cont.alloc_oid(oclass_by_name("RP_2G1"))
        obj = cont.open_object(oid)
        yield from obj.put("k", b"a", "v0")
        group = obj.layout.targets_for_dkey("k")
        uuid = pool.pool_map.uuid

        # bump the map behind the client's back (no refresh_map here)
        yield from cluster.daos.exclude_target(uuid, group[0])
        yield from cluster.daos.reintegrate_target(uuid, group[0])
        stale_version = pool.pool_map.version

        # the engines fence the stale map; the client refreshes + retries
        yield from obj.put("k", b"a", "v1")
        refreshed_version = pool.pool_map.version
        yield from cluster.daos.wait_rebuild(uuid)
        yield from pool.refresh_map()

        # the retried write must have landed on the REBUILDING target:
        # read with the other replica gone
        yield from cluster.daos.exclude_target(uuid, group[1])
        yield from pool.refresh_map()
        got = yield from obj.get("k", b"a")
        obj.close()
        return stale_version, refreshed_version, got

    stale_version, refreshed_version, got = cluster.run(go())
    assert refreshed_version > stale_version  # the retry refreshed the map
    assert got == "v1"


def test_throttle_fraction_bounds_rebuild_bandwidth():
    """The same rebuild takes substantially longer at a 5% bandwidth
    fraction than with the throttle disabled."""

    def rebuild_seconds(fraction):
        cluster = small_cluster(server_nodes=2, client_nodes=1,
                                targets_per_engine=2, seed=19)
        cluster.daos.rebuild.throttle.fraction = fraction
        client = cluster.new_client(0)

        def go():
            pool = yield from client.connect_pool("tank")
            cont = yield from pool.create_container("thr", oclass="RP_2G1")
            oid = yield from cont.alloc_oid(oclass_by_name("RP_2G1"))
            obj = cont.open_object(oid)
            group = obj.layout.targets_for_dkey(0)
            uuid = pool.pool_map.uuid
            yield from cluster.daos.exclude_target(uuid, group[0])
            yield from pool.refresh_map()
            # 32 MiB written during the window = 32 MiB to migrate
            yield from obj.write(
                0, PatternPayload(seed=3, origin=0, nbytes=32 * MiB),
                chunk_size=MiB,
            )
            yield from cluster.daos.reintegrate_target(uuid, group[0])
            start = cluster.sim.now
            yield from cluster.daos.wait_rebuild(uuid)
            elapsed = cluster.sim.now - start
            obj.close()
            return elapsed

        return cluster.run(go())

    full = rebuild_seconds(1.0)
    slow = rebuild_seconds(0.05)
    assert full > 0
    assert slow > 4 * full
