"""Target state machine and pool-map status plumbing (pure units)."""

import pytest

from repro.daos.system import PoolMap
from repro.rebuild.state import (
    DOWN,
    DOWNOUT,
    REBUILDING,
    UP,
    TargetStatus,
    can_transition,
)


def test_transition_matrix():
    assert can_transition(UP, DOWN)
    assert can_transition(UP, DOWNOUT)
    assert can_transition(DOWN, REBUILDING)
    assert can_transition(DOWN, DOWNOUT)
    assert can_transition(REBUILDING, UP)
    assert can_transition(REBUILDING, DOWN)  # failed again mid-resync
    assert can_transition(REBUILDING, DOWNOUT)
    # no shortcuts, and DOWNOUT is terminal
    assert not can_transition(UP, REBUILDING)
    assert not can_transition(DOWN, UP)
    assert not can_transition(DOWNOUT, UP)
    assert not can_transition(DOWNOUT, DOWN)
    assert not can_transition(DOWNOUT, REBUILDING)
    assert not can_transition("BOGUS", UP)


def test_advance_validates_and_preserves_fields():
    down = TargetStatus(state=DOWN, version=3, watermark=17)
    reb = down.advance(REBUILDING, 4)
    assert reb.state == REBUILDING
    assert reb.version == 4
    assert reb.watermark == 17  # exclusion watermark survives transitions
    with pytest.raises(ValueError):
        down.advance(UP, 5)
    out = reb.advance(DOWNOUT, 5, rebuilt=False)
    with pytest.raises(ValueError):
        out.advance(DOWN, 6)


def test_status_record_roundtrip():
    status = TargetStatus(state=DOWNOUT, version=9, watermark=42, rebuilt=True)
    assert TargetStatus.from_record(status.to_record()) == status
    # old records without the newer fields default sanely
    legacy = TargetStatus.from_record({"state": DOWN, "version": 2})
    assert legacy.watermark == 0 and legacy.rebuilt is False


def test_pool_map_derives_exclusion_sets():
    pm = PoolMap(uuid="p", label="l", n_targets=8, capacity_per_target=1)
    pm.statuses = {
        1: TargetStatus(state=DOWN, version=2, watermark=5),
        2: TargetStatus(state=REBUILDING, version=3, watermark=5),
        3: TargetStatus(state=DOWNOUT, version=4, watermark=6),
    }
    pm.derive()
    # reads avoid every non-UP target; writes still reach REBUILDING
    assert pm.excluded == frozenset({1, 2, 3})
    assert pm.write_excluded == frozenset({1, 3})
    assert pm.downout == frozenset({3})
    assert pm.downout_ready is False
    assert pm.state_of(0) == UP and pm.state_of(2) == REBUILDING

    pm.statuses[3] = TargetStatus(state=DOWNOUT, version=5, watermark=6,
                                  rebuilt=True)
    pm.derive()
    assert pm.downout_ready is True


def test_pool_map_record_roundtrip_keeps_statuses():
    pm = PoolMap(uuid="p", label="tank", n_targets=4, capacity_per_target=64,
                 version=7)
    pm.statuses = {2: TargetStatus(state=DOWN, version=7, watermark=11)}
    pm.derive()
    back = PoolMap.from_record("p", pm.to_record())
    assert back.version == 7
    assert back.statuses == pm.statuses
    assert back.excluded == frozenset({2})
    assert back.write_excluded == frozenset({2})
