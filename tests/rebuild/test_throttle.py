"""Rebuild bandwidth throttle cap math."""

from repro.rebuild.throttle import RebuildThrottle


class _Link:
    def __init__(self, capacity):
        self.capacity = capacity


def test_cap_is_fraction_of_bottleneck():
    throttle = RebuildThrottle(0.25)
    links = [(_Link(100.0), 1.0), (_Link(400.0), 1.0)]
    assert throttle.cap_for(links) == 0.25 * 100.0


def test_weights_scale_effective_capacity():
    # a weight of 2 means the flow consumes the link twice per byte
    throttle = RebuildThrottle(0.5)
    links = [(_Link(100.0), 2.0), (_Link(80.0), 1.0)]
    assert throttle.cap_for(links) == 0.5 * 50.0


def test_zero_weight_links_ignored():
    throttle = RebuildThrottle(0.1)
    links = [(_Link(100.0), 0.0), (_Link(60.0), 1.0)]
    assert throttle.cap_for(links) == 0.1 * 60.0


def test_disabled_at_full_fraction():
    assert RebuildThrottle(1.0).cap_for([(_Link(10.0), 1.0)]) is None
    assert RebuildThrottle(2.0).cap_for([(_Link(10.0), 1.0)]) is None


def test_no_links_means_no_cap():
    assert RebuildThrottle(0.25).cap_for([]) is None
