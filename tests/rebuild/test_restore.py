"""Permanent eviction (DOWNOUT): redundancy restored onto a spare.

A ``permanent=True`` exclusion never comes back; the rebuild engine
reconstructs the lost shard onto the slot's deterministic spare and the
pool map flags the eviction ``rebuilt``, at which point the substituted
slot serves reads again — proven here by reading with the *other*
original group member also gone.
"""

import pytest

from repro.cluster import small_cluster
from repro.daos.oclass import oclass_by_name
from repro.daos.placement import effective_groups
from repro.daos.vos.payload import PatternPayload
from repro.units import MiB

PAYLOAD = PatternPayload(seed=4, origin=0, nbytes=2 * MiB)


@pytest.mark.parametrize("oclass_name", ["RP_2G1", "EC_2P1G1"])
def test_permanent_eviction_rebuilds_onto_spare(oclass_name):
    cluster = small_cluster(server_nodes=2, client_nodes=1,
                            targets_per_engine=2, seed=23)
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("evict", oclass=oclass_name)
        oid = yield from cont.alloc_oid(oclass_by_name(oclass_name))
        obj = cont.open_object(oid)
        yield from obj.write(0, PAYLOAD, chunk_size=MiB)
        group = obj.layout.targets_for_dkey(0)
        uuid = pool.pool_map.uuid

        yield from cluster.daos.exclude_target(uuid, group[0],
                                               permanent=True)
        query = yield from cluster.daos.wait_rebuild(uuid)
        yield from pool.refresh_map()

        # the spare substitution is deterministic and avoids the group
        eff = effective_groups(obj.layout, pool.pool_map.downout)
        spare = eff[0][0]

        # lose the other original member too: only the spare can serve
        yield from cluster.daos.exclude_target(uuid, group[1])
        yield from pool.refresh_map()
        back = yield from obj.read(0, 2 * MiB, chunk_size=MiB)
        obj.close()
        return query, group, spare, back.materialize()

    query, group, spare, data = cluster.run(go())

    status = query["targets"][group[0]]
    assert status["state"] == "DOWNOUT"
    assert status["rebuilt"] is True
    assert query["up_targets"] == query["n_targets"] - 1
    rebuild = query["rebuild"]
    assert rebuild["status"] == "done"
    assert rebuild["progress"] == 1.0
    assert any(j["kind"] == "restore" for j in rebuild["jobs"])

    assert spare != group[0] and spare not in group
    assert data == PAYLOAD.materialize()


def test_downout_target_cannot_reintegrate():
    cluster = small_cluster(server_nodes=2, client_nodes=1,
                            targets_per_engine=2, seed=29)
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        uuid = pool.pool_map.uuid
        yield from cluster.daos.exclude_target(uuid, 0, permanent=True)
        yield from cluster.daos.wait_rebuild(uuid)
        from repro.errors import DerInval
        try:
            yield from cluster.daos.reintegrate_target(uuid, 0)
        except DerInval:
            return "refused"
        return "accepted"

    assert cluster.run(go()) == "refused"


def test_pool_query_reports_rebuild_progress():
    """pool_query() is the dmg-style health snapshot: version, per-target
    states and the rebuild block stay coherent through a full cycle."""
    cluster = small_cluster(server_nodes=2, client_nodes=1,
                            targets_per_engine=2, seed=31)
    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("q", oclass="RP_2G1")
        oid = yield from cont.alloc_oid(oclass_by_name("RP_2G1"))
        obj = cont.open_object(oid)
        yield from obj.write(0, PatternPayload(seed=5, origin=0, nbytes=MiB),
                             chunk_size=MiB)
        group = obj.layout.targets_for_dkey(0)
        uuid = pool.pool_map.uuid

        healthy = cluster.daos.pool_query(uuid)
        yield from cluster.daos.exclude_target(uuid, group[0])
        down = cluster.daos.pool_query(uuid)
        yield from cluster.daos.reintegrate_target(uuid, group[0])
        rebuilding = cluster.daos.pool_query(uuid)
        healed = yield from cluster.daos.wait_rebuild(uuid)
        obj.close()
        return healthy, down, rebuilding, healed, group[0]

    healthy, down, rebuilding, healed, tid = cluster.run(go())

    assert healthy["targets"] == {} and healthy["rebuild"]["status"] == "idle"
    assert healthy["up_targets"] == healthy["n_targets"]

    assert down["targets"][tid]["state"] == "DOWN"
    assert down["up_targets"] == down["n_targets"] - 1
    assert down["version"] > healthy["version"]

    assert rebuilding["targets"][tid]["state"] == "REBUILDING"
    assert rebuilding["rebuild"]["status"] == "busy"
    assert rebuilding["rebuild"]["jobs_active"] == 1

    assert healed["targets"] == {}
    assert healed["up_targets"] == healed["n_targets"]
    assert healed["rebuild"]["status"] == "done"
    assert healed["rebuild"]["progress"] == 1.0
    assert healed["version"] > rebuilding["version"]
