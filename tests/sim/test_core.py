"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Simulator, Timeout


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_callbacks_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, lambda: seen.append(("b", sim.now)))
    sim.schedule(1.0, lambda: seen.append(("a", sim.now)))
    sim.schedule(3.0, lambda: seen.append(("c", sim.now)))
    sim.run()
    assert seen == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_same_time_events_run_fifo():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(1.0, seen.append, i)
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_task_yield_float_sleeps():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield 1.5
        times.append(sim.now)
        yield 0.5
        times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert times == [0.0, 1.5, 2.0]


def test_task_yield_timeout_delivers_value():
    sim = Simulator()

    def proc():
        got = yield Timeout(1.0, "payload")
        return got

    task = sim.spawn(proc())
    sim.run()
    assert task.result == "payload"


def test_task_return_value():
    sim = Simulator()

    def proc():
        yield 1.0
        return 42

    task = sim.spawn(proc())
    sim.run()
    assert task.done and task.result == 42


def test_join_task_receives_result():
    sim = Simulator()

    def child():
        yield 2.0
        return "done"

    def parent():
        result = yield sim.spawn(child())
        return (result, sim.now)

    task = sim.spawn(parent())
    sim.run()
    assert task.result == ("done", 2.0)


def test_join_already_finished_task():
    sim = Simulator()

    def child():
        yield 1.0
        return 7

    child_task = sim.spawn(child())

    def parent():
        yield 5.0
        value = yield child_task
        return value

    parent_task = sim.spawn(parent())
    sim.run()
    assert parent_task.result == 7


def test_child_exception_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield 1.0
        raise ValueError("boom")

    def parent():
        try:
            yield sim.spawn(child())
        except ValueError as exc:
            return f"caught {exc}"

    task = sim.spawn(parent())
    sim.run()
    assert task.result == "caught boom"


def test_unobserved_exception_raises_from_run():
    sim = Simulator()

    def bad():
        yield 1.0
        raise RuntimeError("lost")

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_observed_error_does_not_reraise():
    sim = Simulator()

    def bad():
        yield 1.0
        raise RuntimeError("x")

    task = sim.spawn(bad())
    # Joining counts as observing.
    def watcher():
        try:
            yield task
        except RuntimeError:
            return "ok"

    watch = sim.spawn(watcher())
    sim.run()
    assert watch.result == "ok"


def test_yield_none_reschedules_same_time():
    sim = Simulator()
    order = []

    def first():
        order.append("first-before")
        yield None
        order.append("first-after")

    def second():
        order.append("second")
        yield 0.0

    sim.spawn(first())
    sim.spawn(second())
    sim.run()
    assert order.index("second") < order.index("first-after")
    assert sim.now == 0.0


def test_yield_garbage_is_an_error():
    sim = Simulator()

    def proc():
        yield object()

    task = sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()
    assert task.done


def test_cancel_pending_task():
    sim = Simulator()
    progressed = []

    def proc():
        yield 10.0
        progressed.append(True)

    task = sim.spawn(proc())
    sim.schedule(1.0, task.cancel)
    sim.run()
    assert task.done and not progressed


def test_run_until_limit_stops_early():
    sim = Simulator()

    def ticker():
        while True:
            yield 1.0

    sim.spawn(ticker())
    stopped = sim.run(until=10.5)
    assert stopped == 10.5
    assert sim.now == 10.5


def test_run_until_complete_returns_result():
    sim = Simulator()

    def proc():
        yield 3.0
        return "fin"

    task = sim.spawn(proc())
    assert sim.run_until_complete(task) == "fin"


def test_run_until_complete_detects_deadlock():
    sim = Simulator()
    from repro.sim import Gate

    gate = Gate(sim)

    def waiter():
        yield gate

    task = sim.spawn(waiter())
    with pytest.raises(DeadlockError):
        sim.run_until_complete(task)


def test_spawn_requires_generator():
    sim = Simulator()

    def not_a_gen():
        return 1

    with pytest.raises(SimulationError):
        sim.spawn(not_a_gen)  # type: ignore[arg-type]


def test_nested_spawns_interleave_deterministically():
    sim = Simulator()
    log = []

    def worker(name, period):
        for _ in range(3):
            yield period
            log.append((name, sim.now))

    sim.spawn(worker("a", 1.0))
    sim.spawn(worker("b", 1.5))
    sim.run()
    assert log == [
        ("a", 1.0),
        ("b", 1.5),
        ("a", 2.0),
        ("b", 3.0),
        ("a", 3.0),
        ("b", 4.5),
    ]
