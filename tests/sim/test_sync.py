"""Unit tests for simulation synchronization primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Condition, Gate, Lock, Queue, Semaphore, Simulator
from repro.sim.sync import all_of


def test_gate_delivers_value_to_all_waiters():
    sim = Simulator()
    gate = Gate(sim)
    results = []

    def waiter(i):
        value = yield gate
        results.append((i, value, sim.now))

    for i in range(3):
        sim.spawn(waiter(i))
    sim.schedule(2.0, gate.open, "go")
    sim.run()
    assert results == [(0, "go", 2.0), (1, "go", 2.0), (2, "go", 2.0)]


def test_gate_open_twice_is_error():
    sim = Simulator()
    gate = Gate(sim)
    gate.open()
    with pytest.raises(SimulationError):
        gate.open()


def test_gate_waiting_after_open_returns_immediately():
    sim = Simulator()
    gate = Gate(sim)
    gate.open(5)

    def late():
        value = yield gate
        return value

    task = sim.spawn(late())
    sim.run()
    assert task.result == 5
    assert gate.value == 5


def test_condition_is_reusable():
    sim = Simulator()
    cond = Condition(sim)
    hits = []

    def waiter():
        for _ in range(2):
            value = yield cond
            hits.append((value, sim.now))

    sim.spawn(waiter())
    sim.schedule(1.0, cond.notify_all, "x")
    sim.schedule(2.0, cond.notify_all, "y")
    sim.run()
    assert hits == [("x", 1.0), ("y", 2.0)]


def test_queue_fifo_order():
    sim = Simulator()
    queue = Queue(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield queue.get()
            got.append(item)

    sim.spawn(consumer())
    for i in range(3):
        queue.put(i)
    sim.run()
    assert got == [0, 1, 2]


def test_queue_blocks_until_put():
    sim = Simulator()
    queue = Queue(sim)

    def consumer():
        item = yield queue.get()
        return (item, sim.now)

    task = sim.spawn(consumer())
    sim.schedule(3.0, queue.put, "late")
    sim.run()
    assert task.result == ("late", 3.0)


def test_queue_try_get():
    sim = Simulator()
    queue = Queue(sim)
    assert queue.try_get() == (False, None)
    queue.put("a")
    assert queue.try_get() == (True, "a")
    assert len(queue) == 0


def test_semaphore_limits_concurrency():
    sim = Simulator()
    sem = Semaphore(sim, 2)
    active = []
    peak = []

    def worker(i):
        yield sem.acquire()
        active.append(i)
        peak.append(len(active))
        yield 1.0
        active.remove(i)
        sem.release()

    for i in range(5):
        sim.spawn(worker(i))
    sim.run()
    assert max(peak) == 2
    assert sim.now == pytest.approx(3.0)


def test_semaphore_fifo_fairness():
    sim = Simulator()
    sem = Semaphore(sim, 1)
    order = []

    def worker(i):
        yield sem.acquire()
        order.append(i)
        yield 1.0
        sem.release()

    for i in range(4):
        sim.spawn(worker(i))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_semaphore_guard_release_idempotent():
    sim = Simulator()
    sem = Semaphore(sim, 1)

    def proc():
        guard = yield from sem.held()
        guard.release()
        guard.release()  # second release must be a no-op

    sim.spawn(proc())
    sim.run()
    assert sem.available == 1


def test_lock_is_binary():
    sim = Simulator()
    lock = Lock(sim)
    assert lock.available == 1


def test_all_of_collects_results_in_order():
    sim = Simulator()

    def worker(i):
        yield float(3 - i)
        return i * 10

    def parent():
        tasks = [sim.spawn(worker(i)) for i in range(3)]
        results = yield from all_of(sim, tasks)
        return results

    task = sim.spawn(parent())
    sim.run()
    assert task.result == [0, 10, 20]


def test_rng_streams_independent_and_reproducible():
    from repro.sim import RngStreams

    streams_a = RngStreams(seed=7)
    streams_b = RngStreams(seed=7)
    draw_a1 = streams_a.stream("alpha").random(4).tolist()
    # interleave another stream in b before alpha: must not perturb alpha
    streams_b.stream("beta").random(100)
    draw_b1 = streams_b.stream("alpha").random(4).tolist()
    assert draw_a1 == draw_b1


def test_rng_uniform_and_integer_ranges():
    from repro.sim import RngStreams

    streams = RngStreams(seed=1)
    for _ in range(100):
        value = streams.uniform("u", 2.0, 3.0)
        assert 2.0 <= value < 3.0
        integer = streams.integer("i", 5, 9)
        assert 5 <= integer < 9


def test_stats_counters_and_gauges():
    from repro.sim.trace import Stats

    sim = Simulator()
    stats = Stats(sim)
    stats.incr("ops")
    stats.incr("ops", 2)
    assert stats.count("ops") == 3

    def proc():
        stats.gauge("depth", 2.0)
        yield 1.0
        stats.gauge("depth", 4.0)
        yield 1.0
        stats.gauge("depth", 0.0)

    sim.spawn(proc())
    sim.run()
    assert stats.gauge_mean("depth") == pytest.approx(3.0)
    stats.sample("lat", 1.0)
    stats.sample("lat", 3.0)
    assert stats.sample_mean("lat") == pytest.approx(2.0)
