"""Event heap, tasks and timeouts — the heart of the simulator.

Design notes
------------

* The event heap stores ``(time, seq, callback)`` tuples; ``seq`` breaks
  ties FIFO so same-time events run in schedule order, which makes runs
  deterministic regardless of callback identity.
* Tasks are generators. A task may ``yield``:

  - ``float | int`` — sleep that many simulated seconds,
  - :class:`Timeout` — same, with an optional value delivered back,
  - another :class:`Task` — join it (its return value is delivered;
    its exception, if any, is re-raised inside the waiter),
  - any object with a ``_subscribe(callback)`` method — the
    synchronization primitives in :mod:`repro.sim.sync` and the I/O
    completion objects used across the stack,
  - ``None`` — cooperative re-schedule at the current time.

* A task finishing with an un-watched exception is recorded and re-raised
  by :meth:`Simulator.run` — silent failure in a corner of a simulated
  cluster would otherwise be indistinguishable from a hang.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import DeadlockError, SimulationError

TaskGen = Generator[Any, Any, Any]


class Timeout:
    """Awaitable delay of ``delay`` simulated seconds, delivering ``value``."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = float(delay)
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay!r})"


class Task:
    """A running simulated activity wrapping a generator.

    Tasks support joining (``yield task``), cancellation, and inspection
    of their result after completion.
    """

    __slots__ = (
        "sim",
        "name",
        "tid",
        "_gen",
        "_done",
        "_result",
        "_error",
        "_error_observed",
        "_waiters",
        "_cancelled",
    )

    def __init__(self, sim: "Simulator", gen: TaskGen, name: str = ""):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "task")
        sim._next_tid += 1
        self.tid = sim._next_tid
        self._gen = gen
        self._done = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._error_observed = False
        self._waiters: list[Callable[[], None]] = []
        self._cancelled = False

    # -- public inspection ------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        if not self._done:
            raise SimulationError(f"task {self.name!r} has not finished")
        if self._error is not None:
            self._error_observed = True
            raise self._error
        return self._result

    @property
    def error(self) -> Optional[BaseException]:
        self._error_observed = True
        return self._error

    def cancel(self) -> None:
        """Stop the task at its next resumption point.

        Cancellation is cooperative: an already-finished task is left
        untouched; a pending one is marked and closed when next resumed.
        """
        if not self._done:
            self._cancelled = True

    def defuse(self) -> "Task":
        """Declare that this task's error will be observed later (via
        ``result`` or a join), suppressing the fail-fast raise from
        :meth:`Simulator.run`. Use when spawning a batch of tasks that
        are joined after the fact."""
        self._error_observed = True
        return self

    # -- kernel interface --------------------------------------------------
    def _subscribe(self, callback: Callable[[], None]) -> None:
        if self._done:
            self.sim.schedule(0.0, callback)
        else:
            self._waiters.append(callback)

    def _step(self, to_send: Any = None, to_throw: BaseException | None = None) -> None:
        if self._done:
            return
        if self._cancelled:
            self._gen.close()
            self._finish(None, None)
            return
        sim = self.sim
        prev_task = sim._current_task
        sim._current_task = self
        try:
            if to_throw is not None:
                yielded = self._gen.throw(to_throw)
            else:
                yielded = self._gen.send(to_send)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberately broad
            self._finish(None, exc)
            return
        finally:
            sim._current_task = prev_task
        self._wire(yielded)

    def _wire(self, yielded: Any) -> None:
        sim = self.sim
        if yielded is None:
            sim.schedule(0.0, self._step)
        elif isinstance(yielded, (int, float)):
            sim.schedule(float(yielded), self._step)
        elif isinstance(yielded, Timeout):
            sim.schedule(yielded.delay, self._step, yielded.value)
        elif isinstance(yielded, Task):
            target = yielded

            def _joined() -> None:
                if target._error is not None:
                    target._error_observed = True
                    self._step(None, target._error)
                else:
                    self._step(target._result)

            target._subscribe(_joined)
        elif hasattr(yielded, "_subscribe"):
            yielded._subscribe(lambda value=None: self._step(value))
        else:
            self._step(
                None,
                SimulationError(
                    f"task {self.name!r} yielded unawaitable {yielded!r}"
                ),
            )

    def _finish(self, result: Any, error: BaseException | None) -> None:
        self._done = True
        self._result = result
        self._error = error
        if error is not None and not self._waiters:
            self.sim._record_failure(self)
        for callback in self._waiters:
            self.sim.schedule(0.0, callback)
        self._waiters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self._done else "running"
        return f"<Task {self.name} {state}>"


class Simulator:
    """Single-threaded deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self._failures: list[Task] = []
        self._running = False
        self._next_tid = 0
        self._current_task: Optional[Task] = None
        # Observability hooks; populated by repro.obs.install(). Kept as
        # plain attributes (not imports) so sim.core stays dependency-free
        # and tracing is strictly opt-in.
        self.tracer = None
        self.metrics = None
        self.timeline = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling --------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, callback, args))

    def spawn(self, gen: TaskGen, name: str = "") -> Task:
        """Start a new task from a generator; it begins at the current time."""
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"spawn() needs a generator (got {type(gen).__name__}); "
                "did you forget to call the generator function?"
            )
        task = Task(self, gen, name)
        self.schedule(0.0, task._step)
        if self.timeline is not None:
            # Revive a parked metrics scraper (repro.obs.timeline); the
            # scraper parks whenever the heap drains so it cannot mask
            # DeadlockError, and new activity starts it ticking again.
            self.timeline.on_activity()
        return task

    # -- execution ---------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event; returns False if the heap is empty."""
        if not self._heap:
            return False
        time, _seq, callback, args = heapq.heappop(self._heap)
        if time < self._now - 1e-12:
            raise SimulationError("event heap went backwards")
        self._now = max(self._now, time)
        callback(*args)
        self._raise_failures()
        return True

    def run(self, until: float | None = None) -> float:
        """Run events until the heap drains or ``until`` is reached.

        Returns the simulated time at which execution stopped.

        The dispatch loop is :meth:`step` inlined — same checks, same
        ordering — because the per-event method call is measurable on
        multi-million-event figure sweeps.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        failures = self._failures
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self._now = until
                    break
                time, _seq, callback, args = pop(heap)
                if time < self._now - 1e-12:
                    raise SimulationError("event heap went backwards")
                if time > self._now:
                    self._now = time
                callback(*args)
                if failures:
                    self._raise_failures()
        finally:
            self._running = False
        if until is not None and not heap and self._now < until:
            self._now = until
        return self._now

    def run_until_complete(self, task: Task, limit: float = 1e9) -> Any:
        """Drive the simulation until ``task`` finishes and return its result.

        Dispatch is inlined as in :meth:`run`.
        """
        heap = self._heap
        pop = heapq.heappop
        failures = self._failures
        while not task._done:
            if not heap:
                raise DeadlockError(
                    f"no runnable events but task {task.name!r} is pending"
                )
            if self._now > limit:
                raise SimulationError(f"simulation exceeded limit t={limit}")
            time, _seq, callback, args = pop(heap)
            if time < self._now - 1e-12:
                raise SimulationError("event heap went backwards")
            if time > self._now:
                self._now = time
            callback(*args)
            if failures:
                self._raise_failures()
        return task.result

    # -- failure bookkeeping -------------------------------------------------
    def _record_failure(self, task: Task) -> None:
        self._failures.append(task)

    def _raise_failures(self) -> None:
        while self._failures:
            task = self._failures.pop()
            if not task._error_observed and task._error is not None:
                task._error_observed = True
                raise SimulationError(
                    f"unhandled error in task {task.name!r}"
                ) from task._error


def now(sim: Simulator) -> float:
    """Free-function accessor for symmetry with module-level helpers."""
    return sim.now
