"""Named, reproducible random-number streams.

Every stochastic component (Raft election jitter, placement seeds,
workload think times) draws from its own named stream so that adding a
new consumer never perturbs the draws seen by existing ones — the classic
HPC-simulation reproducibility discipline.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """Factory of independent ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0xDA05):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def uniform(self, name: str, lo: float, hi: float) -> float:
        return float(self.stream(name).uniform(lo, hi))

    def integer(self, name: str, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi)."""
        return int(self.stream(name).integers(lo, hi))
