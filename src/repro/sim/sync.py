"""Synchronization primitives for simulated tasks.

All primitives expose ``_subscribe(callback)`` so they can be ``yield``-ed
from a task. Wake-ups are scheduled through the simulator (never called
inline) so ordering stays deterministic and reentrancy-safe.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List

from repro.errors import SimulationError
from repro.sim.core import Simulator


class Gate:
    """One-shot event: tasks wait until someone calls :meth:`open`.

    The value passed to ``open`` is delivered to every waiter. Re-opening
    is an error; use a fresh Gate per occurrence.
    """

    __slots__ = ("sim", "_open", "_value", "_waiters")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._open = False
        self._value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def value(self) -> Any:
        if not self._open:
            raise SimulationError("gate not open yet")
        return self._value

    def open(self, value: Any = None) -> None:
        if self._open:
            raise SimulationError("gate already open")
        self._open = True
        self._value = value
        for waiter in self._waiters:
            self.sim.schedule(0.0, waiter, value)
        self._waiters.clear()

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        if self._open:
            self.sim.schedule(0.0, callback, self._value)
        else:
            self._waiters.append(callback)


class Condition:
    """Broadcast condition variable: :meth:`notify_all` wakes all waiters.

    Unlike :class:`Gate` it is reusable; waiters re-yield it to wait again.
    """

    __slots__ = ("sim", "_waiters")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._waiters: List[Callable[[Any], None]] = []

    def notify_all(self, value: Any = None) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.sim.schedule(0.0, waiter, value)

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        self._waiters.append(callback)


class Queue:
    """Unbounded FIFO channel between tasks.

    ``put`` never blocks; ``get()`` returns an awaitable that delivers the
    oldest item. Used for mailboxes (OFI endpoints, engine work queues).
    """

    __slots__ = ("sim", "_items", "_getters")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Callable[[Any], None]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.popleft()
            self.sim.schedule(0.0, getter, item)
        else:
            self._items.append(item)

    def get(self) -> "_QueueGet":
        return _QueueGet(self)

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking pop: (True, item) or (False, None)."""
        if self._items:
            return True, self._items.popleft()
        return False, None


class _QueueGet:
    __slots__ = ("queue",)

    def __init__(self, queue: Queue):
        self.queue = queue

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        if self.queue._items:
            item = self.queue._items.popleft()
            self.queue.sim.schedule(0.0, callback, item)
        else:
            self.queue._getters.append(callback)


class Semaphore:
    """Counting semaphore with FIFO wakeup (engine inflight credits)."""

    __slots__ = ("sim", "_count", "_waiters")

    def __init__(self, sim: Simulator, count: int):
        if count < 0:
            raise SimulationError("semaphore count must be >= 0")
        self.sim = sim
        self._count = count
        self._waiters: Deque[Callable[[Any], None]] = deque()

    @property
    def available(self) -> int:
        return self._count

    def acquire(self) -> "_SemAcquire":
        return _SemAcquire(self)

    def release(self) -> None:
        if self._waiters:
            waiter = self._waiters.popleft()
            self.sim.schedule(0.0, waiter, None)
        else:
            self._count += 1

    def held(self) -> Generator[Any, Any, "_SemGuard"]:
        """Task helper: ``guard = yield from sem.held()`` ... ``guard.release()``."""
        yield self.acquire()
        return _SemGuard(self)


class _SemAcquire:
    __slots__ = ("sem",)

    def __init__(self, sem: Semaphore):
        self.sem = sem

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        if self.sem._count > 0:
            self.sem._count -= 1
            self.sem.sim.schedule(0.0, callback, None)
        else:
            self.sem._waiters.append(callback)


class _SemGuard:
    __slots__ = ("sem", "_released")

    def __init__(self, sem: Semaphore):
        self.sem = sem
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.sem.release()


class Lock(Semaphore):
    """Binary semaphore."""

    def __init__(self, sim: Simulator):
        super().__init__(sim, 1)


def all_of(sim: Simulator, tasks: list) -> Generator[Any, Any, list]:
    """Task helper: join a list of tasks, returning their results in order.

    Usage: ``results = yield from all_of(sim, tasks)``.
    """
    results = []
    for task in tasks:
        value = yield task
        results.append(value)
    return results
