"""Lightweight metrics collection for simulated components.

A :class:`Stats` object is a bag of counters, time-weighted gauges and
simple reservoirs that components update as they run; benchmarks read it
afterwards. Kept intentionally simple — no background tasks, no I/O.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.core import Simulator


@dataclass
class _Gauge:
    """Time-weighted gauge: integrates value over simulated time."""

    last_t: float = 0.0
    value: float = 0.0
    integral: float = 0.0

    def set(self, now: float, value: float) -> None:
        self.integral += self.value * (now - self.last_t)
        self.last_t = now
        self.value = value

    def mean(self, now: float) -> float:
        total = self.integral + self.value * (now - self.last_t)
        return total / now if now > 0 else 0.0


@dataclass
class Stats:
    """Counters / gauges / samples, namespaced by string keys."""

    sim: Simulator
    counters: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    gauges: Dict[str, _Gauge] = field(default_factory=dict)
    samples: Dict[str, List[float]] = field(default_factory=lambda: defaultdict(list))

    def incr(self, key: str, amount: float = 1.0) -> None:
        self.counters[key] += amount

    def gauge(self, key: str, value: float) -> None:
        gauge = self.gauges.get(key)
        if gauge is None:
            gauge = self.gauges[key] = _Gauge(last_t=self.sim.now)
        gauge.set(self.sim.now, value)

    def sample(self, key: str, value: float) -> None:
        self.samples[key].append(value)

    def count(self, key: str) -> float:
        return self.counters.get(key, 0.0)

    def gauge_mean(self, key: str) -> float:
        gauge = self.gauges.get(key)
        return gauge.mean(self.sim.now) if gauge else 0.0

    def sample_mean(self, key: str) -> float:
        values = self.samples.get(key)
        return sum(values) / len(values) if values else 0.0
