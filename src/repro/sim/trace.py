"""Lightweight metrics collection for simulated components.

A :class:`Stats` object is a bag of counters, time-weighted gauges and
bounded sample reservoirs that components update as they run; benchmarks
read it afterwards. Kept intentionally simple — no background tasks, no
I/O. Reservoir eviction draws from a dedicated named RNG stream so that
sampling pressure never perturbs simulation randomness.

For hierarchical metrics with histograms/percentiles and export formats
see :mod:`repro.obs.metrics`; this module stays the in-simulation
low-overhead bag.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.sim.core import Simulator
from repro.sim.rng import RngStreams


@dataclass
class _Gauge:
    """Time-weighted gauge: integrates value over simulated time.

    ``created`` pins the start of the observed window: a gauge first set
    at t>0 must not integrate a phantom 0 over [0, t) nor dilute its mean
    by dividing over time it never observed.
    """

    created: float = 0.0
    last_t: float = 0.0
    value: float = 0.0
    integral: float = 0.0

    def set(self, now: float, value: float) -> None:
        self.integral += self.value * (now - self.last_t)
        self.last_t = now
        self.value = value

    def mean(self, now: float) -> float:
        window = now - self.created
        total = self.integral + self.value * (now - self.last_t)
        return total / window if window > 0 else self.value


class _Reservoir:
    """Bounded uniform sample reservoir (algorithm R).

    Holds at most ``cap`` values; once full, the i-th observation
    replaces a random slot with probability cap/i, keeping a uniform
    sample of everything seen. ``count``/``total`` stay exact so means
    over the full population remain exact even after eviction starts.
    """

    __slots__ = ("cap", "values", "count", "total", "_rng")

    def __init__(self, cap: int, rng) -> None:
        self.cap = cap
        self.values: List[float] = []
        self.count = 0
        self.total = 0.0
        self._rng = rng

    def append(self, value: float) -> None:
        self.count += 1
        self.total += value
        if len(self.values) < self.cap:
            self.values.append(value)
            return
        slot = int(self._rng.integers(0, self.count))
        if slot < self.cap:
            self.values[slot] = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    def __getitem__(self, idx):
        return self.values[idx]


#: Default per-key reservoir capacity; enough for stable percentiles,
#: small enough that week-long sweeps stay O(1) per key.
RESERVOIR_CAP = 1024


class _SampleMap:
    """dict-like view creating a seeded reservoir per key on first use."""

    __slots__ = ("_streams", "_data")

    def __init__(self, streams: RngStreams) -> None:
        self._streams = streams
        self._data: Dict[str, _Reservoir] = {}

    def __getitem__(self, key: str) -> _Reservoir:
        res = self._data.get(key)
        if res is None:
            res = self._data[key] = _Reservoir(
                RESERVOIR_CAP, self._streams.stream(f"stats:{key}")
            )
        return res

    def get(self, key: str, default=None):
        return self._data.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def keys(self):
        return self._data.keys()

    def values(self):
        return self._data.values()

    def items(self):
        return self._data.items()


@dataclass
class Stats:
    """Counters / gauges / samples, namespaced by string keys."""

    sim: Simulator
    counters: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    gauges: Dict[str, _Gauge] = field(default_factory=dict)
    samples: _SampleMap = field(
        default_factory=lambda: _SampleMap(RngStreams(0x57A75))
    )

    def incr(self, key: str, amount: float = 1.0) -> None:
        self.counters[key] += amount

    def gauge(self, key: str, value: float) -> None:
        gauge = self.gauges.get(key)
        if gauge is None:
            now = self.sim.now
            gauge = self.gauges[key] = _Gauge(created=now, last_t=now)
        gauge.set(self.sim.now, value)

    def sample(self, key: str, value: float) -> None:
        self.samples[key].append(value)

    def count(self, key: str) -> float:
        return self.counters.get(key, 0.0)

    def gauge_mean(self, key: str) -> float:
        gauge = self.gauges.get(key)
        return gauge.mean(self.sim.now) if gauge else 0.0

    def sample_mean(self, key: str) -> float:
        res = self.samples.get(key)
        return res.mean() if res is not None else 0.0
