"""Deterministic discrete-event simulation kernel.

The kernel follows the SimPy style: simulated activities are Python
generators ("tasks") that ``yield`` awaitable objects — a delay, another
task, or a synchronization primitive — and the :class:`Simulator` advances
virtual time from one event to the next. Everything in the stack above
(network flows, Raft timers, DAOS engines, MPI ranks, IOR processes) runs
on this kernel, so a whole cluster benchmark is a single-threaded,
perfectly reproducible program.
"""

from repro.sim.core import Simulator, Task, Timeout, now
from repro.sim.sync import Condition, Gate, Lock, Queue, Semaphore
from repro.sim.rng import RngStreams

__all__ = [
    "Simulator",
    "Task",
    "Timeout",
    "now",
    "Condition",
    "Gate",
    "Lock",
    "Queue",
    "Semaphore",
    "RngStreams",
]
