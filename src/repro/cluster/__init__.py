"""Cluster assembly: simulator + fabric + nodes + DAOS system, pre-booted.

:func:`nextgenio` builds the paper's testbed: 8 dual-engine server nodes
(Optane DCPMM media) plus N client nodes, a pool spanning every target,
and a POSIX container — everything IOR needs. :func:`small_cluster`
is the cheap variant used throughout the test suite.
"""

from repro.cluster.builder import (
    Cluster,
    LustreCluster,
    build_cluster,
    build_lustre_cluster,
    nextgenio,
    small_cluster,
)

__all__ = [
    "Cluster",
    "LustreCluster",
    "build_cluster",
    "build_lustre_cluster",
    "nextgenio",
    "small_cluster",
]
