"""Builders producing a booted simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.daos.client import DaosClient
from repro.daos.system import DaosSystem, PoolMap
from repro.hardware.node import ClientNode, ServerNode
from repro.hardware.specs import EngineSpec, FabricSpec, NodeSpec
from repro.network.fabric import Fabric
from repro.sim.core import Simulator
from repro.sim.rng import RngStreams
from repro.units import GiB


@dataclass
class Cluster:
    """A booted system: simulator, fabric, nodes, DAOS, and a pool."""

    sim: Simulator
    fabric: Fabric
    servers: List[ServerNode]
    clients: List[ClientNode]
    daos: DaosSystem
    pool: PoolMap
    rng: RngStreams

    def new_client(self, node_index: int = 0, name: str = "") -> DaosClient:
        """A fresh libdaos client context on the given client node."""
        return DaosClient(self.daos, self.clients[node_index], name)

    def run(self, gen, limit: float = 1e9):
        """Spawn a task and drive the simulation until it completes."""
        task = self.sim.spawn(gen)
        return self.sim.run_until_complete(task, limit=limit)

    def inject(self, schedule, trace=None):
        """Arm a :class:`~repro.faults.FaultSchedule` on this cluster;
        returns the armed :class:`~repro.faults.FaultInjector` (its
        ``trace`` carries the deterministic event record)."""
        from repro.faults.injector import FaultInjector

        return FaultInjector(self, schedule, trace=trace).arm()

    def observe(self, tracing: bool = True, metrics: bool = True,
                seed: Optional[int] = None,
                timeline_interval: Optional[float] = None,
                slo_rules=None):
        """Enable span tracing and/or metrics on this cluster's simulator;
        returns the ``(tracer, registry)`` pair. Purely additive: the
        simulated execution is identical with or without it (pinned by
        tests/faults/test_determinism.py and
        tests/obs/test_timeline_determinism.py). ``timeline_interval``
        additionally attaches the sim-time metrics scraper
        (``sim.timeline``); ``slo_rules`` are rule strings per
        :mod:`repro.obs.slo`."""
        from repro.obs import install

        return install(
            self.sim,
            tracing=tracing,
            metrics=metrics,
            seed=self.rng.seed if seed is None else seed,
            timeline_interval=timeline_interval,
            slo_rules=slo_rules,
        )


def build_cluster(
    server_nodes: int,
    client_nodes: int,
    engine_spec: Optional[EngineSpec] = None,
    fabric_spec: Optional[FabricSpec] = None,
    capacity_per_target: int = 64 * GiB,
    seed: int = 0xDA05,
    flow_solver: Optional[str] = None,
) -> Cluster:
    """Assemble and boot a cluster; returns once the pool exists and the
    metadata service has a stable leader.

    ``flow_solver`` picks the bandwidth-allocation engine (``reference``
    or ``incremental``); by default the ``REPRO_FLOW_SOLVER`` environment
    variable decides.
    """
    sim = Simulator()
    rng = RngStreams(seed=seed)
    fspec = fabric_spec or FabricSpec()
    fabric = Fabric(
        sim,
        base_latency=fspec.base_latency,
        msg_bandwidth=fspec.msg_bandwidth,
        software_overhead=fspec.software_overhead,
        rpc_timeout=fspec.rpc_timeout,
        flow_solver=flow_solver,
    )
    espec = engine_spec or EngineSpec()
    server_spec = NodeSpec(engines=2, engine=espec)
    client_spec = NodeSpec(engines=0)
    servers = [
        ServerNode(fabric, f"server{i}", server_spec) for i in range(server_nodes)
    ]
    clients = [
        ClientNode(fabric, f"client{i}", client_spec) for i in range(client_nodes)
    ]
    daos = DaosSystem(sim, fabric, servers, rng=rng)

    def boot():
        pool = yield from daos.create_pool(
            "tank", capacity_per_target=capacity_per_target
        )
        return pool

    task = sim.spawn(boot(), "boot")
    pool = sim.run_until_complete(task, limit=60.0)
    return Cluster(sim, fabric, servers, clients, daos, pool, rng)


@dataclass
class LustreCluster:
    """A booted Lustre system on the same hardware model."""

    sim: Simulator
    fabric: Fabric
    servers: List[ServerNode]
    clients: List[ClientNode]
    fs: "object"  # LustreFs

    def mount(self, node_index: int = 0, name: str = ""):
        from repro.lustre.client import LustreMount

        return LustreMount(self.fs, self.clients[node_index], name)

    def run(self, gen, limit: float = 1e9):
        task = self.sim.spawn(gen)
        return self.sim.run_until_complete(task, limit=limit)

    def observe(self, tracing: bool = True, metrics: bool = True,
                seed: int = 0xDA05,
                timeline_interval: Optional[float] = None,
                slo_rules=None):
        """Enable span tracing and/or metrics (see :meth:`Cluster.observe`)."""
        from repro.obs import install

        return install(self.sim, tracing=tracing, metrics=metrics, seed=seed,
                       timeline_interval=timeline_interval,
                       slo_rules=slo_rules)


def build_lustre_cluster(
    server_nodes: int,
    client_nodes: int,
    engine_spec: Optional[EngineSpec] = None,
    stripe_count: int = 4,
    stripe_size: Optional[int] = None,
    seed: int = 0xDA05,
) -> LustreCluster:
    """Assemble a Lustre filesystem over NEXTGenIO-class hardware, for
    the DAOS-vs-parallel-filesystem contrast experiment."""
    from repro.lustre.fs import LustreFs
    from repro.units import MiB

    sim = Simulator()
    fspec = FabricSpec()
    fabric = Fabric(
        sim,
        base_latency=fspec.base_latency,
        msg_bandwidth=fspec.msg_bandwidth,
        software_overhead=fspec.software_overhead,
        rpc_timeout=fspec.rpc_timeout,
    )
    espec = engine_spec or EngineSpec()
    server_spec = NodeSpec(engines=2, engine=espec)
    servers = [
        ServerNode(fabric, f"oss{i}", server_spec) for i in range(server_nodes)
    ]
    clients = [
        ClientNode(fabric, f"client{i}", NodeSpec(engines=0))
        for i in range(client_nodes)
    ]
    fs = LustreFs(
        sim,
        fabric,
        servers,
        default_stripe_count=stripe_count,
        default_stripe_size=stripe_size or MiB,
    )
    return LustreCluster(sim, fabric, servers, clients, fs)


def nextgenio(client_nodes: int = 4, seed: int = 0xDA05,
              capacity_per_target: int = 192 * GiB,
              flow_solver: Optional[str] = None) -> Cluster:
    """The paper's testbed: 8 servers, 2 engines each, Optane media."""
    return build_cluster(
        server_nodes=8,
        client_nodes=client_nodes,
        capacity_per_target=capacity_per_target,
        seed=seed,
        flow_solver=flow_solver,
    )


def small_cluster(
    server_nodes: int = 2,
    client_nodes: int = 2,
    targets_per_engine: int = 2,
    seed: int = 0xDA05,
    capacity_per_target: int = 4 * GiB,
) -> Cluster:
    """A cheap cluster for unit/integration tests."""
    espec = EngineSpec(targets=targets_per_engine)
    return build_cluster(
        server_nodes=server_nodes,
        client_nodes=client_nodes,
        engine_spec=espec,
        capacity_per_target=capacity_per_target,
        seed=seed,
    )
