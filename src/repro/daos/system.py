"""A running DAOS system: engines + the Raft-backed management service.

``DaosSystem`` wires the hardware model to the software stack:

- one :class:`~repro.daos.engine.Engine` per engine slot of every server
  node, each with a global engine rank and a global-target-id range;
- a :class:`~repro.consensus.rsvc.ReplicatedService` (Raft over the
  simulated fabric) holding pool and container metadata — pool maps,
  container properties, OID allocator counters — the equivalent of the
  DAOS pool/container service replicas;
- pool lifecycle: :meth:`create_pool` creates per-target VOS shards on
  every engine and publishes the pool map through Raft.

Global target ids: engine ``e``'s local target ``t`` has
``tid = e * targets_per_engine + t``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.consensus.rsvc import ReplicatedService, RsvcClient
from repro.daos.engine import Engine
from repro.errors import DerExist, DerInval, DerNonexist
from repro.hardware.node import ServerNode, StorageTarget
from repro.network.fabric import Fabric
from repro.sim.core import Simulator
from repro.sim.rng import RngStreams
from repro.units import GiB


@dataclass
class TargetRef:
    """Resolution of a global target id."""

    tid: int
    engine: Engine
    local_tid: int

    @property
    def hw(self) -> StorageTarget:
        return self.engine.target_hw(self.local_tid)


@dataclass
class PoolMap:
    """Client-visible pool composition (a simplified DAOS pool map)."""

    uuid: str
    label: str
    n_targets: int
    capacity_per_target: int
    version: int = 1
    #: target ids currently excluded (failed/administratively down)
    excluded: frozenset = frozenset()

    @property
    def up_targets(self) -> List[int]:
        return [t for t in range(self.n_targets) if t not in self.excluded]


class DaosSystem:
    """Engines + management service over a set of server nodes."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        server_nodes: List[ServerNode],
        rng: Optional[RngStreams] = None,
        svc_replicas: int = 3,
    ):
        if not server_nodes:
            raise DerInval("DAOS system needs server nodes")
        self.sim = sim
        self.fabric = fabric
        self.rng = rng or RngStreams()
        self.server_nodes = server_nodes
        self.engines: List[Engine] = []
        for node in server_nodes:
            for slot in node.engines:
                self.engines.append(Engine(sim, fabric, slot, len(self.engines)))
        self.targets_per_engine = self.engines[0].spec.targets
        self.targets: List[TargetRef] = []
        for engine in self.engines:
            for local_tid in range(engine.spec.targets):
                self.targets.append(
                    TargetRef(len(self.targets), engine, local_tid)
                )
        n_svc = min(svc_replicas, len(server_nodes))
        self.svc = ReplicatedService(
            sim,
            fabric,
            [node.addr for node in server_nodes[:n_svc]],
            rng=self.rng,
        )
        self._uuid_seq = itertools.count(1)
        self._pool_maps: Dict[str, PoolMap] = {}

    # ------------------------------------------------------------- helpers
    @property
    def n_targets(self) -> int:
        return len(self.targets)

    def target(self, tid: int) -> TargetRef:
        try:
            return self.targets[tid]
        except IndexError:
            raise DerNonexist(f"target {tid}") from None

    def rsvc_client(self) -> RsvcClient:
        return RsvcClient(self.svc)

    def _new_uuid(self, kind: str) -> str:
        return f"{kind}-{next(self._uuid_seq):08x}"

    # ------------------------------------------------------------- pool lifecycle
    def create_pool(
        self,
        label: str,
        capacity_per_target: int = 64 * GiB,
        rsvc: Optional[RsvcClient] = None,
    ) -> Generator:
        """Task helper: create a pool across every engine; returns its
        :class:`PoolMap`."""
        rsvc = rsvc or self.rsvc_client()
        uuid = self._new_uuid("pool")
        created = yield from rsvc.invoke(
            ("cas", f"pool-label:{label}", None, uuid)
        )
        if not created:
            raise DerExist(f"pool label {label!r}")
        for engine in self.engines:
            engine.create_pool_shards(uuid, capacity_per_target)
        pool_map = PoolMap(
            uuid=uuid,
            label=label,
            n_targets=self.n_targets,
            capacity_per_target=capacity_per_target,
        )
        yield from rsvc.invoke(
            (
                "put",
                f"pool:{uuid}",
                {
                    "label": label,
                    "n_targets": pool_map.n_targets,
                    "capacity_per_target": capacity_per_target,
                    "version": pool_map.version,
                    "excluded": [],
                },
            )
        )
        self._pool_maps[uuid] = pool_map
        return pool_map

    def resolve_pool(self, label: str, rsvc: RsvcClient) -> Generator:
        """Task helper: label → :class:`PoolMap` via the metadata service."""
        uuid = yield from rsvc.invoke(("get", f"pool-label:{label}"))
        if uuid is None:
            raise DerNonexist(f"pool label {label!r}")
        record = yield from rsvc.invoke(("get", f"pool:{uuid}"))
        return PoolMap(
            uuid=uuid,
            label=record["label"],
            n_targets=record["n_targets"],
            capacity_per_target=record["capacity_per_target"],
            version=record["version"],
            excluded=frozenset(record["excluded"]),
        )

    def exclude_target(self, pool_uuid: str, tid: int, rsvc=None) -> Generator:
        """Task helper: mark a target DOWN in the pool map (no rebuild —
        replicated classes keep serving from surviving replicas)."""
        rsvc = rsvc or self.rsvc_client()
        record = yield from rsvc.invoke(("get", f"pool:{pool_uuid}"))
        if record is None:
            raise DerNonexist(f"pool {pool_uuid}")
        excluded = set(record["excluded"])
        excluded.add(tid)
        record = dict(record, excluded=sorted(excluded),
                      version=record["version"] + 1)
        yield from rsvc.invoke(("put", f"pool:{pool_uuid}", record))
        cached = self._pool_maps.get(pool_uuid)
        if cached is not None:
            cached.excluded = frozenset(excluded)
            cached.version = record["version"]
        return record["version"]

    def reintegrate_target(self, pool_uuid: str, tid: int, rsvc=None) -> Generator:
        """Task helper: mark a previously excluded target UP again and
        bump the pool map version.

        No rebuild/resync pass is modelled (DESIGN.md §6): the returning
        replica is current only if nothing was written to its groups
        during the exclusion window. Chaos schedules respect this —
        :meth:`FaultSchedule.random` never pairs a reintegration with
        concurrent writes to the same object.
        """
        rsvc = rsvc or self.rsvc_client()
        record = yield from rsvc.invoke(("get", f"pool:{pool_uuid}"))
        if record is None:
            raise DerNonexist(f"pool {pool_uuid}")
        excluded = set(record["excluded"])
        if tid not in excluded:
            return record["version"]
        excluded.discard(tid)
        record = dict(record, excluded=sorted(excluded),
                      version=record["version"] + 1)
        yield from rsvc.invoke(("put", f"pool:{pool_uuid}", record))
        cached = self._pool_maps.get(pool_uuid)
        if cached is not None:
            cached.excluded = frozenset(excluded)
            cached.version = record["version"]
        return record["version"]

    # ------------------------------------------------------------- test/bench drive
    def run_task(self, gen, limit: float = 1e9):
        """Spawn a task and drive the simulation to its completion."""
        task = self.sim.spawn(gen)
        return self.sim.run_until_complete(task, limit=limit)
