"""A running DAOS system: engines + the Raft-backed management service.

``DaosSystem`` wires the hardware model to the software stack:

- one :class:`~repro.daos.engine.Engine` per engine slot of every server
  node, each with a global engine rank and a global-target-id range;
- a :class:`~repro.consensus.rsvc.ReplicatedService` (Raft over the
  simulated fabric) holding pool and container metadata — pool maps,
  container properties, OID allocator counters — the equivalent of the
  DAOS pool/container service replicas;
- pool lifecycle: :meth:`create_pool` creates per-target VOS shards on
  every engine and publishes the pool map through Raft.

Global target ids: engine ``e``'s local target ``t`` has
``tid = e * targets_per_engine + t``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.consensus.rsvc import ReplicatedService, RsvcClient
from repro.daos.engine import Engine
from repro.daos.vos.container import EpochClock
from repro.errors import DerExist, DerInval, DerNonexist
from repro.hardware.node import ServerNode, StorageTarget
from repro.network.fabric import Fabric
from repro.rebuild.state import DOWN, DOWNOUT, REBUILDING, UP, TargetStatus
from repro.sim.core import Simulator
from repro.sim.rng import RngStreams
from repro.units import GiB


@dataclass
class TargetRef:
    """Resolution of a global target id."""

    tid: int
    engine: Engine
    local_tid: int

    @property
    def hw(self) -> StorageTarget:
        return self.engine.target_hw(self.local_tid)


@dataclass
class PoolMap:
    """Client-visible pool composition (a simplified DAOS pool map).

    ``statuses`` holds a :class:`~repro.rebuild.state.TargetStatus` for
    every target that is not healthy-UP; the derived frozensets are
    recomputed by :meth:`derive` whenever the statuses change so that the
    hot I/O paths pay set lookups, not state-machine logic.
    """

    uuid: str
    label: str
    n_targets: int
    capacity_per_target: int
    version: int = 1
    #: per-target state records; absent tid == UP
    statuses: Dict[int, TargetStatus] = field(default_factory=dict)
    #: derived: targets that may not serve *reads* (anything non-UP —
    #: REBUILDING targets accept writes but their data is incomplete)
    excluded: frozenset = frozenset()
    #: derived: targets that may not receive *writes* (DOWN / DOWNOUT)
    write_excluded: frozenset = frozenset()
    #: derived: permanently evicted targets (spare substitution applies)
    downout: frozenset = frozenset()
    #: derived: every DOWNOUT shard has been rebuilt onto its spare, so
    #: substituted slots are readable again
    downout_ready: bool = True

    def derive(self) -> "PoolMap":
        statuses = self.statuses
        self.excluded = frozenset(
            t for t, s in statuses.items() if s.state != UP
        )
        self.write_excluded = frozenset(
            t for t, s in statuses.items() if s.state in (DOWN, DOWNOUT)
        )
        self.downout = frozenset(
            t for t, s in statuses.items() if s.state == DOWNOUT
        )
        self.downout_ready = all(
            s.rebuilt for s in statuses.values() if s.state == DOWNOUT
        )
        return self

    def state_of(self, tid: int) -> str:
        status = self.statuses.get(tid)
        return UP if status is None else status.state

    @property
    def up_targets(self) -> List[int]:
        return [t for t in range(self.n_targets) if t not in self.excluded]

    # ------------------------------------------------- raft serialization
    def to_record(self) -> Dict:
        return {
            "label": self.label,
            "n_targets": self.n_targets,
            "capacity_per_target": self.capacity_per_target,
            "version": self.version,
            "targets": {t: s.to_record() for t, s in self.statuses.items()},
        }

    @classmethod
    def from_record(cls, uuid: str, record: Dict) -> "PoolMap":
        statuses = {
            int(t): TargetStatus.from_record(s)
            for t, s in record.get("targets", {}).items()
        }
        return cls(
            uuid=uuid,
            label=record["label"],
            n_targets=record["n_targets"],
            capacity_per_target=record["capacity_per_target"],
            version=record["version"],
            statuses=statuses,
        ).derive()


class DaosSystem:
    """Engines + management service over a set of server nodes."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        server_nodes: List[ServerNode],
        rng: Optional[RngStreams] = None,
        svc_replicas: int = 3,
    ):
        if not server_nodes:
            raise DerInval("DAOS system needs server nodes")
        self.sim = sim
        self.fabric = fabric
        self.rng = rng or RngStreams()
        self.server_nodes = server_nodes
        #: system-global epoch source shared by every VOS shard (see
        #: :class:`~repro.daos.vos.container.EpochClock`) — exclusion
        #: watermarks are epochs read from this clock.
        self.epoch_clock = EpochClock()
        self.engines: List[Engine] = []
        for node in server_nodes:
            for slot in node.engines:
                self.engines.append(
                    Engine(sim, fabric, slot, len(self.engines),
                           clock=self.epoch_clock)
                )
        self.targets_per_engine = self.engines[0].spec.targets
        self.targets: List[TargetRef] = []
        for engine in self.engines:
            for local_tid in range(engine.spec.targets):
                self.targets.append(
                    TargetRef(len(self.targets), engine, local_tid)
                )
        n_svc = min(svc_replicas, len(server_nodes))
        self.svc = ReplicatedService(
            sim,
            fabric,
            [node.addr for node in server_nodes[:n_svc]],
            rng=self.rng,
        )
        self._uuid_seq = itertools.count(1)
        self._pool_maps: Dict[str, PoolMap] = {}
        # deferred import: repro.rebuild imports daos sub-layers
        from repro.rebuild.scheduler import RebuildManager

        #: the online rebuild/resync engine (runs on the pool service)
        self.rebuild = RebuildManager(self)

    # ------------------------------------------------------------- helpers
    @property
    def n_targets(self) -> int:
        return len(self.targets)

    def target(self, tid: int) -> TargetRef:
        try:
            return self.targets[tid]
        except IndexError:
            raise DerNonexist(f"target {tid}") from None

    def rsvc_client(self) -> RsvcClient:
        return RsvcClient(self.svc)

    def _new_uuid(self, kind: str) -> str:
        return f"{kind}-{next(self._uuid_seq):08x}"

    # ------------------------------------------------------------- pool lifecycle
    def create_pool(
        self,
        label: str,
        capacity_per_target: int = 64 * GiB,
        rsvc: Optional[RsvcClient] = None,
    ) -> Generator:
        """Task helper: create a pool across every engine; returns its
        :class:`PoolMap`."""
        rsvc = rsvc or self.rsvc_client()
        uuid = self._new_uuid("pool")
        created = yield from rsvc.invoke(
            ("cas", f"pool-label:{label}", None, uuid)
        )
        if not created:
            raise DerExist(f"pool label {label!r}")
        for engine in self.engines:
            engine.create_pool_shards(uuid, capacity_per_target)
        pool_map = PoolMap(
            uuid=uuid,
            label=label,
            n_targets=self.n_targets,
            capacity_per_target=capacity_per_target,
        ).derive()
        yield from rsvc.invoke(("put", f"pool:{uuid}", pool_map.to_record()))
        self._pool_maps[uuid] = pool_map
        self._push_map_version(uuid, pool_map.version)
        return pool_map

    def resolve_pool(self, label: str, rsvc: RsvcClient) -> Generator:
        """Task helper: label → :class:`PoolMap` via the metadata service."""
        uuid = yield from rsvc.invoke(("get", f"pool-label:{label}"))
        if uuid is None:
            raise DerNonexist(f"pool label {label!r}")
        record = yield from rsvc.invoke(("get", f"pool:{uuid}"))
        return PoolMap.from_record(uuid, record)

    # ------------------------------------------------------------- target state
    def _push_map_version(self, pool_uuid: str, version: int) -> None:
        """Tell every engine the committed map version (the IV/notification
        fan-out of the real pool service; delivery is modelled as free —
        fencing correctness only needs it to happen before the transition
        task completes)."""
        for engine in self.engines:
            engine.map_versions[pool_uuid] = version

    def _load_map(self, pool_uuid: str, rsvc) -> Generator:
        record = yield from rsvc.invoke(("get", f"pool:{pool_uuid}"))
        if record is None:
            raise DerNonexist(f"pool {pool_uuid}")
        return PoolMap.from_record(pool_uuid, record)

    def _publish_map(self, pool_map: PoolMap, rsvc) -> Generator:
        pool_map.derive()
        yield from rsvc.invoke(
            ("put", f"pool:{pool_map.uuid}", pool_map.to_record())
        )
        self._pool_maps[pool_map.uuid] = pool_map
        self._push_map_version(pool_map.uuid, pool_map.version)
        return pool_map.version

    def exclude_target(self, pool_uuid: str, tid: int, rsvc=None,
                       permanent: bool = False) -> Generator:
        """Task helper: mark a target DOWN (or DOWNOUT when ``permanent``).

        Records the current global epoch as the exclusion watermark —
        every write the target misses carries a newer epoch, so a later
        reintegration resyncs exactly the exclusion window. A permanent
        exclusion immediately queues a rebuild that restores redundancy
        onto the target's deterministic spare.
        """
        rsvc = rsvc or self.rsvc_client()
        pool_map = yield from self._load_map(pool_uuid, rsvc)
        state = DOWNOUT if permanent else DOWN
        current = pool_map.statuses.get(tid)
        if current is not None and current.state == state:
            return pool_map.version
        version = pool_map.version + 1
        if current is None:
            status = TargetStatus(state=state, version=version,
                                  watermark=self.epoch_clock.current)
        else:
            # DOWN -> DOWNOUT or REBUILDING -> DOWN/DOWNOUT; keep the
            # original watermark (the earliest epoch the target may miss)
            status = current.advance(state, version)
        if current is not None and current.state == REBUILDING:
            self.rebuild.cancel(pool_uuid, tid)
        pool_map.statuses[tid] = status
        pool_map.version = version
        yield from self._publish_map(pool_map, rsvc)
        if permanent:
            self.rebuild.schedule_restore(pool_uuid, tid)
        return version

    def reintegrate_target(self, pool_uuid: str, tid: int, rsvc=None) -> Generator:
        """Task helper: bring a DOWN target back through REBUILDING.

        The target immediately starts receiving new writes (so the resync
        has a bounded window to catch up) but serves no reads until the
        background resync — scheduled here, driven by
        :class:`~repro.rebuild.scheduler.RebuildManager` — has replayed
        everything written since the exclusion watermark, at which point
        the pool map flips the target UP. Use :meth:`wait_rebuild` to
        block until the pool is healthy again.
        """
        rsvc = rsvc or self.rsvc_client()
        pool_map = yield from self._load_map(pool_uuid, rsvc)
        current = pool_map.statuses.get(tid)
        if current is None or current.state == REBUILDING:
            return pool_map.version
        if current.state == DOWNOUT:
            raise DerInval(f"target {tid} is permanently excluded (DOWNOUT)")
        version = pool_map.version + 1
        pool_map.statuses[tid] = current.advance(REBUILDING, version)
        pool_map.version = version
        yield from self._publish_map(pool_map, rsvc)
        self.rebuild.schedule_resync(pool_uuid, tid, current.watermark)
        return version

    def mark_target_up(self, pool_uuid: str, tid: int, rsvc=None) -> Generator:
        """Task helper (rebuild completion): REBUILDING → UP.

        Returns the new map version, or None when the target is no longer
        REBUILDING (it failed again mid-resync and the job was cancelled).
        """
        rsvc = rsvc or self.rsvc_client()
        pool_map = yield from self._load_map(pool_uuid, rsvc)
        current = pool_map.statuses.get(tid)
        if current is None or current.state != REBUILDING:
            return None
        pool_map.statuses.pop(tid)
        pool_map.version += 1
        yield from self._publish_map(pool_map, rsvc)
        return pool_map.version

    def mark_downout_rebuilt(self, pool_uuid: str, tid: int, rsvc=None) -> Generator:
        """Task helper (rebuild completion): flag a DOWNOUT target's shard
        as fully reconstructed on its spare (substituted slots become
        readable)."""
        rsvc = rsvc or self.rsvc_client()
        pool_map = yield from self._load_map(pool_uuid, rsvc)
        current = pool_map.statuses.get(tid)
        if current is None or current.state != DOWNOUT or current.rebuilt:
            return None
        pool_map.version += 1
        pool_map.statuses[tid] = TargetStatus(
            state=DOWNOUT, version=pool_map.version,
            watermark=current.watermark, rebuilt=True,
        )
        yield from self._publish_map(pool_map, rsvc)
        return pool_map.version

    # ------------------------------------------------------------- queries
    def pool_query(self, pool_uuid: str) -> Dict:
        """Pool health snapshot: map version, per-target states, rebuild
        progress (``dmg pool query`` equivalent; reads the service-side
        cached map, no RPC charged)."""
        pool_map = self._pool_maps.get(pool_uuid)
        if pool_map is None:
            raise DerNonexist(f"pool {pool_uuid}")
        return {
            "uuid": pool_uuid,
            "label": pool_map.label,
            "version": pool_map.version,
            "n_targets": pool_map.n_targets,
            "up_targets": pool_map.n_targets - len(pool_map.excluded),
            "targets": {
                tid: status.to_record()
                for tid, status in sorted(pool_map.statuses.items())
            },
            "rebuild": self.rebuild.progress(pool_uuid),
        }

    def wait_rebuild(self, pool_uuid: str) -> Generator:
        """Task helper: block until no rebuild job is queued or running
        for the pool; returns the pool_query() snapshot."""
        yield from self.rebuild.wait(pool_uuid)
        return self.pool_query(pool_uuid)

    # ------------------------------------------------------------- test/bench drive
    def run_task(self, gen, limit: float = 1e9):
        """Spawn a task and drive the simulation to its completion."""
        task = self.sim.spawn(gen)
        return self.sim.run_until_complete(task, limit=limit)
