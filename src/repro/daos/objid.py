"""128-bit object identifiers with the object class embedded in ``hi``.

Mirrors the real DAOS encoding: the application (or DFS) supplies the
low 96 bits; ``daos_obj_generate_oid`` folds the object-class id into
the upper bits of ``oid.hi`` so that any client can compute the layout
from the OID alone — placement is algorithmic, there is no per-object
metadata lookup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.daos.oclass import ObjectClass, oclass_from_id, oclass_id
from repro.errors import DerInval

_CLASS_SHIFT = 48
_CLASS_MASK = 0xFFFF << _CLASS_SHIFT
_LO_MASK = (1 << 64) - 1
_HI_LOW_MASK = (1 << _CLASS_SHIFT) - 1


@dataclass(frozen=True, order=True)
class ObjId:
    hi: int
    lo: int

    def __post_init__(self) -> None:
        if not (0 <= self.hi < (1 << 64) and 0 <= self.lo < (1 << 64)):
            raise DerInval(f"oid out of range: ({self.hi:#x}, {self.lo:#x})")

    @classmethod
    def generate(cls, oclass: ObjectClass, hi: int = 0, lo: int = 0) -> "ObjId":
        """Embed ``oclass`` into the top 16 bits of ``hi``."""
        if hi & _CLASS_MASK:
            raise DerInval("hi bits 48..63 are reserved for the object class")
        return cls((oclass_id(oclass) << _CLASS_SHIFT) | (hi & _HI_LOW_MASK),
                   lo & _LO_MASK)

    @property
    def oclass(self) -> ObjectClass:
        cid = (self.hi & _CLASS_MASK) >> _CLASS_SHIFT
        return oclass_from_id(cid)

    @property
    def app_hi(self) -> int:
        """The application-controlled low 48 bits of ``hi``."""
        return self.hi & _HI_LOW_MASK

    def __str__(self) -> str:
        return f"{self.hi:016x}.{self.lo:016x}"
