"""Client-side bulk I/O streams.

An :class:`IoStream` is the timing vehicle for array reads/writes: one
fluid-network flow per (object handle, direction), crossing the client
NIC, each touched server NIC, each engine media channel and each target
service link with consumption weights proportional to the fraction of
traffic headed there (uniform across the object's layout targets). Each
I/O operation then charges:

    per-op overhead  (client CPU + RPC round trip + engine CPU
                      + first-writer VOS tree creation, the widest piece
                      when chunks fan out in parallel)
  + bulk time        (bytes moved through the flow at its fair-share rate)

and finally applies the real VOS mutations/reads. Keeping the flow open
across ops is what makes a 64 MiB block write cost two heap events per
transfer instead of a global reallocation per transfer — the key to
simulating hundreds of concurrent IOR processes in reasonable wall time.

Approximation (documented in DESIGN.md §5): the flow reserves its share
for the duration of the op including the overhead portion, so highly
overhead-dominated streams slightly over-reserve bandwidth.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.errors import DerDataLoss, DerTimedOut
from repro.network.flows import Flow
from repro.sim.sync import Gate


class IoPiece:
    """One chunk-shard piece of an I/O op."""

    __slots__ = ("tid", "nbytes", "apply_fn")

    def __init__(self, tid: int, nbytes: int, apply_fn: Callable[[], object]):
        self.tid = tid
        self.nbytes = nbytes
        self.apply_fn = apply_fn


class _Batch:
    """Bytes from concurrent ops coalesced into one wire transfer."""

    __slots__ = ("nbytes", "ops", "gate")

    def __init__(self, sim):
        self.nbytes = 0
        self.ops = 0
        self.gate = Gate(sim)


class IoStream:
    """A registered bulk-I/O session toward a fixed set of targets."""

    def __init__(self, client, targets: Sequence[int], direction: str):
        if direction not in ("read", "write"):
            raise ValueError(f"bad direction {direction!r}")
        if not targets:
            raise DerDataLoss("stream has no targets (all excluded?)")
        self.client = client
        self.system = client.system
        self.sim = client.sim
        self.direction = direction
        self.targets = list(targets)
        self._flow: Optional[Flow] = None
        self._last_target: Optional[int] = None
        #: batch accumulating while the wire is busy (None when idle)
        self._pending: Optional[_Batch] = None
        #: task draining batches onto the flow (None when idle)
        self._pump_task = None
        #: ops currently inside :meth:`io` (pipelined handles overlap them)
        self._active = 0
        #: close() arrived while ops/pump were still running
        self._close_deferred = False

    # ------------------------------------------------------------- lifecycle
    def open(self) -> None:
        if self._flow is not None:
            return
        fabric = self.client.fabric
        node = self.client.node
        weight = 1.0 / len(self.targets)
        per_link: Dict[object, float] = defaultdict(float)
        if self.direction == "write":
            per_link[fabric.nic_tx(node.addr)] += 1.0
        else:
            per_link[fabric.nic_rx(node.addr)] += 1.0
        for tid in self.targets:
            ref = self.system.target(tid)
            hw = ref.hw
            server_addr = ref.engine.slot.node.addr
            if self.direction == "write":
                per_link[fabric.nic_rx(server_addr)] += weight
                per_link[ref.engine.slot.media_write] += weight
                per_link[hw.write_link] += weight
            else:
                per_link[fabric.nic_tx(server_addr)] += weight
                per_link[ref.engine.slot.media_read] += weight
                per_link[hw.read_link] += weight
        self._flow = fabric.flownet.open(
            list(per_link.items()),
            label=f"{self.client.name}:{self.direction}",
        )

    def close(self) -> None:
        """Release the flow. Deferred while pipelined ops are still in
        flight (a concurrent op refreshing the pool map must not stall a
        sibling's transfer forever): the last finisher closes."""
        if self._active > 0 or self._pump_task is not None:
            self._close_deferred = True
            return
        self._really_close()

    def _really_close(self) -> None:
        self._close_deferred = False
        if self._flow is not None:
            self.client.fabric.flownet.close(self._flow)
            self._flow = None

    def _maybe_close(self) -> None:
        if (
            self._close_deferred
            and self._active == 0
            and self._pump_task is None
        ):
            self._really_close()

    @property
    def rate(self) -> float:
        return self._flow.rate if self._flow is not None else 0.0

    # ------------------------------------------------------------- bulk wire
    def _bulk(self, nbytes: int) -> Generator:
        """Task helper: move ``nbytes`` over the stream's flow.

        Concurrent ops on one stream coalesce: while a wire transfer is
        in flight, arriving ops pool their bytes into the next batch and
        a single pump issues one flow transfer per batch — pipelined
        handles get batched wire transfers instead of a per-op round
        trip (and never multiply the flow's bandwidth by issuing
        parallel transfers on it). With one op in flight the batch is
        that op alone and timing matches the direct transfer exactly.
        """
        if nbytes <= 0:
            return
        if self._pending is None:
            self._pending = _Batch(self.sim)
        batch = self._pending
        batch.nbytes += nbytes
        batch.ops += 1
        if self._pump_task is None:
            self._pump_task = self.sim.spawn(
                self._pump(), name=f"pump:{self.client.name}:{self.direction}"
            )
        yield batch.gate

    def _pump(self) -> Generator:
        metrics = self.sim.metrics
        while self._pending is not None:
            batch = self._pending
            self._pending = None
            if metrics is not None:
                dir_label = f"{{dir={self.direction}}}"
                metrics.incr(f"client.stream.batches{dir_label}")
                metrics.incr(
                    f"client.stream.batched_ops{dir_label}", batch.ops
                )
                if batch.ops > 1:
                    metrics.incr(
                        f"client.stream.coalesced_bytes{dir_label}",
                        batch.nbytes,
                    )
            yield self._flow.transfer(batch.nbytes)
            batch.gate.open(self.sim.now)
        self._pump_task = None
        self._maybe_close()

    # ------------------------------------------------------------- one op
    def io(self, pieces: List[IoPiece], context, map_version=None) -> Generator:
        """Task helper: perform one I/O op made of parallel pieces.

        ``context`` is the (pool, cont, oid) tuple used for first-writer
        tree accounting. ``map_version`` is the client's pool-map version;
        writes are fenced against every engine they touch *before* any
        payload is applied (DER_STALE, see Engine.check_map_version), so
        a stale writer never partially lands an op. Returns the list of
        piece results in order.
        """
        if self._flow is None:
            self.open()
        self._active += 1
        metrics = self.sim.metrics
        if metrics is not None:
            # Aggregate liveness gauge: >0 whenever any client op is in
            # flight — the guard side of the default stall rule. Unlike
            # fabric.xfer.inflight it also covers ops burning RPC
            # timeouts against a crashed engine (no wire transfer).
            metrics.gauge("client.io.inflight").add(self.sim.now, 1)
        try:
            return (yield from self._io_once(pieces, context, map_version))
        finally:
            self._active -= 1
            if metrics is not None:
                metrics.gauge("client.io.inflight").add(self.sim.now, -1)
            self._maybe_close()

    def _io_once(self, pieces: List[IoPiece], context,
                 map_version=None) -> Generator:
        fabric = self.client.fabric
        node_spec = self.client.node.spec
        rtt = 2.0 * (fabric.base_latency + 2 * fabric.software_overhead)
        write = self.direction == "write"
        pool, cont, oid = context

        # Bulk I/O is RPC-carried: a crashed engine answers nothing, so
        # the op burns the caller's RPC timeout and fails — same contract
        # as the control-plane RpcServer unavailability path.
        for piece in pieces:
            engine = self.system.target(piece.tid).engine
            if not engine.up:
                yield rtt + engine.server.unavailable_delay
                raise DerTimedOut(
                    f"{self.direction} to target {piece.tid}: "
                    f"{engine.name} is down"
                )
        if write and map_version is not None:
            fenced = set()
            for piece in pieces:
                engine = self.system.target(piece.tid).engine
                if engine.name not in fenced:
                    fenced.add(engine.name)
                    engine.check_map_version(pool, map_version)

        overhead = node_spec.client_cpu_per_op
        widest = 0.0
        seen = set()
        for piece in pieces:
            ref = self.system.target(piece.tid)
            cost = ref.engine.spec.per_rpc_cpu
            if piece.tid not in seen:
                seen.add(piece.tid)
                cost += rtt
                cost += ref.engine.tree_create_cost(
                    pool, cont, oid, ref.local_tid, write
                )
            widest = max(widest, cost)
        overhead += widest
        # Lost per-target locality when the stream hops targets between
        # consecutive ops AND spans more targets than the per-handle
        # session cache covers (SX pays this almost every op; S1..S4 never).
        primary = pieces[0].tid if pieces else None
        if primary is not None:
            ref = self.system.target(primary)
            spec = ref.engine.spec
            if (
                len(self.targets) > spec.locality_window
                and self._last_target is not None
                and primary != self._last_target
            ):
                overhead += spec.target_switch_cost
            self._last_target = primary

        total = sum(p.nbytes for p in pieces)
        tracer = self.sim.tracer
        if tracer is None:
            if overhead > 0:
                yield overhead
            if total > 0:
                yield from self._bulk(total)
            return [piece.apply_fn() for piece in pieces]

        # Traced variant: same yields, with the op decomposed into its
        # RPC-fanout, bulk-flow and per-piece VOS children.
        if overhead > 0:
            with tracer.span(
                "rpc.fanout",
                "rpc",
                attrs={"targets": len(seen), "widest": widest},
            ):
                yield overhead
        if total > 0:
            with tracer.span(
                "fabric.flow",
                "fabric",
                attrs={
                    "nbytes": total,
                    "rate": self.rate,
                    "direction": self.direction,
                },
            ):
                yield from self._bulk(total)
        results = []
        for piece in pieces:
            ref = self.system.target(piece.tid)
            with tracer.span(
                "vos.apply",
                "vos",
                node=ref.engine.slot.node.name,
                attrs={"tid": piece.tid, "nbytes": piece.nbytes},
            ):
                results.append(piece.apply_fn())
        return results
