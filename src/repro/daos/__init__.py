"""A functional re-implementation of the DAOS object store.

Layers (bottom-up):

- :mod:`repro.daos.vos` — the Versioned Object Store kept by each target:
  B+-tree key indices, byte-granular extent trees, epoch ordering,
  capacity accounting.
- :mod:`repro.daos.oclass` / :mod:`repro.daos.objid` /
  :mod:`repro.daos.placement` — object classes (S1…SX, RP_*), 128-bit
  object ids with embedded class, and deterministic algorithmic placement
  of object shards onto pool targets.
- :mod:`repro.daos.engine` — the per-socket I/O engine: RPC handlers,
  per-target service credits, media/back-end timing.
- :mod:`repro.daos.system` — a running DAOS system: engines plus the
  Raft-backed pool/container metadata service.
- :mod:`repro.daos.client` — ``libdaos``: pool connect, container
  open/create, object/KV/array handles, and the I/O streams that map
  bulk transfers onto fluid-network flows.
"""

__all__ = ["ObjectClass", "ObjId", "DaosSystem", "DaosClient"]


def __getattr__(name):
    # Lazy imports keep ``import repro.daos.vos`` cheap and cycle-free.
    if name == "ObjectClass":
        from repro.daos.oclass import ObjectClass

        return ObjectClass
    if name == "ObjId":
        from repro.daos.objid import ObjId

        return ObjId
    if name == "DaosSystem":
        from repro.daos.system import DaosSystem

        return DaosSystem
    if name == "DaosClient":
        from repro.daos.client import DaosClient

        return DaosClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
