"""The libdaos event/event-queue model (``daos_eq_*`` / ``daos_event_*``).

Every libdaos data-plane call takes an optional ``daos_event_t``; passing
one makes the call non-blocking and the caller later reaps completions
from the event queue with ``daos_eq_poll`` (or checks a single event with
``daos_event_test``). This module reproduces that shape on top of the
simulator's task machinery:

- an :class:`Event` wraps one launched operation (a sim task spawned
  from the operation's task-helper generator) and records its submit
  and completion times;
- an :class:`EventQueue` tracks launched events, enforces a bounded
  in-flight window (the queue-depth knob the real client controls by
  how many events it keeps outstanding), and reaps completions in
  deterministic completion order.

Determinism: launches and completions all travel through the simulator's
event heap, so reap order is a pure function of the seed — two runs with
the same seed reap the same events in the same order at the same
simulated times. With ``depth=1`` the submit/poll cycle degenerates to
the blocking call sequence: at most one operation is ever in flight and
every added scheduling hop is zero-delay, so timings are identical to
calling the blocking variants directly (pinned by ``tests/eq``).

Observability: when the simulator runs observed, each event carries a
``client.eq.event`` span covering launch-to-completion and the queue
maintains a ``client.eq.inflight{eq=<name>}`` gauge.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, List, Optional

from repro.errors import DerBusy, DerCanceled, DerInval
from repro.sim.core import Simulator, Task
from repro.sim.sync import Condition

_eq_seq = itertools.count(1)

#: Event states, mirroring daos_event_t's lifecycle.
EV_READY = "ready"        # initialised, not yet launched
EV_RUNNING = "running"    # operation in flight
EV_COMPLETED = "completed"  # finished (result or error held)
EV_ABORTED = "aborted"    # cancelled before completion


class Event:
    """One in-flight operation's completion record (``daos_event_t``).

    ``result`` re-raises the operation's error, exactly like checking
    ``ev.ev_error`` after a reap. Events are single-shot: once reaped
    they leave the queue, but the result stays readable.
    """

    __slots__ = (
        "eq",
        "eid",
        "name",
        "state",
        "submit_time",
        "complete_time",
        "_task",
        "_result",
        "_error",
        "_span",
    )

    def __init__(self, eq: "EventQueue", eid: int, name: str):
        self.eq = eq
        self.eid = eid
        self.name = name
        self.state = EV_READY
        self.submit_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        self._task: Optional[Task] = None
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._span = None

    # ------------------------------------------------------------- queries
    @property
    def done(self) -> bool:
        return self.state in (EV_COMPLETED, EV_ABORTED)

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    @property
    def result(self) -> Any:
        """The operation's return value; re-raises its error."""
        if not self.done:
            raise DerBusy(f"event {self.eid} ({self.name}) still running")
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def elapsed(self) -> float:
        """Launch-to-completion simulated seconds (0.0 until done)."""
        if self.submit_time is None or self.complete_time is None:
            return 0.0
        return self.complete_time - self.submit_time

    def abort(self) -> None:
        """Cancel the in-flight operation (``daos_event_abort``).

        Cooperative, like task cancellation: the operation stops at its
        next resumption point; work already applied stays applied.
        """
        if self.done:
            return
        if self._task is not None:
            self._task.cancel()
        # the task's completion callback transitions us to ABORTED

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Event {self.eid} {self.name!r} {self.state}>"


class EventQueue:
    """A completion queue with a bounded in-flight window (``daos_eq_t``).

    ``depth`` bounds how many launched events may be outstanding at
    once; :meth:`submit` is a task helper that waits for a free slot
    before spawning the operation, which is how IOR-style loops express
    "keep N transfers in flight". ``depth=None`` leaves the window
    unbounded (the real libdaos queue), matching callers that manage
    their own pipelining.
    """

    def __init__(self, sim: Simulator, depth: Optional[int] = None,
                 name: str = "", metered: bool = True):
        if depth is not None and depth < 1:
            raise DerInval(f"event queue depth must be >= 1, got {depth}")
        self.sim = sim
        self.depth = depth
        self.name = name or f"eq{next(_eq_seq)}"
        #: whether this queue exports its own labeled in-flight gauge;
        #: short-lived per-job queues pass False so a 1000-job run does
        #: not mint 1000 one-shot gauge series for the scraper to walk.
        self.metered = metered
        self._next_eid = 0
        #: events launched and not yet reaped, in completion order
        self._completed: List[Event] = []
        self._inflight: List[Event] = []
        self._cond = Condition(sim)
        self._closed = False

    # ------------------------------------------------------------- state
    @property
    def inflight(self) -> int:
        """Number of launched, not-yet-completed events."""
        return len(self._inflight)

    @property
    def n_completed(self) -> int:
        """Completed events waiting to be reaped."""
        return len(self._completed)

    def _gauge(self, delta: int) -> None:
        if not self.metered:
            return
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.gauge(f"client.eq.inflight{{eq={self.name}}}").add(
                self.sim.now, delta
            )

    # ------------------------------------------------------------- launch
    def submit(self, op: Generator, name: str = "") -> Generator:
        """Task helper: launch ``op`` (a task-helper generator) as a
        non-blocking operation; returns its :class:`Event`.

        Blocks (simulated) while the in-flight window is full — the
        bounded-queue-depth behaviour a pipelined client wants. The
        spawned operation's error is captured on the event and re-raised
        only when the caller reads ``event.result``.
        """
        if self._closed:
            raise DerInval(f"event queue {self.name} is closed")
        while self.depth is not None and len(self._inflight) >= self.depth:
            yield self._cond
        return self.launch(op, name)

    def launch(self, op: Generator, name: str = "") -> Event:
        """Launch ``op`` immediately, ignoring the in-flight window
        (``daos_event_launch``: the window is a submit-side courtesy).
        Synchronous — usable from non-task code that will drive the
        simulator itself."""
        if self._closed:
            raise DerInval(f"event queue {self.name} is closed")
        self._next_eid += 1
        event = Event(self, self._next_eid, name or f"op{self._next_eid}")
        event.state = EV_RUNNING
        event.submit_time = self.sim.now
        tracer = self.sim.tracer
        # parent the event span under whatever span the submitter has open
        parent_id = tracer.current_span_id() if tracer is not None else None
        task = self.sim.spawn(
            self._run(event, op, parent_id), name=f"{self.name}:{event.name}"
        )
        # errors surface through event.result, not the fail-fast scan
        task.defuse()
        event._task = task
        # catches abort-before-start: the closed task never enters _run's
        # body, so the subscription below is what flips the event state
        task._subscribe(lambda: self._on_task_done(event))
        self._inflight.append(event)
        self._gauge(+1)
        return event

    def _run(self, event: Event, op: Generator,
             parent_id: Optional[int]) -> Generator:
        tracer = self.sim.tracer
        if tracer is not None:
            # begun inside the spawned task so the operation's own spans
            # nest underneath without touching the submitter's stack
            event._span = tracer.begin(
                "client.eq.event",
                "client",
                parent_id=parent_id,
                attrs={"eq": self.name, "eid": event.eid, "op": event.name},
            )
        try:
            result = yield from op
        except BaseException as exc:  # noqa: BLE001 - delivered via result
            self._finish(event, None, exc)
            raise
        self._finish(event, result, None)
        return result

    def _on_task_done(self, event: Event) -> None:
        if not event.done:
            self._finish(
                event, None,
                DerCanceled(f"event {event.eid} aborted before launch"),
            )

    def _finish(self, event: Event, result: Any,
                error: Optional[BaseException]) -> None:
        if event.done:
            return
        if isinstance(error, GeneratorExit) or isinstance(error, DerCanceled):
            event.state = EV_ABORTED
            error = error if isinstance(error, DerCanceled) else DerCanceled(
                f"event {event.eid} ({event.name}) aborted"
            )
        else:
            event.state = EV_COMPLETED
        event._result = result
        event._error = error
        event.complete_time = self.sim.now
        tracer = self.sim.tracer
        if tracer is not None and event._span is not None:
            tracer.end(
                event._span, error=type(error).__name__ if error else None
            )
            event._span = None
        self._inflight.remove(event)
        self._completed.append(event)
        self._gauge(-1)
        self._cond.notify_all()

    # ------------------------------------------------------------- reaping
    def test(self, event: Event) -> bool:
        """Non-blocking single-event check (``daos_event_test``): True
        and reaps it when complete."""
        if not event.done:
            return False
        if event in self._completed:
            self._completed.remove(event)
        return True

    def try_reap(self, max_events: Optional[int] = None) -> List[Event]:
        """Non-blocking reap of completed events, in completion order."""
        if max_events is None or max_events >= len(self._completed):
            reaped, self._completed = self._completed, []
        else:
            reaped = self._completed[:max_events]
            del self._completed[:max_events]
        return reaped

    def poll(self, min_events: int = 1,
             max_events: Optional[int] = None) -> Generator:
        """Task helper (``daos_eq_poll``): wait until at least
        ``min_events`` completions are reapable, then reap up to
        ``max_events`` of them in completion order."""
        if min_events < 0:
            raise DerInval(f"min_events must be >= 0, got {min_events}")
        need = min(min_events, len(self._inflight) + len(self._completed))
        while len(self._completed) < need:
            yield self._cond
        return self.try_reap(max_events)

    def drain(self) -> Generator:
        """Task helper: wait for every in-flight event and reap all."""
        while self._inflight:
            yield self._cond
        return self.try_reap()

    # ------------------------------------------------------------- lifecycle
    def close(self) -> Generator:
        """Task helper (``daos_eq_destroy``): abort anything in flight,
        wait for the aborts to land, reap and discard."""
        for event in list(self._inflight):
            event.abort()
        while self._inflight:
            yield self._cond
        self._completed.clear()
        self._closed = True
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<EventQueue {self.name} depth={self.depth} "
            f"inflight={len(self._inflight)} done={len(self._completed)}>"
        )
