"""Object handles: the dkey/akey KV interface and the byte-array interface.

A :class:`ObjectHandle` is what ``daos_obj_open`` returns. Two families
of operations are exposed, matching libdaos:

- **KV** (single values): ``put``/``get``/``punch``/``list_dkeys`` route
  each dkey to its layout group's targets via real engine RPCs (all
  replicas updated on write, first live replica read). Directory
  entries, inodes and mdtest storms travel this path.
- **Array** (byte extents): ``write``/``read``/``size``/``punch_range``
  chunk the byte range into ``chunk_size`` dkeys, fan the pieces out to
  their shard targets, and charge time through the handle's
  :class:`~repro.daos.stream.IoStream` (one per direction).

Routing consults the pool map's per-target rebuild state: UP targets
serve reads and writes, REBUILDING targets accept writes but serve no
reads (their data is incomplete until the resync converges), DOWN and
DOWNOUT targets serve neither, and a DOWNOUT slot is transparently
redirected to its deterministic spare (readable once the restore job
completes). Mutating ops carry the client's map version and are fenced
with DER_STALE by engines holding a newer map; the handle then refreshes
the map and retries — the libdaos stale-map dance that guarantees no
writer keeps routing around a target that has started rebuilding.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.daos.objid import ObjId
from repro.daos.placement import Layout, effective_groups
from repro.daos.stream import IoPiece, IoStream
from repro.daos.vos.payload import Payload, as_payload, concat_payloads
from repro.errors import DerDataLoss, DerInval, DerStale
from repro.obs.tracer import NOOP_SPAN
from repro.rebuild.state import REBUILDING, UP
from repro.units import MiB

ARRAY_AKEY = b"\x00arr"
DEFAULT_CHUNK = MiB

#: a route entry: (target id actually serving the slot, readable, writable)
Route = Tuple[int, bool, bool]


class ObjectHandle:
    """Open handle on one object within a container."""

    #: DER_STALE refresh-and-retry budget for mutating ops
    MAX_MAP_RETRIES = 8

    def __init__(self, cont, oid: ObjId):
        self.cont = cont  # ContainerHandle
        self.client = cont.client
        self.system = self.client.system
        self.sim = self.client.sim
        self.oid = oid
        self.layout: Layout = cont.pool.placement.layout(oid)
        self._streams: Dict[str, Tuple[IoStream, int]] = {}
        self._route_cache: Optional[Tuple[int, List[List[Route]]]] = None
        self._closed = False

    # ------------------------------------------------------------- plumbing
    @property
    def _ctx(self) -> Tuple[str, str, ObjId]:
        return (self.cont.pool.pool_map.uuid, self.cont.uuid, self.oid)

    def _routes(self) -> List[List[Route]]:
        """Per-group routing derived from the pool map, cached per map
        version. The healthy-pool fast path allocates the trivial
        all-readable/all-writable routes without touching state logic."""
        pool_map = self.cont.pool.pool_map
        cached = self._route_cache
        if cached is not None and cached[0] == pool_map.version:
            return cached[1]
        if not pool_map.statuses:
            routes = [
                [(t, True, True) for t in group] for group in self.layout.groups
            ]
        else:
            ready = pool_map.downout_ready
            routes = []
            for group, egroup in zip(
                self.layout.groups,
                effective_groups(self.layout, pool_map.downout),
            ):
                route: List[Route] = []
                for orig, actual in zip(group, egroup):
                    state = pool_map.state_of(actual)
                    if actual != orig:
                        # DOWNOUT slot served by its spare: writable as
                        # soon as the spare is UP, readable only once
                        # every restore has landed (downout_ready)
                        up = state == UP
                        route.append((actual, up and ready, up))
                    elif state == UP:
                        route.append((actual, True, True))
                    elif state == REBUILDING:
                        route.append((actual, False, True))
                    else:  # DOWN, or DOWNOUT with no spare left
                        route.append((actual, False, False))
                routes.append(route)
        self._route_cache = (pool_map.version, routes)
        return routes

    def _route_for_dkey(self, dkey) -> List[Route]:
        return self._routes()[self.layout.group_of_dkey(dkey)]

    @staticmethod
    def _readable(route: List[Route]) -> List[int]:
        return [t for t, readable, _w in route if readable]

    @staticmethod
    def _writable(route: List[Route]) -> List[int]:
        return [t for t, _r, writable in route if writable]

    def _vos(self, tid: int):
        ref = self.system.target(tid)
        return ref.engine.container_shard(
            self.cont.pool.pool_map.uuid, ref.local_tid, self.cont.uuid
        )

    def _stream(self, direction: str) -> IoStream:
        pool_map = self.cont.pool.pool_map
        cached = self._streams.get(direction)
        if cached is not None and cached[1] == pool_map.version:
            return cached[0]
        if cached is not None:
            cached[0].close()
        want = 1 if direction == "read" else 2
        targets: List[int] = []
        seen = set()
        for route in self._routes():
            for entry in route:
                if entry[want] and entry[0] not in seen:
                    seen.add(entry[0])
                    targets.append(entry[0])
        stream = IoStream(self.client, targets, direction)
        stream.open()
        self._streams[direction] = (stream, pool_map.version)
        return stream

    def close(self) -> None:
        for stream, _version in self._streams.values():
            stream.close()
        self._streams.clear()
        self._closed = True

    def __enter__(self) -> "ObjectHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _retry_stale(self, attempt) -> Generator:
        """Run ``attempt()`` (a fresh generator each call); when an engine
        fences it with DER_STALE, refresh the pool map — invalidating the
        route/stream caches keyed on its version — and retry. Each retry
        is counted in the metrics registry so rebuild-era reruns are
        distinguishable from healthy ones in reports."""
        retries = self.MAX_MAP_RETRIES
        while True:
            try:
                return (yield from attempt())
            except DerStale:
                metrics = self.sim.metrics
                if metrics is not None:
                    metrics.incr("client.der_stale.retries")
                    metrics.incr(
                        f"client.der_stale.retries"
                        f"{{pool={self.cont.pool.pool_map.label}}}"
                    )
                retries -= 1
                if retries <= 0:
                    raise
                yield from self.cont.pool.refresh_map()

    # ------------------------------------------------------------- KV ops
    def _span(self, name: str, **attrs):
        """Client-layer span context (no-op when tracing is off)."""
        tracer = self.sim.tracer
        if tracer is None:
            return NOOP_SPAN
        return tracer.span(
            name, "client", node=self.client.node.name, attrs=attrs or None
        )

    def put(self, dkey, akey, value, value_nbytes: int = 0) -> Generator:
        """Write a single value to every writable replica of the dkey's
        group (REBUILDING targets included — that is what bounds the
        resync window).

        ``value_nbytes`` declares the modelled wire/media size of the
        value (an inline-bulk KV update): the request carries that many
        extra bytes across the fabric and the engine streams them to
        media at the target's write bandwidth. Zero (the default) keeps
        the fixed small-record cost every metadata path relies on.
        """
        return (
            yield from self._retry_stale(
                lambda: self._put_once(dkey, akey, value, value_nbytes)
            )
        )

    def _put_once(self, dkey, akey, value, value_nbytes: int = 0) -> Generator:
        pool_map = self.cont.pool.pool_map
        targets = self._writable(self._route_for_dkey(dkey))
        if not targets:
            raise DerDataLoss(f"no live replica for dkey {dkey!r}")
        epoch = None
        with self._span("client.kv_put", replicas=len(targets)):
            for tid in targets:
                ref = self.system.target(tid)
                args = {
                    "pool": pool_map.uuid,
                    "cont": self.cont.uuid,
                    "local_tid": ref.local_tid,
                    "oid": self.oid,
                    "dkey": dkey,
                    "akey": akey,
                    "value": value,
                    "map_version": pool_map.version,
                }
                if value_nbytes:
                    args["nbytes"] = value_nbytes
                epoch = yield from self.client.rpc.call(
                    ref.engine.name,
                    "kv_update",
                    args,
                    req_bytes=256 + value_nbytes,
                )
        return epoch

    def get(self, dkey, akey, epoch: Optional[int] = None,
            value_nbytes: int = 0) -> Generator:
        """Read a single value from the first readable replica.

        ``value_nbytes`` mirrors :meth:`put`: the reply carries that
        many extra bytes and the engine charges a media read stream."""
        targets = self._readable(self._route_for_dkey(dkey))
        if not targets:
            raise DerDataLoss(f"no live replica for dkey {dkey!r}")
        ref = self.system.target(targets[0])
        args = {
            "pool": self.cont.pool.pool_map.uuid,
            "cont": self.cont.uuid,
            "local_tid": ref.local_tid,
            "oid": self.oid,
            "dkey": dkey,
            "akey": akey,
            "epoch": epoch,
        }
        if value_nbytes:
            args["nbytes"] = value_nbytes
        with self._span("client.kv_get"):
            value = yield from self.client.rpc.call(
                ref.engine.name,
                "kv_fetch",
                args,
                rep_bytes=256 + value_nbytes,
            )
        return value

    def punch(self, dkey, akey) -> Generator:
        return (
            yield from self._retry_stale(lambda: self._punch_once(dkey, akey))
        )

    def _punch_once(self, dkey, akey) -> Generator:
        pool_map = self.cont.pool.pool_map
        targets = self._writable(self._route_for_dkey(dkey))
        existed = False
        for tid in targets:
            ref = self.system.target(tid)
            existed = yield from self.client.rpc.call(
                ref.engine.name,
                "kv_punch",
                {
                    "pool": pool_map.uuid,
                    "cont": self.cont.uuid,
                    "local_tid": ref.local_tid,
                    "oid": self.oid,
                    "dkey": dkey,
                    "akey": akey,
                    "map_version": pool_map.version,
                },
            )
        return existed

    def punch_dkey(self, dkey) -> Generator:
        return (
            yield from self._retry_stale(lambda: self._punch_dkey_once(dkey))
        )

    def _punch_dkey_once(self, dkey) -> Generator:
        pool_map = self.cont.pool.pool_map
        targets = self._writable(self._route_for_dkey(dkey))
        existed = False
        for tid in targets:
            ref = self.system.target(tid)
            existed = yield from self.client.rpc.call(
                ref.engine.name,
                "punch_dkey",
                {
                    "pool": pool_map.uuid,
                    "cont": self.cont.uuid,
                    "local_tid": ref.local_tid,
                    "oid": self.oid,
                    "dkey": dkey,
                    "map_version": pool_map.version,
                },
            )
        return existed

    def list_dkeys(self, lo=None, hi=None, limit: int = 1024) -> Generator:
        """Enumerate dkeys across all groups (merged, sorted)."""
        merged: List = []
        seen = set()
        for route in self._routes():
            readable = self._readable(route)
            if not readable:
                raise DerDataLoss("group fully excluded")
            ref = self.system.target(readable[0])
            keys = yield from self.client.rpc.call(
                ref.engine.name,
                "list_dkeys",
                {
                    "pool": self.cont.pool.pool_map.uuid,
                    "cont": self.cont.uuid,
                    "local_tid": ref.local_tid,
                    "oid": self.oid,
                    "lo": lo,
                    "hi": hi,
                    "limit": limit,
                },
            )
            for key in keys:
                if key not in seen:
                    seen.add(key)
                    merged.append(key)
        merged.sort()
        return merged[:limit]

    def punch_object(self) -> Generator:
        """Remove the object's data from every writable shard target."""
        return (yield from self._retry_stale(self._punch_object_once))

    def _punch_object_once(self) -> Generator:
        pool_map = self.cont.pool.pool_map
        seen = set()
        for route in self._routes():
            for tid in self._writable(route):
                if tid in seen:
                    continue
                seen.add(tid)
                ref = self.system.target(tid)
                yield from self.client.rpc.call(
                    ref.engine.name,
                    "punch_object",
                    {
                        "pool": pool_map.uuid,
                        "cont": self.cont.uuid,
                        "local_tid": ref.local_tid,
                        "oid": self.oid,
                        "map_version": pool_map.version,
                    },
                )
        return True

    # ------------------------------------------------------------- array ops
    def _chunk_pieces_write(
        self, offset: int, payload: Payload, chunk_size: int, akey: bytes
    ) -> List[IoPiece]:
        pieces: List[IoPiece] = []
        cursor = 0
        ec = self.oid.oclass.is_ec
        while cursor < payload.nbytes:
            absolute = offset + cursor
            chunk_idx = absolute // chunk_size
            within = absolute % chunk_size
            take = min(chunk_size - within, payload.nbytes - cursor)
            fragment = payload.slice(cursor, cursor + take)
            route = self._route_for_dkey(chunk_idx)
            if ec:
                pieces.extend(
                    self._ec_write_pieces(
                        chunk_idx, within, fragment, chunk_size, akey, route
                    )
                )
            else:
                for tid in self._writable(route):
                    vc = self._vos(tid)
                    pieces.append(
                        IoPiece(
                            tid,
                            take,
                            lambda vc=vc, ci=chunk_idx, w=within, f=fragment: (
                                vc.update_array(self.oid, ci, akey, w, f)
                            ),
                        )
                    )
            cursor += take
        return pieces

    # ------------------------------------------------------------- erasure coding
    def _ec_geometry(self, chunk_size: int):
        oclass = self.oid.oclass
        if chunk_size % oclass.ec_k:
            raise DerInval(
                f"chunk size {chunk_size} not divisible by ec_k={oclass.ec_k}"
            )
        return oclass.ec_k, oclass.ec_p, chunk_size // oclass.ec_k

    def _ec_write_pieces(
        self, chunk_idx: int, within: int, fragment: Payload,
        chunk_size: int, akey: bytes, route: List[Route],
    ) -> List[IoPiece]:
        """Full-stripe erasure-coded write of one chunk.

        DAOS buffers partial EC writes in a replicated staging space and
        migrates them at aggregation time; this reproduction requires
        stripe-aligned writes outright (IOR with transfer >= chunk size
        satisfies it) — DESIGN.md §5.
        """
        from repro.daos.vos.payload import XorPayload, ZeroPayload, concat_payloads

        k, p, cell_len = self._ec_geometry(chunk_size)
        if within != 0:
            raise DerInval(
                "erasure-coded objects require stripe-aligned writes "
                f"(offset within chunk = {within})"
            )
        cells: List[Payload] = []
        for ci in range(k):
            lo = min(ci * cell_len, fragment.nbytes)
            hi = min((ci + 1) * cell_len, fragment.nbytes)
            cells.append(fragment.slice(lo, hi))
        # parity is computed over zero-padded cells of the stripe
        pad_len = cells[0].nbytes
        padded = [
            c if c.nbytes == pad_len
            else concat_payloads([c, ZeroPayload(pad_len - c.nbytes)])
            for c in cells
        ]
        parity = XorPayload(padded) if pad_len else None
        pieces: List[IoPiece] = []
        for ci, cell in enumerate(cells):
            if cell.nbytes == 0:
                continue
            tid, _readable, writable = route[ci]
            if not writable:
                continue  # will be reconstructed from parity on read
            vc = self._vos(tid)
            pieces.append(
                IoPiece(
                    tid,
                    cell.nbytes,
                    lambda vc=vc, cidx=chunk_idx, c=cell: (
                        vc.update_array(self.oid, cidx, akey, 0, c)
                    ),
                )
            )
        if parity is not None:
            for pi in range(p):
                tid, _readable, writable = route[k + pi]
                if not writable:
                    continue
                vc = self._vos(tid)
                pieces.append(
                    IoPiece(
                        tid,
                        parity.nbytes,
                        lambda vc=vc, cidx=chunk_idx, pp=parity: (
                            vc.update_array(self.oid, cidx, akey, 0, pp)
                        ),
                    )
                )
        if not pieces:
            raise DerDataLoss("EC group fully excluded")
        return pieces

    def _ec_read_pieces(
        self, chunk_idx: int, within: int, take: int,
        chunk_size: int, akey: bytes,
    ) -> List[Tuple[List[IoPiece], object]]:
        """Plan an EC chunk read: per touched cell, either a direct piece
        or a degraded-reconstruction piece set with a combiner."""
        from repro.daos.vos.payload import XorPayload

        k, p, cell_len = self._ec_geometry(chunk_size)
        route = self._route_for_dkey(chunk_idx)
        plan = []
        cursor = within
        stop = within + take
        while cursor < stop:
            ci = cursor // cell_len
            cell_off = cursor % cell_len
            cell_take = min(cell_len - cell_off, stop - cursor)
            tid, readable, _writable = route[ci]
            if readable:
                vc = self._vos(tid)
                piece = IoPiece(
                    tid,
                    cell_take,
                    lambda vc=vc, cidx=chunk_idx, o=cell_off, n=cell_take: (
                        vc.fetch_array(self.oid, cidx, akey, o, n)
                    ),
                )
                plan.append(([piece], None))
            else:
                # degraded: XOR of parity and the k-1 surviving data cells
                survivors = [
                    route[other] for other in range(k) if other != ci
                ]
                parity_live = [
                    route[k + pi][0] for pi in range(p) if route[k + pi][1]
                ]
                if not parity_live or any(
                    not entry[1] for entry in survivors
                ):
                    raise DerDataLoss(
                        f"chunk {chunk_idx} cell {ci}: too many failures "
                        "for EC reconstruction"
                    )
                sources = [entry[0] for entry in survivors] + parity_live[:1]
                pieces = []
                for src in sources:
                    vc = self._vos(src)
                    pieces.append(
                        IoPiece(
                            src,
                            cell_take,
                            lambda vc=vc, cidx=chunk_idx, o=cell_off,
                            n=cell_take: (
                                vc.fetch_array(self.oid, cidx, akey, o, n)
                            ),
                        )
                    )
                plan.append((pieces, XorPayload))
            cursor += cell_take
        return plan

    def write(
        self,
        offset: int,
        data,
        *,
        chunk_size: int = DEFAULT_CHUNK,
        akey: bytes = ARRAY_AKEY,
    ) -> Generator:
        """Task helper: write ``data`` at byte ``offset``; returns nbytes."""
        payload = as_payload(data)
        if payload.nbytes == 0:
            return 0
        return (
            yield from self._retry_stale(
                lambda: self._write_once(offset, payload, chunk_size, akey)
            )
        )

    def _write_once(
        self, offset: int, payload: Payload, chunk_size: int, akey: bytes
    ) -> Generator:
        pool_map = self.cont.pool.pool_map
        pieces = self._chunk_pieces_write(offset, payload, chunk_size, akey)
        if not pieces:
            raise DerDataLoss("all replicas excluded")
        with self._span(
            "client.array_write", offset=offset, nbytes=payload.nbytes
        ):
            yield from self._stream("write").io(
                pieces, self._ctx, map_version=pool_map.version
            )
        return payload.nbytes

    def read(
        self,
        offset: int,
        length: int,
        *,
        chunk_size: int = DEFAULT_CHUNK,
        akey: bytes = ARRAY_AKEY,
    ) -> Generator:
        """Task helper: read ``length`` bytes (holes zero-filled)."""
        if length <= 0:
            return as_payload(b"")
        ec = self.oid.oclass.is_ec
        #: list of (pieces, combine): combine=None yields pieces[0]'s
        #: result; otherwise combine(results) reconstructs the fragment
        plan: List = []
        cursor = offset
        stop = offset + length
        while cursor < stop:
            chunk_idx = cursor // chunk_size
            within = cursor % chunk_size
            take = min(chunk_size - within, stop - cursor)
            if ec:
                plan.extend(
                    self._ec_read_pieces(
                        chunk_idx, within, take, chunk_size, akey
                    )
                )
            else:
                readable = self._readable(self._route_for_dkey(chunk_idx))
                if not readable:
                    raise DerDataLoss(
                        f"chunk {chunk_idx}: all replicas excluded"
                    )
                tid = readable[0]
                vc = self._vos(tid)
                piece = IoPiece(
                    tid,
                    take,
                    lambda vc=vc, ci=chunk_idx, w=within, n=take: (
                        vc.fetch_array(self.oid, ci, akey, w, n)
                    ),
                )
                plan.append(([piece], None))
            cursor += take
        flat: List[IoPiece] = [p for pieces, _c in plan for p in pieces]
        with self._span("client.array_read", offset=offset, nbytes=length):
            results = yield from self._stream("read").io(flat, self._ctx)
        out: List[Payload] = []
        index = 0
        for pieces, combine in plan:
            batch = results[index : index + len(pieces)]
            index += len(pieces)
            out.append(batch[0] if combine is None else combine(batch))
        return concat_payloads(out)

    # ----------------------------------------------------- non-blocking ops
    # Passing an event queue makes a data-plane call non-blocking, like
    # handing libdaos a daos_event_t: the op launches as its own sim task
    # and the returned Event is reaped from the queue. The submit itself
    # is a task helper because the queue's bounded in-flight window may
    # make the caller wait for a free slot (the queue-depth knob).

    def write_nb(
        self,
        eq,
        offset: int,
        data,
        *,
        chunk_size: int = DEFAULT_CHUNK,
        akey: bytes = ARRAY_AKEY,
    ) -> Generator:
        """Task helper: launch a non-blocking write; returns its Event."""
        return (
            yield from eq.submit(
                self.write(offset, data, chunk_size=chunk_size, akey=akey),
                name=f"obj.write@{offset}",
            )
        )

    def read_nb(
        self,
        eq,
        offset: int,
        length: int,
        *,
        chunk_size: int = DEFAULT_CHUNK,
        akey: bytes = ARRAY_AKEY,
    ) -> Generator:
        """Task helper: launch a non-blocking read; returns its Event."""
        return (
            yield from eq.submit(
                self.read(offset, length, chunk_size=chunk_size, akey=akey),
                name=f"obj.read@{offset}",
            )
        )

    def put_nb(self, eq, dkey, akey, value) -> Generator:
        """Task helper: launch a non-blocking KV put; returns its Event."""
        return (
            yield from eq.submit(
                self.put(dkey, akey, value), name=f"obj.put:{dkey!r}"
            )
        )

    def get_nb(self, eq, dkey, akey,
               epoch: Optional[int] = None) -> Generator:
        """Task helper: launch a non-blocking KV get; returns its Event."""
        return (
            yield from eq.submit(
                self.get(dkey, akey, epoch=epoch), name=f"obj.get:{dkey!r}"
            )
        )

    def size(self, *, chunk_size: int = DEFAULT_CHUNK,
             akey: bytes = ARRAY_AKEY) -> Generator:
        """Task helper: apparent array size (max written byte + 1).

        Non-EC: a size query per layout group leader. EC: a query per
        readable *data* shard (cell positions map back to file offsets)."""
        oclass = self.oid.oclass
        high = 0
        for route in self._routes():
            if oclass.is_ec:
                _k, _p, cell_len = self._ec_geometry(chunk_size)
                queried = [
                    (ci, entry[0])
                    for ci, entry in enumerate(route[: oclass.ec_k])
                    if entry[1]
                ]
                if not queried:
                    raise DerDataLoss("all data shards excluded")
            else:
                readable = self._readable(route)
                if not readable:
                    raise DerDataLoss("group fully excluded")
                queried = [(None, readable[0])]
            for cell_idx, tid in queried:
                ref = self.system.target(tid)
                sizes = yield from self.client.rpc.call(
                    ref.engine.name,
                    "array_sizes",
                    {
                        "pool": self.cont.pool.pool_map.uuid,
                        "cont": self.cont.uuid,
                        "local_tid": ref.local_tid,
                        "oid": self.oid,
                        "akey": akey,
                    },
                )
                for chunk_idx, size in sizes:
                    if cell_idx is None:
                        high = max(high, chunk_idx * chunk_size + size)
                    else:
                        high = max(
                            high,
                            chunk_idx * chunk_size
                            + cell_idx * cell_len
                            + size,
                        )
        return high

    def punch_range(
        self,
        offset: int,
        length: int,
        *,
        chunk_size: int = DEFAULT_CHUNK,
        akey: bytes = ARRAY_AKEY,
    ) -> Generator:
        """Task helper: punch bytes [offset, offset+length)."""
        return (
            yield from self._retry_stale(
                lambda: self._punch_range_once(offset, length, chunk_size, akey)
            )
        )

    def _punch_range_once(
        self, offset: int, length: int, chunk_size: int, akey: bytes
    ) -> Generator:
        pool_map = self.cont.pool.pool_map
        cursor = offset
        stop = offset + length
        freed = 0
        while cursor < stop:
            chunk_idx = cursor // chunk_size
            within = cursor % chunk_size
            take = min(chunk_size - within, stop - cursor)
            for tid in self._writable(self._route_for_dkey(chunk_idx)):
                ref = self.system.target(tid)
                freed = yield from self.client.rpc.call(
                    ref.engine.name,
                    "array_punch",
                    {
                        "pool": pool_map.uuid,
                        "cont": self.cont.uuid,
                        "local_tid": ref.local_tid,
                        "oid": self.oid,
                        "dkey": chunk_idx,
                        "akey": akey,
                        "offset": within,
                        "length": take,
                        "map_version": pool_map.version,
                    },
                )
            cursor += take
        return freed
