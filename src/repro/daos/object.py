"""Object handles: the dkey/akey KV interface and the byte-array interface.

A :class:`ObjectHandle` is what ``daos_obj_open`` returns. Two families
of operations are exposed, matching libdaos:

- **KV** (single values): ``put``/``get``/``punch``/``list_dkeys`` route
  each dkey to its layout group's targets via real engine RPCs (all
  replicas updated on write, first live replica read). Directory
  entries, inodes and mdtest storms travel this path.
- **Array** (byte extents): ``write``/``read``/``size``/``punch_range``
  chunk the byte range into ``chunk_size`` dkeys, fan the pieces out to
  their shard targets, and charge time through the handle's
  :class:`~repro.daos.stream.IoStream` (one per direction).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.daos.objid import ObjId
from repro.daos.placement import Layout
from repro.daos.stream import IoPiece, IoStream
from repro.daos.vos.payload import Payload, as_payload, concat_payloads
from repro.errors import DerDataLoss, DerInval
from repro.obs.tracer import NOOP_SPAN
from repro.units import MiB

ARRAY_AKEY = b"\x00arr"
DEFAULT_CHUNK = MiB


class ObjectHandle:
    """Open handle on one object within a container."""

    def __init__(self, cont, oid: ObjId):
        self.cont = cont  # ContainerHandle
        self.client = cont.client
        self.system = self.client.system
        self.sim = self.client.sim
        self.oid = oid
        self.layout: Layout = cont.pool.placement.layout(oid)
        self._streams: Dict[str, IoStream] = {}
        self._closed = False

    # ------------------------------------------------------------- plumbing
    @property
    def _ctx(self) -> Tuple[str, str, ObjId]:
        return (self.cont.pool.pool_map.uuid, self.cont.uuid, self.oid)

    def _live_targets(self, tids: List[int]) -> List[int]:
        excluded = self.cont.pool.pool_map.excluded
        return [t for t in tids if t not in excluded]

    def _vos(self, tid: int):
        ref = self.system.target(tid)
        return ref.engine.container_shard(
            self.cont.pool.pool_map.uuid, ref.local_tid, self.cont.uuid
        )

    def _stream(self, direction: str) -> IoStream:
        stream = self._streams.get(direction)
        if stream is None:
            targets = self._live_targets(self.layout.all_targets)
            stream = IoStream(self.client, targets, direction)
            stream.open()
            self._streams[direction] = stream
        return stream

    def close(self) -> None:
        for stream in self._streams.values():
            stream.close()
        self._streams.clear()
        self._closed = True

    # ------------------------------------------------------------- KV ops
    def _span(self, name: str, **attrs):
        """Client-layer span context (no-op when tracing is off)."""
        tracer = self.sim.tracer
        if tracer is None:
            return NOOP_SPAN
        return tracer.span(
            name, "client", node=self.client.node.name, attrs=attrs or None
        )

    def put(self, dkey, akey, value) -> Generator:
        """Write a single value to every live replica of the dkey's group."""
        targets = self._live_targets(self.layout.targets_for_dkey(dkey))
        if not targets:
            raise DerDataLoss(f"no live replica for dkey {dkey!r}")
        epoch = None
        with self._span("client.kv_put", replicas=len(targets)):
            for tid in targets:
                ref = self.system.target(tid)
                epoch = yield from self.client.rpc.call(
                    ref.engine.name,
                    "kv_update",
                    {
                        "pool": self.cont.pool.pool_map.uuid,
                        "cont": self.cont.uuid,
                        "local_tid": ref.local_tid,
                        "oid": self.oid,
                        "dkey": dkey,
                        "akey": akey,
                        "value": value,
                    },
                )
        return epoch

    def get(self, dkey, akey, epoch: Optional[int] = None) -> Generator:
        """Read a single value from the first live replica."""
        targets = self._live_targets(self.layout.targets_for_dkey(dkey))
        if not targets:
            raise DerDataLoss(f"no live replica for dkey {dkey!r}")
        ref = self.system.target(targets[0])
        with self._span("client.kv_get"):
            value = yield from self.client.rpc.call(
                ref.engine.name,
                "kv_fetch",
                {
                    "pool": self.cont.pool.pool_map.uuid,
                    "cont": self.cont.uuid,
                    "local_tid": ref.local_tid,
                    "oid": self.oid,
                    "dkey": dkey,
                    "akey": akey,
                    "epoch": epoch,
                },
            )
        return value

    def punch(self, dkey, akey) -> Generator:
        targets = self._live_targets(self.layout.targets_for_dkey(dkey))
        existed = False
        for tid in targets:
            ref = self.system.target(tid)
            existed = yield from self.client.rpc.call(
                ref.engine.name,
                "kv_punch",
                {
                    "pool": self.cont.pool.pool_map.uuid,
                    "cont": self.cont.uuid,
                    "local_tid": ref.local_tid,
                    "oid": self.oid,
                    "dkey": dkey,
                    "akey": akey,
                },
            )
        return existed

    def punch_dkey(self, dkey) -> Generator:
        targets = self._live_targets(self.layout.targets_for_dkey(dkey))
        existed = False
        for tid in targets:
            ref = self.system.target(tid)
            existed = yield from self.client.rpc.call(
                ref.engine.name,
                "punch_dkey",
                {
                    "pool": self.cont.pool.pool_map.uuid,
                    "cont": self.cont.uuid,
                    "local_tid": ref.local_tid,
                    "oid": self.oid,
                    "dkey": dkey,
                },
            )
        return existed

    def list_dkeys(self, lo=None, hi=None, limit: int = 1024) -> Generator:
        """Enumerate dkeys across all groups (merged, sorted)."""
        merged: List = []
        seen = set()
        for group in self.layout.groups:
            live = self._live_targets(group)
            if not live:
                raise DerDataLoss("group fully excluded")
            ref = self.system.target(live[0])
            keys = yield from self.client.rpc.call(
                ref.engine.name,
                "list_dkeys",
                {
                    "pool": self.cont.pool.pool_map.uuid,
                    "cont": self.cont.uuid,
                    "local_tid": ref.local_tid,
                    "oid": self.oid,
                    "lo": lo,
                    "hi": hi,
                    "limit": limit,
                },
            )
            for key in keys:
                if key not in seen:
                    seen.add(key)
                    merged.append(key)
        merged.sort()
        return merged[:limit]

    def punch_object(self) -> Generator:
        """Remove the object's data from every live shard target."""
        for tid in self._live_targets(self.layout.all_targets):
            ref = self.system.target(tid)
            yield from self.client.rpc.call(
                ref.engine.name,
                "punch_object",
                {
                    "pool": self.cont.pool.pool_map.uuid,
                    "cont": self.cont.uuid,
                    "local_tid": ref.local_tid,
                    "oid": self.oid,
                },
            )
        return True

    # ------------------------------------------------------------- array ops
    def _chunk_pieces_write(
        self, offset: int, payload: Payload, chunk_size: int, akey: bytes
    ) -> List[IoPiece]:
        pieces: List[IoPiece] = []
        cursor = 0
        excluded = self.cont.pool.pool_map.excluded
        ec = self.oid.oclass.is_ec
        while cursor < payload.nbytes:
            absolute = offset + cursor
            chunk_idx = absolute // chunk_size
            within = absolute % chunk_size
            take = min(chunk_size - within, payload.nbytes - cursor)
            fragment = payload.slice(cursor, cursor + take)
            if ec:
                pieces.extend(
                    self._ec_write_pieces(
                        chunk_idx, within, fragment, chunk_size, akey
                    )
                )
            else:
                for tid in self.layout.targets_for_dkey(chunk_idx):
                    if tid in excluded:
                        continue
                    vc = self._vos(tid)
                    pieces.append(
                        IoPiece(
                            tid,
                            take,
                            lambda vc=vc, ci=chunk_idx, w=within, f=fragment: (
                                vc.update_array(self.oid, ci, akey, w, f)
                            ),
                        )
                    )
            cursor += take
        return pieces

    # ------------------------------------------------------------- erasure coding
    def _ec_geometry(self, chunk_size: int):
        oclass = self.oid.oclass
        if chunk_size % oclass.ec_k:
            raise DerInval(
                f"chunk size {chunk_size} not divisible by ec_k={oclass.ec_k}"
            )
        return oclass.ec_k, oclass.ec_p, chunk_size // oclass.ec_k

    def _ec_write_pieces(
        self, chunk_idx: int, within: int, fragment: Payload,
        chunk_size: int, akey: bytes,
    ) -> List[IoPiece]:
        """Full-stripe erasure-coded write of one chunk.

        DAOS buffers partial EC writes in a replicated staging space and
        migrates them at aggregation time; this reproduction requires
        stripe-aligned writes outright (IOR with transfer >= chunk size
        satisfies it) — DESIGN.md §5.
        """
        from repro.daos.vos.payload import XorPayload, ZeroPayload, concat_payloads

        k, p, cell_len = self._ec_geometry(chunk_size)
        if within != 0:
            raise DerInval(
                "erasure-coded objects require stripe-aligned writes "
                f"(offset within chunk = {within})"
            )
        group = self.layout.targets_for_dkey(chunk_idx)
        excluded = self.cont.pool.pool_map.excluded
        cells: List[Payload] = []
        for ci in range(k):
            lo = min(ci * cell_len, fragment.nbytes)
            hi = min((ci + 1) * cell_len, fragment.nbytes)
            cells.append(fragment.slice(lo, hi))
        # parity is computed over zero-padded cells of the stripe
        pad_len = cells[0].nbytes
        padded = [
            c if c.nbytes == pad_len
            else concat_payloads([c, ZeroPayload(pad_len - c.nbytes)])
            for c in cells
        ]
        parity = XorPayload(padded) if pad_len else None
        pieces: List[IoPiece] = []
        for ci, cell in enumerate(cells):
            if cell.nbytes == 0:
                continue
            tid = group[ci]
            if tid in excluded:
                continue  # will be reconstructed from parity on read
            vc = self._vos(tid)
            pieces.append(
                IoPiece(
                    tid,
                    cell.nbytes,
                    lambda vc=vc, cidx=chunk_idx, c=cell: (
                        vc.update_array(self.oid, cidx, akey, 0, c)
                    ),
                )
            )
        if parity is not None:
            for pi in range(p):
                tid = group[k + pi]
                if tid in excluded:
                    continue
                vc = self._vos(tid)
                pieces.append(
                    IoPiece(
                        tid,
                        parity.nbytes,
                        lambda vc=vc, cidx=chunk_idx, pp=parity: (
                            vc.update_array(self.oid, cidx, akey, 0, pp)
                        ),
                    )
                )
        if not pieces:
            raise DerDataLoss("EC group fully excluded")
        return pieces

    def _ec_read_pieces(
        self, chunk_idx: int, within: int, take: int,
        chunk_size: int, akey: bytes,
    ) -> List[Tuple[List[IoPiece], object]]:
        """Plan an EC chunk read: per touched cell, either a direct piece
        or a degraded-reconstruction piece set with a combiner."""
        from repro.daos.vos.payload import XorPayload

        k, p, cell_len = self._ec_geometry(chunk_size)
        group = self.layout.targets_for_dkey(chunk_idx)
        excluded = self.cont.pool.pool_map.excluded
        plan = []
        cursor = within
        stop = within + take
        while cursor < stop:
            ci = cursor // cell_len
            cell_off = cursor % cell_len
            cell_take = min(cell_len - cell_off, stop - cursor)
            tid = group[ci]
            if tid not in excluded:
                vc = self._vos(tid)
                piece = IoPiece(
                    tid,
                    cell_take,
                    lambda vc=vc, cidx=chunk_idx, o=cell_off, n=cell_take: (
                        vc.fetch_array(self.oid, cidx, akey, o, n)
                    ),
                )
                plan.append(([piece], None))
            else:
                # degraded: XOR of parity and the k-1 surviving data cells
                survivors = [
                    group[other] for other in range(k) if other != ci
                ]
                parity_live = [
                    group[k + pi] for pi in range(p)
                    if group[k + pi] not in excluded
                ]
                if not parity_live or any(
                    t in excluded for t in survivors
                ):
                    raise DerDataLoss(
                        f"chunk {chunk_idx} cell {ci}: too many failures "
                        "for EC reconstruction"
                    )
                sources = survivors + parity_live[:1]
                pieces = []
                for src in sources:
                    vc = self._vos(src)
                    pieces.append(
                        IoPiece(
                            src,
                            cell_take,
                            lambda vc=vc, cidx=chunk_idx, o=cell_off,
                            n=cell_take: (
                                vc.fetch_array(self.oid, cidx, akey, o, n)
                            ),
                        )
                    )
                plan.append((pieces, XorPayload))
            cursor += cell_take
        return plan

    def write(
        self,
        offset: int,
        data,
        chunk_size: int = DEFAULT_CHUNK,
        akey: bytes = ARRAY_AKEY,
    ) -> Generator:
        """Task helper: write ``data`` at byte ``offset``; returns nbytes."""
        payload = as_payload(data)
        if payload.nbytes == 0:
            return 0
        pieces = self._chunk_pieces_write(offset, payload, chunk_size, akey)
        if not pieces:
            raise DerDataLoss("all replicas excluded")
        with self._span(
            "client.array_write", offset=offset, nbytes=payload.nbytes
        ):
            yield from self._stream("write").io(pieces, self._ctx)
        return payload.nbytes

    def read(
        self,
        offset: int,
        length: int,
        chunk_size: int = DEFAULT_CHUNK,
        akey: bytes = ARRAY_AKEY,
    ) -> Generator:
        """Task helper: read ``length`` bytes (holes zero-filled)."""
        if length <= 0:
            return as_payload(b"")
        excluded = self.cont.pool.pool_map.excluded
        ec = self.oid.oclass.is_ec
        #: list of (pieces, combine): combine=None yields pieces[0]'s
        #: result; otherwise combine(results) reconstructs the fragment
        plan: List = []
        cursor = offset
        stop = offset + length
        while cursor < stop:
            chunk_idx = cursor // chunk_size
            within = cursor % chunk_size
            take = min(chunk_size - within, stop - cursor)
            if ec:
                plan.extend(
                    self._ec_read_pieces(
                        chunk_idx, within, take, chunk_size, akey
                    )
                )
            else:
                live = [
                    t
                    for t in self.layout.targets_for_dkey(chunk_idx)
                    if t not in excluded
                ]
                if not live:
                    raise DerDataLoss(
                        f"chunk {chunk_idx}: all replicas excluded"
                    )
                tid = live[0]
                vc = self._vos(tid)
                piece = IoPiece(
                    tid,
                    take,
                    lambda vc=vc, ci=chunk_idx, w=within, n=take: (
                        vc.fetch_array(self.oid, ci, akey, w, n)
                    ),
                )
                plan.append(([piece], None))
            cursor += take
        flat: List[IoPiece] = [p for pieces, _c in plan for p in pieces]
        with self._span("client.array_read", offset=offset, nbytes=length):
            results = yield from self._stream("read").io(flat, self._ctx)
        out: List[Payload] = []
        index = 0
        for pieces, combine in plan:
            batch = results[index : index + len(pieces)]
            index += len(pieces)
            out.append(batch[0] if combine is None else combine(batch))
        return concat_payloads(out)

    def size(self, chunk_size: int = DEFAULT_CHUNK,
             akey: bytes = ARRAY_AKEY) -> Generator:
        """Task helper: apparent array size (max written byte + 1).

        Non-EC: a size query per layout group leader. EC: a query per
        live *data* shard (cell positions map back to file offsets)."""
        oclass = self.oid.oclass
        high = 0
        for group in self.layout.groups:
            if oclass.is_ec:
                _k, _p, cell_len = self._ec_geometry(chunk_size)
                queried = [
                    (ci, tid)
                    for ci, tid in enumerate(group[: oclass.ec_k])
                    if tid not in self.cont.pool.pool_map.excluded
                ]
                if not queried:
                    raise DerDataLoss("all data shards excluded")
            else:
                live = self._live_targets(group)
                if not live:
                    raise DerDataLoss("group fully excluded")
                queried = [(None, live[0])]
            for cell_idx, tid in queried:
                ref = self.system.target(tid)
                sizes = yield from self.client.rpc.call(
                    ref.engine.name,
                    "array_sizes",
                    {
                        "pool": self.cont.pool.pool_map.uuid,
                        "cont": self.cont.uuid,
                        "local_tid": ref.local_tid,
                        "oid": self.oid,
                        "akey": akey,
                    },
                )
                for chunk_idx, size in sizes:
                    if cell_idx is None:
                        high = max(high, chunk_idx * chunk_size + size)
                    else:
                        high = max(
                            high,
                            chunk_idx * chunk_size
                            + cell_idx * cell_len
                            + size,
                        )
        return high

    def punch_range(
        self,
        offset: int,
        length: int,
        chunk_size: int = DEFAULT_CHUNK,
        akey: bytes = ARRAY_AKEY,
    ) -> Generator:
        """Task helper: punch bytes [offset, offset+length)."""
        cursor = offset
        stop = offset + length
        freed = 0
        while cursor < stop:
            chunk_idx = cursor // chunk_size
            within = cursor % chunk_size
            take = min(chunk_size - within, stop - cursor)
            for tid in self._live_targets(
                self.layout.targets_for_dkey(chunk_idx)
            ):
                ref = self.system.target(tid)
                freed = yield from self.client.rpc.call(
                    ref.engine.name,
                    "array_punch",
                    {
                        "pool": self.cont.pool.pool_map.uuid,
                        "cont": self.cont.uuid,
                        "local_tid": ref.local_tid,
                        "oid": self.oid,
                        "dkey": chunk_idx,
                        "akey": akey,
                        "offset": within,
                        "length": take,
                    },
                )
            cursor += take
        return freed
