"""The libdaos Array API (``daos_array_*``).

A DAOS array is an object interpreted as a 1-D array of fixed-size
*cells*, chunked across dkeys every ``chunk_size`` cells. This is the
interface the paper's future work targets ("extending benchmarking to
use the DAOS API"), and what the IOR ``DAOS`` backend drives — no POSIX,
no DFS, straight to the object layer.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.daos.objid import ObjId
from repro.daos.object import ObjectHandle
from repro.daos.oclass import ObjectClass
from repro.daos.vos.payload import Payload, as_payload
from repro.errors import DerInval
from repro.units import MiB

# Array metadata lives under a reserved dkey. Chunk dkeys are the
# non-negative chunk indices, so dkey -1 keeps the per-object dkey tree
# homogeneous (one key type per tree) and sorts before every chunk.
ARRAY_META_DKEY = -1


class DaosArray:
    """Open handle on an array object."""

    def __init__(self, obj: ObjectHandle, cell_size: int, chunk_cells: int):
        if cell_size <= 0 or chunk_cells <= 0:
            raise DerInval("cell_size and chunk_cells must be positive")
        self.obj = obj
        self.cell_size = cell_size
        self.chunk_cells = chunk_cells

    # One chunk of cells maps to one dkey of chunk_bytes.
    @property
    def chunk_bytes(self) -> int:
        return self.cell_size * self.chunk_cells

    @classmethod
    def create(
        cls,
        cont,
        cell_size: int = 1,
        chunk_cells: int = MiB,
        oclass: Optional[ObjectClass] = None,
    ) -> Generator:
        """Task helper: allocate an OID, persist array metadata, open."""
        oid = yield from cont.alloc_oid(oclass)
        obj = cont.open_object(oid)
        yield from obj.put(
            ARRAY_META_DKEY,
            b"md",
            {"cell_size": cell_size, "chunk_cells": chunk_cells},
        )
        return cls(obj, cell_size, chunk_cells)

    @classmethod
    def open(cls, cont, oid: ObjId) -> Generator:
        """Task helper: open an existing array, reading its metadata."""
        obj = cont.open_object(oid)
        md = yield from obj.get(ARRAY_META_DKEY, b"md")
        return cls(obj, md["cell_size"], md["chunk_cells"])

    # ------------------------------------------------------------- I/O
    def write(self, index: int, data) -> Generator:
        """Task helper: write cells starting at cell ``index``."""
        payload = as_payload(data)
        if payload.nbytes % self.cell_size:
            raise DerInval(
                f"write of {payload.nbytes} B is not a whole number of "
                f"{self.cell_size}-B cells"
            )
        nbytes = yield from self.obj.write(
            index * self.cell_size, payload, chunk_size=self.chunk_bytes
        )
        return nbytes // self.cell_size

    def read(self, index: int, count: int) -> Generator:
        """Task helper: read ``count`` cells starting at cell ``index``."""
        payload = yield from self.obj.read(
            index * self.cell_size,
            count * self.cell_size,
            chunk_size=self.chunk_bytes,
        )
        return payload

    def write_nb(self, eq, index: int, data) -> Generator:
        """Task helper: launch a non-blocking cell write; returns its
        Event (``daos_array_write`` with a daos_event_t)."""
        return (
            yield from eq.submit(
                self.write(index, data), name=f"array.write@{index}"
            )
        )

    def read_nb(self, eq, index: int, count: int) -> Generator:
        """Task helper: launch a non-blocking cell read; returns its Event."""
        return (
            yield from eq.submit(
                self.read(index, count), name=f"array.read@{index}"
            )
        )

    def get_size(self) -> Generator:
        """Task helper: array size in cells (highest written cell + 1)."""
        nbytes = yield from self.obj.size(chunk_size=self.chunk_bytes)
        return (nbytes + self.cell_size - 1) // self.cell_size

    def punch(self, index: int, count: int) -> Generator:
        """Task helper: punch a cell range."""
        yield from self.obj.punch_range(
            index * self.cell_size,
            count * self.cell_size,
            chunk_size=self.chunk_bytes,
        )
        return count

    def close(self) -> None:
        self.obj.close()

    def __enter__(self) -> "DaosArray":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
