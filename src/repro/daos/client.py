"""``libdaos``: the client library — pool/container handles and OID allocation.

One :class:`DaosClient` per application process. Control-plane operations
(pool connect, container create/open, OID range allocation) go through
the Raft-backed metadata service; data-plane operations go through
:class:`~repro.daos.object.ObjectHandle`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, Optional

from repro.consensus.rsvc import RsvcClient
from repro.daos.objid import ObjId
from repro.daos.object import ObjectHandle
from repro.daos.oclass import ObjectClass, oclass_by_name
from repro.daos.placement import PlacementMap
from repro.daos.system import DaosSystem, PoolMap
from repro.errors import DerExist, DerNonexist
from repro.hardware.node import ClientNode
from repro.network.ofi import Endpoint, Rpc
from repro.units import MiB

_client_seq = itertools.count(1)

#: OID ranges are leased in batches, like the real DAOS OID allocator
OID_BATCH = 1 << 10


class DaosClient:
    """Per-process client context (endpoint, RPC, metadata session)."""

    def __init__(self, system: DaosSystem, node: ClientNode, name: str = ""):
        self.system = system
        self.sim = system.sim
        self.fabric = system.fabric
        self.node = node
        self.name = name or f"daosc:{node.name}:{next(_client_seq)}"
        self.endpoint = Endpoint(self.fabric, node.addr, self.name)
        self.rpc = Rpc(self.endpoint)
        self.rsvc = system.rsvc_client()

    def connect_pool(self, label: str) -> Generator:
        """Task helper: resolve and connect to a pool by label."""
        pool_map = yield from self.system.resolve_pool(label, self.rsvc)
        return PoolHandle(self, pool_map)

    def close(self) -> None:
        self.endpoint.close()

    def __enter__(self) -> "DaosClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class PoolHandle:
    """A connected pool: pool map + placement."""

    def __init__(self, client: DaosClient, pool_map: PoolMap):
        self.client = client
        self.pool_map = pool_map
        self.placement = PlacementMap(pool_map.n_targets)

    def close(self) -> None:
        """Disconnect (``daos_pool_disconnect``). The handle is purely
        client-side state, so this only invalidates the handle."""
        self.pool_map = None

    def __enter__(self) -> "PoolHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def create_container(
        self,
        label: str,
        oclass: str = "SX",
        chunk_size: int = MiB,
    ) -> Generator:
        """Task helper: create a container (fails if the label exists)."""
        oclass_by_name(oclass)  # validate early
        rsvc = self.client.rsvc
        uuid = self.client.system._new_uuid("cont")
        key = f"cont-label:{self.pool_map.uuid}:{label}"
        created = yield from rsvc.invoke(("cas", key, None, uuid))
        if not created:
            raise DerExist(f"container label {label!r}")
        props = {"label": label, "oclass": oclass, "chunk_size": chunk_size}
        yield from rsvc.invoke(
            ("put", f"cont:{self.pool_map.uuid}:{uuid}", props)
        )
        # Create the shard on every engine (broadcast, fanned out in turn).
        for engine in self.client.system.engines:
            yield from self.client.rpc.call(
                engine.name,
                "cont_create",
                {"pool": self.pool_map.uuid, "cont": uuid},
            )
        return ContainerHandle(self, uuid, props)

    def open_container(self, label: str) -> Generator:
        """Task helper: open an existing container by label."""
        rsvc = self.client.rsvc
        key = f"cont-label:{self.pool_map.uuid}:{label}"
        uuid = yield from rsvc.invoke(("get", key))
        if uuid is None:
            raise DerNonexist(f"container label {label!r}")
        props = yield from rsvc.invoke(
            ("get", f"cont:{self.pool_map.uuid}:{uuid}")
        )
        return ContainerHandle(self, uuid, props)

    def query(self) -> Generator:
        """Task helper: pool space accounting (``daos pool query``).

        Aggregates per-target usage from every engine shard; one
        metadata round trip is charged.
        """
        yield 20e-6
        system = self.client.system
        per_target = []
        for tid in range(self.pool_map.n_targets):
            ref = system.target(tid)
            shard = ref.engine.shard(self.pool_map.uuid, ref.local_tid)
            per_target.append({"tid": tid, "capacity": shard.capacity,
                               "used": shard.used})
        return {
            "uuid": self.pool_map.uuid,
            "label": self.pool_map.label,
            "targets": self.pool_map.n_targets,
            "excluded": sorted(self.pool_map.excluded),
            "capacity": sum(t["capacity"] for t in per_target),
            "used": sum(t["used"] for t in per_target),
            "per_target": per_target,
        }

    def refresh_map(self) -> Generator:
        """Task helper: re-read the pool map (picks up exclusions)."""
        pool_map = yield from self.client.system.resolve_pool(
            self.pool_map.label, self.client.rsvc
        )
        self.pool_map = pool_map
        return pool_map


class ContainerHandle:
    """An open container: properties, OID allocation, object handles."""

    def __init__(self, pool: PoolHandle, uuid: str, props: Dict):
        self.pool = pool
        self.client = pool.client
        self.uuid = uuid
        self.props = props
        self._oid_next = 0
        self._oid_limit = 0

    @property
    def default_oclass(self) -> ObjectClass:
        return oclass_by_name(self.props.get("oclass", "SX"))

    @property
    def chunk_size(self) -> int:
        return int(self.props.get("chunk_size", MiB))

    def alloc_oid(self, oclass: Optional[ObjectClass] = None) -> Generator:
        """Task helper: allocate a unique OID with the given class."""
        if self._oid_next >= self._oid_limit:
            top = yield from self.client.rsvc.invoke(
                ("inc", f"oidnext:{self.uuid}", OID_BATCH)
            )
            self._oid_limit = top
            self._oid_next = top - OID_BATCH
        lo = self._oid_next
        self._oid_next += 1
        return ObjId.generate(oclass or self.default_oclass, lo=lo)

    def open_object(self, oid: ObjId) -> ObjectHandle:
        """Open an object handle (purely client-side, like daos_obj_open)."""
        return ObjectHandle(self, oid)

    def close(self) -> None:
        """Release the handle (``daos_cont_close``); client-side only."""

    def __enter__(self) -> "ContainerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def snapshot(self) -> Generator:
        """Task helper: snapshot the container on every shard; returns a
        per-target epoch map usable with ``ObjectHandle.get(epoch=...)``."""
        epochs = {}
        system = self.client.system
        for tid in range(self.pool.pool_map.n_targets):
            ref = system.target(tid)
            vc = ref.engine.container_shard(
                self.pool.pool_map.uuid, ref.local_tid, self.uuid
            )
            epochs[tid] = vc.snapshot()
        yield 20e-6  # one coordination round
        return epochs
