"""The libdaos flat KV API (``daos_kv_*``).

A KV object maps string keys to values with no akey dimension — each key
is a dkey with a single fixed akey underneath, exactly how libdaos
implements it on top of the generic object layout.

Keys are validated against the same reserved characters as metric
labels (``,`` ``{`` ``}`` ``=``, see
:func:`repro.obs.metrics.format_metric_name`): KV keys routinely become
label values in per-key series and index entries, so the two layers must
agree on what a well-formed name is.

Enumeration is deterministic and ordered: :meth:`DaosKV.list` returns
one sorted page, :meth:`DaosKV.scan` iterates an arbitrarily large
keyspace in bounded pages (the index-scan primitive the FDB retriever
is built on).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.daos.objid import ObjId
from repro.daos.object import ObjectHandle
from repro.daos.oclass import ObjectClass
from repro.errors import DerInval, DerNonexist

_KV_AKEY = b"\x00kv"
_MISSING = object()

#: characters a KV key may not contain — identical to the metric-label
#: reservation so keys can always ride inside ``{k=v}`` label bodies
RESERVED_KEY_CHARS = ",{}="


def validate_key(key: str) -> None:
    """Raise :class:`~repro.errors.DerInval` on a malformed KV key."""
    if not isinstance(key, str) or not key:
        raise DerInval(f"KV key must be a non-empty string, got {key!r}")
    if any(ch in key for ch in RESERVED_KEY_CHARS):
        raise DerInval(
            f"KV key {key!r} contains a reserved character "
            f"(one of {RESERVED_KEY_CHARS!r})"
        )


def prefix_upper_bound(raw: bytes) -> Optional[bytes]:
    """Smallest byte string greater than every string prefixed by ``raw``.

    The carry walks over trailing ``0xFF`` bytes (``b"a\\xff"`` bounds at
    ``b"b"``); a prefix of only ``0xFF`` bytes has no finite bound and
    returns ``None`` (callers must then post-filter).
    """
    out = bytearray(raw)
    while out and out[-1] == 0xFF:
        out.pop()
    if not out:
        return None
    out[-1] += 1
    return bytes(out)


class DaosKV:
    """Open handle on a flat key-value object."""

    def __init__(self, obj: ObjectHandle):
        self.obj = obj

    @classmethod
    def create(cls, cont, oclass: Optional[ObjectClass] = None) -> Generator:
        """Task helper: allocate a fresh KV object."""
        oid = yield from cont.alloc_oid(oclass)
        return cls(cont.open_object(oid))

    @classmethod
    def open(cls, cont, oid: ObjId) -> "DaosKV":
        return cls(cont.open_object(oid))

    @property
    def oid(self) -> ObjId:
        return self.obj.oid

    def put(self, key: str, value: Any, value_nbytes: int = 0) -> Generator:
        """Task helper: store ``value`` under ``key``.

        ``value_nbytes`` declares the modelled size of the value: the
        update then pays the wire and media cost of streaming that many
        bytes (the large-value KV path), instead of the fixed
        small-record cost. Pass it when storing payloads; leave it 0 for
        metadata records.
        """
        validate_key(key)
        yield from self.obj.put(
            _encode(key), _KV_AKEY, value, value_nbytes=value_nbytes
        )
        return None

    def get(self, key: str, default: Any = _MISSING,
            value_nbytes: int = 0) -> Generator:
        """Task helper: fetch ``key`` (raises DerNonexist without default).

        ``value_nbytes`` mirrors :meth:`put` for large values."""
        validate_key(key)
        try:
            value = yield from self.obj.get(
                _encode(key), _KV_AKEY, value_nbytes=value_nbytes
            )
        except DerNonexist:
            if default is _MISSING:
                raise
            return default
        return value

    def remove(self, key: str) -> Generator:
        """Task helper: delete ``key``; returns whether it existed."""
        validate_key(key)
        existed = yield from self.obj.punch(_encode(key), _KV_AKEY)
        return existed

    def list(self, prefix: str = "", limit: int = 1024,
             after: Optional[str] = None) -> Generator:
        """Task helper: one sorted page of keys starting with ``prefix``.

        ``after`` resumes strictly past a previously returned key (the
        pagination cursor :meth:`scan` drives). The page is truncated at
        ``limit``; use :meth:`scan` to enumerate exhaustively.
        """
        raw = _encode(prefix) if prefix else b""
        if after is not None:
            # smallest key strictly greater than ``after``
            lo: Optional[bytes] = _encode(after) + b"\x00"
        else:
            lo = raw or None
        hi = prefix_upper_bound(raw) if raw else None
        keys = yield from self.obj.list_dkeys(lo, hi, limit)
        out = []
        for key in keys:
            text = key.decode("utf-8")
            # hi=None fallback (all-0xFF prefix): filter what leaked past
            if text.startswith(prefix):
                out.append(text)
        return out

    def scan(self, prefix: str = "", page: int = 1024) -> Generator:
        """Task helper: every key with ``prefix``, in order, fetched in
        ``page``-sized batches (each batch one enumeration RPC round)."""
        out: List[str] = []
        cursor: Optional[str] = None
        while True:
            batch = yield from self.list(prefix, limit=page, after=cursor)
            out.extend(batch)
            if len(batch) < page:
                return out
            cursor = batch[-1]

    def put_nb(self, eq, key: str, value: Any,
               value_nbytes: int = 0) -> Generator:
        """Task helper: launch a non-blocking put; returns its Event."""
        return (yield from eq.submit(self.put(key, value, value_nbytes),
                                     name=f"kv.put:{key}"))

    def get_nb(self, eq, key: str, default: Any = _MISSING,
               value_nbytes: int = 0) -> Generator:
        """Task helper: launch a non-blocking get; returns its Event."""
        return (yield from eq.submit(self.get(key, default, value_nbytes),
                                     name=f"kv.get:{key}"))

    def close(self) -> None:
        self.obj.close()

    def __enter__(self) -> "DaosKV":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def _encode(key: str) -> bytes:
    if isinstance(key, bytes):
        return key
    return key.encode("utf-8")
