"""The libdaos flat KV API (``daos_kv_*``).

A KV object maps string keys to values with no akey dimension — each key
is a dkey with a single fixed akey underneath, exactly how libdaos
implements it on top of the generic object layout.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.daos.objid import ObjId
from repro.daos.object import ObjectHandle
from repro.daos.oclass import ObjectClass
from repro.errors import DerNonexist

_KV_AKEY = b"\x00kv"
_MISSING = object()


class DaosKV:
    """Open handle on a flat key-value object."""

    def __init__(self, obj: ObjectHandle):
        self.obj = obj

    @classmethod
    def create(cls, cont, oclass: Optional[ObjectClass] = None) -> Generator:
        """Task helper: allocate a fresh KV object."""
        oid = yield from cont.alloc_oid(oclass)
        return cls(cont.open_object(oid))

    @classmethod
    def open(cls, cont, oid: ObjId) -> "DaosKV":
        return cls(cont.open_object(oid))

    @property
    def oid(self) -> ObjId:
        return self.obj.oid

    def put(self, key: str, value: Any) -> Generator:
        """Task helper: store ``value`` under ``key``."""
        yield from self.obj.put(_encode(key), _KV_AKEY, value)
        return None

    def get(self, key: str, default: Any = _MISSING) -> Generator:
        """Task helper: fetch ``key`` (raises DerNonexist without default)."""
        try:
            value = yield from self.obj.get(_encode(key), _KV_AKEY)
        except DerNonexist:
            if default is _MISSING:
                raise
            return default
        return value

    def remove(self, key: str) -> Generator:
        """Task helper: delete ``key``; returns whether it existed."""
        existed = yield from self.obj.punch(_encode(key), _KV_AKEY)
        return existed

    def list(self, prefix: str = "", limit: int = 1024) -> Generator:
        """Task helper: sorted keys starting with ``prefix``."""
        lo = _encode(prefix) if prefix else None
        hi = None
        if prefix:
            raw = _encode(prefix)
            hi = raw[:-1] + bytes([raw[-1] + 1]) if raw[-1] < 255 else None
        keys = yield from self.obj.list_dkeys(lo, hi, limit)
        return [k.decode("utf-8") for k in keys]

    def put_nb(self, eq, key: str, value: Any) -> Generator:
        """Task helper: launch a non-blocking put; returns its Event."""
        return (yield from eq.submit(self.put(key, value),
                                     name=f"kv.put:{key}"))

    def get_nb(self, eq, key: str, default: Any = _MISSING) -> Generator:
        """Task helper: launch a non-blocking get; returns its Event."""
        return (yield from eq.submit(self.get(key, default),
                                     name=f"kv.get:{key}"))

    def close(self) -> None:
        self.obj.close()

    def __enter__(self) -> "DaosKV":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def _encode(key: str) -> bytes:
    if isinstance(key, bytes):
        return key
    return key.encode("utf-8")
