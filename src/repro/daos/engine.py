"""The DAOS I/O engine: RPC service, targets, and timing.

One engine runs per socket (two per NEXTGenIO server). It exposes the
metadata/object RPCs used by the KV paths (directory entries, inode
records, enumeration — the operations an mdtest-style workload storms),
applies them to the per-target VOS shards, and charges:

- fixed per-RPC CPU (``EngineSpec.per_rpc_cpu``),
- a per-target inflight-credit semaphore (xstream ULT concurrency),
- media access latency for the persistent-memory commit.

Bulk array I/O does *not* flow through these RPC handlers: the client's
:class:`~repro.daos.stream.IoStream` charges wire/media time through the
fluid-flow network and applies extents to the same VOS shards directly
(see DESIGN.md §3); the engine provides the shard-resolution and
first-writer tree-creation accounting used by that path.
"""

from __future__ import annotations

from typing import Dict, Generator, Set, Tuple

from repro.daos.vos.container import EpochClock, VosContainer
from repro.daos.vos.pool import VosPool
from repro.errors import DerNonexist, DerStale, DerTimedOut
from repro.hardware.node import EngineSlot, StorageTarget
from repro.network.fabric import Fabric
from repro.network.ofi import RpcServer
from repro.sim.core import Simulator
from repro.sim.sync import Semaphore
from repro.sim.trace import Stats


class Engine:
    """One DAOS engine bound to an :class:`EngineSlot`."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        slot: EngineSlot,
        engine_rank: int,
        clock: "EpochClock" = None,
    ):
        self.sim = sim
        self.slot = slot
        self.spec = slot.spec
        self.rank = engine_rank
        self.name = f"engine:{engine_rank}"
        self.server = RpcServer(fabric, slot.node.addr, self.name)
        self.stats = Stats(sim)
        #: shared system epoch clock (None → shards use private clocks)
        self.clock = clock
        #: pool shards: pool_uuid -> local target index -> VosPool
        self.pools: Dict[str, Dict[int, VosPool]] = {}
        #: last committed pool-map version this engine knows of (pushed by
        #: the pool service); mutating I/O from clients holding an older
        #: map is fenced with DER_STALE
        self.map_versions: Dict[str, int] = {}
        self._credits: Dict[int, Semaphore] = {
            t: Semaphore(sim, self.spec.target_inflight)
            for t in range(self.spec.targets)
        }
        #: (pool, cont, oid, local_tid) pairs whose VOS trees exist — the
        #: first array write to a pair pays tree creation.
        self._trees_created: Set[Tuple] = set()
        self._trees_warmed: Set[Tuple] = set()
        self.up = True
        #: injected slow-media penalty added to every media access
        #: (fault injection: worn/thermally-throttled Optane module)
        self.media_latency_extra = 0.0

        register = self.server.register
        register("cont_create", self._h_cont_create)
        register("kv_update", self._h_kv_update)
        register("kv_fetch", self._h_kv_fetch)
        register("kv_punch", self._h_kv_punch)
        register("list_dkeys", self._h_list_dkeys)
        register("punch_dkey", self._h_punch_dkey)
        register("punch_object", self._h_punch_object)
        register("array_sizes", self._h_array_sizes)
        register("array_punch", self._h_array_punch)

    # ------------------------------------------------------------- shards
    def create_pool_shards(self, pool_uuid: str, capacity_per_target: int) -> None:
        if pool_uuid in self.pools:
            return
        self.pools[pool_uuid] = {
            t: VosPool(pool_uuid, capacity_per_target, clock=self.clock)
            for t in range(self.spec.targets)
        }

    def shard(self, pool_uuid: str, local_tid: int) -> VosPool:
        try:
            return self.pools[pool_uuid][local_tid]
        except KeyError:
            raise DerNonexist(
                f"pool {pool_uuid} target {local_tid} on {self.name}"
            ) from None

    def container_shard(
        self, pool_uuid: str, local_tid: int, cont_uuid: str
    ) -> VosContainer:
        return self.shard(pool_uuid, local_tid).open_container(cont_uuid)

    def target_hw(self, local_tid: int) -> StorageTarget:
        return self.slot.targets[local_tid]

    # ------------------------------------------------------------- stream support
    def tree_create_cost(
        self, pool: str, cont: str, oid, local_tid: int, write: bool
    ) -> float:
        """First-writer (or first-reader) cost for an object's VOS tree on
        a target; 0 afterwards. Called by the client I/O stream."""
        key = (pool, cont, oid, local_tid)
        if write:
            if key in self._trees_created:
                return 0.0
            self._trees_created.add(key)
            self._trees_warmed.add(key)
            self.stats.incr("tree_creates")
            return self.spec.shard_first_write_cost
        if key in self._trees_warmed:
            return 0.0
        self._trees_warmed.add(key)
        self.stats.incr("tree_warms")
        return self.spec.shard_first_read_cost

    # ------------------------------------------------------------- map fencing
    def check_map_version(self, pool_uuid: str, client_version) -> None:
        """Fence a mutating op against the client's pool-map version.

        A writer holding an older map than this engine could route around
        a target that has since started REBUILDING (losing its write from
        the resync window) or into one that has since been evicted, so
        the op is rejected with DER_STALE and the client refreshes its
        map and retries — the libdaos stale-map dance. ``None`` means the
        caller predates the protocol (rebuild-internal traffic); it is
        let through.
        """
        if client_version is None:
            return
        known = self.map_versions.get(pool_uuid, 1)
        if client_version < known:
            raise DerStale(
                f"pool {pool_uuid}: client map v{client_version} "
                f"< engine map v{known}"
            )

    # ------------------------------------------------------------- failure injection
    def crash(self) -> None:
        """Take the engine down: every RPC is answered with DER_TIMEDOUT
        (standing in for the caller's RPC timeout). VOS shards live in
        persistent memory and survive, exactly like a real engine crash;
        data-plane unavailability is modelled by pool-map target exclusion
        (see DESIGN.md §6)."""
        if not self.up:
            return
        self.up = False
        self.stats.incr("crashes")
        self.server.set_unavailable(
            lambda: DerTimedOut(f"{self.name} is down")
        )

    def restart(self) -> None:
        """Bring a crashed engine back; persistent state is intact."""
        if self.up:
            return
        self.up = True
        self.stats.incr("restarts")
        self.server.set_unavailable(None)

    # ------------------------------------------------------------- RPC timing
    def _service(self, local_tid: int, media_ops: int = 1,
                 media_bytes: int = 0, read: bool = False) -> Generator:
        """Per-metadata-RPC engine work: credits + CPU + media latency.

        ``media_bytes`` adds an inline value-streaming charge at the
        target's media bandwidth (write by default, read bandwidth when
        ``read``) under the same ULT credit — the timing model for
        KV values large enough that moving the bytes dominates the
        fixed per-record cost. Zero (the default) leaves the historical
        fixed-cost arithmetic untouched.
        """
        sim = self.sim
        tracer = sim.tracer
        metrics = sim.metrics
        node = self.slot.node.name
        sem = self._credits[local_tid]
        started = sim.now
        wait_span = (
            tracer.begin(
                "engine.credit_wait",
                "engine",
                node=node,
                attrs={"tid": local_tid},
            )
            if tracer is not None
            else None
        )
        guard = yield from sem.held()
        if tracer is not None:
            tracer.end(wait_span)
        if metrics is not None:
            # Queue depth: ULT credits in use on this xstream right now.
            metrics.set_gauge(
                f"engine.target.inflight{{rank={self.rank},target={local_tid}}}",
                self.spec.target_inflight - sem.available,
            )
            metrics.incr(f"engine.rpcs{{rank={self.rank}}}")
        span = (
            tracer.begin(
                "engine.service",
                "engine",
                node=node,
                attrs={"tid": local_tid, "media_ops": media_ops},
            )
            if tracer is not None
            else None
        )
        try:
            self.stats.incr("rpcs")
            cost = self.spec.per_rpc_cpu + media_ops * (
                self.spec.module.access_latency + self.media_latency_extra
            )
            if media_bytes:
                bw = (self.spec.target_read_bw if read
                      else self.spec.target_write_bw)
                cost += media_bytes / bw
            yield cost
        finally:
            guard.release()
            if tracer is not None:
                tracer.end(span)
            if metrics is not None:
                metrics.set_gauge(
                    f"engine.target.inflight{{rank={self.rank},target={local_tid}}}",
                    self.spec.target_inflight - sem.available,
                )
                metrics.observe(
                    f"engine.service.latency{{rank={self.rank}}}",
                    sim.now - started,
                )

    # ------------------------------------------------------------- handlers
    def _h_cont_create(self, _src, pool: str, cont: str) -> Generator:
        for local_tid, shard in self.pools.get(pool, {}).items():
            if cont not in shard.containers:
                shard.create_container(cont)
        yield self.spec.per_rpc_cpu
        return True

    def _h_kv_update(
        self, _src, pool: str, cont: str, local_tid: int, oid, dkey, akey, value,
        map_version=None, nbytes: int = 0,
    ) -> Generator:
        self.check_map_version(pool, map_version)
        yield from self._service(local_tid, media_ops=2, media_bytes=nbytes)
        vc = self.container_shard(pool, local_tid, cont)
        return vc.update_single(oid, dkey, akey, value)

    def _h_kv_fetch(
        self, _src, pool: str, cont: str, local_tid: int, oid, dkey, akey, epoch=None,
        nbytes: int = 0,
    ) -> Generator:
        yield from self._service(local_tid, media_bytes=nbytes, read=True)
        vc = self.container_shard(pool, local_tid, cont)
        return vc.fetch_single(oid, dkey, akey, epoch)

    def _h_kv_punch(
        self, _src, pool: str, cont: str, local_tid: int, oid, dkey, akey,
        map_version=None,
    ) -> Generator:
        self.check_map_version(pool, map_version)
        yield from self._service(local_tid, media_ops=2)
        vc = self.container_shard(pool, local_tid, cont)
        return vc.punch_single(oid, dkey, akey)

    def _h_list_dkeys(
        self, _src, pool: str, cont: str, local_tid: int, oid, lo=None, hi=None,
        limit: int = 1024,
    ) -> Generator:
        yield from self._service(local_tid)
        vc = self.container_shard(pool, local_tid, cont)
        out = []
        for key in vc.list_dkeys(oid, lo, hi):
            out.append(key)
            if len(out) >= limit:
                break
        return out

    def _h_punch_dkey(
        self, _src, pool: str, cont: str, local_tid: int, oid, dkey,
        map_version=None,
    ) -> Generator:
        self.check_map_version(pool, map_version)
        yield from self._service(local_tid, media_ops=2)
        vc = self.container_shard(pool, local_tid, cont)
        return vc.punch_dkey(oid, dkey)

    def _h_punch_object(
        self, _src, pool: str, cont: str, local_tid: int, oid,
        map_version=None,
    ) -> Generator:
        self.check_map_version(pool, map_version)
        yield from self._service(local_tid, media_ops=2)
        vc = self.container_shard(pool, local_tid, cont)
        return vc.punch_object(oid)

    def _h_array_sizes(
        self, _src, pool: str, cont: str, local_tid: int, oid, akey
    ) -> Generator:
        yield from self._service(local_tid)
        vc = self.container_shard(pool, local_tid, cont)
        return list(vc.dkey_array_sizes(oid, akey))

    def _h_array_punch(
        self, _src, pool: str, cont: str, local_tid: int, oid, dkey, akey,
        offset: int, length: int, map_version=None,
    ) -> Generator:
        self.check_map_version(pool, map_version)
        yield from self._service(local_tid, media_ops=2)
        vc = self.container_shard(pool, local_tid, cont)
        return vc.punch_array(oid, dkey, akey, offset, length)
