"""VOS container shard: object table → dkey tree → akey tree → values.

One :class:`VosContainer` instance exists per (container, target) pair —
a *shard* of the container. The object layer routes each dkey to exactly
one target (per the object's layout), so a shard holds a disjoint subset
of every object's dkeys.

Values under an akey are either *single values* (with full epoch
history, enabling snapshot reads of metadata — how the real VOS keeps
versioned KV data) or *array values* (byte extent trees, latest view
only).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.daos.vos.btree import BPlusTree
from repro.daos.vos.extent import ExtentTree
from repro.daos.vos.payload import Payload, as_payload
from repro.errors import DerExist, DerInval, DerNonexist

_TOMBSTONE = object()


class _SingleValue:
    """Epoch history of a single value under an akey."""

    __slots__ = ("history",)

    def __init__(self) -> None:
        self.history: List[Tuple[int, Any]] = []

    def update(self, epoch: int, value: Any) -> None:
        self.history.append((epoch, value))

    def fetch(self, epoch: Optional[int] = None) -> Any:
        for written_epoch, value in reversed(self.history):
            if epoch is None or written_epoch <= epoch:
                return value
        return _TOMBSTONE  # nothing visible at that epoch

    def punch(self, epoch: int) -> None:
        self.history.append((epoch, _TOMBSTONE))


class VosObject:
    """One object's shard: dkey B+-tree of akey B+-trees."""

    __slots__ = ("oid", "dkeys")

    def __init__(self, oid: Any):
        self.oid = oid
        self.dkeys = BPlusTree()

    def akey_tree(self, dkey: Any, create: bool) -> Optional[BPlusTree]:
        tree = self.dkeys.get(dkey)
        if tree is None and create:
            tree = BPlusTree()
            self.dkeys.insert(dkey, tree)
        return tree


class VosContainer:
    """A container shard on one target."""

    def __init__(self, uuid: str, pool: "object" = None):
        self.uuid = uuid
        self.pool = pool  # VosPool shard, for capacity accounting
        self.objects: Dict[Any, VosObject] = {}
        self._epoch = 0
        self.snapshots: List[int] = []

    # ------------------------------------------------------------- epochs
    def next_epoch(self) -> int:
        self._epoch += 1
        return self._epoch

    @property
    def current_epoch(self) -> int:
        return self._epoch

    def snapshot(self) -> int:
        """Record (and return) a snapshot epoch."""
        epoch = self.current_epoch
        self.snapshots.append(epoch)
        return epoch

    # ------------------------------------------------------------- helpers
    def _object(self, oid: Any, create: bool) -> Optional[VosObject]:
        obj = self.objects.get(oid)
        if obj is None and create:
            obj = self.objects[oid] = VosObject(oid)
        return obj

    def _charge(self, delta: int) -> None:
        if self.pool is not None:
            self.pool.charge(delta)

    # ------------------------------------------------------------- single values
    def update_single(self, oid: Any, dkey: Any, akey: Any, value: Any) -> int:
        """Write a single value; returns the epoch used."""
        epoch = self.next_epoch()
        obj = self._object(oid, create=True)
        akeys = obj.akey_tree(dkey, create=True)
        single = akeys.get(akey)
        if single is None:
            single = _SingleValue()
            akeys.insert(akey, single)
        elif isinstance(single, ExtentTree):
            raise DerInval(f"akey {akey!r} holds an array value")
        single.update(epoch, value)
        self._charge(_value_footprint(value))
        return epoch

    def fetch_single(
        self, oid: Any, dkey: Any, akey: Any, epoch: Optional[int] = None
    ) -> Any:
        obj = self.objects.get(oid)
        if obj is None:
            raise DerNonexist(f"object {oid}")
        akeys = obj.dkeys.get(dkey)
        single = akeys.get(akey) if akeys is not None else None
        if single is None:
            raise DerNonexist(f"dkey/akey {dkey!r}/{akey!r}")
        if isinstance(single, ExtentTree):
            raise DerInval(f"akey {akey!r} holds an array value")
        value = single.fetch(epoch)
        if value is _TOMBSTONE:
            raise DerNonexist(f"{dkey!r}/{akey!r} not visible at epoch {epoch}")
        return value

    def punch_single(self, oid: Any, dkey: Any, akey: Any) -> bool:
        obj = self.objects.get(oid)
        akeys = obj.dkeys.get(dkey) if obj else None
        single = akeys.get(akey) if akeys is not None else None
        if single is None or isinstance(single, ExtentTree):
            return False
        visible = single.fetch() is not _TOMBSTONE
        single.punch(self.next_epoch())
        return visible

    # ------------------------------------------------------------- array values
    def update_array(self, oid: Any, dkey: Any, akey: Any, offset: int, data) -> int:
        """Write bytes into an array akey; returns the epoch used."""
        epoch = self.next_epoch()
        obj = self._object(oid, create=True)
        akeys = obj.akey_tree(dkey, create=True)
        tree = akeys.get(akey)
        if tree is None:
            tree = ExtentTree()
            akeys.insert(akey, tree)
        elif isinstance(tree, _SingleValue):
            raise DerInval(f"akey {akey!r} holds a single value")
        delta = tree.write(offset, data, epoch)
        self._charge(delta)
        return epoch

    def fetch_array(
        self, oid: Any, dkey: Any, akey: Any, offset: int, length: int
    ) -> Payload:
        """Read bytes (holes zero-filled); absent keys read as holes."""
        obj = self.objects.get(oid)
        akeys = obj.dkeys.get(dkey) if obj else None
        tree = akeys.get(akey) if akeys is not None else None
        if tree is None:
            from repro.daos.vos.payload import ZeroPayload

            return ZeroPayload(max(0, length))
        if isinstance(tree, _SingleValue):
            raise DerInval(f"akey {akey!r} holds a single value")
        return tree.read(offset, length)

    def array_size(self, oid: Any, dkey: Any, akey: Any) -> int:
        obj = self.objects.get(oid)
        akeys = obj.dkeys.get(dkey) if obj else None
        tree = akeys.get(akey) if akeys is not None else None
        if tree is None or isinstance(tree, _SingleValue):
            return 0
        return tree.size

    def punch_array(
        self, oid: Any, dkey: Any, akey: Any, offset: int, length: int
    ) -> int:
        obj = self.objects.get(oid)
        akeys = obj.dkeys.get(dkey) if obj else None
        tree = akeys.get(akey) if akeys is not None else None
        if tree is None or isinstance(tree, _SingleValue):
            return 0
        freed = tree.punch(offset, length)
        self._charge(-freed)
        return freed

    # ------------------------------------------------------------- enumeration / punch
    def list_dkeys(self, oid: Any, lo: Any = None, hi: Any = None) -> Iterator[Any]:
        obj = self.objects.get(oid)
        if obj is None:
            return iter(())
        return obj.dkeys.keys(lo, hi)

    def dkey_array_sizes(self, oid: Any, akey: Any) -> Iterator[Tuple[Any, int]]:
        """(dkey, extent-tree size) for every dkey holding ``akey`` arrays."""
        obj = self.objects.get(oid)
        if obj is None:
            return
        for dkey, akeys in obj.dkeys.items():
            tree = akeys.get(akey)
            if isinstance(tree, ExtentTree) and len(tree):
                yield dkey, tree.size

    def punch_dkey(self, oid: Any, dkey: Any) -> bool:
        obj = self.objects.get(oid)
        if obj is None:
            return False
        akeys = obj.dkeys.get(dkey)
        if akeys is not None:
            for _akey, value in akeys.items():
                if isinstance(value, ExtentTree):
                    self._charge(-value.used_bytes)
        return obj.dkeys.delete(dkey)

    def punch_object(self, oid: Any) -> bool:
        obj = self.objects.pop(oid, None)
        if obj is None:
            return False
        for _dkey, akeys in obj.dkeys.items():
            for _akey, value in akeys.items():
                if isinstance(value, ExtentTree):
                    self._charge(-value.used_bytes)
        return True


def _value_footprint(value: Any) -> int:
    """Approximate media footprint of a single value."""
    if isinstance(value, Payload):
        return value.nbytes
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    return 64  # fixed-cost record (inode entries, counters, props)
