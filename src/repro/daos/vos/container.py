"""VOS container shard: object table → dkey tree → akey tree → values.

One :class:`VosContainer` instance exists per (container, target) pair —
a *shard* of the container. The object layer routes each dkey to exactly
one target (per the object's layout), so a shard holds a disjoint subset
of every object's dkeys.

Values under an akey are either *single values* (with full epoch
history, enabling snapshot reads of metadata — how the real VOS keeps
versioned KV data) or *array values* (byte extent trees, latest view
only).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.daos.vos.btree import BPlusTree
from repro.daos.vos.extent import ExtentTree
from repro.daos.vos.payload import Payload, as_payload
from repro.errors import DerExist, DerInval, DerNonexist

_TOMBSTONE = object()

#: public alias for the rebuild engine, which replays KV history (including
#: punches) onto a returning shard and therefore needs to name the sentinel.
TOMBSTONE = _TOMBSTONE


class EpochClock:
    """Monotonic epoch source shared by every shard of a system.

    Real VOS containers stamp updates with HLC timestamps that are
    globally ordered across engines; sharing one counter per simulated
    system gives the same property — an epoch read from one shard is
    directly comparable with an epoch read from any other, which is what
    lets the rebuild engine use "epoch at exclusion time" as a resync
    watermark. Epoch values never depend on simulated time, so the clock
    adds no timing perturbation.
    """

    __slots__ = ("_epoch",)

    def __init__(self, start: int = 0) -> None:
        self._epoch = int(start)

    def next(self) -> int:
        self._epoch += 1
        return self._epoch

    @property
    def current(self) -> int:
        return self._epoch


class _SingleValue:
    """Epoch history of a single value under an akey."""

    __slots__ = ("history",)

    def __init__(self) -> None:
        self.history: List[Tuple[int, Any]] = []

    def update(self, epoch: int, value: Any) -> None:
        # Keep the history epoch-sorted: rebuild replays values at their
        # original epochs, which may interleave with epochs of writes that
        # landed on this shard while the resync was in flight. Appending is
        # the overwhelmingly common case (live writes use a fresh epoch).
        history = self.history
        if not history or epoch >= history[-1][0]:
            history.append((epoch, value))
            return
        lo, hi = 0, len(history)
        while lo < hi:
            mid = (lo + hi) // 2
            if history[mid][0] <= epoch:
                lo = mid + 1
            else:
                hi = mid
        history.insert(lo, (epoch, value))

    def fetch(self, epoch: Optional[int] = None) -> Any:
        for written_epoch, value in reversed(self.history):
            if epoch is None or written_epoch <= epoch:
                return value
        return _TOMBSTONE  # nothing visible at that epoch

    def punch(self, epoch: int) -> None:
        self.history.append((epoch, _TOMBSTONE))


class VosObject:
    """One object's shard: dkey B+-tree of akey B+-trees."""

    __slots__ = ("oid", "dkeys")

    def __init__(self, oid: Any):
        self.oid = oid
        self.dkeys = BPlusTree()

    def akey_tree(self, dkey: Any, create: bool) -> Optional[BPlusTree]:
        tree = self.dkeys.get(dkey)
        if tree is None and create:
            tree = BPlusTree()
            self.dkeys.insert(dkey, tree)
        return tree


class VosContainer:
    """A container shard on one target."""

    def __init__(self, uuid: str, pool: "object" = None, clock: Optional[EpochClock] = None):
        self.uuid = uuid
        self.pool = pool  # VosPool shard, for capacity accounting
        self.objects: Dict[Any, VosObject] = {}
        if clock is None:
            clock = getattr(pool, "clock", None)
        # standalone shards (unit tests) fall back to a private clock
        self.clock = clock if clock is not None else EpochClock()
        self.snapshots: List[int] = []

    # ------------------------------------------------------------- epochs
    def next_epoch(self) -> int:
        return self.clock.next()

    @property
    def current_epoch(self) -> int:
        return self.clock.current

    def snapshot(self) -> int:
        """Record (and return) a snapshot epoch."""
        epoch = self.current_epoch
        self.snapshots.append(epoch)
        return epoch

    # ------------------------------------------------------------- helpers
    def _object(self, oid: Any, create: bool) -> Optional[VosObject]:
        obj = self.objects.get(oid)
        if obj is None and create:
            obj = self.objects[oid] = VosObject(oid)
        return obj

    def _charge(self, delta: int) -> None:
        if self.pool is not None:
            self.pool.charge(delta)

    # ------------------------------------------------------------- single values
    def update_single(self, oid: Any, dkey: Any, akey: Any, value: Any) -> int:
        """Write a single value; returns the epoch used."""
        epoch = self.next_epoch()
        obj = self._object(oid, create=True)
        akeys = obj.akey_tree(dkey, create=True)
        single = akeys.get(akey)
        if single is None:
            single = _SingleValue()
            akeys.insert(akey, single)
        elif isinstance(single, ExtentTree):
            raise DerInval(f"akey {akey!r} holds an array value")
        single.update(epoch, value)
        self._charge(_value_footprint(value))
        return epoch

    def fetch_single(
        self, oid: Any, dkey: Any, akey: Any, epoch: Optional[int] = None
    ) -> Any:
        obj = self.objects.get(oid)
        if obj is None:
            raise DerNonexist(f"object {oid}")
        akeys = obj.dkeys.get(dkey)
        single = akeys.get(akey) if akeys is not None else None
        if single is None:
            raise DerNonexist(f"dkey/akey {dkey!r}/{akey!r}")
        if isinstance(single, ExtentTree):
            raise DerInval(f"akey {akey!r} holds an array value")
        value = single.fetch(epoch)
        if value is _TOMBSTONE:
            raise DerNonexist(f"{dkey!r}/{akey!r} not visible at epoch {epoch}")
        return value

    def punch_single(self, oid: Any, dkey: Any, akey: Any) -> bool:
        obj = self.objects.get(oid)
        akeys = obj.dkeys.get(dkey) if obj else None
        single = akeys.get(akey) if akeys is not None else None
        if single is None or isinstance(single, ExtentTree):
            return False
        visible = single.fetch() is not _TOMBSTONE
        single.punch(self.next_epoch())
        return visible

    # ------------------------------------------------------------- array values
    def update_array(self, oid: Any, dkey: Any, akey: Any, offset: int, data) -> int:
        """Write bytes into an array akey; returns the epoch used."""
        epoch = self.next_epoch()
        obj = self._object(oid, create=True)
        akeys = obj.akey_tree(dkey, create=True)
        tree = akeys.get(akey)
        if tree is None:
            tree = ExtentTree()
            akeys.insert(akey, tree)
        elif isinstance(tree, _SingleValue):
            raise DerInval(f"akey {akey!r} holds a single value")
        delta = tree.write(offset, data, epoch)
        self._charge(delta)
        return epoch

    def fetch_array(
        self, oid: Any, dkey: Any, akey: Any, offset: int, length: int
    ) -> Payload:
        """Read bytes (holes zero-filled); absent keys read as holes."""
        obj = self.objects.get(oid)
        akeys = obj.dkeys.get(dkey) if obj else None
        tree = akeys.get(akey) if akeys is not None else None
        if tree is None:
            from repro.daos.vos.payload import ZeroPayload

            return ZeroPayload(max(0, length))
        if isinstance(tree, _SingleValue):
            raise DerInval(f"akey {akey!r} holds a single value")
        return tree.read(offset, length)

    def array_size(self, oid: Any, dkey: Any, akey: Any) -> int:
        obj = self.objects.get(oid)
        akeys = obj.dkeys.get(dkey) if obj else None
        tree = akeys.get(akey) if akeys is not None else None
        if tree is None or isinstance(tree, _SingleValue):
            return 0
        return tree.size

    def punch_array(
        self, oid: Any, dkey: Any, akey: Any, offset: int, length: int
    ) -> int:
        obj = self.objects.get(oid)
        akeys = obj.dkeys.get(dkey) if obj else None
        tree = akeys.get(akey) if akeys is not None else None
        if tree is None or isinstance(tree, _SingleValue):
            return 0
        freed = tree.punch(offset, length)
        self._charge(-freed)
        return freed

    # ------------------------------------------------------------- enumeration / punch
    def list_dkeys(self, oid: Any, lo: Any = None, hi: Any = None) -> Iterator[Any]:
        obj = self.objects.get(oid)
        if obj is None:
            return iter(())
        return obj.dkeys.keys(lo, hi)

    def dkey_array_sizes(self, oid: Any, akey: Any) -> Iterator[Tuple[Any, int]]:
        """(dkey, extent-tree size) for every dkey holding ``akey`` arrays."""
        obj = self.objects.get(oid)
        if obj is None:
            return
        for dkey, akeys in obj.dkeys.items():
            tree = akeys.get(akey)
            if isinstance(tree, ExtentTree) and len(tree):
                yield dkey, tree.size

    # ------------------------------------------------------------- rebuild
    def replay_single(self, oid: Any, dkey: Any, akey: Any, epoch: int, value: Any) -> None:
        """Insert a KV history entry at its *original* epoch.

        Used by the rebuild engine when resyncing a returning shard: the
        value keeps the epoch it was written with on the surviving
        replica, so a newer write that raced onto this shard while the
        resync was in flight still wins the visibility scan.
        """
        obj = self._object(oid, create=True)
        akeys = obj.akey_tree(dkey, create=True)
        single = akeys.get(akey)
        if single is None:
            single = _SingleValue()
            akeys.insert(akey, single)
        elif isinstance(single, ExtentTree):
            raise DerInval(f"akey {akey!r} holds an array value")
        if any(e == epoch for e, _ in single.history):
            return  # already present (replica had the write)
        single.update(epoch, value)
        if value is not _TOMBSTONE:
            self._charge(_value_footprint(value))

    def replay_array(
        self, oid: Any, dkey: Any, akey: Any, offset: int, data, epoch: int
    ) -> int:
        """Overlay rebuilt bytes at their original epoch.

        Unlike :meth:`update_array` this never clobbers ranges the shard
        already holds at an equal-or-newer epoch (writes that raced with
        the resync). Returns bytes actually written.
        """
        obj = self._object(oid, create=True)
        akeys = obj.akey_tree(dkey, create=True)
        tree = akeys.get(akey)
        if tree is None:
            tree = ExtentTree()
            akeys.insert(akey, tree)
        elif isinstance(tree, _SingleValue):
            raise DerInval(f"akey {akey!r} holds a single value")
        delta = tree.write_rebuild(offset, data, epoch)
        self._charge(delta)
        return delta

    def rebuild_delta(self, oid: Any, after_epoch: int = 0) -> Iterator[Tuple]:
        """Everything this shard holds for ``oid`` newer than ``after_epoch``.

        Yields, in deterministic (dkey, akey) order:

        - ``("single", dkey, akey, epoch, value)`` — the *latest* KV
          history entry per key (``value`` may be :data:`TOMBSTONE`);
        - ``("extent", dkey, akey, offset, payload, epoch)`` — one entry
          per stored extent.
        """
        obj = self.objects.get(oid)
        if obj is None:
            return
        for dkey, akeys in obj.dkeys.items():
            for akey, value in akeys.items():
                if isinstance(value, _SingleValue):
                    if not value.history:
                        continue
                    epoch, latest = value.history[-1]
                    if epoch > after_epoch:
                        yield ("single", dkey, akey, epoch, latest)
                else:
                    for ext in value:
                        if ext.epoch > after_epoch:
                            yield ("extent", dkey, akey, ext.offset,
                                   ext.payload, ext.epoch)

    def max_extent_epoch(self, oid: Any, dkey: Any, akey: Any) -> int:
        """Newest extent epoch under (dkey, akey), or 0 when empty."""
        obj = self.objects.get(oid)
        akeys = obj.dkeys.get(dkey) if obj else None
        tree = akeys.get(akey) if akeys is not None else None
        if tree is None or isinstance(tree, _SingleValue):
            return 0
        return tree.max_epoch

    def punch_dkey(self, oid: Any, dkey: Any) -> bool:
        obj = self.objects.get(oid)
        if obj is None:
            return False
        akeys = obj.dkeys.get(dkey)
        if akeys is not None:
            for _akey, value in akeys.items():
                if isinstance(value, ExtentTree):
                    self._charge(-value.used_bytes)
        return obj.dkeys.delete(dkey)

    def punch_object(self, oid: Any) -> bool:
        obj = self.objects.pop(oid, None)
        if obj is None:
            return False
        for _dkey, akeys in obj.dkeys.items():
            for _akey, value in akeys.items():
                if isinstance(value, ExtentTree):
                    self._charge(-value.used_bytes)
        return True


def _value_footprint(value: Any) -> int:
    """Approximate media footprint of a single value."""
    if isinstance(value, Payload):
        return value.nbytes
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    return 64  # fixed-cost record (inode entries, counters, props)
