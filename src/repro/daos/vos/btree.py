"""B+-tree — the ordered key index used throughout VOS.

Real VOS keeps dkeys, akeys and container/object tables in btrees stored
in persistent memory; ordered traversal is what makes ``readdir``,
key enumeration and chunk iteration cheap. This is a textbook in-memory
B+-tree: values live only in leaves, leaves are chained for range scans,
and deletion rebalances by borrowing from or merging with siblings.

Keys may be any mutually-comparable Python values (bytes, str, int,
tuples); a tree is homogeneous in practice because each VOS tree level
uses one key type.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.next: Optional["_Leaf"] = None

    is_leaf = True


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] covers keys < keys[i]; children[-1] covers the rest
        self.keys: List[Any] = []
        self.children: List[Any] = []

    is_leaf = False


def _find_child(node: _Inner, key: Any) -> int:
    """Index of the child subtree that should contain ``key``."""
    keys = node.keys
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _leaf_pos(leaf: _Leaf, key: Any) -> Tuple[int, bool]:
    """(index, found) for ``key`` within a leaf."""
    keys = leaf.keys
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo, lo < len(keys) and keys[lo] == key


class BPlusTree:
    """Ordered mapping with O(log n) point ops and O(k) range scans."""

    def __init__(self, capacity: int = 32):
        if capacity < 4:
            raise ValueError("capacity must be >= 4")
        self._cap = capacity
        self._min = capacity // 2
        self._root: Any = _Leaf()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    # ------------------------------------------------------------- lookup
    def get(self, key: Any, default: Any = None) -> Any:
        node = self._root
        while not node.is_leaf:
            node = node.children[_find_child(node, key)]
        idx, found = _leaf_pos(node, key)
        return node.values[idx] if found else default

    # ------------------------------------------------------------- insert
    def insert(self, key: Any, value: Any) -> bool:
        """Insert or replace; returns True if the key was new."""
        result = self._insert(self._root, key, value)
        if result is not None:
            sep, right = result
            root = _Inner()
            root.keys = [sep]
            root.children = [self._root, right]
            self._root = root
        return self._last_insert_was_new

    def _insert(self, node: Any, key: Any, value: Any):
        if node.is_leaf:
            idx, found = _leaf_pos(node, key)
            if found:
                node.values[idx] = value
                self._last_insert_was_new = False
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            self._last_insert_was_new = True
            if len(node.keys) > self._cap:
                return self._split_leaf(node)
            return None
        child_idx = _find_child(node, key)
        result = self._insert(node.children[child_idx], key, value)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(child_idx, sep)
        node.children.insert(child_idx + 1, right)
        if len(node.keys) > self._cap:
            return self._split_inner(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        del leaf.keys[mid:]
        del leaf.values[mid:]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_inner(self, node: _Inner):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Inner()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        del node.keys[mid:]
        del node.children[mid + 1 :]
        return sep, right

    # ------------------------------------------------------------- delete
    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns True if it existed."""
        existed = self._delete(self._root, key)
        if not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
        return existed

    def _delete(self, node: Any, key: Any) -> bool:
        if node.is_leaf:
            idx, found = _leaf_pos(node, key)
            if not found:
                return False
            del node.keys[idx]
            del node.values[idx]
            self._size -= 1
            return True
        child_idx = _find_child(node, key)
        child = node.children[child_idx]
        existed = self._delete(child, key)
        if existed:
            underfull = (
                len(child.keys) < self._min
                if child.is_leaf
                else len(child.children) < self._min
            )
            if underfull:
                self._rebalance(node, child_idx)
        return existed

    def _rebalance(self, parent: _Inner, idx: int) -> None:
        child = parent.children[idx]
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None

        if child.is_leaf:
            if left is not None and len(left.keys) > self._min:
                child.keys.insert(0, left.keys.pop())
                child.values.insert(0, left.values.pop())
                parent.keys[idx - 1] = child.keys[0]
            elif right is not None and len(right.keys) > self._min:
                child.keys.append(right.keys.pop(0))
                child.values.append(right.values.pop(0))
                parent.keys[idx] = right.keys[0]
            elif left is not None:
                left.keys.extend(child.keys)
                left.values.extend(child.values)
                left.next = child.next
                del parent.children[idx]
                del parent.keys[idx - 1]
            elif right is not None:
                child.keys.extend(right.keys)
                child.values.extend(right.values)
                child.next = right.next
                del parent.children[idx + 1]
                del parent.keys[idx]
        else:
            if left is not None and len(left.children) > self._min:
                child.keys.insert(0, parent.keys[idx - 1])
                parent.keys[idx - 1] = left.keys.pop()
                child.children.insert(0, left.children.pop())
            elif right is not None and len(right.children) > self._min:
                child.keys.append(parent.keys[idx])
                parent.keys[idx] = right.keys.pop(0)
                child.children.append(right.children.pop(0))
            elif left is not None:
                left.keys.append(parent.keys[idx - 1])
                left.keys.extend(child.keys)
                left.children.extend(child.children)
                del parent.children[idx]
                del parent.keys[idx - 1]
            elif right is not None:
                child.keys.append(parent.keys[idx])
                child.keys.extend(right.keys)
                child.children.extend(right.children)
                del parent.children[idx + 1]
                del parent.keys[idx]

    # ------------------------------------------------------------- scans
    def _first_leaf(self) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def items(
        self, lo: Any = None, hi: Any = None
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) in key order for lo <= key < hi."""
        if lo is None:
            leaf, idx = self._first_leaf(), 0
        else:
            node = self._root
            while not node.is_leaf:
                node = node.children[_find_child(node, lo)]
            leaf = node
            idx, _ = _leaf_pos(leaf, lo)
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if hi is not None and not (key < hi):
                    return
                yield key, leaf.values[idx]
                idx += 1
            leaf = leaf.next
            idx = 0

    def keys(self, lo: Any = None, hi: Any = None) -> Iterator[Any]:
        for key, _ in self.items(lo, hi):
            yield key

    def min_key(self) -> Any:
        if self._size == 0:
            raise KeyError("empty tree")
        return self._first_leaf().keys[0]

    def max_key(self) -> Any:
        if self._size == 0:
            raise KeyError("empty tree")
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1]

    # ------------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated.

        Used by the property tests: key ordering, node fill bounds,
        uniform leaf depth, and leaf-chain completeness.
        """
        depths = set()

        def walk(node: Any, depth: int, lo: Any, hi: Any) -> None:
            if node.is_leaf:
                depths.add(depth)
                assert node.keys == sorted(node.keys)
                for key in node.keys:
                    assert lo is None or not (key < lo)
                    assert hi is None or key < hi
                if node is not self._root:
                    assert len(node.keys) >= self._min
                assert len(node.keys) <= self._cap
                return
            assert len(node.children) == len(node.keys) + 1
            if node is not self._root:
                assert len(node.children) >= self._min
            assert len(node.keys) <= self._cap
            bounds = [lo] + node.keys + [hi]
            for i, child in enumerate(node.children):
                walk(child, depth + 1, bounds[i], bounds[i + 1])

        walk(self._root, 0, None, None)
        assert len(depths) <= 1
        chained = sum(1 for _ in self.items())
        assert chained == self._size


_MISSING = object()
