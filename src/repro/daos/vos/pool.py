"""VOS pool shard: per-target capacity accounting and container table."""

from __future__ import annotations

from typing import Dict

from repro.daos.vos.container import VosContainer
from repro.errors import DerExist, DerNoSpace, DerNonexist


class VosPool:
    """The slice of a DAOS pool held by one target."""

    def __init__(self, pool_uuid: str, capacity: int, clock=None):
        if capacity <= 0:
            raise ValueError("pool shard capacity must be positive")
        self.pool_uuid = pool_uuid
        self.capacity = int(capacity)
        self.used = 0
        #: optional shared :class:`~repro.daos.vos.container.EpochClock`;
        #: containers fall back to a private clock when absent.
        self.clock = clock
        self.containers: Dict[str, VosContainer] = {}

    def charge(self, delta: int) -> None:
        """Account ``delta`` bytes (may be negative on punch/overwrite)."""
        if delta > 0 and self.used + delta > self.capacity:
            raise DerNoSpace(
                f"target shard of pool {self.pool_uuid}: "
                f"{self.used + delta} > {self.capacity}"
            )
        self.used += delta
        if self.used < 0:
            self.used = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def create_container(self, uuid: str) -> VosContainer:
        if uuid in self.containers:
            raise DerExist(f"container {uuid}")
        container = VosContainer(uuid, pool=self)
        self.containers[uuid] = container
        return container

    def open_container(self, uuid: str) -> VosContainer:
        try:
            return self.containers[uuid]
        except KeyError:
            raise DerNonexist(f"container {uuid}") from None

    def destroy_container(self, uuid: str) -> None:
        container = self.containers.pop(uuid, None)
        if container is None:
            raise DerNonexist(f"container {uuid}")
        # Reclaim every array byte the shard held.
        for obj in list(container.objects):
            container.punch_object(obj)
