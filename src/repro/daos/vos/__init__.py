"""VOS — the Versioned Object Store held by every DAOS target.

Mirrors the real VOS hierarchy: pool shard → container shard → object →
dkey B+-tree → akey B+-tree → single value (with epoch history) or byte
extent tree. Payloads can be real bytes or lazily-generated patterns so
that TiB-scale benchmarks never materialize their data.
"""

from repro.daos.vos.payload import (
    BytesPayload,
    Payload,
    PatternPayload,
    ZeroPayload,
    as_payload,
    concat_payloads,
)
from repro.daos.vos.btree import BPlusTree
from repro.daos.vos.extent import Extent, ExtentTree
from repro.daos.vos.container import TOMBSTONE, EpochClock, VosContainer, VosObject
from repro.daos.vos.pool import VosPool

__all__ = [
    "EpochClock",
    "TOMBSTONE",
    "Payload",
    "BytesPayload",
    "PatternPayload",
    "ZeroPayload",
    "as_payload",
    "concat_payloads",
    "BPlusTree",
    "Extent",
    "ExtentTree",
    "VosContainer",
    "VosObject",
    "VosPool",
]
