"""Byte-granular extent tree — VOS array values (evtree equivalent).

Holds the *visible* view of an array akey: a set of non-overlapping
extents sorted by offset, each carrying its payload and the epoch of the
write that produced it. A new write overlays the existing view
(last-writer-wins at the byte level, which is exactly DAOS semantics for
overlapping epochs resolved by commit order). Reads return fragments and
zero-fill holes inside the requested range.

Unlike the real evtree we do not retain superseded versions (no
snapshot-at-epoch reads on arrays); the KV layer keeps epoch history
instead — see DESIGN.md §5.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.daos.vos.payload import Payload, ZeroPayload, as_payload, concat_payloads


@dataclass
class Extent:
    """A contiguous written region [offset, offset + length)."""

    offset: int
    payload: Payload
    epoch: int

    @property
    def length(self) -> int:
        return self.payload.nbytes

    @property
    def end(self) -> int:
        return self.offset + self.payload.nbytes


class ExtentTree:
    """Non-overlapping extents ordered by offset."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._extents: List[Extent] = []

    def __len__(self) -> int:
        return len(self._extents)

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._extents)

    @property
    def size(self) -> int:
        """Highest written offset + 1 (i.e. the array's apparent size)."""
        return self._extents[-1].end if self._extents else 0

    @property
    def used_bytes(self) -> int:
        return sum(e.length for e in self._extents)

    # ------------------------------------------------------------- write
    def write(self, offset: int, data, epoch: int) -> int:
        """Overlay ``data`` at ``offset``; returns bytes newly consumed
        (for capacity accounting — overwritten bytes are reclaimed)."""
        payload = as_payload(data)
        if payload.nbytes == 0:
            return 0
        if offset < 0:
            raise ValueError("negative offset")
        new = Extent(offset, payload, epoch)
        freed = self._punch_range(offset, offset + payload.nbytes)
        idx = bisect.bisect_left(self._starts, offset)
        self._starts.insert(idx, offset)
        self._extents.insert(idx, new)
        return payload.nbytes - freed

    def write_rebuild(self, offset: int, data, epoch: int) -> int:
        """Overlay ``data`` at its *original* ``epoch``, never clobbering
        bytes already held at an equal-or-newer epoch.

        The rebuild engine replays extents copied from surviving replicas
        onto a returning shard; a foreground write that landed on the
        shard while the resync was in flight carries a newer epoch and
        must survive the replay. Returns bytes newly consumed.
        """
        payload = as_payload(data)
        if payload.nbytes == 0:
            return 0
        if offset < 0:
            raise ValueError("negative offset")
        stop = offset + payload.nbytes
        # Collect the sub-ranges the shard already holds at >= epoch
        # before mutating anything.
        blocked: List[Tuple[int, int]] = []
        idx = bisect.bisect_left(self._starts, offset)
        if idx > 0 and self._extents[idx - 1].end > offset:
            idx -= 1
        for ext in self._extents[idx:]:
            if ext.offset >= stop:
                break
            if ext.epoch >= epoch:
                blocked.append((max(ext.offset, offset), min(ext.end, stop)))
        delta = 0
        cursor = offset
        for bstart, bstop in blocked + [(stop, stop)]:
            if bstart > cursor:
                delta += self.write(
                    cursor,
                    payload.slice(cursor - offset, bstart - offset),
                    epoch,
                )
            cursor = max(cursor, bstop)
        return delta

    @property
    def max_epoch(self) -> int:
        """Newest epoch among stored extents (0 when empty)."""
        return max((e.epoch for e in self._extents), default=0)

    def covered_at(self, offset: int, length: int, epoch: int) -> bool:
        """True iff every byte of [offset, offset+length) is held at an
        epoch >= ``epoch`` — the rebuild engine's dest-side filter that
        keeps the scan/migrate converge loop from re-copying data a
        previous round (or a fenced foreground write) already landed."""
        if length <= 0:
            return True
        stop = offset + length
        cursor = offset
        idx = bisect.bisect_left(self._starts, offset)
        if idx > 0 and self._extents[idx - 1].end > offset:
            idx -= 1
        for ext in self._extents[idx:]:
            if ext.offset >= stop:
                break
            if ext.offset > cursor or ext.epoch < epoch:
                return False
            cursor = ext.end
            if cursor >= stop:
                return True
        return cursor >= stop

    def punch(self, offset: int, length: int) -> int:
        """Remove [offset, offset+length); returns bytes freed."""
        if length <= 0:
            return 0
        return self._punch_range(offset, offset + length)

    def _punch_range(self, start: int, stop: int) -> int:
        """Trim/split existing extents overlapping [start, stop)."""
        freed = 0
        idx = bisect.bisect_left(self._starts, start)
        # the previous extent may straddle ``start``
        if idx > 0 and self._extents[idx - 1].end > start:
            idx -= 1
        while idx < len(self._extents):
            ext = self._extents[idx]
            if ext.offset >= stop:
                break
            overlap_start = max(ext.offset, start)
            overlap_stop = min(ext.end, stop)
            freed += overlap_stop - overlap_start
            left = None
            right = None
            if ext.offset < start:
                left = Extent(
                    ext.offset,
                    ext.payload.slice(0, start - ext.offset),
                    ext.epoch,
                )
            if ext.end > stop:
                right = Extent(
                    stop,
                    ext.payload.slice(stop - ext.offset, ext.length),
                    ext.epoch,
                )
            del self._starts[idx]
            del self._extents[idx]
            for piece in (left, right):
                if piece is not None:
                    self._starts.insert(idx, piece.offset)
                    self._extents.insert(idx, piece)
                    idx += 1
        return freed

    # ------------------------------------------------------------- read
    def read(self, offset: int, length: int) -> Payload:
        """Payload for [offset, offset+length); holes read as zeros.

        The caller decides how to treat reads past the apparent size
        (the POSIX layers clamp to the file size held in the inode).
        """
        if length <= 0:
            return as_payload(b"")
        parts: List[Payload] = []
        cursor = offset
        stop = offset + length
        idx = bisect.bisect_left(self._starts, offset)
        if idx > 0 and self._extents[idx - 1].end > offset:
            idx -= 1
        while cursor < stop and idx < len(self._extents):
            ext = self._extents[idx]
            if ext.offset >= stop:
                break
            if ext.offset > cursor:
                parts.append(ZeroPayload(ext.offset - cursor))
                cursor = ext.offset
            begin = cursor - ext.offset
            end = min(ext.end, stop) - ext.offset
            parts.append(ext.payload.slice(begin, end))
            cursor = ext.offset + end
            idx += 1
        if cursor < stop:
            parts.append(ZeroPayload(stop - cursor))
        return concat_payloads(parts)

    # ------------------------------------------------------------- checks
    def check_invariants(self) -> None:
        prev_end = -1
        for start, ext in zip(self._starts, self._extents):
            assert start == ext.offset
            assert ext.length > 0
            assert ext.offset >= 0
            assert ext.offset >= prev_end, "extents overlap"
            prev_end = ext.end
