"""Algorithmic placement: OID → ordered list of target ids.

DAOS computes object layouts with a pseudo-random algorithmic map over
the pool map (jump consistent hashing in recent versions, ring placement
before that) so that *every* client derives the same layout with no
metadata traffic. We reproduce that property: the layout is a
deterministic pseudo-random selection of ``shard_count`` distinct
targets seeded by the OID, and dkeys are routed to layout groups by a
stable hash — so chunk *i* of a DFS file always lands on the same target
no matter which client touches it.

Randomness quality matters here: S1 "hotspots" in Figure 1 are a
balls-into-bins effect of this very map.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Sequence, Tuple

from repro.daos.objid import ObjId
from repro.errors import DerInval


def _mix64(value: int) -> int:
    """splitmix64 finalizer — cheap, well-distributed 64-bit mixing."""
    value &= 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def jump_hash(key: int, buckets: int) -> int:
    """Lamping & Veach jump consistent hash: key → [0, buckets)."""
    if buckets <= 0:
        raise DerInval("jump_hash needs buckets > 0")
    b, j = -1, 0
    key &= 0xFFFFFFFFFFFFFFFF
    while j < buckets:
        b = j
        key = (key * 2862933555777941757 + 1) & 0xFFFFFFFFFFFFFFFF
        j = int((b + 1) * (float(1 << 31) / float((key >> 33) + 1)))
    return b


def dkey_hash(dkey) -> int:
    """Stable 64-bit hash of a dkey (int chunk indices or byte names)."""
    if isinstance(dkey, int):
        return _mix64(dkey)
    if isinstance(dkey, str):
        dkey = dkey.encode("utf-8")
    if isinstance(dkey, (bytes, bytearray)):
        return int.from_bytes(
            hashlib.blake2b(bytes(dkey), digest_size=8).digest(), "little"
        )
    raise DerInval(f"unhashable dkey type {type(dkey).__name__}")


class Layout:
    """An object's resolved placement.

    ``groups[g]`` lists the target ids of redundancy group *g* (first
    entry is the group leader). A dkey belongs to exactly one group.
    """

    __slots__ = ("oid", "groups", "_probe", "_spares")

    def __init__(self, oid: ObjId, groups: List[List[int]],
                 probe: "Tuple[int, int, int]" = None):
        self.oid = oid
        self.groups = groups
        #: (n_targets, start, stride) of the probe sequence that produced
        #: ``groups`` — continuing it yields the deterministic spares used
        #: when a member goes DOWNOUT.
        self._probe = probe
        self._spares = None

    @property
    def spares(self) -> List[int]:
        """Targets outside the layout, in probe order (may be empty).

        Every client derives the same list from the OID alone, so spare
        substitution after a permanent exclusion needs no metadata — the
        same algorithmic-placement property the primary layout has.
        """
        if self._spares is None:
            if self._probe is None:
                self._spares = []
            else:
                n_targets, start, stride = self._probe
                taken = set(self.all_targets)
                seq: List[int] = []
                probe = start
                # the probe is full-cycle (gcd(stride, n) == 1): n steps
                # visit every target exactly once
                for _ in range(n_targets):
                    if probe not in taken:
                        taken.add(probe)
                        seq.append(probe)
                    probe = (probe + stride) % n_targets
                self._spares = seq
        return self._spares

    @property
    def group_count(self) -> int:
        return len(self.groups)

    @property
    def all_targets(self) -> List[int]:
        return [t for group in self.groups for t in group]

    def group_of_dkey(self, dkey) -> int:
        return dkey_hash(dkey) % len(self.groups)

    def targets_for_dkey(self, dkey) -> List[int]:
        """All replica targets holding ``dkey`` (leader first)."""
        return self.groups[self.group_of_dkey(dkey)]

    def leader_for_dkey(self, dkey) -> int:
        return self.targets_for_dkey(dkey)[0]


class PlacementMap:
    """Layout computation over a pool's target list."""

    def __init__(self, n_targets: int):
        if n_targets <= 0:
            raise DerInval("pool needs at least one target")
        self.n_targets = n_targets
        self._cache: Dict[Tuple[int, int], Layout] = {}

    def layout(self, oid: ObjId) -> Layout:
        key = (oid.hi, oid.lo)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        oclass = oid.oclass
        groups_nr = oclass.group_count(self.n_targets)
        width = oclass.group_width
        shards = groups_nr * width
        seed = _mix64(oid.hi * 0x9E3779B97F4A7C15 ^ _mix64(oid.lo))
        chosen: List[int] = []
        taken = set()
        # Pseudo-random distinct-target selection: a seeded probe sequence
        # (double hashing) over the target space.
        start = seed % self.n_targets
        if self.n_targets > 1:
            stride = 1 + (_mix64(seed) % (self.n_targets - 1))
            # A full-cycle probe sequence needs gcd(stride, n) == 1.
            while math.gcd(stride, self.n_targets) != 1:
                stride += 1
        else:
            stride = 1
        probe = start
        while len(chosen) < shards:
            if probe not in taken:
                taken.add(probe)
                chosen.append(probe)
            probe = (probe + stride) % self.n_targets
        groups = [
            chosen[g * width : (g + 1) * width] for g in range(groups_nr)
        ]
        layout = Layout(oid, groups, probe=(self.n_targets, start, stride))
        self._cache[key] = layout
        return layout


def effective_groups(layout: Layout, downout: frozenset) -> List[List[int]]:
    """Substitute DOWNOUT members with deterministic spares.

    Every DOWNOUT slot (group-major order) takes the next spare from the
    layout's probe continuation that is not itself DOWNOUT; slots with no
    spare left keep the dead member (the slot stays degraded forever).
    The result depends only on (layout, downout) — DOWNOUT is terminal,
    so the substitution is stable over time and every client and the
    rebuild engine agree on it without coordination.
    """
    if not downout:
        return layout.groups
    spares = iter(s for s in layout.spares if s not in downout)
    groups: List[List[int]] = []
    for group in layout.groups:
        new_group = []
        for tid in group:
            if tid in downout:
                new_group.append(next(spares, tid))
            else:
                new_group.append(tid)
        groups.append(new_group)
    return groups
