"""The public libdaos surface in one import (``repro.daos.api``).

Applications written against the simulated store should import from
here rather than reaching into the implementation modules — the facade
pins the supported names the way ``daos.h``/``daos_fs.h`` pin the real
client API, so internal reshuffles don't break example or benchmark
code. Everything re-exported is context-manager capable (``close()`` on
``__exit__``) down the handle chain::

    from repro.daos import api as daos

    with daos.DaosClient(system, node) as client:
        # inside a sim task:
        pool = yield from client.connect_pool("pool0")
        cont = yield from pool.create_container("cont0", oclass="SX")
        eq = daos.EventQueue(sim, depth=8)
        ...

The async side (:class:`EventQueue` / :class:`Event`) mirrors the
``daos_eq_* / daos_event_*`` model; every handle exposes ``*_nb``
variants of its data-plane calls that take the queue as their first
argument and return an :class:`Event`.
"""

from __future__ import annotations

from repro.daos.array import DaosArray
from repro.daos.client import ContainerHandle, DaosClient, PoolHandle
from repro.daos.eq import (
    EV_ABORTED,
    EV_COMPLETED,
    EV_READY,
    EV_RUNNING,
    Event,
    EventQueue,
)
from repro.daos.kv import DaosKV
from repro.daos.objid import ObjId
from repro.daos.object import ObjectHandle
from repro.daos.oclass import (
    EC_2P1G1,
    EC_2P1GX,
    EC_4P1G1,
    RP_2G1,
    RP_2GX,
    RP_3G1,
    S1,
    S2,
    SX,
    ObjectClass,
    oclass_by_name,
)
from repro.daos.system import DaosSystem, PoolMap
from repro.daos.vos.payload import PatternPayload, Payload, as_payload
from repro.errors import (
    DaosError,
    DerBusy,
    DerCanceled,
    DerDataLoss,
    DerExist,
    DerInval,
    DerIsDir,
    DerNoPerm,
    DerNoSpace,
    DerNonexist,
    DerNotDir,
    DerStale,
    DerTimedOut,
)

__all__ = [
    # system + handles
    "DaosSystem",
    "PoolMap",
    "DaosClient",
    "PoolHandle",
    "ContainerHandle",
    "ObjectHandle",
    "DaosArray",
    "DaosKV",
    # async event model
    "EventQueue",
    "Event",
    "EV_READY",
    "EV_RUNNING",
    "EV_COMPLETED",
    "EV_ABORTED",
    # identifiers and classes
    "ObjId",
    "ObjectClass",
    "oclass_by_name",
    "S1",
    "S2",
    "SX",
    "RP_2G1",
    "RP_2GX",
    "RP_3G1",
    "EC_2P1G1",
    "EC_2P1GX",
    "EC_4P1G1",
    # payloads
    "Payload",
    "PatternPayload",
    "as_payload",
    # typed errors
    "DaosError",
    "DerBusy",
    "DerCanceled",
    "DerDataLoss",
    "DerExist",
    "DerInval",
    "DerIsDir",
    "DerNonexist",
    "DerNoPerm",
    "DerNoSpace",
    "DerNotDir",
    "DerStale",
    "DerTimedOut",
]
