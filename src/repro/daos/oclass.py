"""DAOS object classes.

An object class fixes how an object's shards map onto pool targets:

- ``S1``/``S2``/``S4``/``S8`` — striped over a fixed number of targets,
  no redundancy (the classes swept in the paper's Figure 1);
- ``SX`` — striped over *every* target in the pool ("max sharding",
  the Lustre-wide-striping analogue, used for the shared-file runs);
- ``RP_2G1``/``RP_2GX``/``RP_3GX`` — replicated classes (extension
  beyond the paper's sweep: redundancy factor 2 or 3, one group or max
  groups), exercised by the fault-tolerance tests.

``grp_nr`` follows DAOS terminology: number of redundancy groups
(stripes); ``rdd_nr`` is replicas per group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DerInval


@dataclass(frozen=True)
class ObjectClass:
    """A (stripe count, redundancy) tuple with DAOS-style naming.

    Redundancy within a group is either replication (``rdd_nr`` copies)
    or erasure coding (``ec_k`` data + ``ec_p`` parity cells) — never
    both.
    """

    name: str
    #: redundancy groups (stripe width); 0 means "all targets" (the X classes)
    grp_nr: int
    #: replicas within each group (1 = no redundancy)
    rdd_nr: int = 1
    #: erasure coding: data cells per group (0 = not erasure coded)
    ec_k: int = 0
    #: erasure coding: parity cells per group
    ec_p: int = 0

    @property
    def group_width(self) -> int:
        """Targets per redundancy group."""
        return self.ec_k + self.ec_p if self.is_ec else self.rdd_nr

    def shard_count(self, pool_targets: int) -> int:
        """Total shards of an object of this class in a pool."""
        return self.group_count(pool_targets) * self.group_width

    def group_count(self, pool_targets: int) -> int:
        if pool_targets <= 0:
            raise DerInval("pool has no targets")
        width = self.group_width
        groups = self.grp_nr if self.grp_nr > 0 else max(
            1, pool_targets // width
        )
        if groups * width > pool_targets:
            raise DerInval(
                f"class {self.name} needs {groups * width} targets, "
                f"pool has {pool_targets}"
            )
        return groups

    @property
    def is_replicated(self) -> bool:
        return self.rdd_nr > 1

    @property
    def is_ec(self) -> bool:
        return self.ec_k > 0

    def __str__(self) -> str:
        return self.name


S1 = ObjectClass("S1", grp_nr=1)
S2 = ObjectClass("S2", grp_nr=2)
S4 = ObjectClass("S4", grp_nr=4)
S8 = ObjectClass("S8", grp_nr=8)
SX = ObjectClass("SX", grp_nr=0)
RP_2G1 = ObjectClass("RP_2G1", grp_nr=1, rdd_nr=2)
RP_2GX = ObjectClass("RP_2GX", grp_nr=0, rdd_nr=2)
RP_3G1 = ObjectClass("RP_3G1", grp_nr=1, rdd_nr=3)
EC_2P1G1 = ObjectClass("EC_2P1G1", grp_nr=1, ec_k=2, ec_p=1)
EC_2P1GX = ObjectClass("EC_2P1GX", grp_nr=0, ec_k=2, ec_p=1)
EC_4P1G1 = ObjectClass("EC_4P1G1", grp_nr=1, ec_k=4, ec_p=1)

#: registration order is the wire format: class ids are embedded in OIDs
#: and drive placement, so this list is APPEND-ONLY (like the real
#: DAOS OC_* numbering) — renumbering would silently re-place every
#: existing object.
_ORDERED = (
    RP_2G1, RP_2GX, RP_3G1, S1, S2, S4, S8, SX,
    EC_2P1G1, EC_2P1GX, EC_4P1G1,
)
_REGISTRY = {c.name: c for c in _ORDERED}
_CLASS_IDS = {c.name: i + 1 for i, c in enumerate(_ORDERED)}
_IDS_CLASS = {v: k for k, v in _CLASS_IDS.items()}


def oclass_by_name(name: str) -> ObjectClass:
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise DerInval(f"unknown object class {name!r}") from None


def oclass_id(oclass: ObjectClass) -> int:
    return _CLASS_IDS[oclass.name]


def oclass_from_id(cid: int) -> ObjectClass:
    try:
        return _REGISTRY[_IDS_CLASS[cid]]
    except KeyError:
        raise DerInval(f"unknown object class id {cid}") from None
