"""Client-side caching & I/O aggregation subsystem (DESIGN.md §8).

Reusable building blocks wired into the stack at two points:

* **DFuse** (:class:`repro.dfuse.fuse.DFuseMount`): data page cache
  (:class:`PageCache`) plus attr/dentry TTL caches (:class:`TtlCache`),
  like ``dfuse --enable-caching``.
* **DFS file layer** (:class:`repro.dfs.file.DfsFile`): write-behind
  buffering with dirty-extent coalescing (:class:`WriteBehind`) and
  sequential-read detection driving read-ahead (:class:`ReadAhead`).

All of it hangs off one :class:`CacheConfig`; the default ``none`` mode
constructs nothing and leaves every code path untouched, so disabled
runs are byte-identical to a build without this package.
"""

from repro.cache.attrs import TtlCache
from repro.cache.config import CACHE_MODES, CacheConfig, NODE_MEMORY_FRACTION
from repro.cache.extents import Extent, ExtentMap
from repro.cache.pages import PageCache
from repro.cache.readahead import ReadAhead
from repro.cache.writeback import DIRTY_GAUGE, WriteBehind

__all__ = [
    "CACHE_MODES",
    "CacheConfig",
    "DIRTY_GAUGE",
    "Extent",
    "ExtentMap",
    "NODE_MEMORY_FRACTION",
    "PageCache",
    "ReadAhead",
    "TtlCache",
    "WriteBehind",
]
