"""Extent-granular data page cache with LRU eviction under a budget.

One :class:`PageCache` serves a whole mount (all files share the
node-derived memory budget).  Extents keep their identity from insert to
eviction: an LRU ring keyed by a monotonic extent id orders them by last
use, and going over budget evicts whole least-recently-used extents
until the cache fits — all deterministic (no clocks, no randomness), so
cached runs replay exactly.

Consistency is epoch-based: every file carries an epoch (bumped by
truncate/unlink/overwrite-through-another-path, see
:class:`repro.dfs.file.SharedFileState`); a lookup presenting a newer
epoch than the cached one drops the file's extents first, which is the
"invalidation on size/epoch change" rule of the DESIGN.md §8
consistency model.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Tuple

from repro.cache.extents import Extent, ExtentMap
from repro.daos.vos.payload import Payload


class _FileView:
    __slots__ = ("extents", "epoch")

    def __init__(self, epoch: int):
        self.extents = ExtentMap()
        self.epoch = epoch


class PageCache:
    """Shared per-mount data cache: file key -> extent map, global LRU."""

    def __init__(self, capacity: int, sim=None,
                 metrics_prefix: str = "cache.page", labels=None):
        if capacity <= 0:
            raise ValueError("page cache capacity must be positive")
        self.capacity = capacity
        self.sim = sim
        self.prefix = metrics_prefix
        # Canonical label suffix precomputed once; metric names become
        # e.g. cache.page.hit_bytes{node=cn0}.
        if labels:
            from repro.obs.metrics import format_metric_name
            self._label_suffix = format_metric_name("", labels)
        else:
            self._label_suffix = ""
        self._files: Dict[Hashable, _FileView] = {}
        #: extent id -> (file key, extent), in LRU order (oldest first)
        self._lru: "OrderedDict[int, Tuple[Hashable, Extent]]" = OrderedDict()
        self._next_id = 1
        self.used_bytes = 0

    # ------------------------------------------------------------- metrics
    def _incr(self, name: str, amount: float = 1.0) -> None:
        metrics = self.sim.metrics if self.sim is not None else None
        if metrics is not None:
            metrics.incr(f"{self.prefix}.{name}{self._label_suffix}", amount)

    # ------------------------------------------------------------- epochs
    def _view(self, key: Hashable, epoch: int) -> _FileView:
        view = self._files.get(key)
        if view is None:
            view = self._files[key] = _FileView(epoch)
        elif view.epoch != epoch:
            self._drop_view(key, view)
            view = self._files[key] = _FileView(epoch)
            self._incr("epoch_invalidations")
        return view

    def _drop_view(self, key: Hashable, view: _FileView) -> None:
        self.used_bytes -= view.extents.total_bytes
        dead = [eid for eid, (k, _e) in self._lru.items() if k == key]
        for eid in dead:
            del self._lru[eid]
        del self._files[key]

    def invalidate_file(self, key: Hashable) -> None:
        view = self._files.get(key)
        if view is not None:
            self._drop_view(key, view)

    def invalidate_range(self, key: Hashable, start: int, nbytes: int) -> None:
        """Drop cached data overlapping a write-through (readonly mode)."""
        view = self._files.get(key)
        if view is None:
            return
        before = view.extents.total_bytes
        view.extents.remove_range(start, nbytes)
        self.used_bytes -= before - view.extents.total_bytes
        # trimmed extents keep their LRU slots; fully-removed ones are
        # collected lazily when the LRU ring meets a stale entry
        self._prune_stale(key, view)

    def _prune_stale(self, key: Hashable, view: _FileView) -> None:
        live = set(map(id, view.extents))
        dead = [
            eid for eid, (k, ext) in self._lru.items()
            if k == key and id(ext) not in live
        ]
        for eid in dead:
            del self._lru[eid]

    # ------------------------------------------------------------- access
    def lookup(self, key: Hashable, epoch: int, start: int, nbytes: int
               ) -> List[Tuple[int, int, Optional[Payload]]]:
        """Cover [start, start+nbytes): ``(seg_start, len, payload|None)``.

        Hits touch the LRU ring; holes come back as ``None`` for the
        caller to read through and :meth:`insert`.
        """
        view = self._view(key, epoch)
        out: List[Tuple[int, int, Optional[Payload]]] = []
        hit = miss = 0
        for seg_start, seg_len, ext in view.extents.lookup(start, nbytes):
            if ext is None:
                out.append((seg_start, seg_len, None))
                miss += seg_len
            else:
                rel = seg_start - ext.start
                out.append((seg_start, seg_len,
                            ext.payload.slice(rel, rel + seg_len)))
                hit += seg_len
                self._touch(ext)
        if hit:
            self._incr("hits")
            self._incr("hit_bytes", hit)
        if miss:
            self._incr("misses")
            self._incr("miss_bytes", miss)
        return out

    def insert(self, key: Hashable, epoch: int, start: int,
               payload: Payload) -> None:
        """Cache ``payload`` at ``start``; evicts LRU extents to fit.

        Payloads larger than the whole budget are trimmed to the budget's
        tail-end (matching a streaming read's most-recently-seen bytes).
        """
        if payload.nbytes == 0:
            return
        if payload.nbytes > self.capacity:
            skip = payload.nbytes - self.capacity
            start += skip
            payload = payload.slice(skip, payload.nbytes)
        view = self._view(key, epoch)
        before = view.extents.total_bytes
        ext = view.extents.insert(start, payload)
        self.used_bytes += view.extents.total_bytes - before
        self._prune_stale(key, view)
        eid = self._next_id
        self._next_id += 1
        self._lru[eid] = (key, ext)
        self._evict_to_fit()

    def _touch(self, ext: Extent) -> None:
        for eid, (_k, cand) in reversed(self._lru.items()):
            if cand is ext:
                self._lru.move_to_end(eid)
                return

    def _evict_to_fit(self) -> None:
        while self.used_bytes > self.capacity and self._lru:
            _eid, (key, ext) = self._lru.popitem(last=False)
            view = self._files.get(key)
            if view is None:
                continue
            if view.extents.remove(ext):
                self.used_bytes -= ext.nbytes
                self._incr("evictions")
                self._incr("evicted_bytes", ext.nbytes)
