"""Sequential-read detection driving read-ahead prefetch.

Each open file handle owns one :class:`ReadAhead` detector.  It watches
the stream of read offsets: once ``readahead_min_run`` consecutive reads
land exactly where the previous one ended, the stream is classified
sequential and the next cache miss widens its backing fetch by up to
``readahead_window`` bytes past the requested range.  The extra bytes go
into the page cache, so the following reads hit DRAM instead of paying
another RPC round trip — the aggregation win on the read path.

Everything here is a pure deterministic state machine over offsets; any
random access resets the run counter (and the window, so a re-detected
stream ramps up again from one window).
"""

from __future__ import annotations

from repro.cache.config import CacheConfig


class ReadAhead:
    """Per-handle sequentiality detector + prefetch window sizing."""

    def __init__(self, config: CacheConfig):
        self.config = config
        #: where the next read of a sequential stream would start
        self.next_expected = 0
        #: consecutive sequential reads observed (incl. the first)
        self.run = 0
        #: total bytes the engine has asked to prefetch (metrics feed)
        self.prefetched_bytes = 0

    @property
    def sequential(self) -> bool:
        return self.run >= self.config.readahead_min_run

    def observe(self, offset: int, nbytes: int) -> None:
        """Record one read; call before :meth:`window`."""
        if self.run and offset == self.next_expected:
            self.run += 1
        else:
            self.run = 1
        self.next_expected = offset + nbytes

    def window(self) -> int:
        """Bytes to fetch *past* the current read, 0 if not sequential."""
        if not self.sequential:
            return 0
        return self.config.readahead_window

    def note_prefetch(self, nbytes: int) -> None:
        self.prefetched_bytes += nbytes
