"""Write-behind buffer: dirty-extent coalescing and flush policy.

A :class:`WriteBehind` sits inside one open :class:`~repro.dfs.file.DfsFile`
handle in ``writeback`` mode.  Writes land in a dirty
:class:`~repro.cache.extents.ExtentMap` with adjacent-extent merging, so
a stream of transfer-size writes coalesces into a handful of large
contiguous extents; the flusher pops contiguous runs (capped at
``wb_max_extent``) and issues them as single array writes — trading N
per-RPC overheads for one, which is where the DFuse writeback bandwidth
win comes from.

Flush triggers (DESIGN.md §8): dirty bytes crossing ``wb_watermark``
during a write, ``fsync``, ``close``, and IOR phase barriers (the runner
fsync/close before each barrier).  A failed flush never drops data: the
run is re-inserted, the storage error is latched, and the *next*
``fsync``/``close`` surfaces :class:`~repro.errors.CacheWritebackError`
naming the still-dirty extents.  After the fault clears (engine
restart), a retry flush can succeed and the latch resets.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.cache.extents import ExtentMap
from repro.daos.vos.payload import Payload
from repro.errors import CacheWritebackError

#: aggregate gauge name — one gauge per metrics registry, all files
#: add/subtract deltas into it so it tracks node-wide dirty bytes
DIRTY_GAUGE = "cache.wb.dirty_bytes"


class WriteBehind:
    """Per-handle dirty buffer with watermark/fsync/close flushing."""

    def __init__(self, config: CacheConfig, sim, path: str = "?"):
        self.config = config
        self.sim = sim
        self.path = path
        self.dirty = ExtentMap()
        #: latched storage error from the last failed flush, if any
        self.error: Optional[Exception] = None

    # ------------------------------------------------------------- metrics
    @property
    def _metrics(self):
        return self.sim.metrics

    def _gauge_add(self, delta: int) -> None:
        m = self._metrics
        if m is not None and delta:
            m.gauge(DIRTY_GAUGE).add(self.sim.now, delta)

    # ------------------------------------------------------------- buffering
    @property
    def dirty_bytes(self) -> int:
        return self.dirty.total_bytes

    @property
    def need_flush(self) -> bool:
        return self.dirty.total_bytes >= self.config.wb_watermark

    def buffer(self, offset: int, payload: Payload) -> None:
        """Absorb a write without touching the store."""
        before = self.dirty.total_bytes
        self.dirty.insert(offset, payload, merge=True)
        delta = self.dirty.total_bytes - before
        self._gauge_add(delta)
        m = self._metrics
        if m is not None:
            m.incr("cache.wb.buffered_writes")
            m.incr("cache.wb.buffered_bytes", payload.nbytes)

    def overlay(self, start: int, nbytes: int):
        """Dirty segments covering a read range (read-your-writes)."""
        return self.dirty.lookup(start, nbytes)

    def high_water(self) -> int:
        """End offset of the highest dirty byte (0 when clean)."""
        spans = self.dirty.spans()
        if not spans:
            return 0
        off, n = spans[-1]
        return off + n

    def pending(self) -> List[Tuple[int, int]]:
        """[(offset, nbytes), ...] still dirty — error payload material."""
        return self.dirty.spans()

    # ------------------------------------------------------------- flushing
    def flush(self, write_fn) -> Generator:
        """Task helper: drain the buffer through ``write_fn(off, payload)``.

        Pops lowest-offset contiguous runs capped at ``wb_max_extent``
        and writes each as one coalesced array write. On a storage
        error the run goes back into the buffer, the error latches, and
        this returns ``False`` — callers decide whether to surface it
        (:meth:`raise_pending` on fsync/close) or carry on (watermark
        flush inside ``write``).
        """
        m = self._metrics
        while self.dirty.total_bytes:
            run = self.dirty.pop_first_run(self.config.wb_max_extent)
            if run is None:  # pragma: no cover - guarded by total_bytes
                break
            offset, payload = run
            self._gauge_add(-payload.nbytes)
            t0 = self.sim.now
            try:
                yield from write_fn(offset, payload)
            except Exception as exc:
                # put the data back exactly where it was and latch
                before = self.dirty.total_bytes
                self.dirty.insert(offset, payload, merge=True)
                self._gauge_add(self.dirty.total_bytes - before)
                self.error = exc
                if m is not None:
                    m.incr("cache.wb.flush_errors")
                return False
            if m is not None:
                m.incr("cache.wb.flush_writes")
                m.incr("cache.wb.flushed_bytes", payload.nbytes)
                m.observe("cache.wb.flush_latency", self.sim.now - t0)
        self.error = None
        return True

    def raise_pending(self) -> None:
        """Raise the typed error if a flush failed and data is still dirty."""
        if self.error is not None and self.dirty.total_bytes:
            raise CacheWritebackError(self.path, self.pending(), self.error)

    def discard(self) -> int:
        """Drop all dirty data (used only by tests / forced teardown)."""
        dropped = self.dirty.clear()
        self._gauge_add(-dropped)
        self.error = None
        return dropped
