"""Cache configuration and the consistency-mode contract.

One :class:`CacheConfig` drives both wiring points of the caching tier
(DESIGN.md §8): the DFuse mount (data page cache, attr/dentry TTL
caches) and the DFS file layer (write-behind buffering, read-ahead).

Modes mirror dfuse's caching switches:

``none``
    Every call passes straight through.  This is the default, and it is
    *zero-cost*: no cache object is even constructed, so simulated
    timings are byte-identical to a build without the subsystem
    (pinned by ``tests/cache/test_cache_determinism.py``).
``readonly``
    Data page cache + attr/dentry TTL caches + sequential read-ahead.
    Writes pass through synchronously (and invalidate overlapping
    cached extents), like ``dfuse --enable-wb-cache=false``.
``writeback``
    Everything in ``readonly`` plus write-behind buffering with
    dirty-extent coalescing; open-to-close semantics (flush on
    ``close``/``fsync``/watermark).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from repro.units import GiB, KiB, MiB, parse_size

CACHE_MODES = ("none", "readonly", "writeback")

#: Fraction of a client node's DRAM the page-cache tier may use, split
#: evenly across the processes sharing the node (like the kernel page
#: cache competing with ppn application processes).
NODE_MEMORY_FRACTION = 0.25


@dataclass(frozen=True)
class CacheConfig:
    """Knobs for one mounted cache instance."""

    #: none | readonly | writeback (the consistency mode, see module doc)
    mode: str = "none"
    #: page-cache budget in bytes; 0 = derive from the node's hardware
    #: model via :meth:`resolve` (NODE_MEMORY_FRACTION of DRAM / ppn)
    capacity: Union[int, str] = 0
    #: DRAM copy bandwidth charged for cache hits and buffered writes
    copy_bw: float = 12e9
    #: attribute (stat) cache TTL, seconds (dfuse --attr-time)
    attr_ttl: float = 1.0
    #: dentry (path -> inode) cache TTL, seconds (dfuse --dentry-time)
    dentry_ttl: float = 1.0
    #: per-file dirty bytes that trigger a background-style flush
    wb_watermark: Union[int, str] = 16 * MiB
    #: largest single coalesced write issued by a flush
    wb_max_extent: Union[int, str] = 64 * MiB
    #: bytes prefetched ahead of a detected sequential stream
    readahead_window: Union[int, str] = 8 * MiB
    #: consecutive sequential ops before read-ahead engages
    readahead_min_run: int = 2

    def __post_init__(self) -> None:
        if self.mode not in CACHE_MODES:
            raise ValueError(
                f"cache mode must be one of {CACHE_MODES}, got {self.mode!r}"
            )
        for name in ("capacity", "wb_watermark", "wb_max_extent",
                     "readahead_window"):
            object.__setattr__(self, name, parse_size(getattr(self, name)))
        if self.copy_bw <= 0:
            raise ValueError("copy_bw must be positive")
        if self.readahead_min_run < 1:
            raise ValueError("readahead_min_run must be >= 1")

    # ------------------------------------------------------------- predicates
    @property
    def enabled(self) -> bool:
        return self.mode != "none"

    @property
    def writeback(self) -> bool:
        return self.mode == "writeback"

    # ------------------------------------------------------------- sizing
    def resolve(self, node_spec, ppn: int = 1) -> "CacheConfig":
        """Fill a zero ``capacity`` from the node's memory model: each of
        the ``ppn`` processes sharing the node gets an equal slice of
        the NODE_MEMORY_FRACTION page-cache pool."""
        if self.capacity:
            return self
        budget = int(node_spec.memory * NODE_MEMORY_FRACTION) // max(1, ppn)
        return replace(
            self,
            capacity=max(budget, 64 * KiB),
            copy_bw=getattr(node_spec, "memory_copy_bw", self.copy_bw),
        )

    def copy_cost(self, nbytes: int) -> float:
        """Simulated seconds to memcpy ``nbytes`` (hit service, buffering)."""
        return nbytes / self.copy_bw
