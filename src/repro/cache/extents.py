"""Byte-extent interval map: the storage primitive under every cache.

An :class:`ExtentMap` keeps non-overlapping ``[start, start+nbytes)``
extents, each holding a :class:`~repro.daos.vos.payload.Payload`, sorted
by offset.  Inserts overwrite whatever they overlap (newest data wins)
and optionally merge with byte-adjacent neighbours — merging is what
turns a stream of small dirty writes into the large contiguous array
writes the write-behind flusher issues.

Payloads stay lazy: slicing is O(1) for pattern payloads and merging
goes through :func:`~repro.daos.vos.payload.concat_payloads`, which
coalesces adjacent pattern slices without materializing, so caching a
simulated 64 MiB block costs bookkeeping, not memory.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterator, List, Optional, Tuple

from repro.daos.vos.payload import Payload, concat_payloads


class Extent:
    """One cached interval. Ordered by start offset."""

    __slots__ = ("start", "payload", "tick")

    def __init__(self, start: int, payload: Payload, tick: int = 0):
        self.start = start
        self.payload = payload
        #: last-use LRU tick (maintained by the page cache)
        self.tick = tick

    @property
    def nbytes(self) -> int:
        return self.payload.nbytes

    @property
    def end(self) -> int:
        return self.start + self.payload.nbytes

    def __lt__(self, other: "Extent") -> bool:
        return self.start < other.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Extent[{self.start}, {self.end})"


class ExtentMap:
    """Sorted, non-overlapping extents with overwrite/merge semantics."""

    def __init__(self) -> None:
        self._extents: List[Extent] = []
        self.total_bytes = 0

    def __len__(self) -> int:
        return len(self._extents)

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._extents)

    # ------------------------------------------------------------- mutation
    def insert(self, start: int, payload: Payload,
               merge: bool = False, tick: int = 0) -> Extent:
        """Insert ``payload`` at ``start``; newest data wins on overlap.

        With ``merge=True`` byte-adjacent neighbours are coalesced into
        one extent (write-behind).  Returns the stored extent.
        """
        if payload.nbytes == 0:
            raise ValueError("cannot insert an empty extent")
        self.remove_range(start, payload.nbytes)
        ext = Extent(start, payload, tick)
        if merge:
            # swallow a left neighbour ending exactly at start...
            idx = bisect_left(self._extents, ext)
            if idx > 0 and self._extents[idx - 1].end == start:
                left = self._extents.pop(idx - 1)
                ext = Extent(
                    left.start,
                    concat_payloads([left.payload, payload]),
                    max(left.tick, tick),
                )
            # ...and a right neighbour starting exactly at our end.
            idx = bisect_left(self._extents, ext)
            if idx < len(self._extents) and self._extents[idx].start == ext.end:
                right = self._extents.pop(idx)
                ext = Extent(
                    ext.start,
                    concat_payloads([ext.payload, right.payload]),
                    max(ext.tick, right.tick),
                )
        insort(self._extents, ext)
        self.total_bytes += payload.nbytes
        return ext

    def remove_range(self, start: int, nbytes: int) -> int:
        """Drop [start, start+nbytes) from the map, trimming extents that
        straddle the boundary. Returns bytes removed."""
        if nbytes <= 0 or not self._extents:
            return 0
        stop = start + nbytes
        removed = 0
        keep: List[Extent] = []
        lo = self._first_overlapping(start)
        idx = lo
        while idx < len(self._extents):
            ext = self._extents[idx]
            if ext.start >= stop:
                break
            overlap_lo = max(ext.start, start)
            overlap_hi = min(ext.end, stop)
            removed += overlap_hi - overlap_lo
            if ext.start < start:
                keep.append(Extent(
                    ext.start,
                    ext.payload.slice(0, start - ext.start),
                    ext.tick,
                ))
            if ext.end > stop:
                keep.append(Extent(
                    stop,
                    ext.payload.slice(stop - ext.start, ext.nbytes),
                    ext.tick,
                ))
            idx += 1
        if removed or idx > lo:
            del self._extents[lo:idx]
            for ext in keep:
                insort(self._extents, ext)
            self.total_bytes -= removed
        return removed

    def remove(self, ext: Extent) -> bool:
        """Drop one extent object (used by LRU eviction)."""
        idx = bisect_left(self._extents, Extent(ext.start, ext.payload))
        while idx < len(self._extents) and self._extents[idx].start == ext.start:
            if self._extents[idx] is ext:
                del self._extents[idx]
                self.total_bytes -= ext.nbytes
                return True
            idx += 1
        return False

    def clear(self) -> int:
        dropped = self.total_bytes
        self._extents.clear()
        self.total_bytes = 0
        return dropped

    def pop_first_run(self, max_bytes: int) -> Optional[Tuple[int, Payload]]:
        """Pop the lowest-offset contiguous run of extents (flush unit),
        capped at ``max_bytes``. Returns (offset, payload) or None."""
        if not self._extents:
            return None
        parts: List[Payload] = []
        first = self._extents[0]
        start = first.start
        cursor = start
        taken = 0
        while self._extents and taken < max_bytes:
            ext = self._extents[0]
            if ext.start != cursor:
                break
            room = max_bytes - taken
            if ext.nbytes <= room:
                self._extents.pop(0)
                parts.append(ext.payload)
            else:
                parts.append(ext.payload.slice(0, room))
                ext.payload = ext.payload.slice(room, ext.nbytes)
                ext.start += room
            took = parts[-1].nbytes
            taken += took
            cursor += took
        self.total_bytes -= taken
        return start, concat_payloads(parts)

    # ------------------------------------------------------------- queries
    def _first_overlapping(self, start: int) -> int:
        """Index of the first extent whose end is > start."""
        lo = bisect_right(self._extents, Extent(start, _PROBE)) - 1
        if lo >= 0 and self._extents[lo].end > start:
            return lo
        return lo + 1

    def lookup(self, start: int, nbytes: int
               ) -> List[Tuple[int, int, Optional[Extent]]]:
        """Cover [start, start+nbytes) with cached segments and holes.

        Returns ``[(seg_start, seg_len, extent_or_None), ...]`` in offset
        order; ``None`` marks a hole the caller must fetch from below.
        Use ``ext.payload.slice(seg_start - ext.start, ...)`` for data.
        """
        out: List[Tuple[int, int, Optional[Extent]]] = []
        if nbytes <= 0:
            return out
        stop = start + nbytes
        cursor = start
        idx = self._first_overlapping(start)
        while cursor < stop and idx < len(self._extents):
            ext = self._extents[idx]
            if ext.start >= stop:
                break
            if ext.start > cursor:
                out.append((cursor, ext.start - cursor, None))
                cursor = ext.start
            seg_stop = min(ext.end, stop)
            out.append((cursor, seg_stop - cursor, ext))
            cursor = seg_stop
            idx += 1
        if cursor < stop:
            out.append((cursor, stop - cursor, None))
        return out

    def cached_bytes_in(self, start: int, nbytes: int) -> int:
        return sum(
            n for _s, n, ext in self.lookup(start, nbytes) if ext is not None
        )

    def spans(self) -> List[Tuple[int, int]]:
        """[(offset, nbytes), ...] of every extent, in offset order."""
        return [(e.start, e.nbytes) for e in self._extents]


class _Probe(Payload):
    """Zero-length payload used only for bisect probes."""

    __slots__ = ()

    @property
    def nbytes(self) -> int:
        return 0


_PROBE = _Probe()
