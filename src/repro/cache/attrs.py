"""TTL caches for metadata: attributes (stat) and dentries (lookup).

Models dfuse's ``--attr-time`` / ``--dentry-time`` caching: an entry is
served from DRAM until its simulated age exceeds the TTL, after which
the next access misses and refreshes from the store.  Time comes from
``sim.now`` — fully deterministic — and explicit invalidation (unlink,
rename, a local write changing the size) drops entries immediately so
the caller never sees its own operations stale.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple


class TtlCache:
    """Tiny deterministic (key -> value) cache with per-entry expiry."""

    def __init__(self, sim, ttl: float, metrics_prefix: str = "cache.attr",
                 labels=None):
        self.sim = sim
        self.ttl = ttl
        self.prefix = metrics_prefix
        if labels:
            from repro.obs.metrics import format_metric_name
            self._label_suffix = format_metric_name("", labels)
        else:
            self._label_suffix = ""
        self._entries: Dict[Hashable, Tuple[float, object]] = {}

    def _incr(self, name: str) -> None:
        m = self.sim.metrics
        if m is not None:
            m.incr(f"{self.prefix}.{name}{self._label_suffix}")

    def get(self, key: Hashable) -> Optional[object]:
        """Value if cached and fresh, else None (expired entries drop)."""
        entry = self._entries.get(key)
        if entry is None:
            self._incr("misses")
            return None
        stamp, value = entry
        if self.sim.now - stamp > self.ttl:
            del self._entries[key]
            self._incr("expirations")
            self._incr("misses")
            return None
        self._incr("hits")
        return value

    def put(self, key: Hashable, value: object) -> None:
        self._entries[key] = (self.sim.now, value)

    def invalidate(self, key: Hashable) -> None:
        if self._entries.pop(key, None) is not None:
            self._incr("invalidations")

    def invalidate_prefix(self, prefix: str) -> None:
        """Drop every string key under a path prefix (rename/rmdir)."""
        dead = [
            k for k in self._entries
            if isinstance(k, str) and (k == prefix or k.startswith(prefix + "/"))
        ]
        for k in dead:
            del self._entries[k]
        if dead:
            self._incr("invalidations")

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
