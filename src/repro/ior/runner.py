"""The IOR SPMD driver.

``run_ior`` boots the workload on a cluster: prepares the storage
environment (fresh container / test directory), launches one simulated
MPI rank per process, runs the write and read phases with IOR's barrier
and timing discipline, and reduces the result exactly as IOR does —
phase time = last rank's completion minus the synchronized start.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.cluster.builder import Cluster, LustreCluster
from repro.daos.eq import EventQueue
from repro.ior.backends import make_backend
from repro.ior.config import IorParams
from repro.ior.env import DaosIorEnv, LustreIorEnv, RankStorage
from repro.ior.pattern import make_payload, verify_payload
from repro.ior.report import IorResult, LatencySummary, PhaseResult
from repro.mpi import MpiWorld
from repro.obs.breakdown import phase_layer_breakdown
from repro.obs.tracer import NOOP_SPAN


def run_ior(
    cluster,
    params: IorParams,
    ppn: int = 16,
    client_nodes: Optional[int] = None,
    env=None,
    limit: float = 1e7,
) -> IorResult:
    """Run one IOR invocation on a booted cluster; returns the result.

    ``cluster`` may be a DAOS :class:`~repro.cluster.builder.Cluster` or
    a :class:`~repro.cluster.builder.LustreCluster` (POSIX/MPIIO/HDF5
    apis only for the latter).
    """
    nodes = cluster.clients[: client_nodes or len(cluster.clients)]
    if env is None:
        if isinstance(cluster, LustreCluster):
            env = LustreIorEnv(cluster, params)
        else:
            env = DaosIorEnv(cluster, params)
    cluster.run(env.prepare())

    world = MpiWorld(cluster.sim, cluster.fabric, nodes, ppn)
    rank_results = world.run_to_completion(
        lambda ctx: _rank_main(ctx, params, env), limit=limit
    )
    result = IorResult(
        params=params,
        nprocs=world.nprocs,
        client_nodes=len(nodes),
    )
    result.phases = rank_results[0]
    _attach_observability(result, cluster.sim, world.nprocs)
    return result


def _attach_observability(result: IorResult, sim, nprocs: int) -> None:
    """Decorate the result with trace/metrics-derived detail when the
    cluster runs observed (no-op otherwise)."""
    tracer = getattr(sim, "tracer", None)
    if tracer is not None:
        for phase in result.phases:
            phase.layer_seconds = phase_layer_breakdown(
                tracer.spans, phase.op, phase.repetition, nprocs, phase.seconds
            )
    metrics = getattr(sim, "metrics", None)
    if metrics is not None:
        for op in ("write", "read"):
            for rank in range(nprocs):
                hist = metrics.histograms.get(
                    f"ior.{op}.latency{{rank={rank}}}"
                )
                if hist is None or hist.count == 0:
                    continue
                result.latency.append(
                    LatencySummary(
                        op=op,
                        rank=rank,
                        count=hist.count,
                        mean=hist.mean,
                        p50=hist.p50,
                        p95=hist.p95,
                        p99=hist.p99,
                    )
                )
    timeline = getattr(sim, "timeline", None)
    if timeline is not None:
        result.timeline = timeline.store


def _rank_main(ctx, params: IorParams, env) -> Generator:
    storage: RankStorage = yield from env.rank_setup(ctx)
    backend = make_backend(params, ctx, storage)
    phases: List[PhaseResult] = []

    for repetition in range(params.repetitions):
        if params.write:
            phase = yield from _phase_write(ctx, params, backend, repetition)
            phases.append(phase)
        if params.read:
            phase = yield from _phase_read(ctx, params, backend, repetition)
            phases.append(phase)
    return phases


def _ior_op_span(ctx, name: str, repetition: int, offset: int):
    tracer = ctx.sim.tracer
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(
        name,
        "ior",
        node=ctx.node.name,
        attrs={"rank": ctx.rank, "rep": repetition, "offset": offset},
    )


def _use_async(params: IorParams, backend) -> bool:
    # apis that pipeline internally (MPIIO/HDF5 collective aggregators)
    # report supports_async but not pipelined; the runner's per-rank
    # event queue only drives backends whose ops pipeline end to end
    return params.aio_queue_depth > 0 and backend.pipelined


def _reap(ctx, op: str, event) -> None:
    """Account one reaped event; re-raises the operation's error, which
    is when a failed async op surfaces (like checking ``ev.ev_error``)."""
    event.result
    metrics = ctx.sim.metrics
    if metrics is not None:
        metrics.observe(f"ior.{op}.latency{{rank={ctx.rank}}}", event.elapsed)
        metrics.observe(f"ior.{op}.latency", event.elapsed)


def _phase_write(ctx, params: IorParams, backend, repetition: int) -> Generator:
    path = params.file_path(ctx.rank)
    sim = ctx.sim
    metrics = sim.metrics
    handle = yield from backend.open(path, create=True)
    yield from ctx.barrier()
    start = sim.now
    if _use_async(params, backend):
        yield from _pipelined_write(ctx, params, backend, handle, repetition)
    else:
        for segment in range(params.segments):
            for transfer in range(params.transfers_per_block):
                offset = params.offset(ctx.size, ctx.rank, segment, transfer)
                payload = make_payload(path, offset, params.transfer_size)
                op_start = sim.now
                with _ior_op_span(ctx, "ior.write", repetition, offset):
                    yield from backend.write(handle, offset, payload)
                if metrics is not None:
                    elapsed = sim.now - op_start
                    metrics.observe(
                        f"ior.write.latency{{rank={ctx.rank}}}", elapsed
                    )
                    metrics.observe("ior.write.latency", elapsed)
    if params.fsync:
        yield from backend.fsync(handle)
    yield from backend.close(handle)
    end = yield from ctx.allreduce(ctx.sim.now, op=max)
    return PhaseResult(
        op="write",
        repetition=repetition,
        seconds=end - start,
        nbytes=params.total_bytes(ctx.size),
    )


def _pipelined_write(ctx, params: IorParams, backend, handle,
                     repetition: int) -> Generator:
    """Async write loop: keep up to ``aio_queue_depth`` transfers in
    flight through an event queue, reaping completions opportunistically
    and draining the tail before the phase's fsync/close."""
    path = params.file_path(ctx.rank)
    eq = EventQueue(ctx.sim, depth=params.aio_queue_depth,
                    name=f"ior.r{ctx.rank}.w{repetition}")
    for segment in range(params.segments):
        for transfer in range(params.transfers_per_block):
            offset = params.offset(ctx.size, ctx.rank, segment, transfer)
            payload = make_payload(path, offset, params.transfer_size)
            yield from backend.write_nb(eq, handle, offset, payload,
                                        repetition)
            for event in eq.try_reap():
                _reap(ctx, "write", event)
    for event in (yield from eq.drain()):
        _reap(ctx, "write", event)
    return None


def _phase_read(ctx, params: IorParams, backend, repetition: int) -> Generator:
    # -C: read the block written by rank+1 (and, file-per-process, that
    # rank's file), defeating any locality between the phases.
    read_rank = (ctx.rank + 1) % ctx.size if params.reorder_tasks else ctx.rank
    path = params.file_path(read_rank)
    handle = yield from backend.open(path, create=False)
    errors = 0
    sim = ctx.sim
    metrics = sim.metrics
    yield from ctx.barrier()
    start = sim.now
    if _use_async(params, backend):
        errors = yield from _pipelined_read(
            ctx, params, backend, handle, repetition, read_rank, path
        )
    else:
        for segment in range(params.segments):
            for transfer in range(params.transfers_per_block):
                offset = params.offset(ctx.size, read_rank, segment, transfer)
                op_start = sim.now
                with _ior_op_span(ctx, "ior.read", repetition, offset):
                    payload = yield from backend.read(
                        handle, offset, params.transfer_size
                    )
                if metrics is not None:
                    elapsed = sim.now - op_start
                    metrics.observe(
                        f"ior.read.latency{{rank={ctx.rank}}}", elapsed
                    )
                    metrics.observe("ior.read.latency", elapsed)
                if params.verify:
                    if (
                        payload.nbytes != params.transfer_size
                        or not verify_payload(path, offset, payload)
                    ):
                        errors += 1
    yield from backend.close(handle)
    end = yield from ctx.allreduce(ctx.sim.now, op=max)
    total_errors = yield from ctx.allreduce(errors, op=lambda a, b: a + b)
    return PhaseResult(
        op="read",
        repetition=repetition,
        seconds=end - start,
        nbytes=params.total_bytes(ctx.size),
        verify_errors=total_errors,
    )


def _pipelined_read(ctx, params: IorParams, backend, handle,
                    repetition: int, read_rank: int, path: str) -> Generator:
    """Async read loop; verification happens at reap time, once the
    payload is available on the event."""
    eq = EventQueue(ctx.sim, depth=params.aio_queue_depth,
                    name=f"ior.r{ctx.rank}.r{repetition}")
    offsets = {}
    errors = 0

    def check(event) -> int:
        _reap(ctx, "read", event)
        offset = offsets.pop(event.eid)
        if not params.verify:
            return 0
        payload = event.result
        if payload.nbytes != params.transfer_size or not verify_payload(
            path, offset, payload
        ):
            return 1
        return 0

    for segment in range(params.segments):
        for transfer in range(params.transfers_per_block):
            offset = params.offset(ctx.size, read_rank, segment, transfer)
            event = yield from backend.read_nb(
                eq, handle, offset, params.transfer_size, repetition
            )
            offsets[event.eid] = offset
            for done in eq.try_reap():
                errors += check(done)
    for done in (yield from eq.drain()):
        errors += check(done)
    return errors
