"""The IOR SPMD driver.

``run_ior`` boots the workload on a cluster: prepares the storage
environment (fresh container / test directory), launches one simulated
MPI rank per process, runs the write and read phases with IOR's barrier
and timing discipline, and reduces the result exactly as IOR does —
phase time = last rank's completion minus the synchronized start.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.cluster.builder import Cluster, LustreCluster
from repro.ior.backends import make_backend
from repro.ior.config import IorParams
from repro.ior.env import DaosIorEnv, LustreIorEnv, RankStorage
from repro.ior.pattern import make_payload, verify_payload
from repro.ior.report import IorResult, PhaseResult
from repro.mpi import MpiWorld


def run_ior(
    cluster,
    params: IorParams,
    ppn: int = 16,
    client_nodes: Optional[int] = None,
    env=None,
    limit: float = 1e7,
) -> IorResult:
    """Run one IOR invocation on a booted cluster; returns the result.

    ``cluster`` may be a DAOS :class:`~repro.cluster.builder.Cluster` or
    a :class:`~repro.cluster.builder.LustreCluster` (POSIX/MPIIO/HDF5
    apis only for the latter).
    """
    nodes = cluster.clients[: client_nodes or len(cluster.clients)]
    if env is None:
        if isinstance(cluster, LustreCluster):
            env = LustreIorEnv(cluster, params)
        else:
            env = DaosIorEnv(cluster, params)
    cluster.run(env.prepare())

    world = MpiWorld(cluster.sim, cluster.fabric, nodes, ppn)
    rank_results = world.run_to_completion(
        lambda ctx: _rank_main(ctx, params, env), limit=limit
    )
    result = IorResult(
        params=params,
        nprocs=world.nprocs,
        client_nodes=len(nodes),
    )
    result.phases = rank_results[0]
    return result


def _rank_main(ctx, params: IorParams, env) -> Generator:
    storage: RankStorage = yield from env.rank_setup(ctx)
    backend = make_backend(params, ctx, storage)
    phases: List[PhaseResult] = []

    for repetition in range(params.repetitions):
        if params.write:
            phase = yield from _phase_write(ctx, params, backend, repetition)
            phases.append(phase)
        if params.read:
            phase = yield from _phase_read(ctx, params, backend, repetition)
            phases.append(phase)
    return phases


def _phase_write(ctx, params: IorParams, backend, repetition: int) -> Generator:
    path = params.file_path(ctx.rank)
    handle = yield from backend.open(path, create=True)
    yield from ctx.barrier()
    start = ctx.sim.now
    for segment in range(params.segments):
        for transfer in range(params.transfers_per_block):
            offset = params.offset(ctx.size, ctx.rank, segment, transfer)
            payload = make_payload(path, offset, params.transfer_size)
            yield from backend.write(handle, offset, payload)
    if params.fsync:
        yield from backend.fsync(handle)
    yield from backend.close(handle)
    end = yield from ctx.allreduce(ctx.sim.now, op=max)
    return PhaseResult(
        op="write",
        repetition=repetition,
        seconds=end - start,
        nbytes=params.total_bytes(ctx.size),
    )


def _phase_read(ctx, params: IorParams, backend, repetition: int) -> Generator:
    # -C: read the block written by rank+1 (and, file-per-process, that
    # rank's file), defeating any locality between the phases.
    read_rank = (ctx.rank + 1) % ctx.size if params.reorder_tasks else ctx.rank
    path = params.file_path(read_rank)
    handle = yield from backend.open(path, create=False)
    errors = 0
    yield from ctx.barrier()
    start = ctx.sim.now
    for segment in range(params.segments):
        for transfer in range(params.transfers_per_block):
            offset = params.offset(ctx.size, read_rank, segment, transfer)
            payload = yield from backend.read(
                handle, offset, params.transfer_size
            )
            if params.verify:
                if payload.nbytes != params.transfer_size or not verify_payload(
                    path, offset, payload
                ):
                    errors += 1
    yield from backend.close(handle)
    end = yield from ctx.allreduce(ctx.sim.now, op=max)
    total_errors = yield from ctx.allreduce(errors, op=lambda a, b: a + b)
    return PhaseResult(
        op="read",
        repetition=repetition,
        seconds=end - start,
        nbytes=params.total_bytes(ctx.size),
        verify_errors=total_errors,
    )
