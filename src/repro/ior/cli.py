"""An IOR-compatible command line for the simulated stack.

Accepts the subset of real-IOR flags this port implements, boots a
cluster, runs the workload and prints the familiar result block::

    python -m repro.ior -a DFS -F -b 64m -t 1m -N 4 --ppn 16 -O oclass=S2
    python -m repro.ior -a MPIIO -b 16m -t 1m -c --lustre

Cluster geometry flags (``-N/--nodes``, ``--ppn``, ``--servers``,
``--lustre``) replace the job launcher a real IOR run would use.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.ior.backends import available_apis, backend_class
from repro.ior.config import IorParams
from repro.ior.runner import run_ior


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ior(sim)",
        description="IOR on the simulated DAOS / Lustre stack",
    )
    parser.add_argument("-a", "--api", choices=available_apis(),
                        default="DFS")
    parser.add_argument("-b", "--block-size", default="16m")
    parser.add_argument("-t", "--transfer-size", default="1m")
    parser.add_argument("-s", "--segments", type=int, default=1)
    parser.add_argument("-F", "--file-per-proc", action="store_true")
    parser.add_argument("-c", "--collective", action="store_true")
    parser.add_argument("-e", "--fsync", action="store_true")
    parser.add_argument("-C", "--reorder", action="store_true", default=True)
    parser.add_argument("--no-reorder", dest="reorder", action="store_false")
    parser.add_argument("-w", "--write-only", action="store_true")
    parser.add_argument("-r", "--read-only", action="store_true")
    parser.add_argument("-R", "--verify", action="store_true")
    parser.add_argument("-i", "--repetitions", type=int, default=1)
    parser.add_argument("--interleaved", action="store_true",
                        help="io500-hard style transfer interleave")
    parser.add_argument("-O", "--option", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="backend options: oclass=S2, chunk_size=1m, "
                             "cb_buffer=16m")
    # cluster geometry
    parser.add_argument("-N", "--nodes", type=int, default=2,
                        help="client nodes")
    parser.add_argument("--ppn", type=int, default=16)
    parser.add_argument("--servers", type=int, default=8)
    parser.add_argument("--lustre", action="store_true",
                        help="run against the Lustre baseline instead")
    parser.add_argument("--cache-mode", choices=("none", "readonly",
                                                 "writeback"),
                        default="none",
                        help="client-side caching tier (DAOS only): data "
                             "page cache + attr/dentry TTLs (readonly), "
                             "plus write-behind aggregation (writeback)")
    parser.add_argument("--aio-depth", type=int, default=0, metavar="N",
                        help="async event-queue depth: keep up to N "
                             "transfers in flight per rank (0 = blocking "
                             "loop; >1 needs an async-capable api)")
    parser.add_argument("--seed", type=int, default=0xDA05)
    # observability
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write a Chrome trace-event JSON of the run "
                             "(open at ui.perfetto.dev)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write a metrics dump (.prom/.txt = Prometheus "
                             "text, anything else = JSON snapshot)")
    parser.add_argument("--timeline-out", metavar="PATH",
                        help="write the run's time-series JSON (sim-time "
                             "metrics scraper; implies metrics)")
    parser.add_argument("--timeline-interval", type=float, default=0.01,
                        metavar="SECONDS",
                        help="scrape interval in simulated seconds "
                             "(default 0.01)")
    parser.add_argument("--slo", action="append", default=[],
                        metavar="RULE",
                        help="SLO/stall rule evaluated per scrape window, "
                             "e.g. 'ior.write.latency p99 < 2e-3 over 3 "
                             "windows' or 'stall fabric.xfer.bytes while "
                             "client.io.inflight over 2 windows'; "
                             "repeatable (default: the stall watchdog)")
    return parser


def params_from_args(args) -> IorParams:
    options = {}
    for item in args.option:
        if "=" not in item:
            raise SystemExit(f"bad -O option {item!r} (need KEY=VALUE)")
        key, value = item.split("=", 1)
        options[key] = value
    if args.write_only and args.read_only:
        raise SystemExit("-w and -r are mutually exclusive here")
    return IorParams(
        api=args.api,
        block_size=args.block_size,
        transfer_size=args.transfer_size,
        segments=args.segments,
        file_per_proc=args.file_per_proc,
        interleaved=args.interleaved,
        collective=args.collective,
        fsync=args.fsync,
        reorder_tasks=args.reorder,
        write=not args.read_only,
        read=not args.write_only,
        verify=args.verify,
        repetitions=args.repetitions,
        oclass=options.get("oclass"),
        chunk_size=options.get("chunk_size", "1m"),
        cb_buffer=options.get("cb_buffer", "16m"),
        cache_mode=getattr(args, "cache_mode", "none"),
        aio_queue_depth=getattr(args, "aio_depth", 0),
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    params = params_from_args(args)
    if args.read_only and not args.lustre:
        # a read-only run needs pre-existing data; run a silent write pass
        params.write = True
    if args.lustre:
        if backend_class(params.api).needs_daos:
            raise SystemExit(f"api {params.api} requires DAOS (drop --lustre)")
        if params.cache_mode != "none":
            raise SystemExit("--cache-mode applies to the DAOS stack only")
        from repro.cluster import build_lustre_cluster

        cluster = build_lustre_cluster(
            server_nodes=args.servers, client_nodes=args.nodes,
            seed=args.seed,
        )
    else:
        from repro.cluster import build_cluster

        cluster = build_cluster(
            server_nodes=args.servers, client_nodes=args.nodes,
            seed=args.seed,
        )
    if args.trace_out or args.metrics_out or args.timeline_out:
        cluster.observe(
            tracing=bool(args.trace_out),
            metrics=bool(args.metrics_out),
            timeline_interval=(
                args.timeline_interval if args.timeline_out else None
            ),
            slo_rules=args.slo or None,
        )
    result = run_ior(cluster, params, ppn=args.ppn)
    print(result.summary())
    if args.trace_out:
        from repro.obs import write_chrome_trace

        write_chrome_trace(cluster.sim.tracer, args.trace_out,
                           timeline=getattr(result, "timeline", None))
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        from repro.obs import write_metrics

        write_metrics(cluster.sim.metrics, args.metrics_out)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    if args.timeline_out:
        from repro.obs import write_timeline

        write_timeline(cluster.sim.timeline.store, args.timeline_out)
        print(f"timeline written to {args.timeline_out}", file=sys.stderr)
    return 1 if result.verify_errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via module main
    raise SystemExit(main())
