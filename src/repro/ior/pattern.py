"""Verification data patterns.

Every byte IOR writes is a pure function of (file path, absolute file
offset), so any rank can verify any region after task reordering without
shipping reference buffers around — and, thanks to
:class:`~repro.daos.vos.payload.PatternPayload`, without materializing
the data at all unless a comparison actually fails.
"""

from __future__ import annotations

import hashlib

from repro.daos.vos.payload import Payload, PatternPayload


def file_seed(path: str) -> int:
    digest = hashlib.blake2b(path.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def make_payload(path: str, offset: int, nbytes: int) -> PatternPayload:
    return PatternPayload(seed=file_seed(path), origin=offset, nbytes=nbytes)


def verify_payload(path: str, offset: int, payload: Payload) -> bool:
    expected = make_payload(path, offset, payload.nbytes)
    return payload == expected
