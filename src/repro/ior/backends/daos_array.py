"""DAOS backend: the native array API, no filesystem at all.

This is the paper's stated future work ("extending benchmarking to use
the DAOS API rather than DFS or DFuse POSIX-based backends") — extension
experiment E1. Test "files" are DAOS arrays; a catalog KV object at a
reserved OID maps IOR paths to array OIDs so reordered readers can find
other ranks' arrays, standing in for the namespace a filesystem would
provide.
"""

from __future__ import annotations

from typing import Generator

from repro.daos.array import DaosArray
from repro.daos.kv import DaosKV
from repro.daos.objid import ObjId
from repro.daos.oclass import S1, oclass_by_name
from repro.errors import DerNonexist
from repro.ior.backends.base import Backend, register_backend

#: reserved OID (below RESERVED_OIDS) for the path->oid catalog
CATALOG_LO = 2


class DaosArrayBackend(Backend):
    name = "DAOS"
    # daos_array_write/read take a daos_event_t; concurrent ops on one
    # array pipeline through the object layer's coalescing streams
    supports_async = True
    needs_daos = True

    def _catalog(self) -> DaosKV:
        return DaosKV.open(self.storage.cont, ObjId.generate(S1, lo=CATALOG_LO))

    def _oclass(self):
        name = self.params.oclass or self.storage.cont.props.get("oclass", "SX")
        return oclass_by_name(name)

    def open(self, path: str, create: bool) -> Generator:
        catalog = self._catalog()
        if create and (self.params.file_per_proc or self.ctx.rank == 0):
            array = yield from DaosArray.create(
                self.storage.cont,
                cell_size=1,
                chunk_cells=self.params.chunk_size,
                oclass=self._oclass(),
            )
            yield from catalog.put(path, (array.obj.oid.hi, array.obj.oid.lo))
            if not self.params.file_per_proc:
                yield from self.ctx.barrier()
            catalog.close()
            return array
        if create and not self.params.file_per_proc:
            yield from self.ctx.barrier()  # wait for rank 0's create
        hi_lo = yield from catalog.get(path)
        catalog.close()
        array = yield from DaosArray.open(
            self.storage.cont, ObjId(hi_lo[0], hi_lo[1])
        )
        return array

    def write(self, handle: DaosArray, offset: int, payload) -> Generator:
        return (yield from handle.write(offset, payload))

    def read(self, handle: DaosArray, offset: int, nbytes: int) -> Generator:
        return (yield from handle.read(offset, nbytes))

    def fsync(self, handle: DaosArray) -> Generator:
        yield 0.0
        return None

    def close(self, handle: DaosArray) -> Generator:
        handle.close()
        yield 0.0
        return None

    def remove(self, path: str) -> Generator:
        catalog = self._catalog()
        try:
            hi_lo = yield from catalog.get(path)
        except DerNonexist:
            catalog.close()
            return None
        yield from catalog.remove(path)
        catalog.close()
        obj = self.storage.cont.open_object(ObjId(hi_lo[0], hi_lo[1]))
        yield from obj.punch_object()
        obj.close()
        return None


register_backend(DaosArrayBackend.name, DaosArrayBackend)
