"""The abstract I/O interface IOR drives, plus the backend registry."""

from __future__ import annotations

from typing import Generator

from repro.ior.config import IorParams


class Backend:
    """Per-rank I/O interface. All methods are task helpers."""

    name = "?"

    def __init__(self, params: IorParams, ctx, storage):
        self.params = params
        self.ctx = ctx
        self.storage = storage

    def open(self, path: str, create: bool) -> Generator:
        """Open (creating when asked) the test file; returns a handle."""
        raise NotImplementedError

    def write(self, handle, offset: int, payload) -> Generator:
        raise NotImplementedError

    def read(self, handle, offset: int, nbytes: int) -> Generator:
        raise NotImplementedError

    def fsync(self, handle) -> Generator:
        raise NotImplementedError

    def close(self, handle) -> Generator:
        raise NotImplementedError

    def remove(self, path: str) -> Generator:
        """Best-effort cleanup between repetitions (unused by default)."""
        yield 0.0
        return None


def make_backend(params: IorParams, ctx, storage) -> Backend:
    from repro.ior.backends.daos_array import DaosArrayBackend
    from repro.ior.backends.dfs import DfsBackend
    from repro.ior.backends.hdf5 import Hdf5Backend
    from repro.ior.backends.mpiio import MpiioBackend
    from repro.ior.backends.posix import PosixBackend

    registry = {
        "POSIX": PosixBackend,
        "DFS": DfsBackend,
        "MPIIO": MpiioBackend,
        "HDF5": Hdf5Backend,
        "DAOS": DaosArrayBackend,
    }
    return registry[params.api](params, ctx, storage)
