"""The abstract I/O interface IOR drives, plus the backend registry.

Backends register themselves declaratively::

    class MyBackend(Backend):
        name = "MYAPI"
        supports_async = True

    register_backend(MyBackend.name, MyBackend)

CLI ``-a`` choices and :class:`~repro.ior.config.IorParams` validation
are derived from the registry and each backend's capability flags —
adding an interface never touches the driver, the CLI or the config
module (AIORI's table of function pointers, made a registry).
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple, Type


class Backend:
    """Per-rank I/O interface. All methods are task helpers."""

    name = "?"
    # ------------------------------------------------------- capability flags
    #: whether queue depths > 1 are meaningful for this api at all (the
    #: --aio-depth validation; see also :meth:`check_params` for
    #: cross-field constraints and :attr:`pipelined` for whether the
    #: *runner* drives transfers through an event queue)
    supports_async = False
    #: whether ``-c`` (collective I/O) is meaningful for this api
    supports_collective = False
    #: whether the api needs a DAOS container (rejected under --lustre)
    needs_daos = False

    def __init__(self, params, ctx, storage):
        self.params = params
        self.ctx = ctx
        self.storage = storage

    @classmethod
    def check_params(cls, params) -> None:
        """Hook: backend-specific cross-field validation, called from
        ``IorParams.__post_init__`` after the flag-derived checks."""
        return None

    @property
    def pipelined(self) -> bool:
        """Whether the runner's phase loops should pipeline transfers
        through a per-rank event queue. Defaults to the async capability;
        backends that pipeline *internally* (collective MPI-IO's
        aggregator queues) override this to False."""
        return self.supports_async

    def open(self, path: str, create: bool) -> Generator:
        """Open (creating when asked) the test file; returns a handle."""
        raise NotImplementedError

    def write(self, handle, offset: int, payload) -> Generator:
        raise NotImplementedError

    def read(self, handle, offset: int, nbytes: int) -> Generator:
        raise NotImplementedError

    def fsync(self, handle) -> Generator:
        raise NotImplementedError

    def close(self, handle) -> Generator:
        raise NotImplementedError

    def remove(self, path: str) -> Generator:
        """Best-effort cleanup between repetitions (unused by default)."""
        yield 0.0
        return None

    # -------------------------------------------------- async (event queue)
    def write_nb(self, eq, handle, offset: int, payload,
                 repetition: int = 0) -> Generator:
        """Task helper: launch the write on event queue ``eq`` (blocking
        while its in-flight window is full); returns the Event."""
        if not self.pipelined:
            raise NotImplementedError(f"{self.name} backend is blocking-only")
        op = self._spanned_op(
            "ior.write", repetition, offset, self.write(handle, offset, payload)
        )
        return (yield from eq.submit(op, name=f"{self.name}.write@{offset}"))

    def read_nb(self, eq, handle, offset: int, nbytes: int,
                repetition: int = 0) -> Generator:
        """Task helper: launch the read on event queue ``eq``; returns
        the Event (result is the payload once reaped)."""
        if not self.pipelined:
            raise NotImplementedError(f"{self.name} backend is blocking-only")
        op = self._spanned_op(
            "ior.read", repetition, offset, self.read(handle, offset, nbytes)
        )
        return (yield from eq.submit(op, name=f"{self.name}.read@{offset}"))

    def _spanned_op(self, name: str, repetition: int, offset: int,
                    op: Generator) -> Generator:
        """Wrap ``op`` in an ior-layer span opened inside the event's own
        task, so the operation's spans nest under it (the tracer keeps
        per-task span stacks — the submitter's stack must stay clean)."""
        tracer = self.ctx.sim.tracer
        if tracer is None:
            return (yield from op)
        with tracer.span(
            name,
            "ior",
            node=self.ctx.node.name,
            attrs={"rank": self.ctx.rank, "rep": repetition,
                   "offset": offset, "nb": True},
        ):
            return (yield from op)


# ----------------------------------------------------------------- registry

_REGISTRY: Dict[str, Type[Backend]] = {}


def register_backend(name: str, cls: Type[Backend]) -> Type[Backend]:
    """Add a backend class to the api registry under ``name``.
    Duplicate names are rejected — two backends claiming one api is
    always a bug, and shadowing would make ``-a`` ambiguous."""
    if not name or name == "?":
        raise ValueError(f"backend {cls.__name__} must set a name")
    if name in _REGISTRY:
        raise ValueError(
            f"backend api {name!r} is already registered "
            f"(by {_REGISTRY[name].__name__})"
        )
    if not (isinstance(cls, type) and issubclass(cls, Backend)):
        raise ValueError(f"backend {name!r} must be a Backend subclass")
    _REGISTRY[name] = cls
    return cls


def unregister_backend(name: str) -> None:
    """Remove a registered api (tests and out-of-tree plugins only)."""
    _REGISTRY.pop(name, None)


def available_apis() -> Tuple[str, ...]:
    """Registered api names, in registration order (the CLI -a choices)."""
    return tuple(_REGISTRY)


def backend_class(name: str) -> Type[Backend]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"api must be one of {tuple(_REGISTRY)}, got {name!r}"
        ) from None


def make_backend(params, ctx, storage) -> Backend:
    return backend_class(params.api)(params, ctx, storage)
