"""The abstract I/O interface IOR drives, plus the backend registry."""

from __future__ import annotations

from typing import Generator

from repro.ior.config import IorParams


class Backend:
    """Per-rank I/O interface. All methods are task helpers."""

    name = "?"
    #: whether write/read ops on one handle may run concurrently (the
    #: event-queue pipelining path); blocking-only backends leave this
    #: False and the runner keeps its classic one-at-a-time loop
    supports_async = False

    def __init__(self, params: IorParams, ctx, storage):
        self.params = params
        self.ctx = ctx
        self.storage = storage

    def open(self, path: str, create: bool) -> Generator:
        """Open (creating when asked) the test file; returns a handle."""
        raise NotImplementedError

    def write(self, handle, offset: int, payload) -> Generator:
        raise NotImplementedError

    def read(self, handle, offset: int, nbytes: int) -> Generator:
        raise NotImplementedError

    def fsync(self, handle) -> Generator:
        raise NotImplementedError

    def close(self, handle) -> Generator:
        raise NotImplementedError

    def remove(self, path: str) -> Generator:
        """Best-effort cleanup between repetitions (unused by default)."""
        yield 0.0
        return None

    # -------------------------------------------------- async (event queue)
    def write_nb(self, eq, handle, offset: int, payload,
                 repetition: int = 0) -> Generator:
        """Task helper: launch the write on event queue ``eq`` (blocking
        while its in-flight window is full); returns the Event."""
        if not self.supports_async:
            raise NotImplementedError(f"{self.name} backend is blocking-only")
        op = self._spanned_op(
            "ior.write", repetition, offset, self.write(handle, offset, payload)
        )
        return (yield from eq.submit(op, name=f"{self.name}.write@{offset}"))

    def read_nb(self, eq, handle, offset: int, nbytes: int,
                repetition: int = 0) -> Generator:
        """Task helper: launch the read on event queue ``eq``; returns
        the Event (result is the payload once reaped)."""
        if not self.supports_async:
            raise NotImplementedError(f"{self.name} backend is blocking-only")
        op = self._spanned_op(
            "ior.read", repetition, offset, self.read(handle, offset, nbytes)
        )
        return (yield from eq.submit(op, name=f"{self.name}.read@{offset}"))

    def _spanned_op(self, name: str, repetition: int, offset: int,
                    op: Generator) -> Generator:
        """Wrap ``op`` in an ior-layer span opened inside the event's own
        task, so the operation's spans nest under it (the tracer keeps
        per-task span stacks — the submitter's stack must stay clean)."""
        tracer = self.ctx.sim.tracer
        if tracer is None:
            return (yield from op)
        with tracer.span(
            name,
            "ior",
            node=self.ctx.node.name,
            attrs={"rank": self.ctx.rank, "rep": repetition,
                   "offset": offset, "nb": True},
        ):
            return (yield from op)


def make_backend(params: IorParams, ctx, storage) -> Backend:
    from repro.ior.backends.daos_array import DaosArrayBackend
    from repro.ior.backends.dfs import DfsBackend
    from repro.ior.backends.hdf5 import Hdf5Backend
    from repro.ior.backends.mpiio import MpiioBackend
    from repro.ior.backends.posix import PosixBackend

    registry = {
        "POSIX": PosixBackend,
        "DFS": DfsBackend,
        "MPIIO": MpiioBackend,
        "HDF5": Hdf5Backend,
        "DAOS": DaosArrayBackend,
    }
    return registry[params.api](params, ctx, storage)
