"""MPI-IO backend over the DFuse mount (ROMIO ufs driver), matching the
paper's "MPI-IO" lines. ``collective=True`` switches the data calls to
two-phase collective buffering; ``--aio-depth N`` (collective only)
pipelines the aggregator-side storage calls through an event queue
inside each collective call."""

from __future__ import annotations

from typing import Generator

from repro.ior.backends.base import Backend, register_backend
from repro.mpiio import MpiFile, UfsDriver
from repro.obs.tracer import NOOP_SPAN


class MpiioBackend(Backend):
    name = "MPIIO"
    supports_collective = True
    # async depth applies to the collective path: aggregators pipeline
    # their cb-buffer transfers inside each write_at_all/read_at_all
    supports_async = True

    @classmethod
    def check_params(cls, params) -> None:
        if params.aio_queue_depth > 1 and not params.collective:
            raise ValueError(
                "MPIIO async pipelining rides the two-phase aggregators; "
                "it requires collective I/O (-c)"
            )

    @property
    def pipelined(self) -> bool:
        # pipelining happens inside the collective call, not the runner
        return False

    def _span(self, name: str, **attrs):
        tracer = self.ctx.sim.tracer
        if tracer is None:
            return NOOP_SPAN
        return tracer.span(
            name, "mpiio", node=self.ctx.node.name, attrs=attrs or None
        )

    def open(self, path: str, create: bool) -> Generator:
        driver = UfsDriver(self.storage.mount)
        handle = yield from MpiFile.open(
            self.ctx, path, driver, create=create,
            cb_buffer=self.params.cb_buffer,
            aio_depth=(
                self.params.aio_queue_depth if self.params.collective else 0
            ),
        )
        return handle

    def write(self, handle, offset: int, payload) -> Generator:
        collective = self.params.collective
        with self._span(
            "mpiio.write_at_all" if collective else "mpiio.write_at",
            offset=offset,
            nbytes=payload.nbytes,
        ):
            if collective:
                return (yield from handle.write_at_all(offset, payload))
            return (yield from handle.write_at(offset, payload))

    def read(self, handle, offset: int, nbytes: int) -> Generator:
        collective = self.params.collective
        with self._span(
            "mpiio.read_at_all" if collective else "mpiio.read_at",
            offset=offset,
            nbytes=nbytes,
        ):
            if collective:
                return (yield from handle.read_at_all(offset, nbytes))
            return (yield from handle.read_at(offset, nbytes))

    def fsync(self, handle) -> Generator:
        yield from handle.sync()
        return None

    def close(self, handle) -> Generator:
        yield from handle.close()
        return None

    def remove(self, path: str) -> Generator:
        yield from self.storage.mount.unlink(path)
        return None


register_backend(MpiioBackend.name, MpiioBackend)
