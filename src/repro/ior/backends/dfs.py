"""DFS backend: the native libdfs path (the paper's "DAOS" lines)."""

from __future__ import annotations

from typing import Generator

from repro.ior.backends.base import Backend, register_backend


class DfsBackend(Backend):
    name = "DFS"
    # concurrent ops on one DfsFile are safe in the uncached build: each
    # write/read is an independent object-layer op and the IoStream
    # coalesces concurrent transfers into batched wire transfers
    supports_async = True
    needs_daos = True

    def open(self, path: str, create: bool) -> Generator:
        dfs = self.storage.dfs
        kwargs = dict(
            chunk_size=self.params.chunk_size,
            oclass=self.params.oclass,
        )
        if not create:
            return (yield from dfs.open_file(path))
        if self.params.file_per_proc:
            return (yield from dfs.open_file(path, create=True, **kwargs))
        if self.ctx.rank == 0:
            handle = yield from dfs.open_file(path, create=True, **kwargs)
            yield from self.ctx.barrier()
            return handle
        yield from self.ctx.barrier()
        return (yield from dfs.open_file(path))

    def write(self, handle, offset: int, payload) -> Generator:
        return (yield from handle.write(offset, payload))

    def read(self, handle, offset: int, nbytes: int) -> Generator:
        return (yield from handle.read(offset, nbytes))

    def fsync(self, handle) -> Generator:
        yield from handle.sync()
        return None

    def close(self, handle) -> Generator:
        # drain write-behind data first; close() surfaces the typed
        # error if the flush could not commit everything
        yield from handle.flush()
        handle.close()
        yield 0.0
        return None

    def remove(self, path: str) -> Generator:
        yield from self.storage.dfs.unlink(path)
        return None


register_backend(DfsBackend.name, DfsBackend)
