"""HDF5-DAOS backend: HDF5 through the DAOS VOL connector.

The interface the DAOS community actually built for HDF5 (the HDF Group
daos-vol plugin): the same H5File/Dataset API the ``HDF5`` api drives,
but datasets live in :class:`~repro.daos.array.DaosArray` objects and
metadata in :class:`~repro.daos.kv.DaosKV` records — no DFuse mount, no
MPI-IO, no staging, no HDF5 on-disk format. Raw transfers go straight
to the object layer, so the api is async-capable like DFS/DAOS: with
``--aio-depth N`` the runner keeps N dataset transfers in flight per
rank, file-per-process *and* shared-file.

Shared files need no collective machinery: rank 0 creates the file and
dataset and flushes the KV catalog, the other ranks open it after a
barrier, and every rank writes its hyperslab independently.
"""

from __future__ import annotations

from typing import Generator

from repro.daos.oclass import oclass_by_name
from repro.hdf5 import DaosVol, H5File, daos_vol_unlink
from repro.ior.backends.base import register_backend
from repro.ior.backends.hdf5 import DATASET, Hdf5Backend


class Hdf5DaosBackend(Hdf5Backend):
    name = "HDF5-DAOS"
    needs_daos = True
    supports_async = True
    # -c selects MPI-IO collective buffering, which this api bypasses
    supports_collective = False

    @classmethod
    def check_params(cls, params) -> None:
        return None  # no VFD constraints: async works fpp and shared

    @property
    def pipelined(self) -> bool:
        # concurrent dataset I/O maps to concurrent array ops; the
        # runner's per-rank event queue drives the pipelining
        return True

    def _oclass(self):
        name = self.params.oclass or self.storage.cont.props.get("oclass", "SX")
        return oclass_by_name(name)

    def _vol(self):
        return DaosVol(
            self.storage.cont,
            oclass=self._oclass(),
            chunk_bytes=self.params.chunk_size,
        )

    def open(self, path: str, create: bool) -> Generator:
        if create and not self.params.file_per_proc:
            # shared file: rank 0 creates and publishes the KV catalog
            if self.ctx.rank == 0:
                h5 = yield from H5File.create(self._vol(), path)
                dataset = yield from h5.create_dataset(
                    DATASET, (self._dataset_bytes(),), dtype="u1"
                )
                yield from h5.flush()
                yield from self.ctx.barrier()
                return (h5, dataset)
            yield from self.ctx.barrier()
            h5 = yield from H5File.open(self._vol(), path)
            return (h5, h5.dataset(DATASET))
        if create:
            h5 = yield from H5File.create(self._vol(), path)
            dataset = yield from h5.create_dataset(
                DATASET, (self._dataset_bytes(),), dtype="u1"
            )
            yield from h5.flush()
            return (h5, dataset)
        h5 = yield from H5File.open(self._vol(), path)
        return (h5, h5.dataset(DATASET))

    def remove(self, path: str) -> Generator:
        yield from daos_vol_unlink(self.storage.cont, path)
        return None


register_backend(Hdf5DaosBackend.name, Hdf5DaosBackend)
