"""POSIX backend: plain VFS calls against any mount (DFuse or Lustre).

Shared-file creation is serialized through rank 0 (matching how IOR's
POSIX backend avoids O_CREAT races on parallel filesystems).
"""

from __future__ import annotations

from typing import Generator

from repro.ior.backends.base import Backend, register_backend


class PosixBackend(Backend):
    name = "POSIX"

    def open(self, path: str, create: bool) -> Generator:
        mount = self.storage.mount
        if not create:
            return (yield from mount.open(path, ("r", "w")))
        if self.params.file_per_proc:
            return (yield from mount.open(path, ("w", "creat")))
        if self.ctx.rank == 0:
            handle = yield from mount.open(path, ("w", "creat"))
            yield from self.ctx.barrier()
            return handle
        yield from self.ctx.barrier()
        return (yield from mount.open(path, ("r", "w")))

    def write(self, handle, offset: int, payload) -> Generator:
        return (yield from handle.pwrite(offset, payload))

    def read(self, handle, offset: int, nbytes: int) -> Generator:
        return (yield from handle.pread(offset, nbytes))

    def fsync(self, handle) -> Generator:
        yield from handle.fsync()
        return None

    def close(self, handle) -> Generator:
        yield from handle.close()
        return None

    def remove(self, path: str) -> Generator:
        yield from self.storage.mount.unlink(path)
        return None


register_backend(PosixBackend.name, PosixBackend)
