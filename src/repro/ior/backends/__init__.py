"""IOR backends (IOR calls these AIORI modules).

Importing this package populates the api registry: each backend module
calls :func:`register_backend` at import time, and the import order
below is the ``-a`` choices order the CLI shows.
"""

from repro.ior.backends.base import (
    Backend,
    available_apis,
    backend_class,
    make_backend,
    register_backend,
    unregister_backend,
)

# self-registering backend modules, in CLI display order
from repro.ior.backends import posix as _posix  # noqa: F401
from repro.ior.backends import dfs as _dfs  # noqa: F401
from repro.ior.backends import mpiio as _mpiio  # noqa: F401
from repro.ior.backends import hdf5 as _hdf5  # noqa: F401
from repro.ior.backends import daos_array as _daos_array  # noqa: F401
from repro.ior.backends import hdf5_daos as _hdf5_daos  # noqa: F401

__all__ = [
    "Backend",
    "available_apis",
    "backend_class",
    "make_backend",
    "register_backend",
    "unregister_backend",
]
