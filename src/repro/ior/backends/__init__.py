"""IOR backends (IOR calls these AIORI modules)."""

from repro.ior.backends.base import Backend, make_backend

__all__ = ["Backend", "make_backend"]
