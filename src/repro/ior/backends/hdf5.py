"""HDF5 backend (native-format VOL).

File-per-process runs use the ``sec2`` VFD on the DFuse mount — the
paper's slow path (unaligned raw data + staging). Shared-file runs use
the ``mpio`` VFD (parallel HDF5), with collective transfers when
``-c`` is given — the configuration that keeps HDF5 competitive in
Figure 2; ``--aio-depth N`` additionally pipelines the collective
aggregators' storage calls. One 1-D byte dataset named ``data`` spans
the whole file, matching how IOR's HDF5 backend lays out its test file.
"""

from __future__ import annotations

from typing import Generator, Tuple

from repro.hdf5 import H5File, MpioVfd, NativeVol, Sec2Vfd
from repro.ior.backends.base import Backend, register_backend
from repro.mpiio import UfsDriver
from repro.obs.tracer import NOOP_SPAN

DATASET = "data"


class Hdf5Backend(Backend):
    name = "HDF5"
    supports_collective = True
    # async depth applies to shared-file collective runs, where the mpio
    # VFD's aggregators pipeline their transfers (two-phase + eq)
    supports_async = True

    @classmethod
    def check_params(cls, params) -> None:
        if params.aio_queue_depth > 1 and (
            params.file_per_proc or not params.collective
        ):
            raise ValueError(
                "HDF5 async pipelining rides the collective mpio VFD; it "
                "requires a shared file with collective I/O (-c, no -F) — "
                "or use the HDF5-DAOS api"
            )

    @property
    def pipelined(self) -> bool:
        # pipelining happens inside the mpio VFD's collective calls
        return False

    def _vol(self):
        if self.params.file_per_proc:
            return NativeVol(Sec2Vfd(self.storage.mount))
        return NativeVol(MpioVfd(
            self.ctx,
            UfsDriver(self.storage.mount),
            collective=self.params.collective,
            cb_buffer=self.params.cb_buffer,
            aio_depth=(
                self.params.aio_queue_depth if self.params.collective else 0
            ),
        ))

    def _dataset_bytes(self) -> int:
        per_rank = self.params.bytes_per_rank()
        if self.params.file_per_proc:
            return per_rank
        return per_rank * self.ctx.size

    def open(self, path: str, create: bool) -> Generator:
        vol = self._vol()
        if create:
            h5 = yield from H5File.create(vol, path)
            dataset = yield from h5.create_dataset(
                DATASET, (self._dataset_bytes(),), dtype="u1"
            )
            yield from h5.flush()
        else:
            h5 = yield from H5File.open(vol, path)
            dataset = h5.dataset(DATASET)
        return (h5, dataset)

    def _span(self, name: str, vol: str, **attrs):
        tracer = self.ctx.sim.tracer
        if tracer is None:
            return NOOP_SPAN
        attrs["vol"] = vol
        return tracer.span(
            name, "hdf5", node=self.ctx.node.name, attrs=attrs
        )

    def _count(self, op: str, vol: str, nbytes: int) -> None:
        metrics = self.ctx.sim.metrics
        if metrics is not None:
            metrics.incr(f"hdf5.{op}.bytes{{vol={vol}}}", nbytes)
            metrics.incr(f"hdf5.{op}.ops{{vol={vol}}}")

    def write(self, handle: Tuple, offset: int, payload) -> Generator:
        h5, dataset = handle
        vol = h5.vol.kind
        with self._span(
            "hdf5.dataset_write", vol, offset=offset, nbytes=payload.nbytes
        ):
            nbytes = (
                yield from dataset.write((offset,), (payload.nbytes,), payload)
            )
        self._count("write", vol, payload.nbytes)
        return nbytes

    def read(self, handle: Tuple, offset: int, nbytes: int) -> Generator:
        h5, dataset = handle
        vol = h5.vol.kind
        with self._span(
            "hdf5.dataset_read", vol, offset=offset, nbytes=nbytes
        ):
            payload = yield from dataset.read((offset,), (nbytes,))
        self._count("read", vol, nbytes)
        return payload

    def fsync(self, handle: Tuple) -> Generator:
        h5, _dataset = handle
        yield from h5.flush()
        yield from h5.sync()
        return None

    def close(self, handle: Tuple) -> Generator:
        h5, _dataset = handle
        yield from h5.close()
        return None

    def remove(self, path: str) -> Generator:
        yield from self.storage.mount.unlink(path)
        return None


register_backend(Hdf5Backend.name, Hdf5Backend)
