"""HDF5 backend.

File-per-process runs use the ``sec2`` VFD on the DFuse mount — the
paper's slow path (unaligned raw data + staging). Shared-file runs use
the ``mpio`` VFD (parallel HDF5), with collective transfers when
``-c`` is given — the configuration that keeps HDF5 competitive in
Figure 2. One 1-D byte dataset named ``data`` spans the whole file,
matching how IOR's HDF5 backend lays out its test file.
"""

from __future__ import annotations

from typing import Generator, Tuple

from repro.hdf5 import H5File, MpioVfd, Sec2Vfd
from repro.ior.backends.base import Backend
from repro.mpiio import UfsDriver
from repro.obs.tracer import NOOP_SPAN

DATASET = "data"


class Hdf5Backend(Backend):
    name = "HDF5"

    def _vfd(self):
        if self.params.file_per_proc:
            return Sec2Vfd(self.storage.mount)
        return MpioVfd(
            self.ctx,
            UfsDriver(self.storage.mount),
            collective=self.params.collective,
        )

    def _dataset_bytes(self) -> int:
        per_rank = self.params.bytes_per_rank()
        if self.params.file_per_proc:
            return per_rank
        return per_rank * self.ctx.size

    def open(self, path: str, create: bool) -> Generator:
        vfd = self._vfd()
        if create:
            h5 = yield from H5File.create(vfd, path)
            dataset = yield from h5.create_dataset(
                DATASET, (self._dataset_bytes(),), dtype="u1"
            )
            yield from h5.flush()
        else:
            h5 = yield from H5File.open(vfd, path)
            dataset = h5.dataset(DATASET)
        return (h5, dataset)

    def _span(self, name: str, **attrs):
        tracer = self.ctx.sim.tracer
        if tracer is None:
            return NOOP_SPAN
        return tracer.span(
            name, "hdf5", node=self.ctx.node.name, attrs=attrs or None
        )

    def write(self, handle: Tuple, offset: int, payload) -> Generator:
        _h5, dataset = handle
        with self._span(
            "hdf5.dataset_write", offset=offset, nbytes=payload.nbytes
        ):
            return (
                yield from dataset.write((offset,), (payload.nbytes,), payload)
            )

    def read(self, handle: Tuple, offset: int, nbytes: int) -> Generator:
        _h5, dataset = handle
        with self._span("hdf5.dataset_read", offset=offset, nbytes=nbytes):
            return (yield from dataset.read((offset,), (nbytes,)))

    def fsync(self, handle: Tuple) -> Generator:
        h5, _dataset = handle
        yield from h5.flush()
        yield from h5.vfd.sync()
        return None

    def close(self, handle: Tuple) -> Generator:
        h5, _dataset = handle
        yield from h5.close()
        return None

    def remove(self, path: str) -> Generator:
        yield from self.storage.mount.unlink(path)
        return None
