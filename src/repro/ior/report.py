"""IOR result records and reporting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ior.config import IorParams
from repro.units import fmt_bw, fmt_size, fmt_time

#: Per-rank rows printed in the latency table before eliding the rest.
_MAX_RANK_ROWS = 16

#: Max columns of a terminal timeline sparkline (downsampled above this).
SPARK_COLS = 60
_SPARK_COLS = SPARK_COLS

_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


@dataclass
class LatencySummary:
    """Per-rank per-op latency percentiles (from the metrics registry)."""

    op: str
    rank: int
    count: int
    mean: float
    p50: float
    p95: float
    p99: float


@dataclass
class PhaseResult:
    """One timed phase of one repetition."""

    op: str  # "write" | "read"
    repetition: int
    seconds: float
    nbytes: int
    verify_errors: int = 0
    #: per-rank seconds spent exclusively in each stack layer (populated
    #: when the cluster runs with tracing; see repro.obs.breakdown)
    layer_seconds: Optional[Dict[str, float]] = None

    @property
    def bandwidth(self) -> float:
        return self.nbytes / self.seconds if self.seconds > 0 else 0.0


@dataclass
class IorResult:
    """The full outcome of one IOR invocation."""

    params: IorParams
    nprocs: int
    client_nodes: int
    phases: List[PhaseResult] = field(default_factory=list)
    #: per-rank latency percentiles (populated when metrics are enabled)
    latency: List[LatencySummary] = field(default_factory=list)
    #: the run's TimeSeriesStore (populated when the timeline scraper is
    #: enabled; see repro.obs.timeline)
    timeline: Optional[object] = None

    def _best(self, op: str) -> Optional[PhaseResult]:
        candidates = [p for p in self.phases if p.op == op]
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.bandwidth)

    @property
    def max_write_bw(self) -> float:
        best = self._best("write")
        return best.bandwidth if best else 0.0

    @property
    def max_read_bw(self) -> float:
        best = self._best("read")
        return best.bandwidth if best else 0.0

    @property
    def verify_errors(self) -> int:
        return sum(p.verify_errors for p in self.phases)

    def summary(self) -> str:
        """An IOR-flavoured results block."""
        lines = [
            f"IOR (simulated): {self.params.cli()}",
            f"clients: {self.client_nodes} nodes x "
            f"{self.nprocs // max(1, self.client_nodes)} ppn = "
            f"{self.nprocs} procs; "
            f"aggregate {fmt_size(self.params.total_bytes(self.nprocs))}",
        ]
        for phase in self.phases:
            lines.append(
                f"  {phase.op:5s} rep {phase.repetition}: "
                f"{fmt_bw(phase.bandwidth)} in {fmt_time(phase.seconds)}"
                + (f"  VERIFY ERRORS: {phase.verify_errors}"
                   if phase.verify_errors else "")
            )
            if phase.layer_seconds:
                lines.extend(self._breakdown_lines(phase))
        if self._best("write"):
            lines.append(f"Max Write: {fmt_bw(self.max_write_bw)}")
        if self._best("read"):
            lines.append(f"Max Read:  {fmt_bw(self.max_read_bw)}")
        lines.extend(self._latency_lines())
        lines.extend(self._timeline_lines())
        return "\n".join(lines)

    @staticmethod
    def _breakdown_lines(phase: PhaseResult) -> List[str]:
        lines = ["    per-layer breakdown (per-rank seconds):"]
        wall = phase.seconds
        for layer, seconds in sorted(
            phase.layer_seconds.items(), key=lambda kv: -kv[1]
        ):
            share = seconds / wall if wall > 0 else 0.0
            lines.append(
                f"      {layer:<14s} {fmt_time(seconds):>10s}  {share:6.1%}"
            )
        return lines

    def _latency_lines(self) -> List[str]:
        if not self.latency:
            return []
        lines = [
            "per-rank op latency:",
            "  op    rank  count        mean         p50         p95         p99",
        ]
        shown = 0
        for entry in self.latency:
            if shown >= _MAX_RANK_ROWS:
                lines.append(
                    f"  ... {len(self.latency) - shown} more ranks elided"
                )
                break
            lines.append(
                f"  {entry.op:5s} {entry.rank:4d} {entry.count:6d} "
                f"{fmt_time(entry.mean):>11s} {fmt_time(entry.p50):>11s} "
                f"{fmt_time(entry.p95):>11s} {fmt_time(entry.p99):>11s}"
            )
            shown += 1
        return lines

    def _timeline_lines(self) -> List[str]:
        store = self.timeline
        if store is None or not store.series:
            return []
        lines = [
            f"timeline ({store.n_windows} windows @ "
            f"{fmt_time(store.interval)}):"
        ]
        shown = (
            ("fabric.xfer.bytes:rate", "wire B/s", fmt_bw),
            ("ior.write.latency:p99", "write p99", fmt_time),
            ("ior.read.latency:p99", "read p99", fmt_time),
        )
        for name, label, fmt in shown:
            series = store.series.get(name)
            if series is None:
                continue
            series.finalize()
            if not series.points:
                continue
            values = _resample(series, store.origin, store.end, _SPARK_COLS)
            peak = max(values)
            lines.append(
                f"  {label:<9s} |{_sparkline(values)}| peak {fmt(peak)}"
            )
        for breach in store.breaches:
            lines.append(
                f"  SLO BREACH at t={fmt_time(breach.time)}: {breach.rule}"
            )
        return lines


def resample(series, start: float, end: float, cols: int) -> List[float]:
    """Step-wise resample of a compressed series onto ``cols`` columns.

    Shared terminal-rendering helper (also used by the tenants report);
    ``series`` is any object with step-compressed ``points``.
    """
    if end <= start:
        return [v for _t, v in series.points[:cols]] or [0.0]
    step = (end - start) / cols
    points = series.points
    values: List[float] = []
    idx = 0
    current = 0.0
    for col in range(cols):
        t = start + (col + 1) * step
        while idx < len(points) and points[idx][0] <= t:
            current = points[idx][1]
            idx += 1
        values.append(current)
    return values


def sparkline(values: List[float]) -> str:
    """Unicode block sparkline scaled to the peak value."""
    peak = max(values)
    if peak <= 0:
        return " " * len(values)
    ticks = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(ticks, int(round(v / peak * ticks)))]
        for v in values
    )


# Backwards-compatible aliases (pre-tenants callers used the private names).
_resample = resample
_sparkline = sparkline
