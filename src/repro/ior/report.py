"""IOR result records and reporting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ior.config import IorParams
from repro.units import fmt_bw, fmt_size, fmt_time


@dataclass
class PhaseResult:
    """One timed phase of one repetition."""

    op: str  # "write" | "read"
    repetition: int
    seconds: float
    nbytes: int
    verify_errors: int = 0

    @property
    def bandwidth(self) -> float:
        return self.nbytes / self.seconds if self.seconds > 0 else 0.0


@dataclass
class IorResult:
    """The full outcome of one IOR invocation."""

    params: IorParams
    nprocs: int
    client_nodes: int
    phases: List[PhaseResult] = field(default_factory=list)

    def _best(self, op: str) -> Optional[PhaseResult]:
        candidates = [p for p in self.phases if p.op == op]
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.bandwidth)

    @property
    def max_write_bw(self) -> float:
        best = self._best("write")
        return best.bandwidth if best else 0.0

    @property
    def max_read_bw(self) -> float:
        best = self._best("read")
        return best.bandwidth if best else 0.0

    @property
    def verify_errors(self) -> int:
        return sum(p.verify_errors for p in self.phases)

    def summary(self) -> str:
        """An IOR-flavoured results block."""
        lines = [
            f"IOR (simulated): {self.params.cli()}",
            f"clients: {self.client_nodes} nodes x "
            f"{self.nprocs // max(1, self.client_nodes)} ppn = "
            f"{self.nprocs} procs; "
            f"aggregate {fmt_size(self.params.total_bytes(self.nprocs))}",
        ]
        for phase in self.phases:
            lines.append(
                f"  {phase.op:5s} rep {phase.repetition}: "
                f"{fmt_bw(phase.bandwidth)} in {fmt_time(phase.seconds)}"
                + (f"  VERIFY ERRORS: {phase.verify_errors}"
                   if phase.verify_errors else "")
            )
        if self._best("write"):
            lines.append(f"Max Write: {fmt_bw(self.max_write_bw)}")
        if self._best("read"):
            lines.append(f"Max Read:  {fmt_bw(self.max_read_bw)}")
        return "\n".join(lines)
