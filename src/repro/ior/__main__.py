"""``python -m repro.ior`` — the simulated-IOR command line."""

from repro.ior.cli import main

raise SystemExit(main())
