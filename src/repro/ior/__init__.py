"""A faithful port of the IOR benchmark (the paper's instrument).

Parameter semantics mirror the IOR command line: ``-a`` (api), ``-b``
(block size per process per segment), ``-t`` (transfer size), ``-s``
(segments), ``-F`` (file per process — the paper's *easy* mode; without
it a single shared segmented file — the *hard* mode), ``-c`` (collective
MPI-IO), ``-e`` (fsync after writes), ``-C`` (reorder tasks for the read
phase), ``-w``/``-r`` (phases), ``-i`` (repetitions, max reported).
Backends: POSIX (any VFS mount: DFuse or Lustre), DFS (native libdfs),
MPIIO, HDF5, and DAOS (the native array API — the paper's future work).

Bandwidth is computed exactly as IOR computes it: aggregate bytes
divided by the span from the post-barrier phase start to the *last*
rank's completion.
"""

from repro.ior.config import IorParams
from repro.ior.report import IorResult, PhaseResult
from repro.ior.runner import run_ior

__all__ = ["IorParams", "IorResult", "PhaseResult", "run_ior"]
