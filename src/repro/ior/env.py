"""Storage environments wiring IOR ranks to a system under test."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, Optional

from repro.cache.config import CacheConfig
from repro.cluster.builder import Cluster, LustreCluster
from repro.dfs import Dfs
from repro.dfuse import DFuseMount
from repro.ior.config import IorParams

_env_seq = itertools.count(1)


@dataclass
class RankStorage:
    """What one rank gets from its environment."""

    mount: Optional[object] = None  # FileSystem (DFuse or Lustre)
    dfs: Optional[Dfs] = None
    cont: Optional[object] = None  # ContainerHandle


class DaosIorEnv:
    """DAOS under test: one fresh container per environment, per-rank
    client contexts, DFS mounts and DFuse mounts."""

    def __init__(self, cluster: Cluster, params: IorParams):
        self.cluster = cluster
        self.params = params
        self.label = f"ior-{next(_env_seq):04d}"

    def prepare(self) -> Generator:
        """Task helper: create the container and the test directory."""
        client = self.cluster.new_client(0)
        pool = yield from client.connect_pool(self.cluster.pool.label)
        cont = yield from pool.create_container(
            self.label,
            oclass=self.params.oclass or "SX",
            chunk_size=self.params.chunk_size,
        )
        dfs = yield from Dfs.mount(cont)
        yield from dfs.mkdir(self.params.test_dir)
        dfs.umount()
        return None

    def rank_setup(self, ctx) -> Generator:
        """Task helper: per-rank client + mounts."""
        node_index = self.cluster.clients.index(ctx.node)
        client = self.cluster.new_client(node_index)
        pool = yield from client.connect_pool(self.cluster.pool.label)
        cont = yield from pool.open_container(self.label)
        cache = None
        if self.params.cache_mode != "none":
            # each of the node's ppn ranks gets an equal slice of the
            # node-level page-cache budget
            cache = CacheConfig(mode=self.params.cache_mode).resolve(
                ctx.node.spec, ctx.world.ppn
            )
        dfs = yield from Dfs.mount(cont, cache=cache)
        return RankStorage(
            mount=DFuseMount(dfs, cache=cache), dfs=dfs, cont=cont
        )


class LustreIorEnv:
    """The parallel-filesystem baseline under the same IOR workloads."""

    def __init__(self, cluster: LustreCluster, params: IorParams):
        self.cluster = cluster
        self.params = params

    def prepare(self) -> Generator:
        mount = self.cluster.mount(0, name="ior-prep")
        try:
            yield from mount.mkdir(self.params.test_dir)
        except Exception:
            pass  # already exists from a previous run
        return None

    def rank_setup(self, ctx) -> Generator:
        node_index = self.cluster.clients.index(ctx.node)
        yield 0.0
        return RankStorage(mount=self.cluster.mount(node_index,
                                                    name=f"ior-r{ctx.rank}"))
