"""IOR parameters (the subset of the real tool's options we exercise).

The set of valid ``-a`` apis and the per-api constraints (collective-
capable, async-capable) are not spelled out here: they come from the
backend registry's capability flags
(:mod:`repro.ior.backends`), so registering a new backend
automatically extends validation and the CLI choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.units import MiB, parse_size


@dataclass
class IorParams:
    """One IOR invocation's workload description."""

    #: -a: any registered api (POSIX | DFS | MPIIO | HDF5 | DAOS |
    #: HDF5-DAOS out of the box)
    api: str = "DFS"
    #: -b: contiguous bytes each process writes per segment
    block_size: Union[int, str] = "16m"
    #: -t: bytes per I/O call
    transfer_size: Union[int, str] = "1m"
    #: -s: number of segments (shared file: segments interleave blocks)
    segments: int = 1
    #: -F: file per process ("easy"); False = single shared file ("hard")
    file_per_proc: bool = False
    #: interleave at transfer granularity inside a segment (io500-hard
    #: style layout) instead of IOR's default segmented layout
    interleaved: bool = False
    #: -c: use collective MPI-IO calls (MPIIO/HDF5 shared-file runs)
    collective: bool = False
    #: -e: fsync after the write phase
    fsync: bool = False
    #: -C: read phase reads the data written by rank+1 (defeats locality)
    reorder_tasks: bool = True
    #: -w / -r
    write: bool = True
    read: bool = True
    #: -R: verify contents during the read phase
    verify: bool = False
    #: -i: repetitions; the report keeps all and summarizes the max
    repetitions: int = 1
    #: DAOS object class for created files/objects (None = container default)
    oclass: Optional[str] = None
    #: DFS chunk size for created files (also the DAOS-VOL array chunk)
    chunk_size: Union[int, str] = MiB
    #: collective-buffering aggregate size per underlying call (ROMIO's
    #: cb_buffer_size; MPIIO/HDF5 collective runs only)
    cb_buffer: Union[int, str] = 16 * MiB
    #: working directory inside the filesystem under test
    test_dir: str = "/ior"
    #: client-side caching tier: none | readonly | writeback
    #: (dfuse --enable-caching / --enable-wb-cache analogue)
    cache_mode: str = "none"
    #: async I/O queue depth (the daos_event_t / event-queue dimension):
    #: 0 = the classic blocking loop, one transfer at a time; N >= 1
    #: routes each transfer through an event queue that keeps up to N
    #: operations in flight per rank. Depth 1 reproduces the blocking
    #: timings exactly; depth > 1 needs an async-capable api (DFS, DAOS).
    aio_queue_depth: int = 0

    def __post_init__(self) -> None:
        # resolved lazily so config stays importable without the backends
        from repro.ior.backends import available_apis, backend_class

        backend = backend_class(self.api)  # unknown api -> ValueError
        if self.cache_mode not in ("none", "readonly", "writeback"):
            raise ValueError(
                "cache_mode must be none, readonly or writeback, "
                f"got {self.cache_mode!r}"
            )
        self.block_size = parse_size(self.block_size)
        self.transfer_size = parse_size(self.transfer_size)
        self.chunk_size = parse_size(self.chunk_size)
        self.cb_buffer = parse_size(self.cb_buffer)
        if self.block_size <= 0 or self.transfer_size <= 0:
            raise ValueError("block and transfer sizes must be positive")
        if self.block_size % self.transfer_size:
            raise ValueError(
                f"block size {self.block_size} is not a multiple of the "
                f"transfer size {self.transfer_size}"
            )
        if self.segments <= 0 or self.repetitions <= 0:
            raise ValueError("segments and repetitions must be positive")
        if self.cb_buffer <= 0:
            raise ValueError("cb_buffer must be positive")
        if self.collective and not backend.supports_collective:
            capable = tuple(
                api for api in available_apis()
                if backend_class(api).supports_collective
            )
            raise ValueError(
                f"collective I/O requires a collective-capable api "
                f"{capable}, got {self.api}"
            )
        if self.interleaved and self.file_per_proc:
            raise ValueError("interleaved layout applies to shared files")
        if self.aio_queue_depth < 0:
            raise ValueError("aio_queue_depth must be >= 0")
        if self.aio_queue_depth > 1 and not backend.supports_async:
            capable = tuple(
                api for api in available_apis()
                if backend_class(api).supports_async
            )
            raise ValueError(
                f"async pipelining (aio_queue_depth > 1) requires an "
                f"async-capable api {capable}, got {self.api}"
            )
        if self.aio_queue_depth > 1 and self.cache_mode != "none":
            raise ValueError(
                "async pipelining bypasses the caching tier; use "
                "cache_mode='none' with aio_queue_depth > 1"
            )
        backend.check_params(self)

    @property
    def transfers_per_block(self) -> int:
        return self.block_size // self.transfer_size

    def bytes_per_rank(self) -> int:
        return self.block_size * self.segments

    def total_bytes(self, nprocs: int) -> int:
        return self.bytes_per_rank() * nprocs

    def file_path(self, rank: int) -> str:
        if self.file_per_proc:
            return f"{self.test_dir}/testFile.{rank:08d}"
        return f"{self.test_dir}/testFile"

    def offset(self, nprocs: int, rank: int, segment: int, transfer: int) -> int:
        """File offset of one transfer, matching IOR's layouts."""
        if self.file_per_proc:
            return segment * self.block_size + transfer * self.transfer_size
        if self.interleaved:
            per_seg = self.transfers_per_block
            index = (segment * per_seg + transfer) * nprocs + rank
            return index * self.transfer_size
        return (
            segment * nprocs * self.block_size
            + rank * self.block_size
            + transfer * self.transfer_size
        )

    def cli(self) -> str:
        """The equivalent real-IOR command line (for reports)."""
        parts = [
            "ior",
            f"-a {self.api}",
            f"-b {self.block_size}",
            f"-t {self.transfer_size}",
            f"-s {self.segments}",
            f"-i {self.repetitions}",
        ]
        if self.file_per_proc:
            parts.append("-F")
        if self.collective:
            parts.append("-c")
        if self.fsync:
            parts.append("-e")
        if self.reorder_tasks:
            parts.append("-C")
        if self.write:
            parts.append("-w")
        if self.read:
            parts.append("-r")
        if self.verify:
            parts.append("-R")
        if self.cache_mode != "none":
            parts.append(f"--cache-mode {self.cache_mode}")
        if self.aio_queue_depth > 0:
            parts.append(f"--aio-depth {self.aio_queue_depth}")
        return " ".join(parts)
