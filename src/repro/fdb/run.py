"""One-shot FDB runs: boot, archive a field grid, flush, retrieve back.

:func:`run_fdb` is the driver the CLI, the benchmarks and the tests all
share: build the cluster the backend needs (DAOS, or Lustre for the
parallel-filesystem contrast), archive a deterministic
``param x level x step x member x date`` grid through the chosen field
mapping, land a flush landmark, then expand per-parameter queries and
scatter-read the fields back. It returns a plain-dict result that
:func:`repro.fdb.report.build_report` turns into the run report.

Determinism contract: the result is a pure function of
:class:`FdbParams` — same params, same seed, byte-identical report and
timeline JSON (pinned by ``tests/fdb`` and the ``make bench-fdb`` gate).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Generator, List, Optional, Tuple

from repro.errors import DerInval
from repro.fdb.archiver import ARCHIVE_SPAN, Archiver
from repro.fdb.index import make_index
from repro.fdb.mapping import FdbContext, make_mapping
from repro.fdb.retriever import RETRIEVE_SPAN, Retriever
from repro.fdb.schema import FieldQuery, make_fields
from repro.units import MiB

#: backends that store data on a DAOS cluster
DAOS_BACKENDS = ("kv", "array", "dfs")
BACKENDS = DAOS_BACKENDS + ("lustre",)


def default_index(backend: str) -> str:
    """The index each backend pairs with by default: the KV index for
    native-object mappings, the directory tree for file-per-field ones."""
    return "kv" if backend in ("kv", "array") else "tree"


@dataclass(frozen=True)
class FdbParams:
    """Everything one FDB run depends on."""

    backend: str = "kv"
    index: str = ""              # "" -> default_index(backend)
    n_params: int = 4
    n_levels: int = 1
    n_steps: int = 4
    n_members: int = 1
    n_dates: int = 1
    field_bytes: int = 2 * MiB
    depth: int = 8
    sync: bool = False
    verify: bool = True
    server_nodes: int = 2
    client_nodes: int = 1
    oclass: str = "SX"
    chunk_bytes: int = MiB
    seed: int = 0xDA05
    #: parameters to retrieve (one query per name); () retrieves every
    #: parameter the grid archived
    retrieve_params: Tuple[str, ...] = ()
    tracing: bool = False
    timeline_interval: Optional[float] = None
    slo_rules: Tuple[str, ...] = ()

    def resolved_index(self) -> str:
        return self.index or default_index(self.backend)

    def validate(self) -> None:
        if self.backend not in BACKENDS:
            raise DerInval(
                f"unknown backend {self.backend!r} (one of {list(BACKENDS)})"
            )
        if self.backend == "lustre" and self.resolved_index() != "tree":
            raise DerInval("the lustre backend has no KV index to use")
        if self.field_bytes < 1:
            raise DerInval("field_bytes must be >= 1")
        if self.depth < 1:
            raise DerInval("depth must be >= 1")


def _build_cluster(params: FdbParams):
    if params.backend == "lustre":
        from repro.cluster import build_lustre_cluster

        return build_lustre_cluster(
            server_nodes=params.server_nodes,
            client_nodes=params.client_nodes,
            seed=params.seed,
        )
    from repro.cluster import build_cluster

    return build_cluster(
        server_nodes=params.server_nodes,
        client_nodes=params.client_nodes,
        seed=params.seed,
    )


def setup_context(cluster, params: FdbParams) -> Generator:
    """Task helper: connect/mount whatever the backend needs and return
    a ready :class:`FdbContext` (shared with the chaos tests, which
    drive the phases themselves)."""
    from repro.daos.oclass import oclass_by_name

    if params.backend == "lustre":
        ctx = FdbContext(
            cluster.sim,
            mount=cluster.mount(0),
            chunk_bytes=params.chunk_bytes,
        )
        return ctx
    client = cluster.new_client(0)
    pool = yield from client.connect_pool("tank")
    cont = yield from pool.create_container("fdb", oclass=params.oclass)
    ctx = FdbContext(
        cluster.sim,
        cont=cont,
        oclass=oclass_by_name(params.oclass),
        chunk_bytes=params.chunk_bytes,
    )
    if params.backend == "dfs" or params.resolved_index() == "tree":
        from repro.dfs import Dfs

        ctx.dfs = yield from Dfs.mount(cont)
    return ctx


def run_fdb(params: FdbParams):
    """Boot, archive, flush, retrieve; returns ``(result, cluster)``."""
    params.validate()
    keys = make_fields(
        n_params=params.n_params,
        n_levels=params.n_levels,
        n_steps=params.n_steps,
        n_members=params.n_members,
        n_dates=params.n_dates,
    )
    query_params = params.retrieve_params or tuple(
        sorted({key.param for key in keys})
    )
    queries = [FieldQuery(param=name) for name in query_params]

    cluster = _build_cluster(params)
    if params.tracing or params.timeline_interval is not None:
        cluster.observe(
            tracing=params.tracing,
            metrics=True,
            timeline_interval=params.timeline_interval,
            slo_rules=list(params.slo_rules) or None,
        )

    mapping = make_mapping(params.backend)
    index = make_index(params.resolved_index(), params.backend)

    def driver():
        sim = cluster.sim
        ctx = yield from setup_context(cluster, params)
        archiver = Archiver(
            ctx, mapping, index, depth=params.depth, sync=params.sync
        )
        yield from archiver.setup(keys)
        t0 = sim.now
        yield from archiver.archive(keys, params.field_bytes)
        landmark = yield from archiver.flush("cycle-001")
        archive_wall = sim.now - t0
        yield from archiver.close()

        retriever = Retriever(
            ctx, mapping, index, depth=params.depth, sync=params.sync,
            verify=params.verify,
        )
        t1 = sim.now
        matched: List = []
        for query in queries:
            matched.extend((yield from retriever.retrieve(query)))
        retrieve_wall = sim.now - t1
        ctx.close()
        return archiver, retriever, landmark, archive_wall, retrieve_wall, matched

    archiver, retriever, landmark, archive_wall, retrieve_wall, matched = (
        cluster.run(driver())
    )

    tracer = cluster.sim.tracer
    archive_breakdown = retrieve_breakdown = None
    if tracer is not None:
        from repro.obs import layer_breakdown

        archive_breakdown = layer_breakdown(
            tracer.spans, ARCHIVE_SPAN, archive_wall
        )
        retrieve_breakdown = layer_breakdown(
            tracer.spans, RETRIEVE_SPAN, retrieve_wall
        )

    result = {
        "config": {**asdict(params), "index": params.resolved_index()},
        "n_fields": len(keys),
        "archive": {
            "wall": archive_wall,
            "fields": archiver.fields,
            "bytes": archiver.bytes,
            "latencies": list(archiver.latencies),
            "breakdown": archive_breakdown,
        },
        "retrieve": {
            "wall": retrieve_wall,
            "fields": retriever.fields,
            "bytes": retriever.bytes,
            "latencies": list(retriever.latencies),
            "breakdown": retrieve_breakdown,
        },
        "matched": [key.canonical for key in matched],
        "landmarks": [landmark],
        "end_time": cluster.sim.now,
    }
    return result, cluster
