"""``repro-fdb``: field-database runs from the command line.

Boots a cluster, archives a deterministic field grid through the chosen
mapping/index pair, lands a flush landmark, retrieves the grid back by
parameter queries and prints the run report::

    python -m repro.fdb --backend kv --params 4 --steps 8
    python -m repro.fdb --backend dfs --field-size 16m --sync
    python -m repro.fdb --backend lustre --report-out report.json
    python -m repro.fdb --backend array --trace --timeline-out tl.json

Exit status is the number of SLO breaches (clamped to 1), so scripted
sweeps can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.fdb.report import build_report, render_report
from repro.fdb.run import BACKENDS, FdbParams, run_fdb
from repro.units import MiB, parse_size


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fdb",
        description="NWP field database on the simulated DAOS stack",
    )
    grid = parser.add_argument_group("field grid")
    grid.add_argument("--params", type=int, default=4,
                      help="parameter count (default 4)")
    grid.add_argument("--levels", type=int, default=1,
                      help="level count (default 1)")
    grid.add_argument("--steps", type=int, default=4,
                      help="forecast-step count (default 4)")
    grid.add_argument("--members", type=int, default=1,
                      help="ensemble-member count (default 1)")
    grid.add_argument("--dates", type=int, default=1,
                      help="cycle-date count (default 1)")
    grid.add_argument("--field-size", type=parse_size, default=2 * MiB,
                      metavar="SIZE",
                      help="bytes per field, suffixes k/m/g ok "
                           "(default 2m)")
    store = parser.add_argument_group("storage")
    store.add_argument("--backend", choices=BACKENDS, default="kv",
                       help="field-object mapping (default kv)")
    store.add_argument("--index", choices=("kv", "tree"), default="",
                       help="index kind (default: kv for native-object "
                            "backends, tree for file-per-field)")
    store.add_argument("--oclass", default="SX",
                       help="object class for data objects (default SX)")
    store.add_argument("--chunk-size", type=parse_size, default=MiB,
                       metavar="SIZE",
                       help="array/file chunk size (default 1m)")
    pipe = parser.add_argument_group("pipeline")
    pipe.add_argument("--depth", type=int, default=8, metavar="N",
                      help="event-queue depth (default 8)")
    pipe.add_argument("--sync", action="store_true",
                      help="blocking one-field-at-a-time I/O instead of "
                           "the async event-queue pipeline")
    pipe.add_argument("--no-verify", action="store_true",
                      help="skip content verification on retrieve")
    pipe.add_argument("--retrieve-param", action="append", default=[],
                      metavar="NAME",
                      help="retrieve only this parameter (repeatable; "
                           "default: all archived parameters)")
    geom = parser.add_argument_group("cluster geometry")
    geom.add_argument("--servers", type=int, default=2)
    geom.add_argument("--clients", type=int, default=1)
    geom.add_argument("--seed", type=int, default=0xDA05)
    obs = parser.add_argument_group("observability")
    obs.add_argument("--trace", action="store_true",
                     help="record spans and report per-layer breakdowns")
    obs.add_argument("--timeline-interval", type=float, default=None,
                     metavar="SECONDS",
                     help="attach the sim-time metrics scraper at this "
                          "interval (enables the timeline)")
    obs.add_argument("--slo", action="append", default=[], metavar="RULE",
                     help="SLO/stall rule per scrape window, e.g. "
                          "'fdb.field.latency{backend=kv,phase=archive} "
                          "p99 < 0.01 over 3 windows'; repeatable")
    obs.add_argument("--timeline-out", metavar="PATH",
                     help="write the run's time-series JSON")
    obs.add_argument("--report-out", metavar="PATH",
                     help="write the run report JSON")
    return parser


def params_from_args(args) -> FdbParams:
    interval = args.timeline_interval
    if args.slo and interval is None:
        interval = 1.0  # rules need windows to evaluate over
    return FdbParams(
        backend=args.backend,
        index=args.index,
        n_params=args.params,
        n_levels=args.levels,
        n_steps=args.steps,
        n_members=args.members,
        n_dates=args.dates,
        field_bytes=args.field_size,
        depth=args.depth,
        sync=args.sync,
        verify=not args.no_verify,
        server_nodes=args.servers,
        client_nodes=args.clients,
        oclass=args.oclass,
        chunk_bytes=args.chunk_size,
        seed=args.seed,
        retrieve_params=tuple(args.retrieve_param),
        tracing=args.trace,
        timeline_interval=interval,
        slo_rules=tuple(args.slo),
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    result, cluster = run_fdb(params_from_args(args))
    store = cluster.sim.timeline.store if cluster.sim.timeline else None
    report = build_report(result, store=store)
    print(render_report(report))
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.report_out}", file=sys.stderr)
    if args.timeline_out:
        from repro.obs import write_timeline

        write_timeline(store, args.timeline_out)
        print(f"timeline written to {args.timeline_out}", file=sys.stderr)
    return 1 if report["slo_breaches"] else 0


if __name__ == "__main__":  # pragma: no cover - exercised via module main
    raise SystemExit(main())
