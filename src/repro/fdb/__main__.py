"""``python -m repro.fdb`` entry point."""

from repro.fdb.cli import main

raise SystemExit(main())
