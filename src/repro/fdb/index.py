"""Pluggable field indexes: how a schema key finds its field.

Two index families, matching the designs the NWP follow-up papers
compare:

- :class:`KvIndex` — entries in one DaosKV object (``e/<canonical>`` →
  location record, ``L/<name>`` → landmark). Lookup is one KV fetch;
  predicate scans ride the ordered paginated prefix enumeration
  (:meth:`repro.daos.kv.DaosKV.scan`).
- :class:`DfsTreeIndex` / :class:`LustreTreeIndex` — the POSIX-era
  contrast: a directory tree (``/index/param/level/step.member.date``)
  whose entry files hold the location record as JSON bytes. Lookup is a
  path walk + read; scans are recursive ``readdir`` walks pruned by the
  query's concrete axes — metadata-RPC-heavy in exactly the way that
  pushed FDB off parallel filesystems.

Both speak :class:`~repro.fdb.schema.FieldQuery` for scans, so the
retriever is oblivious to which one is wired in.
"""

from __future__ import annotations

import json
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.daos.api import DaosKV
from repro.daos.vos.payload import BytesPayload
from repro.errors import DerInval, DerNonexist, FsError
from repro.fdb.mapping import (
    INDEX_ROOT,
    LANDMARK_ROOT,
    FdbContext,
    dirs_for,
    field_file,
)
from repro.fdb.schema import FieldKey, FieldQuery

#: KV-index key namespaces (single character so entries sort together)
ENTRY_PREFIX = "e/"
LANDMARK_PREFIX = "L/"

#: upper bound on an entry record's JSON size (reads clamp at EOF)
_RECORD_MAX = 1 << 16


class FdbIndex:
    """Index interface: canonical key → location record."""

    name = "?"

    def setup(self, ctx: FdbContext) -> Generator:
        return
        yield  # pragma: no cover - generator marker

    def prepare(self, ctx: FdbContext, keys: Sequence[FieldKey]) -> Generator:
        """Task helper: sequential pre-burst namespace prep (tree
        indexes create their directory levels here)."""
        return
        yield  # pragma: no cover - generator marker

    def insert(self, ctx: FdbContext, key: FieldKey, entry: dict) -> Generator:
        raise NotImplementedError

    def lookup(self, ctx: FdbContext, key: FieldKey) -> Generator:
        """Task helper: the key's entry record (DerNonexist if absent)."""
        raise NotImplementedError

    def scan(self, ctx: FdbContext, query: FieldQuery) -> Generator:
        """Task helper: every indexed key matching ``query``, sorted by
        canonical order."""
        raise NotImplementedError

    def landmark(self, ctx: FdbContext, name: str, record: dict) -> Generator:
        """Task helper: persist a named durability landmark (the flush
        marker consumers poll before trusting a forecast cycle)."""
        raise NotImplementedError

    def get_landmark(self, ctx: FdbContext, name: str) -> Generator:
        raise NotImplementedError


class KvIndex(FdbIndex):
    """Entries and landmarks in one DaosKV object."""

    name = "kv"

    def setup(self, ctx) -> Generator:
        if ctx.index_kv is None:
            ctx.index_kv = yield from DaosKV.create(ctx.cont, ctx.oclass)
        return None

    def insert(self, ctx, key, entry) -> Generator:
        yield from ctx.index_kv.put(ENTRY_PREFIX + key.canonical, entry)
        return None

    def lookup(self, ctx, key) -> Generator:
        entry = yield from ctx.index_kv.get(ENTRY_PREFIX + key.canonical)
        return entry

    def scan(self, ctx, query) -> Generator:
        names = yield from ctx.index_kv.scan(ENTRY_PREFIX + query.prefix())
        out: List[FieldKey] = []
        for name in names:
            key = FieldKey.from_canonical(name[len(ENTRY_PREFIX):])
            if query.matches(key):
                out.append(key)
        return out

    def landmark(self, ctx, name, record) -> Generator:
        yield from ctx.index_kv.put(LANDMARK_PREFIX + name, record)
        return None

    def get_landmark(self, ctx, name) -> Generator:
        record = yield from ctx.index_kv.get(LANDMARK_PREFIX + name)
        return record


class _TreeIndex(FdbIndex):
    """Directory-tree index skeleton over an abstract namespace."""

    # -- namespace primitives supplied by the concrete variant
    def _mkdirs(self, ctx, dirs: Sequence[str]) -> Generator:
        raise NotImplementedError

    def _readdir(self, ctx, path: str) -> Generator:
        raise NotImplementedError

    def _write_file(self, ctx, path: str, data: bytes) -> Generator:
        raise NotImplementedError

    def _read_file(self, ctx, path: str) -> Generator:
        raise NotImplementedError

    # -- index interface
    def prepare(self, ctx, keys) -> Generator:
        dirs = dirs_for(keys, INDEX_ROOT)
        dirs.append(LANDMARK_ROOT)
        yield from self._mkdirs(ctx, dirs)
        return None

    def insert(self, ctx, key, entry) -> Generator:
        data = json.dumps(entry, sort_keys=True).encode("utf-8")
        yield from self._write_file(ctx, field_file(key, INDEX_ROOT), data)
        return None

    def lookup(self, ctx, key) -> Generator:
        data = yield from self._read_file(ctx, field_file(key, INDEX_ROOT))
        return json.loads(data.decode("utf-8"))

    def scan(self, ctx, query) -> Generator:
        out: List[FieldKey] = []
        try:
            params = yield from self._readdir(ctx, INDEX_ROOT)
        except (DerNonexist, FsError):
            return out  # nothing archived yet
        for param in params:
            if query.param is not None and param not in query.param:
                continue
            param_dir = f"{INDEX_ROOT}/{param}"
            levels = yield from self._readdir(ctx, param_dir)
            for level_name in levels:
                level = int(level_name)
                if query.level is not None and level not in query.level:
                    continue
                names = yield from self._readdir(
                    ctx, f"{param_dir}/{level_name}"
                )
                for name in names:
                    key = _parse_leaf(param, level, name)
                    if query.matches(key):
                        out.append(key)
        out.sort(key=lambda k: k.canonical)
        return out

    def landmark(self, ctx, name, record) -> Generator:
        if "/" in name:
            raise DerInval(f"bad landmark name {name!r}")
        data = json.dumps(record, sort_keys=True).encode("utf-8")
        yield from self._write_file(ctx, f"{LANDMARK_ROOT}/{name}", data)
        return None

    def get_landmark(self, ctx, name) -> Generator:
        data = yield from self._read_file(ctx, f"{LANDMARK_ROOT}/{name}")
        return json.loads(data.decode("utf-8"))


def _parse_leaf(param: str, level: int, name: str) -> FieldKey:
    try:
        step, member, date = name.split(".")
        return FieldKey(param, level, int(step), int(member), date)
    except (ValueError, DerInval) as exc:
        raise DerInval(f"malformed index leaf {name!r}") from exc


class DfsTreeIndex(_TreeIndex):
    """Directory-tree index on the DFS namespace."""

    name = "tree"

    def _mkdirs(self, ctx, dirs) -> Generator:
        from repro.fdb.mapping import _make_dfs_dirs

        yield from _make_dfs_dirs(ctx, dirs)
        return None

    def _readdir(self, ctx, path) -> Generator:
        names = yield from ctx.dfs.readdir(path)
        return names

    def _write_file(self, ctx, path, data) -> Generator:
        handle = yield from ctx.dfs.open_file(path, create=True)
        try:
            yield from handle.write(0, BytesPayload(data))
        finally:
            handle.close()
        return None

    def _read_file(self, ctx, path) -> Generator:
        handle = yield from ctx.dfs.open_file(path)
        try:
            payload = yield from handle.read(0, _RECORD_MAX)
        finally:
            handle.close()
        return payload.materialize()


class LustreTreeIndex(_TreeIndex):
    """Directory-tree index on the Lustre namespace."""

    name = "tree"

    def _mkdirs(self, ctx, dirs) -> Generator:
        from repro.fdb.mapping import _make_lustre_dirs

        yield from _make_lustre_dirs(ctx, dirs)
        return None

    def _readdir(self, ctx, path) -> Generator:
        names = yield from ctx.mount.readdir(path)
        return names

    def _write_file(self, ctx, path, data) -> Generator:
        handle = yield from ctx.mount.open(path, flags=("w", "creat"))
        try:
            yield from handle.pwrite(0, BytesPayload(data))
        finally:
            yield from handle.close()
        return None

    def _read_file(self, ctx, path) -> Generator:
        handle = yield from ctx.mount.open(path)
        try:
            payload = yield from handle.pread(0, _RECORD_MAX)
        finally:
            yield from handle.close()
        return payload.materialize()


def make_index(name: str, backend: str) -> FdbIndex:
    """Index factory: ``kv`` or ``tree`` (tree picks the variant that
    matches the backend's namespace)."""
    if name == "kv":
        return KvIndex()
    if name == "tree":
        return LustreTreeIndex() if backend == "lustre" else DfsTreeIndex()
    raise DerInval(f"unknown index {name!r} (one of ['kv', 'tree'])")
