"""An NWP field database over the simulated storage interfaces.

Facade for the FDB subsystem (DESIGN.md §14)::

    from repro import fdb

    result, cluster = fdb.run_fdb(fdb.FdbParams(
        backend="kv", n_params=4, n_steps=8, field_bytes=2 * MiB,
    ))
    report = fdb.build_report(result)

Or piecewise, for custom drivers (chaos tests, benchmarks)::

    keys = fdb.make_fields(n_params=2, n_steps=4)
    mapping = fdb.make_mapping("array")
    index = fdb.make_index("kv", "array")
    archiver = fdb.Archiver(ctx, mapping, index, depth=8)
    ...
    retriever = fdb.Retriever(ctx, mapping, index)
    keys = yield from retriever.retrieve(fdb.FieldQuery(param="t2m"))
"""

from repro.fdb.archiver import ARCHIVE_SPAN, Archiver
from repro.fdb.index import (
    DfsTreeIndex,
    FdbIndex,
    KvIndex,
    LustreTreeIndex,
    make_index,
)
from repro.fdb.mapping import (
    ArrayPerField,
    DfsFilePerField,
    FdbContext,
    FieldMapping,
    KvValueField,
    LustreFilePerField,
    MAPPINGS,
    field_dir,
    field_file,
    make_mapping,
)
from repro.fdb.report import build_report, latency_stats, render_report
from repro.fdb.retriever import RETRIEVE_SPAN, Retriever
from repro.fdb.run import (
    BACKENDS,
    DAOS_BACKENDS,
    FdbParams,
    default_index,
    run_fdb,
    setup_context,
)
from repro.fdb.schema import (
    AXES,
    FieldKey,
    FieldQuery,
    PARAM_NAMES,
    make_fields,
)

__all__ = [
    "ARCHIVE_SPAN",
    "AXES",
    "Archiver",
    "ArrayPerField",
    "BACKENDS",
    "DAOS_BACKENDS",
    "DfsFilePerField",
    "DfsTreeIndex",
    "FdbContext",
    "FdbIndex",
    "FdbParams",
    "FieldKey",
    "FieldMapping",
    "FieldQuery",
    "KvIndex",
    "KvValueField",
    "LustreFilePerField",
    "LustreTreeIndex",
    "MAPPINGS",
    "PARAM_NAMES",
    "RETRIEVE_SPAN",
    "Retriever",
    "build_report",
    "default_index",
    "field_dir",
    "field_file",
    "latency_stats",
    "make_fields",
    "make_index",
    "make_mapping",
    "render_report",
    "run_fdb",
    "setup_context",
]
