"""Pluggable field-object mappings: where a field's bytes live.

The follow-up papers' central question is how to map *one field* (64 KiB
to 16 MiB of packed grid data) onto the storage interfaces DAOS offers:

- :class:`ArrayPerField` — one ``DaosArray`` object per field (the
  native object path; chunks stripe across targets, so large fields get
  multi-target bandwidth at the cost of per-object setup).
- :class:`KvValueField` — the field is a single KV value under its
  canonical key (one RPC per field; value bytes stream to the key's one
  home target — unbeatable small, single-target-bound large).
- :class:`DfsFilePerField` — one DFS file per field in a directory tree
  (the POSIX-style layout FDB used before DAOS; pays namespace lookups
  and inode metadata on every field).
- :class:`LustreFilePerField` — the same file-per-field layout on the
  simulated Lustre filesystem, for the paper's parallel-filesystem
  contrast runs.

A mapping is a stateless strategy object: per-run state (container, data
KV, mounts, created-directory memo) lives in the :class:`FdbContext`
the driver threads through every call.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence

from repro.daos.api import DaosArray, DaosKV, ObjId
from repro.daos.oclass import ObjectClass
from repro.errors import DerExist, DerInval, FsError
from repro.fdb.schema import FieldKey
from repro.units import MiB

#: root directories of the file-per-field namespace layouts
DATA_ROOT = "/fields"
INDEX_ROOT = "/index"
LANDMARK_ROOT = "/landmarks"


class FdbContext:
    """Per-run state shared by the mapping, index and pipelines."""

    def __init__(
        self,
        sim,
        cont=None,
        dfs=None,
        mount=None,
        oclass: Optional[ObjectClass] = None,
        chunk_bytes: int = MiB,
    ):
        self.sim = sim
        self.cont = cont          # ContainerHandle (daos backends)
        self.dfs = dfs            # mounted Dfs (dfs mapping / tree index)
        self.mount = mount        # LustreMount (lustre backend)
        self.oclass = oclass      # ObjectClass for data objects
        self.chunk_bytes = chunk_bytes
        self.data_kv: Optional[DaosKV] = None   # KvValueField storage
        self.index_kv: Optional[DaosKV] = None  # KvIndex storage
        #: directories already created on the active namespace, so a
        #: prepare pass never re-issues mkdir RPCs
        self.dirs_made: set = set()

    def close(self) -> None:
        if self.data_kv is not None:
            self.data_kv.close()
            self.data_kv = None
        if self.index_kv is not None:
            self.index_kv.close()
            self.index_kv = None
        if self.dfs is not None:
            self.dfs.umount()
            self.dfs = None


def field_dir(key: FieldKey, root: str = DATA_ROOT) -> str:
    """Directory a field's file lives in (two levels: param, level)."""
    return f"{root}/{key.param}/{key.level:04d}"


def field_file(key: FieldKey, root: str = DATA_ROOT) -> str:
    """Full file path: dirs by param/level, leaf name step.member.date."""
    return f"{field_dir(key, root)}/{key.step:03d}.{key.member:03d}.{key.date}"


def dirs_for(keys: Sequence[FieldKey], root: str) -> List[str]:
    """Every directory the keys need, parents before children."""
    wanted = {root}
    for key in keys:
        wanted.add(f"{root}/{key.param}")
        wanted.add(field_dir(key, root))
    return sorted(wanted)


class FieldMapping:
    """Strategy interface: one field in, one field out."""

    #: short backend label used in metrics/report ("kv", "array", ...)
    name = "?"

    def setup(self, ctx: FdbContext) -> Generator:
        """Task helper: once-per-run initialisation (create shared
        objects, mount namespaces). Default: nothing."""
        return
        yield  # pragma: no cover - generator marker

    def prepare(self, ctx: FdbContext, keys: Sequence[FieldKey]) -> Generator:
        """Task helper: pre-burst namespace preparation (directory
        trees), run sequentially *before* pipelined writes so concurrent
        field tasks never race on mkdir. Default: nothing."""
        return
        yield  # pragma: no cover - generator marker

    def write(self, ctx: FdbContext, key: FieldKey, payload) -> Generator:
        """Task helper: persist one field; returns its JSON-able
        location token (stored in the index entry)."""
        raise NotImplementedError

    def read(self, ctx: FdbContext, key: FieldKey, location,
             nbytes: int) -> Generator:
        """Task helper: fetch one field's payload back."""
        raise NotImplementedError


class ArrayPerField(FieldMapping):
    """One DaosArray object per field (1-byte cells, chunked dkeys)."""

    name = "array"

    def write(self, ctx, key, payload) -> Generator:
        array = yield from DaosArray.create(
            ctx.cont, cell_size=1, chunk_cells=ctx.chunk_bytes,
            oclass=ctx.oclass,
        )
        try:
            yield from array.write(0, payload)
        finally:
            array.close()
        return [array.obj.oid.hi, array.obj.oid.lo]

    def read(self, ctx, key, location, nbytes) -> Generator:
        hi, lo = location
        array = yield from DaosArray.open(ctx.cont, ObjId(hi, lo))
        try:
            payload = yield from array.read(0, nbytes // array.cell_size)
        finally:
            array.close()
        return payload


class KvValueField(FieldMapping):
    """The field is one KV value; its canonical key is the dkey."""

    name = "kv"

    def setup(self, ctx) -> Generator:
        if ctx.data_kv is None:
            ctx.data_kv = yield from DaosKV.create(ctx.cont, ctx.oclass)
        return None

    def write(self, ctx, key, payload) -> Generator:
        yield from ctx.data_kv.put(
            key.canonical, payload, value_nbytes=payload.nbytes
        )
        return None  # data lives under the canonical key itself

    def read(self, ctx, key, location, nbytes) -> Generator:
        payload = yield from ctx.data_kv.get(
            key.canonical, value_nbytes=nbytes
        )
        return payload


class DfsFilePerField(FieldMapping):
    """One DFS regular file per field under ``/fields/param/level/``."""

    name = "dfs"

    def prepare(self, ctx, keys) -> Generator:
        yield from _make_dfs_dirs(ctx, dirs_for(keys, DATA_ROOT))
        return None

    def write(self, ctx, key, payload) -> Generator:
        path = field_file(key)
        handle = yield from ctx.dfs.open_file(
            path, create=True, chunk_size=ctx.chunk_bytes,
        )
        try:
            yield from handle.write(0, payload)
        finally:
            handle.close()
        return path

    def read(self, ctx, key, location, nbytes) -> Generator:
        handle = yield from ctx.dfs.open_file(location)
        try:
            payload = yield from handle.read(0, nbytes)
        finally:
            handle.close()
        return payload


class LustreFilePerField(FieldMapping):
    """The same file-per-field layout on the Lustre contrast cluster."""

    name = "lustre"

    def prepare(self, ctx, keys) -> Generator:
        yield from _make_lustre_dirs(ctx, dirs_for(keys, DATA_ROOT))
        return None

    def write(self, ctx, key, payload) -> Generator:
        path = field_file(key)
        handle = yield from ctx.mount.open(path, flags=("w", "creat"))
        try:
            yield from handle.pwrite(0, payload)
        finally:
            yield from handle.close()
        return path

    def read(self, ctx, key, location, nbytes) -> Generator:
        handle = yield from ctx.mount.open(location)
        try:
            payload = yield from handle.pread(0, nbytes)
        finally:
            yield from handle.close()
        return payload


def _make_dfs_dirs(ctx: FdbContext, dirs: Sequence[str]) -> Generator:
    for path in dirs:
        if path in ctx.dirs_made:
            continue
        try:
            yield from ctx.dfs.mkdir(path)
        except DerExist:
            pass
        ctx.dirs_made.add(path)
    return None


def _make_lustre_dirs(ctx: FdbContext, dirs: Sequence[str]) -> Generator:
    for path in dirs:
        if path in ctx.dirs_made:
            continue
        try:
            yield from ctx.mount.mkdir(path)
        except FsError as exc:
            if exc.errno_name != "EEXIST":
                raise
        ctx.dirs_made.add(path)
    return None


#: mapping registry for config/CLI lookups
MAPPINGS: Dict[str, type] = {
    cls.name: cls
    for cls in (ArrayPerField, KvValueField, DfsFilePerField,
                LustreFilePerField)
}


def make_mapping(name: str) -> FieldMapping:
    try:
        return MAPPINGS[name]()
    except KeyError:
        raise DerInval(
            f"unknown field mapping {name!r} (one of {sorted(MAPPINGS)})"
        ) from None
