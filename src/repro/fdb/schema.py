"""MARS-like schema keys for the field database.

A field is addressed by five axes — ``param/level/step/member/date`` —
exactly the request language ECMWF's MARS/FDB speak ("all steps of t2m
at level 500 from Monday's run"). The canonical string form zero-pads
the numeric axes so lexicographic key order equals semantic order,
which is what makes prefix scans over the KV index return whole
subtrees in one ordered range:

    t2m/0500/012/001/20200101
    ^^^ ^^^^ ^^^ ^^^ ^^^^^^^^
    param|level|step|member|date

The axis order puts ``param`` first deliberately: the dominant
retrieval pattern ("one parameter across all steps/members") becomes a
single contiguous prefix range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.daos.kv import RESERVED_KEY_CHARS
from repro.errors import DerInval
from repro.units import stable_seed

#: schema axes in canonical (= sort) order
AXES = ("param", "level", "step", "member", "date")

#: default parameter mnemonics for generated grids (GRIB shortNames)
PARAM_NAMES = ("t2m", "u10", "v10", "msl", "z500", "q700", "tp", "sp",
               "d2m", "ws100")


@dataclass(frozen=True, order=True)
class FieldKey:
    """One field's fully-qualified schema key."""

    param: str
    level: int
    step: int
    member: int
    date: str

    def __post_init__(self) -> None:
        if not self.param or "/" in self.param or any(
            ch in self.param for ch in RESERVED_KEY_CHARS
        ):
            raise DerInval(f"bad param {self.param!r}")
        for axis in ("level", "step", "member"):
            value = getattr(self, axis)
            if not isinstance(value, int) or value < 0:
                raise DerInval(f"bad {axis} {value!r} (non-negative int)")
        if self.level > 9999 or self.step > 999 or self.member > 999:
            raise DerInval(
                f"axis out of canonical range: {self!r} "
                "(level<=9999, step<=999, member<=999)"
            )
        if len(self.date) != 8 or not self.date.isdigit():
            raise DerInval(f"bad date {self.date!r} (want YYYYMMDD)")

    @property
    def canonical(self) -> str:
        """Zero-padded path form; lexicographic order == semantic order."""
        return (f"{self.param}/{self.level:04d}/{self.step:03d}/"
                f"{self.member:03d}/{self.date}")

    @property
    def seed(self) -> int:
        """Deterministic content seed for this field's payload pattern."""
        return stable_seed(self.canonical)

    @classmethod
    def from_canonical(cls, text: str) -> "FieldKey":
        parts = text.split("/")
        if len(parts) != len(AXES):
            raise DerInval(f"bad canonical key {text!r}")
        param, level, step, member, date = parts
        try:
            return cls(param, int(level), int(step), int(member), date)
        except ValueError as exc:
            raise DerInval(f"bad canonical key {text!r}") from exc

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.canonical


def _as_tuple(value) -> Optional[Tuple]:
    if value is None:
        return None
    if isinstance(value, (str, int)):
        return (value,)
    return tuple(value)


@dataclass(frozen=True)
class FieldQuery:
    """A key predicate: per axis either ``None`` (wildcard) or the
    allowed values. ``FieldQuery(param="t2m")`` matches every t2m field;
    ``FieldQuery(param="t2m", step=(0, 3))`` narrows to two steps."""

    param: Optional[Tuple[str, ...]] = None
    level: Optional[Tuple[int, ...]] = None
    step: Optional[Tuple[int, ...]] = None
    member: Optional[Tuple[int, ...]] = None
    date: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        for axis in AXES:
            object.__setattr__(self, axis, _as_tuple(getattr(self, axis)))

    def prefix(self) -> str:
        """Longest canonical prefix shared by every matching key — the
        leading run of single-valued axes. Scans start here; everything
        past the first wildcard/multi-valued axis is post-filtered."""
        parts: List[str] = []
        probes = {
            "param": lambda v: v,
            "level": lambda v: f"{v:04d}",
            "step": lambda v: f"{v:03d}",
            "member": lambda v: f"{v:03d}",
            "date": lambda v: v,
        }
        for axis in AXES:
            values = getattr(self, axis)
            if values is None or len(values) != 1:
                break
            parts.append(probes[axis](values[0]))
        if not parts:
            return ""
        if len(parts) == len(AXES):
            return "/".join(parts)
        return "/".join(parts) + "/"

    def matches(self, key: FieldKey) -> bool:
        for axis in AXES:
            values = getattr(self, axis)
            if values is not None and getattr(key, axis) not in values:
                return False
        return True

    @classmethod
    def single(cls, key: FieldKey) -> "FieldQuery":
        return cls(param=key.param, level=key.level, step=key.step,
                   member=key.member, date=key.date)


def make_fields(
    n_params: int = 4,
    n_levels: int = 1,
    n_steps: int = 4,
    n_members: int = 1,
    n_dates: int = 1,
) -> List[FieldKey]:
    """Deterministic dense grid of keys (the product of the axis sizes).

    Axis values follow NWP conventions: 3-hourly steps, pressure levels
    every 50 hPa from 1000 downward, dates counting up from 20200101
    within a 28-day month so the grid never needs calendar logic.
    """
    if min(n_params, n_levels, n_steps, n_members, n_dates) < 1:
        raise DerInval("every axis needs at least one value")
    params = [
        PARAM_NAMES[i] if i < len(PARAM_NAMES) else f"p{i:03d}"
        for i in range(n_params)
    ]
    levels = [1000 - 50 * i for i in range(n_levels)]
    steps = [3 * i for i in range(n_steps)]
    members = list(range(n_members))
    dates = [f"2020{1 + i // 28:02d}{1 + i % 28:02d}" for i in range(n_dates)]
    return [
        FieldKey(p, l, s, m, d)
        for p in params
        for l in levels
        for s in steps
        for m in members
        for d in dates
    ]
