"""FDB run reports: exact per-field tails, bandwidth, layer breakdowns.

The archiver and retriever keep *exact* per-field latency samples, so
the tails here are nearest-rank order statistics over the real sample
set — the same discipline as the serving reports (whose
:func:`~repro.tenants.report.exact_quantile` this module reuses). The
bucketed per-window views live in the timeline JSON for SLO rules; this
report is the run-level summary the benchmarks gate on.

Everything in :func:`build_report` is a pure function of the run result
(simulated clock only — no wall time, no environment), so same-seed runs
compare byte-identical. That property is what the determinism tests and
the ``make bench-fdb`` double-run ``cmp`` gate pin.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.tenants.report import QUANTILES, exact_quantile
from repro.units import fmt_bw, fmt_size, fmt_time


def latency_stats(latencies: Sequence[float]) -> dict:
    """count/mean/max plus the standard quantile set, nearest-rank."""
    values = sorted(latencies)
    n = len(values)
    stats = {
        "count": n,
        "mean": (sum(values) / n) if n else 0.0,
        "max": values[-1] if n else 0.0,
    }
    for key, q in QUANTILES:
        stats[key] = exact_quantile(values, q)
    return stats


def _phase_section(phase: dict) -> dict:
    wall = phase["wall"]
    section = {
        "wall": wall,
        "fields": phase["fields"],
        "bytes": phase["bytes"],
        "bandwidth": phase["bytes"] / wall if wall > 0 else 0.0,
        "fields_per_s": phase["fields"] / wall if wall > 0 else 0.0,
        "latency": latency_stats(phase["latencies"]),
    }
    if phase.get("breakdown") is not None:
        section["breakdown"] = {
            layer: seconds
            for layer, seconds in sorted(phase["breakdown"].items())
        }
    return section


def build_report(result: dict, store=None) -> dict:
    """Derive the run report from :func:`repro.fdb.run.run_fdb` output.

    ``store`` is the run's optional
    :class:`~repro.obs.timeline.TimeSeriesStore`; when present the SLO
    breaches it accumulated are appended verbatim.
    """
    report = {
        "config": dict(result["config"]),
        "fields": result["n_fields"],
        "archive": _phase_section(result["archive"]),
        "retrieve": _phase_section(result["retrieve"]),
        "landmarks": list(result["landmarks"]),
        "slo_breaches": (
            [breach.to_json() for breach in store.breaches]
            if store is not None
            else []
        ),
        "end_time": result["end_time"],
    }
    return report


def render_report(report: dict) -> str:
    """Terminal-friendly rendering of :func:`build_report` output."""
    cfg = report["config"]
    lines = [
        f"fdb: {report['fields']} fields x "
        f"{fmt_size(cfg['field_bytes'])} on backend={cfg['backend']} "
        f"index={cfg['index']} "
        f"({'sync' if cfg['sync'] else 'async depth ' + str(cfg['depth'])})"
    ]
    for phase in ("archive", "retrieve"):
        p = report[phase]
        lat = p["latency"]
        lines.append(
            f"  {phase}: {p['fields']} fields ({fmt_size(int(p['bytes']))}) "
            f"in {fmt_time(p['wall'])} = {fmt_bw(p['bandwidth'])}, "
            f"{p['fields_per_s']:.0f} fields/s"
        )
        lines.append(
            f"    latency: p50 {fmt_time(lat['p50'])}  "
            f"p95 {fmt_time(lat['p95'])}  p99 {fmt_time(lat['p99'])}  "
            f"max {fmt_time(lat['max'])}"
        )
        if "breakdown" in p:
            parts = ", ".join(
                f"{layer} {fmt_time(seconds)}"
                for layer, seconds in p["breakdown"].items()
            )
            lines.append(f"    layers: {parts}")
    for landmark in report["landmarks"]:
        lines.append(
            f"  landmark {landmark['name']!r}: {landmark['fields']} fields "
            f"({fmt_size(int(landmark['bytes']))}) at "
            f"{fmt_time(landmark['time'])}"
        )
    if report["slo_breaches"]:
        lines.append(f"  SLO breaches: {len(report['slo_breaches'])}")
        for breach in report["slo_breaches"][:8]:
            lines.append(f"    {breach}")
    return "\n".join(lines)
