"""The archive pipeline: model-output bursts into the field database.

An NWP model emits fields in bursts — every output step, every rank
hands the archiver a batch of packed grids. The archiver's job shape is
fixed by that producer: keep a bounded number of field writes in flight
(the libdaos event-queue path), index each field as it lands, and offer
a *flush landmark* — a named durability point recorded only after every
preceding field is safely stored and indexed, which is what downstream
product generation polls before trusting a forecast cycle.

``sync=True`` degenerates to the blocking one-field-at-a-time sequence
(the contrast leg of the async-vs-sync sweeps); otherwise writes pipeline
through one persistent :class:`~repro.daos.eq.EventQueue` of the given
depth.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

from repro.daos.api import EventQueue, PatternPayload
from repro.fdb.index import FdbIndex
from repro.fdb.mapping import FdbContext, FieldMapping
from repro.fdb.schema import FieldKey

#: span names the per-layer breakdown roots at
ARCHIVE_SPAN = "fdb.archive"


def _metric(stem: str, backend: str, phase: str) -> str:
    return f"{stem}{{backend={backend},phase={phase}}}"


class Archiver:
    """Write-burst pipeline over one mapping + index pair."""

    def __init__(
        self,
        ctx: FdbContext,
        mapping: FieldMapping,
        index: FdbIndex,
        depth: Optional[int] = 8,
        sync: bool = False,
    ):
        self.ctx = ctx
        self.mapping = mapping
        self.index = index
        self.depth = depth
        self.sync = sync
        #: per-field service latencies (simulated seconds), archive order
        self.latencies: List[float] = []
        self.fields = 0
        self.bytes = 0
        self.landmarks: List[dict] = []
        self._eq: Optional[EventQueue] = None
        self._span = None

    # ------------------------------------------------------------- setup
    def setup(self, keys: Sequence[FieldKey]) -> Generator:
        """Task helper: create shared objects and pre-build directory
        trees sequentially, so pipelined field tasks never race on
        namespace creation."""
        yield from self.mapping.setup(self.ctx)
        yield from self.index.setup(self.ctx)
        yield from self.mapping.prepare(self.ctx, keys)
        yield from self.index.prepare(self.ctx, keys)
        return None

    # ------------------------------------------------------------- archive
    def archive(self, keys: Sequence[FieldKey], nbytes: int) -> Generator:
        """Task helper: store one burst of fields (``nbytes`` each).

        Async mode returns with fields still in flight — only
        :meth:`flush` guarantees durability."""
        tracer = self.ctx.sim.tracer
        if tracer is not None and self._span is None:
            self._span = tracer.begin(
                ARCHIVE_SPAN, "fdb",
                attrs={"backend": self.mapping.name, "sync": self.sync},
            )
        if self.sync:
            for key in keys:
                yield from self._store(key, nbytes)
            return None
        if self._eq is None:
            self._eq = EventQueue(
                self.ctx.sim, depth=self.depth, name="fdb-archive"
            )
        for key in keys:
            yield from self._eq.submit(
                self._store(key, nbytes), name=key.canonical
            )
        return None

    def _store(self, key: FieldKey, nbytes: int) -> Generator:
        sim = self.ctx.sim
        start = sim.now
        self._gauge(+1)
        try:
            payload = PatternPayload(seed=key.seed, origin=0, nbytes=nbytes)
            location = yield from self.mapping.write(self.ctx, key, payload)
            entry = {"loc": location, "nbytes": nbytes}
            yield from self.index.insert(self.ctx, key, entry)
        finally:
            self._gauge(-1)
        elapsed = sim.now - start
        self.latencies.append(elapsed)
        self.fields += 1
        self.bytes += nbytes
        self._account(nbytes, elapsed)
        return nbytes

    def _gauge(self, delta: int) -> None:
        metrics = self.ctx.sim.metrics
        if metrics is not None:
            metrics.gauge(f"fdb.inflight{{backend={self.mapping.name}}}").add(
                self.ctx.sim.now, delta
            )

    def _account(self, nbytes: int, elapsed: float) -> None:
        metrics = self.ctx.sim.metrics
        if metrics is None:
            return
        backend = self.mapping.name
        metrics.incr(_metric("fdb.fields", backend, "archive"))
        metrics.incr(_metric("fdb.bytes", backend, "archive"), nbytes)
        metrics.observe(_metric("fdb.field.latency", backend, "archive"),
                        elapsed)

    # ------------------------------------------------------------- flush
    def flush(self, name: str) -> Generator:
        """Task helper: wait for every in-flight field, then persist the
        named landmark. Returns the landmark record."""
        if self._eq is not None:
            for event in (yield from self._eq.drain()):
                event.result  # re-raise any stored field's error
        record = {
            "name": name,
            "fields": self.fields,
            "bytes": self.bytes,
            "time": self.ctx.sim.now,
        }
        yield from self.index.landmark(self.ctx, name, record)
        self.landmarks.append(record)
        tracer = self.ctx.sim.tracer
        if tracer is not None and self._span is not None:
            tracer.end(self._span, fields=self.fields)
            self._span = None
        return record

    def close(self) -> Generator:
        """Task helper: tear down the pipeline queue."""
        if self._eq is not None:
            yield from self._eq.close()
            self._eq = None
        return None
