"""The retrieve pipeline: key predicates back out of the field database.

Product generation speaks predicates, not paths: "every step of t2m from
Monday's run". The retriever expands a
:class:`~repro.fdb.schema.FieldQuery` against the index (ordered KV
prefix scan, or a pruned directory walk on the tree contrast), then
scatter-reads the matching fields — per field an index lookup for the
location record and a mapping read for the bytes, pipelined through an
event queue in async mode.

Every payload read back is verified against the field's deterministic
content pattern (``PatternPayload(key.seed, 0, nbytes)``) unless
``verify=False`` — payload equality is O(1), so verification costs
nothing simulated or real.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.daos.api import EventQueue, PatternPayload
from repro.errors import DerDataLoss
from repro.fdb.index import FdbIndex
from repro.fdb.mapping import FdbContext, FieldMapping
from repro.fdb.schema import FieldKey, FieldQuery

#: span name the per-layer breakdown roots at
RETRIEVE_SPAN = "fdb.retrieve"


class Retriever:
    """Predicate-expansion scatter-read pipeline."""

    def __init__(
        self,
        ctx: FdbContext,
        mapping: FieldMapping,
        index: FdbIndex,
        depth: Optional[int] = 8,
        sync: bool = False,
        verify: bool = True,
    ):
        self.ctx = ctx
        self.mapping = mapping
        self.index = index
        self.depth = depth
        self.sync = sync
        self.verify = verify
        #: per-field service latencies (simulated seconds), reap order
        self.latencies: List[float] = []
        self.fields = 0
        self.bytes = 0

    def retrieve(self, query: FieldQuery) -> Generator:
        """Task helper: expand ``query`` and fetch every matching field.

        Returns the matched keys in canonical order. Raises
        :class:`~repro.errors.DerDataLoss` if any payload read back does
        not equal its field's expected pattern."""
        tracer = self.ctx.sim.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                RETRIEVE_SPAN, "fdb",
                attrs={"backend": self.mapping.name, "sync": self.sync},
            )
        try:
            keys = yield from self.index.scan(self.ctx, query)
            if self.sync:
                for key in keys:
                    yield from self._fetch(key)
            else:
                eq = EventQueue(
                    self.ctx.sim, depth=self.depth, name="fdb-retrieve"
                )
                for key in keys:
                    yield from eq.submit(self._fetch(key), name=key.canonical)
                for event in (yield from eq.drain()):
                    event.result  # re-raise any fetch's error
                yield from eq.close()
        finally:
            if tracer is not None:
                tracer.end(span, fields=self.fields)
        return keys

    def _fetch(self, key: FieldKey) -> Generator:
        sim = self.ctx.sim
        start = sim.now
        entry = yield from self.index.lookup(self.ctx, key)
        nbytes = entry["nbytes"]
        payload = yield from self.mapping.read(
            self.ctx, key, entry["loc"], nbytes
        )
        if self.verify:
            expected = PatternPayload(seed=key.seed, origin=0, nbytes=nbytes)
            if payload != expected:
                raise DerDataLoss(
                    f"field {key.canonical} read back wrong content "
                    f"({payload!r} != {expected!r})"
                )
        elapsed = sim.now - start
        self.latencies.append(elapsed)
        self.fields += 1
        self.bytes += nbytes
        self._account(nbytes, elapsed)
        return nbytes

    def _account(self, nbytes: int, elapsed: float) -> None:
        metrics = self.ctx.sim.metrics
        if metrics is None:
            return
        backend = self.mapping.name
        metrics.incr(f"fdb.fields{{backend={backend},phase=retrieve}}")
        metrics.incr(f"fdb.bytes{{backend={backend},phase=retrieve}}", nbytes)
        metrics.observe(
            f"fdb.field.latency{{backend={backend},phase=retrieve}}", elapsed
        )
