"""DFuse — the FUSE mount over DFS.

Gives unmodified POSIX applications (the IOR POSIX backend, the MPI-IO
UFS driver, the HDF5 sec2 VFD) access to a DAOS container through the
:class:`~repro.posix.vfs.FileSystem` interface, while charging the costs
a real FUSE data path pays: per-request kernel crossings and the
``max_write``/``max_read`` request segmentation at file-offset-aligned
1 MiB windows (matching the DFS chunk size, as dfuse configures).
Caching is disabled, the configuration DAOS documents for benchmarking
(and the only safe one for multi-node IOR).
"""

from repro.dfuse.fuse import DFuseMount

__all__ = ["DFuseMount"]
