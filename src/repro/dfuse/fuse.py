"""The DFuse user-space filesystem daemon model.

Every VFS call pays ``syscall_cost`` (user→kernel→fuse-daemon round
trip); data calls are additionally segmented into FUSE requests at
file-offset-aligned ``max_transfer`` windows — dfuse aligns its I/O
descriptors to the DFS chunk layout, so an *unaligned* application
buffer touches one more window than an aligned one and pays one more
round trip (this, compounded by the HDF5 sieve behaviour, is mechanism
#6 of DESIGN.md §3). Requests of one call are serviced sequentially by
the daemon, as the kernel FUSE writeback path does with caching off.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Tuple

from repro.daos.vos.payload import as_payload, concat_payloads
from repro.dfs.dfs import Dfs
from repro.dfs.file import DfsFile
from repro.errors import DaosError, FsError, fs_error_from_daos
from repro.obs.tracer import NOOP_SPAN
from repro.posix.vfs import FileHandle, FileSystem, StatResult, validate_flags
from repro.units import MiB


class DFuseMount(FileSystem):
    """A DFuse mountpoint exposing a DFS container as a POSIX filesystem."""

    def __init__(
        self,
        dfs: Dfs,
        syscall_cost: float = 3.5e-6,
        request_cost: float = 9e-6,
        max_transfer: int = MiB,
    ):
        self.dfs = dfs
        #: user↔kernel transition + VFS dispatch per system call
        self.syscall_cost = syscall_cost
        #: kernel→daemon→DFS dispatch per FUSE data request
        self.request_cost = request_cost
        #: FUSE max_read/max_write (dfuse default: 1 MiB)
        self.max_transfer = max_transfer
        self.blksize = max_transfer

    # ------------------------------------------------------------- helpers
    def _windows(self, offset: int, length: int) -> List[Tuple[int, int]]:
        """Split [offset, offset+length) at aligned max_transfer windows."""
        out = []
        cursor = offset
        stop = offset + length
        while cursor < stop:
            window_end = (cursor // self.max_transfer + 1) * self.max_transfer
            take = min(window_end, stop) - cursor
            out.append((cursor, take))
            cursor += take
        return out

    @staticmethod
    def _translate(err: DaosError, path: str) -> FsError:
        return fs_error_from_daos(err, path)

    # ------------------------------------------------------------- FileSystem API
    def open(self, path: str, flags: Iterable[str] = ("r",)) -> Generator:
        flag_set = validate_flags(flags)
        yield self.syscall_cost
        try:
            handle = yield from self.dfs.open_file(
                path,
                create="creat" in flag_set,
                excl="excl" in flag_set,
                trunc="trunc" in flag_set,
            )
        except DaosError as err:
            raise self._translate(err, path) from err
        return DFuseFile(self, handle)

    def mkdir(self, path: str) -> Generator:
        yield self.syscall_cost
        try:
            yield from self.dfs.mkdir(path)
        except DaosError as err:
            raise self._translate(err, path) from err
        return None

    def readdir(self, path: str) -> Generator:
        yield self.syscall_cost
        try:
            names = yield from self.dfs.readdir(path)
        except DaosError as err:
            raise self._translate(err, path) from err
        return names

    def stat(self, path: str) -> Generator:
        yield self.syscall_cost
        try:
            entry, size = yield from self.dfs.stat(path)
        except DaosError as err:
            raise self._translate(err, path) from err
        return StatResult(
            is_dir=entry.is_dir,
            size=size,
            mode=entry.mode,
            blksize=self.blksize,
        )

    def unlink(self, path: str) -> Generator:
        yield self.syscall_cost
        try:
            yield from self.dfs.unlink(path)
        except DaosError as err:
            raise self._translate(err, path) from err
        return None

    def rmdir(self, path: str) -> Generator:
        yield self.syscall_cost
        try:
            yield from self.dfs.rmdir(path)
        except DaosError as err:
            raise self._translate(err, path) from err
        return None

    def rename(self, old: str, new: str) -> Generator:
        yield self.syscall_cost
        try:
            yield from self.dfs.rename(old, new)
        except DaosError as err:
            raise self._translate(err, new) from err
        return None


class DFuseFile(FileHandle):
    """An open fd on a DFuse mount."""

    def __init__(self, mount: DFuseMount, inner: DfsFile):
        self.mount = mount
        self.inner = inner

    def _span(self, name: str, **attrs):
        client = self.mount.dfs.client
        tracer = client.sim.tracer
        if tracer is None:
            return NOOP_SPAN
        return tracer.span(
            name, "dfuse", node=client.node.name, attrs=attrs or None
        )

    def pwrite(self, offset: int, data) -> Generator:
        payload = as_payload(data)
        with self._span(
            "dfuse.pwrite", offset=offset, nbytes=payload.nbytes
        ):
            yield self.mount.syscall_cost
            written = 0
            for window_offset, take in self.mount._windows(
                offset, payload.nbytes
            ):
                yield self.mount.request_cost
                fragment = payload.slice(written, written + take)
                written += (
                    yield from self.inner.write(window_offset, fragment)
                )
        return written

    def pread(self, offset: int, length: int) -> Generator:
        with self._span("dfuse.pread", offset=offset, nbytes=length):
            yield self.mount.syscall_cost
            parts = []
            got = 0
            for window_offset, take in self.mount._windows(offset, length):
                yield self.mount.request_cost
                part = yield from self.inner.read(window_offset, take)
                parts.append(part)
                got += part.nbytes
                if part.nbytes < take:  # EOF inside this window
                    break
        return concat_payloads(parts)

    def fsync(self) -> Generator:
        yield self.mount.syscall_cost
        yield from self.inner.sync()
        return None

    def truncate(self, size: int) -> Generator:
        yield self.mount.syscall_cost
        yield from self.inner.truncate(size)
        return None

    def size(self) -> Generator:
        yield self.mount.syscall_cost
        return (yield from self.inner.get_size())

    def close(self) -> Generator:
        yield self.mount.syscall_cost
        self.inner.close()
        return None
