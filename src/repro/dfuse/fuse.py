"""The DFuse user-space filesystem daemon model.

Every VFS call pays ``syscall_cost`` (user→kernel→fuse-daemon round
trip); data calls are additionally segmented into FUSE requests at
file-offset-aligned ``max_transfer`` windows — dfuse aligns its I/O
descriptors to the DFS chunk layout, so an *unaligned* application
buffer touches one more window than an aligned one and pays one more
round trip (this, compounded by the HDF5 sieve behaviour, is mechanism
#6 of DESIGN.md §3). Requests of one call are serviced sequentially by
the daemon, as the kernel FUSE writeback path does with caching off.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Tuple

from typing import Optional

from repro.cache.attrs import TtlCache
from repro.cache.config import CacheConfig
from repro.cache.pages import PageCache
from repro.daos.vos.payload import as_payload, concat_payloads
from repro.dfs.dfs import Dfs
from repro.dfs.file import DfsFile
from repro.errors import DaosError, FsError, fs_error_from_daos
from repro.obs.tracer import NOOP_SPAN
from repro.posix.vfs import (
    FileHandle,
    FileSystem,
    StatResult,
    normalize,
    validate_flags,
)
from repro.units import MiB


class DFuseMount(FileSystem):
    """A DFuse mountpoint exposing a DFS container as a POSIX filesystem.

    With a :class:`~repro.cache.config.CacheConfig` attached (modes
    ``readonly``/``writeback``, like ``dfuse --enable-caching``), the
    mount grows a data page cache and an attribute TTL cache; writeback
    additionally skips the per-window FUSE request segmentation on
    writes, handing whole buffers to the DFS write-behind layer. The
    default ``none`` mode constructs neither and every path is
    byte-identical to the uncached build.
    """

    def __init__(
        self,
        dfs: Dfs,
        syscall_cost: float = 3.5e-6,
        request_cost: float = 9e-6,
        max_transfer: int = MiB,
        cache: Optional[CacheConfig] = None,
    ):
        self.dfs = dfs
        #: user↔kernel transition + VFS dispatch per system call
        self.syscall_cost = syscall_cost
        #: kernel→daemon→DFS dispatch per FUSE data request
        self.request_cost = request_cost
        #: FUSE max_read/max_write (dfuse default: 1 MiB)
        self.max_transfer = max_transfer
        self.blksize = max_transfer
        cfg = cache if cache is not None and cache.enabled else None
        if cfg is not None and not cfg.capacity:
            cfg = cfg.resolve(dfs.client.node.spec)
        self.cache = cfg
        sim = dfs.client.sim
        node_labels = {"node": dfs.client.node.name}
        self.page: Optional[PageCache] = (
            PageCache(cfg.capacity, sim, labels=node_labels)
            if cfg is not None else None
        )
        self._attrs: Optional[TtlCache] = (
            TtlCache(sim, cfg.attr_ttl, "cache.attr", labels=node_labels)
            if cfg is not None else None
        )

    @staticmethod
    def _key(path: str) -> str:
        return "/" + "/".join(normalize(path))

    def _invalidate_data(self, key: str) -> None:
        """Drop cached pages + attrs for a path (unlink/rename/truncate)."""
        if self.page is not None:
            self.page.invalidate_file(key)
        if self._attrs is not None:
            self._attrs.invalidate(key)

    # ------------------------------------------------------------- helpers
    def _windows(self, offset: int, length: int) -> List[Tuple[int, int]]:
        """Split [offset, offset+length) at aligned max_transfer windows."""
        out = []
        cursor = offset
        stop = offset + length
        while cursor < stop:
            window_end = (cursor // self.max_transfer + 1) * self.max_transfer
            take = min(window_end, stop) - cursor
            out.append((cursor, take))
            cursor += take
        return out

    @staticmethod
    def _translate(err: DaosError, path: str) -> FsError:
        return fs_error_from_daos(err, path)

    # ------------------------------------------------------------- FileSystem API
    def open(self, path: str, flags: Iterable[str] = ("r",)) -> Generator:
        flag_set = validate_flags(flags)
        yield self.syscall_cost
        try:
            handle = yield from self.dfs.open_file(
                path,
                create="creat" in flag_set,
                excl="excl" in flag_set,
                trunc="trunc" in flag_set,
            )
        except DaosError as err:
            raise self._translate(err, path) from err
        return DFuseFile(self, handle)

    def mkdir(self, path: str) -> Generator:
        yield self.syscall_cost
        try:
            yield from self.dfs.mkdir(path)
        except DaosError as err:
            raise self._translate(err, path) from err
        return None

    def readdir(self, path: str) -> Generator:
        yield self.syscall_cost
        try:
            names = yield from self.dfs.readdir(path)
        except DaosError as err:
            raise self._translate(err, path) from err
        return names

    def stat(self, path: str) -> Generator:
        yield self.syscall_cost
        if self._attrs is not None:
            key = self._key(path)
            cached = self._attrs.get(key)
            if cached is not None:
                return cached
        try:
            entry, size = yield from self.dfs.stat(path)
        except DaosError as err:
            raise self._translate(err, path) from err
        result = StatResult(
            is_dir=entry.is_dir,
            size=size,
            mode=entry.mode,
            blksize=self.blksize,
        )
        if self._attrs is not None:
            self._attrs.put(self._key(path), result)
        return result

    def unlink(self, path: str) -> Generator:
        yield self.syscall_cost
        try:
            yield from self.dfs.unlink(path)
        except DaosError as err:
            raise self._translate(err, path) from err
        self._invalidate_data(self._key(path))
        return None

    def rmdir(self, path: str) -> Generator:
        yield self.syscall_cost
        try:
            yield from self.dfs.rmdir(path)
        except DaosError as err:
            raise self._translate(err, path) from err
        return None

    def rename(self, old: str, new: str) -> Generator:
        yield self.syscall_cost
        try:
            yield from self.dfs.rename(old, new)
        except DaosError as err:
            raise self._translate(err, new) from err
        self._invalidate_data(self._key(old))
        self._invalidate_data(self._key(new))
        return None


class DFuseFile(FileHandle):
    """An open fd on a DFuse mount."""

    def __init__(self, mount: DFuseMount, inner: DfsFile):
        self.mount = mount
        self.inner = inner

    def _span(self, name: str, **attrs):
        client = self.mount.dfs.client
        tracer = client.sim.tracer
        if tracer is None:
            return NOOP_SPAN
        return tracer.span(
            name, "dfuse", node=client.node.name, attrs=attrs or None
        )

    def _cache_span(self, name: str, **attrs):
        client = self.mount.dfs.client
        tracer = client.sim.tracer
        if tracer is None:
            return NOOP_SPAN
        return tracer.span(
            name, "cache", node=client.node.name, attrs=attrs or None
        )

    def pwrite(self, offset: int, data) -> Generator:
        payload = as_payload(data)
        if self.mount.cache is not None and self.mount.cache.writeback:
            return (yield from self._pwrite_writeback(offset, payload))
        with self._span(
            "dfuse.pwrite", offset=offset, nbytes=payload.nbytes
        ):
            yield self.mount.syscall_cost
            written = 0
            for window_offset, take in self.mount._windows(
                offset, payload.nbytes
            ):
                yield self.mount.request_cost
                fragment = payload.slice(written, written + take)
                written += (
                    yield from self.inner.write(window_offset, fragment)
                )
        if self.mount.page is not None:
            # readonly mode: write-through, drop overlapped cached pages
            self.mount.page.invalidate_range(
                self.inner.path, offset, payload.nbytes
            )
        if self.mount._attrs is not None:
            self.mount._attrs.invalidate(self.inner.path)
        return written

    def _pwrite_writeback(self, offset: int, payload) -> Generator:
        """Writeback: one syscall, no per-window FUSE requests — the
        whole buffer lands in the DFS write-behind layer, which charges
        the memcpy and coalesces (the kernel writeback-cache path)."""
        with self._span(
            "dfuse.pwrite", offset=offset, nbytes=payload.nbytes,
            writeback=True,
        ):
            yield self.mount.syscall_cost
            written = yield from self.inner.write(offset, payload)
        if self.mount.page is not None:
            self.mount.page.invalidate_range(
                self.inner.path, offset, payload.nbytes
            )
        if self.mount._attrs is not None:
            self.mount._attrs.invalidate(self.inner.path)
        return written

    def pread(self, offset: int, length: int) -> Generator:
        if self.mount.page is not None:
            return (yield from self._pread_cached(offset, length))
        with self._span("dfuse.pread", offset=offset, nbytes=length):
            yield self.mount.syscall_cost
            parts = []
            got = 0
            for window_offset, take in self.mount._windows(offset, length):
                yield self.mount.request_cost
                part = yield from self.inner.read(window_offset, take)
                parts.append(part)
                got += part.nbytes
                if part.nbytes < take:  # EOF inside this window
                    break
        return concat_payloads(parts)

    def _pread_cached(self, offset: int, length: int) -> Generator:
        """Serve from the page cache; read holes through and fill them."""
        page = self.mount.page
        key = self.inner.path
        epoch = self.inner.shared.epoch
        with self._span("dfuse.pread", offset=offset, nbytes=length):
            yield self.mount.syscall_cost
            parts = []
            copy_bytes = 0
            eof = False
            for seg_start, seg_len, cached in page.lookup(
                key, epoch, offset, length
            ):
                if eof:
                    break
                if cached is not None:
                    parts.append(cached)
                    copy_bytes += seg_len
                    continue
                for window_offset, take in self.mount._windows(
                    seg_start, seg_len
                ):
                    yield self.mount.request_cost
                    part = yield from self.inner.read(window_offset, take)
                    if part.nbytes:
                        parts.append(part)
                        page.insert(key, epoch, window_offset, part)
                    if part.nbytes < take:  # EOF inside this window
                        eof = True
                        break
            if copy_bytes:
                with self._cache_span("cache.page.copy", nbytes=copy_bytes):
                    yield self.mount.cache.copy_cost(copy_bytes)
        return concat_payloads(parts)

    def fsync(self) -> Generator:
        yield self.mount.syscall_cost
        yield from self.inner.sync()
        return None

    def truncate(self, size: int) -> Generator:
        yield self.mount.syscall_cost
        yield from self.inner.truncate(size)
        self.mount._invalidate_data(self.inner.path)
        return None

    def size(self) -> Generator:
        yield self.mount.syscall_cost
        return (yield from self.inner.get_size())

    def close(self) -> Generator:
        yield self.mount.syscall_cost
        if self.mount.cache is not None:
            # open-to-close consistency: commit write-behind data now;
            # inner.close() below surfaces the typed error if it failed
            yield from self.inner.flush()
            if self.mount._attrs is not None:
                self.mount._attrs.invalidate(self.inner.path)
        self.inner.close()
        return None
