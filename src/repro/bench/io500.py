"""An IO500-style composite benchmark on the simulated stack.

The paper cites DAOS's IO-500 rankings as evidence that it "can scale to
high metadata operation and I/O bandwidth rates"; this harness runs the
list's four bandwidth phases (ior-easy/hard × write/read) and an
mdtest-style metadata phase, and combines them with the IO500 scoring
rule: the geometric mean of the bandwidth scores (GiB/s) and of the
metadata scores (kIOPS), and the final score their geometric mean.

This is a structural reproduction of the benchmark's shape, not of its
exact parameter set (ior-hard's 47008-byte transfers are kept, the
stonewalling timer is not modelled).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.ior import IorParams, run_ior
from repro.mdtest import MdtestParams, run_mdtest
from repro.units import GiB

#: ior-hard's famously unaligned transfer size (bytes)
HARD_XFER = 47008


@dataclass
class Io500Result:
    bandwidth: Dict[str, float] = field(default_factory=dict)  # bytes/s
    metadata: Dict[str, float] = field(default_factory=dict)  # ops/s

    @staticmethod
    def _geomean(values) -> float:
        values = list(values)
        return math.exp(sum(math.log(v) for v in values) / len(values))

    @property
    def bw_score(self) -> float:
        """GiB/s, geometric mean of the bandwidth phases."""
        return self._geomean(v / GiB for v in self.bandwidth.values())

    @property
    def md_score(self) -> float:
        """kIOPS, geometric mean of the metadata phases."""
        return self._geomean(v / 1e3 for v in self.metadata.values())

    @property
    def score(self) -> float:
        return math.sqrt(self.bw_score * self.md_score)

    def summary(self) -> str:
        lines = ["IO500-style result (simulated):"]
        for name, value in self.bandwidth.items():
            lines.append(f"  {name:16s} {value / GiB:10.2f} GiB/s")
        for name, value in self.metadata.items():
            lines.append(f"  {name:16s} {value / 1e3:10.1f} kIOPS")
        lines.append(f"  bandwidth score  {self.bw_score:10.2f} GiB/s")
        lines.append(f"  metadata  score  {self.md_score:10.1f} kIOPS")
        lines.append(f"  SCORE            {self.score:10.2f}")
        return "\n".join(lines)


def run_io500(
    cluster,
    ppn: int = 16,
    easy_block="16m",
    hard_transfers: int = 64,
    md_files: int = 64,
) -> Io500Result:
    """Run the five phases on a booted cluster."""
    result = Io500Result()

    easy = IorParams(api="DFS", file_per_proc=True, oclass="S2",
                     block_size=easy_block, transfer_size="1m")
    easy_run = run_ior(cluster, easy, ppn=ppn)
    result.bandwidth["ior-easy-write"] = easy_run.max_write_bw
    result.bandwidth["ior-easy-read"] = easy_run.max_read_bw

    hard = IorParams(api="DFS", file_per_proc=False, oclass="SX",
                     interleaved=True,
                     block_size=HARD_XFER * hard_transfers,
                     transfer_size=HARD_XFER)
    hard_run = run_ior(cluster, hard, ppn=ppn)
    result.bandwidth["ior-hard-write"] = hard_run.max_write_bw
    result.bandwidth["ior-hard-read"] = hard_run.max_read_bw

    md = run_mdtest(cluster, MdtestParams(files_per_rank=md_files), ppn=ppn)
    for phase, rate in md.rates.items():
        result.metadata[f"mdtest-{phase}"] = rate
    return result
