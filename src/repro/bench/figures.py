"""Regeneration of every figure in the paper (+ the contrast claim).

Figure 1 (file-per-process, "easy"): read (a) and write (b) bandwidth vs
client nodes, one series per (interface x object class) — interfaces
DFS (native), MPI-IO over DFuse, HDF5 over DFuse; classes S1, S2, SX.

Figure 2 (single shared file, "hard"): read (a) and write (b) bandwidth
vs client nodes, one series per interface, object class SX.

Section-IV contrast: DAOS shared-file ≈ file-per-process, "in stark
contrast" to a standard parallel filesystem — measured by running the
same two workloads on the Lustre baseline.

Scale knobs: ``node_counts`` and ``block_size`` default to a quick
configuration; pass ``FULL_NODE_COUNTS`` / 64 MiB blocks (or run
``benchmarks/run_figures.py --full``) for the paper-scale sweep.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.bench.sweep import FigureData, Series
from repro.cluster import build_lustre_cluster, nextgenio
from repro.ior import IorParams, run_ior

FULL_NODE_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16)
QUICK_NODE_COUNTS: Tuple[int, ...] = (1, 4)

FIG1_INTERFACES = ("DFS", "MPIIO", "HDF5")
FIG1_OCLASSES = ("S1", "S2", "SX")
FIG2_INTERFACES = ("DFS", "MPIIO", "HDF5")


def _series_label(api: str, oclass: Optional[str] = None) -> str:
    name = {"DFS": "DAOS", "MPIIO": "MPI-IO", "HDF5": "HDF5",
            "POSIX": "POSIX", "DAOS": "DAOS-array"}[api]
    return f"{name} {oclass}" if oclass else name


def _run_point(
    nodes: int,
    api: str,
    oclass: Optional[str],
    file_per_proc: bool,
    block_size,
    ppn: int,
    repetitions: int,
    flow_solver: Optional[str] = None,
) -> Tuple[float, float]:
    cluster = nextgenio(client_nodes=nodes, flow_solver=flow_solver)
    params = IorParams(
        api=api,
        file_per_proc=file_per_proc,
        oclass=oclass,
        block_size=block_size,
        transfer_size="1m",
        repetitions=repetitions,
    )
    result = run_ior(cluster, params, ppn=ppn)
    return result.max_write_bw, result.max_read_bw


def fig1_fpp(
    node_counts: Iterable[int] = QUICK_NODE_COUNTS,
    block_size="16m",
    ppn: int = 16,
    repetitions: int = 1,
    interfaces: Iterable[str] = FIG1_INTERFACES,
    oclasses: Iterable[str] = FIG1_OCLASSES,
    flow_solver: Optional[str] = None,
) -> Tuple[FigureData, FigureData]:
    """Returns (fig1a_read, fig1b_write)."""
    read_fig = FigureData("Fig 1a", "IOR file-per-process: read",
                          "client nodes", "bandwidth")
    write_fig = FigureData("Fig 1b", "IOR file-per-process: write",
                           "client nodes", "bandwidth")
    for api in interfaces:
        for oclass in oclasses:
            label = _series_label(api, oclass)
            read_series = Series(label)
            write_series = Series(label)
            for nodes in node_counts:
                write_bw, read_bw = _run_point(
                    nodes, api, oclass, True, block_size, ppn, repetitions,
                    flow_solver=flow_solver,
                )
                read_series.add(nodes, read_bw)
                write_series.add(nodes, write_bw)
            read_fig.series.append(read_series)
            write_fig.series.append(write_series)
    return read_fig, write_fig


def fig2_shared(
    node_counts: Iterable[int] = QUICK_NODE_COUNTS,
    block_size="16m",
    ppn: int = 16,
    repetitions: int = 1,
    interfaces: Iterable[str] = FIG2_INTERFACES,
    oclass: str = "SX",
    flow_solver: Optional[str] = None,
) -> Tuple[FigureData, FigureData]:
    """Returns (fig2a_read, fig2b_write)."""
    read_fig = FigureData("Fig 2a", "IOR shared-file: read",
                          "client nodes", "bandwidth")
    write_fig = FigureData("Fig 2b", "IOR shared-file: write",
                           "client nodes", "bandwidth")
    for api in interfaces:
        label = _series_label(api)
        read_series = Series(label)
        write_series = Series(label)
        for nodes in node_counts:
            write_bw, read_bw = _run_point(
                nodes, api, oclass, False, block_size, ppn, repetitions,
                flow_solver=flow_solver,
            )
            read_series.add(nodes, read_bw)
            write_series.add(nodes, write_bw)
        read_fig.series.append(read_series)
        write_fig.series.append(write_series)
    return read_fig, write_fig


def cache_fpp_sweep(
    node_counts: Iterable[int] = (1, 4, 8),
    modes: Iterable[str] = ("none", "readonly", "writeback"),
    block_size="4m",
    ppn: int = 4,
    api: str = "POSIX",
) -> Tuple[FigureData, FigureData]:
    """Fig-1-style FPP sweep over the client cache modes.

    One series per cache mode, DFuse (POSIX api) file-per-process —
    the workload the caching tier targets. Returns (read, write)
    FigureData at each client-node count.
    """
    read_fig = FigureData("Cache 1a", f"IOR fpp over {api}: read by cache mode",
                          "client nodes", "bandwidth")
    write_fig = FigureData("Cache 1b", f"IOR fpp over {api}: write by cache mode",
                           "client nodes", "bandwidth")
    for mode in modes:
        read_series = Series(mode)
        write_series = Series(mode)
        for nodes in node_counts:
            cluster = nextgenio(client_nodes=nodes)
            params = IorParams(
                api=api,
                file_per_proc=True,
                oclass="SX",
                block_size=block_size,
                transfer_size="1m",
                cache_mode=mode,
            )
            result = run_ior(cluster, params, ppn=ppn)
            read_series.add(nodes, result.max_read_bw)
            write_series.add(nodes, result.max_write_bw)
        read_fig.series.append(read_series)
        write_fig.series.append(write_series)
    return read_fig, write_fig


def async_depth_sweep(
    depths: Iterable[int] = (0, 1, 2, 4, 8, 16),
    apis: Iterable[str] = ("DFS", "DAOS"),
    nodes: int = 1,
    block_size="4m",
    ppn: int = 4,
    oclass: str = "SX",
) -> Tuple[FigureData, FigureData]:
    """Throughput vs event-queue depth (``aio_queue_depth``).

    One series per async-capable api, file-per-process at a low client
    count — the latency-bound regime where pipelining pays. Depth 0 is
    the blocking loop and depth 1 must reproduce it exactly (the eq
    byte-identity invariant), so the curve's first two points coincide
    by construction. Returns (read, write) FigureData keyed on depth.
    """
    read_fig = FigureData("Async 1a", "IOR fpp: read by queue depth",
                          "aio queue depth", "bandwidth")
    write_fig = FigureData("Async 1b", "IOR fpp: write by queue depth",
                           "aio queue depth", "bandwidth")
    for api in apis:
        label = _series_label(api)
        read_series = Series(label)
        write_series = Series(label)
        for depth in depths:
            cluster = nextgenio(client_nodes=nodes)
            params = IorParams(
                api=api,
                file_per_proc=True,
                oclass=oclass,
                block_size=block_size,
                transfer_size="1m",
                aio_queue_depth=depth,
            )
            result = run_ior(cluster, params, ppn=ppn)
            read_series.add(depth, result.max_read_bw)
            write_series.add(depth, result.max_write_bw)
        read_fig.series.append(read_series)
        write_fig.series.append(write_series)
    return read_fig, write_fig


def _open_rebuild_window(cluster, window_bytes: int) -> int:
    """Exclude one replica target, write ``window_bytes`` it misses and
    reintegrate — returning with the background resync still draining, so
    the caller's workload races real rebuild traffic."""
    from repro.daos.oclass import RP_2G1
    from repro.daos.vos.payload import PatternPayload
    from repro.units import MiB

    client = cluster.new_client(0)

    def go():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container("rebuild-window",
                                                oclass="RP_2G1")
        oid = yield from cont.alloc_oid(RP_2G1)
        obj = cont.open_object(oid)
        victim = obj.layout.targets_for_dkey(0)[0]
        uuid = pool.pool_map.uuid
        yield from cluster.daos.exclude_target(uuid, victim)
        yield from pool.refresh_map()
        yield from obj.write(
            0, PatternPayload(seed=8, origin=0, nbytes=window_bytes),
            chunk_size=MiB,
        )
        yield from cluster.daos.reintegrate_target(uuid, victim)
        obj.close()
        return victim

    return cluster.run(go())


def rebuild_fpp_sweep(
    fractions: Iterable[float] = (0.05, 0.25, 1.0),
    nodes: int = 2,
    window="128m",
    block_size="4m",
    ppn: int = 4,
    api: str = "POSIX",
    oclass: str = "RP_2GX",
) -> Tuple[FigureData, FigureData]:
    """IOR FPP bandwidth while a rebuild drains, by throttle fraction.

    Each "during rebuild" point boots a fresh cluster, opens a
    ``window``-sized exclusion window on one replica target,
    reintegrates, and runs IOR while the resync migrates the window —
    so foreground I/O and rebuild traffic compete for the same media
    and fabric links under the given throttle fraction. The "healthy"
    series is the no-fault baseline, identical at every x (and, by the
    zero-cost-when-healthy invariant, identical to the seed figures).

    The foreground files are replicated (``RP_2GX``): chunks written to
    the still-REBUILDING target must stay readable through the other
    replica, which an unreplicated class cannot provide mid-rebuild.
    Returns (read, write) FigureData.
    """
    from repro.units import parse_size

    read_fig = FigureData(
        "Rebuild 1a", f"IOR fpp over {api}: read during rebuild",
        "rebuild throttle fraction", "bandwidth",
    )
    write_fig = FigureData(
        "Rebuild 1b", f"IOR fpp over {api}: write during rebuild",
        "rebuild throttle fraction", "bandwidth",
    )
    params = IorParams(
        api=api,
        file_per_proc=True,
        oclass=oclass,
        block_size=block_size,
        transfer_size="1m",
    )
    healthy = run_ior(nextgenio(client_nodes=nodes), params, ppn=ppn)
    window_bytes = parse_size(window)
    healthy_read, healthy_write = Series("healthy"), Series("healthy")
    rebuild_read = Series("during rebuild")
    rebuild_write = Series("during rebuild")
    for fraction in fractions:
        cluster = nextgenio(client_nodes=nodes)
        cluster.daos.rebuild.throttle.fraction = fraction
        _open_rebuild_window(cluster, window_bytes)
        result = run_ior(cluster, params, ppn=ppn)
        healthy_read.add(fraction, healthy.max_read_bw)
        healthy_write.add(fraction, healthy.max_write_bw)
        rebuild_read.add(fraction, result.max_read_bw)
        rebuild_write.add(fraction, result.max_write_bw)
    read_fig.series.extend([healthy_read, rebuild_read])
    write_fig.series.extend([healthy_write, rebuild_write])
    return read_fig, write_fig


def fig1_traced_point(
    block_size="16m",
    ppn: int = 16,
    oclass: str = "SX",
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    cache_mode: str = "none",
    timeline_out: Optional[str] = None,
    timeline_interval: float = 0.01,
    slo=None,
):
    """One instrumented fig-1 point: single client node, DFS
    file-per-process, with tracing + metrics enabled. Writes the Chrome
    trace / metrics dump / timeline JSON when paths are given and
    returns the IorResult (whose summary carries the per-layer
    breakdown and, with a timeline, the sparkline block).
    """
    from repro.obs import write_chrome_trace, write_metrics, write_timeline

    cluster = nextgenio(client_nodes=1)
    cluster.observe(
        timeline_interval=timeline_interval if timeline_out else None,
        slo_rules=slo,
    )
    params = IorParams(
        api="DFS",
        file_per_proc=True,
        oclass=oclass,
        block_size=block_size,
        transfer_size="1m",
        cache_mode=cache_mode,
    )
    result = run_ior(cluster, params, ppn=ppn)
    if trace_out:
        write_chrome_trace(cluster.sim.tracer, trace_out,
                           timeline=result.timeline)
    if metrics_out:
        write_metrics(cluster.sim.metrics, metrics_out)
    if timeline_out:
        write_timeline(cluster.sim.timeline.store, timeline_out)
    return result


def lustre_contrast(
    nodes: int = 4,
    block_size="16m",
    ppn: int = 16,
    transfer_size="1m",
) -> Dict[str, float]:
    """The §IV/§V claim: DAOS shared ≈ DAOS fpp; Lustre shared << fpp.

    Returns write bandwidths (bytes/s) for the four cells. The Lustre
    shared-file run uses the io500-hard-style unaligned interleaved
    layout, where page-granular LDLM extent locks conflict on every
    operation; DAOS is byte-granular and lockless, so the same workload
    does not collapse.
    """
    daos = nextgenio(client_nodes=nodes)
    out: Dict[str, float] = {}
    params = IorParams(api="DFS", file_per_proc=True, oclass="SX",
                       block_size=block_size, transfer_size=transfer_size)
    out["daos_fpp_write"] = run_ior(daos, params, ppn=ppn).max_write_bw
    daos = nextgenio(client_nodes=nodes)
    params = IorParams(api="DFS", file_per_proc=False, oclass="SX",
                       interleaved=True, block_size=block_size,
                       transfer_size=transfer_size)
    out["daos_shared_write"] = run_ior(daos, params, ppn=ppn).max_write_bw

    lustre = build_lustre_cluster(server_nodes=8, client_nodes=nodes,
                                  stripe_count=8)
    params = IorParams(api="POSIX", file_per_proc=True,
                       block_size=block_size, transfer_size=transfer_size)
    out["lustre_fpp_write"] = run_ior(lustre, params, ppn=ppn).max_write_bw
    lustre = build_lustre_cluster(server_nodes=8, client_nodes=nodes,
                                  stripe_count=8)
    # unaligned interleaved transfers: the LDLM worst case. The block
    # must stay a multiple of the transfer, so derive it from the
    # requested block size.
    from repro.units import parse_size

    hard_xfer = 1000 * 1000  # 1 MB: page-sharing neighbours
    nblk = parse_size(block_size)
    nblk -= nblk % hard_xfer
    params = IorParams(api="POSIX", file_per_proc=False, interleaved=True,
                       block_size=nblk, transfer_size=hard_xfer)
    out["lustre_shared_write"] = run_ior(lustre, params, ppn=ppn).max_write_bw
    return out
