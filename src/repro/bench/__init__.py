"""Benchmark harness: sweeps, figure assembly, and table rendering.

:mod:`repro.bench.figures` regenerates the data behind every figure of
the paper (and this reproduction's ablations); :mod:`repro.bench.tables`
renders the series as aligned ASCII tables (the textual equivalent of
the paper's plots) and checks the headline *shape* properties listed in
DESIGN.md §4.
"""

from repro.bench.sweep import Series, SeriesPoint, FigureData
from repro.bench.figures import (
    async_depth_sweep,
    cache_fpp_sweep,
    rebuild_fpp_sweep,
    fig1_fpp,
    fig1_traced_point,
    fig2_shared,
    lustre_contrast,
    FULL_NODE_COUNTS,
    QUICK_NODE_COUNTS,
)
from repro.bench.tables import render_figure

__all__ = [
    "Series",
    "SeriesPoint",
    "FigureData",
    "async_depth_sweep",
    "cache_fpp_sweep",
    "rebuild_fpp_sweep",
    "fig1_fpp",
    "fig1_traced_point",
    "fig2_shared",
    "lustre_contrast",
    "render_figure",
    "FULL_NODE_COUNTS",
    "QUICK_NODE_COUNTS",
]
