"""Series/figure data containers for benchmark sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SeriesPoint:
    x: int  # client nodes
    value: float  # bytes/s


@dataclass
class Series:
    label: str
    points: List[SeriesPoint] = field(default_factory=list)

    def add(self, x: int, value: float) -> None:
        self.points.append(SeriesPoint(x, value))

    def at(self, x: int) -> Optional[float]:
        for point in self.points:
            if point.x == x:
                return point.value
        return None

    @property
    def xs(self) -> List[int]:
        return [p.x for p in self.points]


@dataclass
class FigureData:
    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: List[Series] = field(default_factory=list)

    def series_by_label(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(label)

    def labels(self) -> List[str]:
        return [s.label for s in self.series]
