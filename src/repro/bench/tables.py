"""ASCII rendering of figure data (the repo's stand-in for plots)."""

from __future__ import annotations

from typing import List

from repro.bench.sweep import FigureData
from repro.units import GiB


def render_figure(figure: FigureData, unit: float = GiB,
                  unit_name: str = "GiB/s") -> str:
    """One aligned table: rows = x values (node counts, throttle
    fractions, ...), columns = series."""
    xs: List[float] = sorted({p.x for s in figure.series for p in s.points})
    label_width = max(12, *(len(s.label) for s in figure.series))
    header = f"{figure.figure_id}: {figure.title}  [{unit_name}]"
    lines = [header, "-" * len(header)]
    col = f"{figure.xlabel[:6]:>6s} | " + " | ".join(
        f"{s.label:>{label_width}s}" for s in figure.series
    )
    lines.append(col)
    lines.append("-" * len(col))
    for x in xs:
        cells = []
        for series in figure.series:
            value = series.at(x)
            cells.append(
                f"{value / unit:>{label_width}.2f}" if value is not None
                else " " * (label_width - 1) + "-"
            )
        x_cell = f"{int(x):>6d}" if float(x).is_integer() else f"{x:>6.2f}"
        lines.append(f"{x_cell} | " + " | ".join(cells))
    return "\n".join(lines)
