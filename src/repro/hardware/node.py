"""Node objects binding specs to fabric links.

A :class:`ServerNode` creates, per engine, a shared media read link and a
media write link (the interleaved DCPMM channel of that socket) plus, per
target, a read and a write service link (the VOS xstream ceiling). A bulk
I/O flow to a target therefore crosses:

    client NIC ─ server NIC ─ engine media link ─ target service link

with appropriate consumption weights when striped over several targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hardware.specs import EngineSpec, NodeSpec
from repro.network.fabric import Fabric, NodeAddr
from repro.network.flows import Link


@dataclass
class StorageTarget:
    """One VOS target: global id plus its service links."""

    tid: int
    engine: "EngineSlot"
    read_link: Link
    write_link: Link

    @property
    def node(self) -> "ServerNode":
        return self.engine.node


@dataclass
class EngineSlot:
    """One engine's media links and targets on a server node."""

    index: int
    node: "ServerNode"
    spec: EngineSpec
    media_read: Link
    media_write: Link
    targets: List[StorageTarget]


class _Node:
    def __init__(self, fabric: Fabric, name: str, spec: NodeSpec):
        self.fabric = fabric
        self.name = name
        self.spec = spec
        self.addr: NodeAddr = fabric.add_node(name, spec.nic_bw, spec.nic_rails)

    @property
    def nic_tx(self) -> Link:
        return self.fabric.nic_tx(self.addr)

    @property
    def nic_rx(self) -> Link:
        return self.fabric.nic_rx(self.addr)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class ClientNode(_Node):
    """A compute node that runs application processes."""


class ServerNode(_Node):
    """A storage node hosting one or more DAOS engines."""

    def __init__(self, fabric: Fabric, name: str, spec: NodeSpec):
        super().__init__(fabric, name, spec)
        if spec.engines <= 0:
            raise ValueError(f"server node {name!r} needs engines > 0")
        self.engines: List[EngineSlot] = []
        flownet = fabric.flownet
        for e in range(spec.engines):
            espec = spec.engine
            media_read = flownet.add_link(
                f"media_rd:{name}.e{e}", espec.media_read_bw
            )
            media_write = flownet.add_link(
                f"media_wr:{name}.e{e}", espec.media_write_bw
            )
            slot = EngineSlot(e, self, espec, media_read, media_write, [])
            for t in range(espec.targets):
                read_link = flownet.add_link(
                    f"tgt_rd:{name}.e{e}.t{t}", espec.target_read_bw
                )
                write_link = flownet.add_link(
                    f"tgt_wr:{name}.e{e}.t{t}", espec.target_write_bw
                )
                slot.targets.append(StorageTarget(t, slot, read_link, write_link))
            self.engines.append(slot)

    def all_targets(self) -> List[StorageTarget]:
        return [t for engine in self.engines for t in engine.targets]
