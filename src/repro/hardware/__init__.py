"""Hardware models: storage media, nodes, and the NEXTGenIO preset.

Specs are plain dataclasses; :class:`~repro.hardware.node.ServerNode`
instantiates flow-network links for each DAOS engine's media channels and
per-target service capacity. Calibration values are documented on each
spec field; absolute bandwidths are model inputs, the paper-reproduction
claims rest on the *relative* behaviour they induce (see DESIGN.md §3).
"""

from repro.hardware.specs import (
    DcpmmSpec,
    EngineSpec,
    FabricSpec,
    NodeSpec,
    NvmeSpec,
    nextgenio_node,
    nextgenio_fabric,
)
from repro.hardware.node import ClientNode, ServerNode, StorageTarget

__all__ = [
    "DcpmmSpec",
    "NvmeSpec",
    "EngineSpec",
    "NodeSpec",
    "FabricSpec",
    "nextgenio_node",
    "nextgenio_fabric",
    "ServerNode",
    "ClientNode",
    "StorageTarget",
]
