"""Hardware specification dataclasses and NEXTGenIO calibration presets.

Calibration sources
-------------------

- First-generation Intel Optane DCPMM (256 GiB modules, as deployed in
  NEXTGenIO): per-module sequential read ≈ 6.8 GB/s, write ≈ 2.3 GB/s;
  six modules per socket in AppDirect interleaved mode give a per-socket
  media ceiling of roughly 40 GB/s read / 13.5 GB/s write, of which a
  storage server realizes 75–85 % through the PMDK/VOS software path.
- NEXTGenIO nodes carry dual-rail Intel Omni-Path 100 (≈ 11 GB/s usable
  per rail after protocol overhead).
- A DAOS engine binds one socket and serves a set of targets (one VOS
  xstream each); a single xstream sustains only a fraction of the socket
  media bandwidth (CPU-bound checksumming, tree updates, DTX), which is
  what makes per-target hotspots — and therefore object-class placement —
  matter for aggregate performance.

All bandwidths are bytes/second; all times are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import GiB


@dataclass(frozen=True)
class DcpmmSpec:
    """One Optane DC Persistent Memory module."""

    capacity: int = 256 * GiB
    read_bw: float = 6.8e9
    write_bw: float = 2.3e9
    #: extra latency of a media access vs DRAM (load/store granularity)
    access_latency: float = 0.35e-6


@dataclass(frozen=True)
class NvmeSpec:
    """One NVMe SSD (used by DAOS for bulk >4 KiB values without Optane)."""

    capacity: int = 1600 * GiB
    read_bw: float = 3.2e9
    write_bw: float = 1.9e9
    access_latency: float = 80e-6


@dataclass(frozen=True)
class EngineSpec:
    """One DAOS engine (one per socket on NEXTGenIO)."""

    #: number of VOS targets (xstreams) per engine
    targets: int = 8
    #: interleaved modules feeding this engine's media channel
    modules: int = 6
    module: DcpmmSpec = field(default_factory=DcpmmSpec)
    #: fraction of raw interleaved media bandwidth realized through VOS
    media_efficiency_read: float = 0.80
    media_efficiency_write: float = 0.75
    #: per-target (single xstream) service ceilings — CPU bound.
    #: Calibrated so the S2→SX write crossover of Fig. 1b falls between
    #: 8 and 16 client nodes (see benchmarks/bench_oclass_sweep.py for
    #: the sensitivity ablation).
    target_read_bw: float = 3.6e9
    target_write_bw: float = 2.2e9
    #: engine-side fixed CPU time per I/O RPC (request parse, VOS descent)
    per_rpc_cpu: float = 12e-6
    #: extra cost when a stream's consecutive ops land on *different*
    #: targets while the stream spans more targets than the per-handle
    #: session cache covers (lost VOS tree/cache locality and per-target
    #: pipelining). Wide classes (SX) pay it on almost every op; S1-S4
    #: never do.
    target_switch_cost: float = 200e-6
    #: per-handle session-cache width: streams over at most this many
    #: targets keep every target's session warm
    locality_window: int = 4
    #: first touch of an (object handle, target) pair: VOS tree creation
    #: and DTX setup on writes; tree lookup priming on reads. This is the
    #: term that penalizes wide object classes (SX) for small jobs.
    shard_first_write_cost: float = 320e-6
    shard_first_read_cost: float = 60e-6
    #: concurrent RPCs a target services before queueing (ULT credits)
    target_inflight: int = 16

    @property
    def media_read_bw(self) -> float:
        return self.modules * self.module.read_bw * self.media_efficiency_read

    @property
    def media_write_bw(self) -> float:
        return self.modules * self.module.write_bw * self.media_efficiency_write


@dataclass(frozen=True)
class NodeSpec:
    """A cluster node: NIC rails plus (for servers) engines."""

    nic_bw: float = 11.0e9
    nic_rails: int = 2
    #: engines hosted (0 for pure client/compute nodes)
    engines: int = 0
    engine: EngineSpec = field(default_factory=EngineSpec)
    #: client-side per-syscall/API-call CPU cost floor
    client_cpu_per_op: float = 4e-6
    #: node DRAM (NEXTGenIO: 192 GiB DDR4 per node); budgets the
    #: client-side caching tier (repro.cache)
    memory: int = 192 * GiB
    #: DRAM copy bandwidth seen by a single process (memcpy, one core)
    memory_copy_bw: float = 12e9


@dataclass(frozen=True)
class FabricSpec:
    """Interconnect characteristics (Omni-Path 100 class)."""

    base_latency: float = 1.5e-6
    msg_bandwidth: float = 11.0e9
    software_overhead: float = 0.8e-6
    #: how long a caller waits before giving up on an unresponsive peer —
    #: the DER_TIMEDOUT reply delay charged when an RPC hits a down engine
    rpc_timeout: float = 5.0e-3


def nextgenio_node(server: bool) -> NodeSpec:
    """The NEXTGenIO dual-socket Cascade Lake node, as server or client."""
    return NodeSpec(engines=2 if server else 0)


def nextgenio_fabric() -> FabricSpec:
    return FabricSpec()
