"""Datasets: contiguous and chunked layouts addressed by hyperslabs.

Chunked datasets are restricted to chunking along the outermost axis
(``chunk_dims[1:] == dims[1:]``), the common time-series pattern; it
guarantees that a dataset-contiguous run is also chunk-contiguous, so
fragments never need element-level scatter/gather.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.daos.vos.payload import Payload, ZeroPayload, as_payload, concat_payloads
from repro.hdf5.dataspace import Dataspace
from repro.hdf5.datatype import Datatype


class Dataset:
    """An open dataset inside an :class:`~repro.hdf5.file.H5File`."""

    def __init__(
        self,
        file,
        name: str,
        space: Dataspace,
        dtype: Datatype,
        layout: Dict,
        attrs: Optional[Dict] = None,
    ):
        self.file = file
        self.name = name
        self.space = space
        self.dtype = dtype
        self.layout = layout
        self.attrs = attrs if attrs is not None else {}

    # ------------------------------------------------------------- records
    def to_record(self) -> Dict:
        return {
            "space": self.space.to_record(),
            "dtype": self.dtype.to_record(),
            "layout": self.layout,
            "attrs": self.attrs,
        }

    @classmethod
    def from_record(cls, file, name: str, record: Dict) -> "Dataset":
        return cls(
            file,
            name,
            Dataspace.from_record(record["space"]),
            Datatype.from_record(record["dtype"]),
            record["layout"],
            record.get("attrs", {}),
        )

    # ------------------------------------------------------------- helpers
    @property
    def nbytes(self) -> int:
        return self.space.n_elements * self.dtype.itemsize

    def _byte_runs(
        self, start: Sequence[int], count: Sequence[int]
    ) -> List[Tuple[int, int]]:
        """(file_address, nbytes) runs for a selection, layout-resolved.

        Chunked layouts may return runs with address -1 for chunks that
        were never allocated (read as fill value)."""
        item = self.dtype.itemsize
        out: List[Tuple[int, int]] = []
        if self.layout["kind"] == "contiguous":
            base = self.layout["addr"]
            for off_el, len_el in self.space.runs(start, count):
                out.append((base + off_el * item, len_el * item))
            return out
        # chunked along axis 0
        chunk_rows = self.layout["chunk_rows"]
        row_bytes = (
            self.space.n_elements // self.space.dims[0]
        ) * item  # bytes per outermost row
        chunk_bytes = chunk_rows * row_bytes
        chunks: Dict[str, int] = self.layout["chunks"]
        for off_el, len_el in self.space.runs(start, count):
            byte_off = off_el * item
            remaining = len_el * item
            while remaining > 0:
                chunk_idx = byte_off // chunk_bytes
                within = byte_off % chunk_bytes
                take = min(chunk_bytes - within, remaining)
                addr = chunks.get(str(chunk_idx), -1)
                out.append(
                    (addr + within if addr >= 0 else -1, take)
                )
                byte_off += take
                remaining -= take
        return out

    def _ensure_chunks(
        self, start: Sequence[int], count: Sequence[int]
    ) -> Generator:
        """Allocate the chunks a write touches (collective-deterministic)."""
        if self.layout["kind"] != "chunked":
            return None
        chunk_rows = self.layout["chunk_rows"]
        lo = start[0] // chunk_rows
        hi = (start[0] + count[0] - 1) // chunk_rows
        row_bytes = (
            self.space.n_elements // self.space.dims[0]
        ) * self.dtype.itemsize
        chunk_bytes = chunk_rows * row_bytes
        dirty = False
        for chunk_idx in range(lo, hi + 1):
            key = str(chunk_idx)
            if key not in self.layout["chunks"]:
                self.layout["chunks"][key] = self.file._alloc_raw(chunk_bytes)
                dirty = True
        if dirty:
            yield from self.file._metadata_dirty()
        return None

    # ------------------------------------------------------------- I/O
    def write(
        self, start: Sequence[int], count: Sequence[int], data
    ) -> Generator:
        """Task helper: write a hyperslab (row-major source payload)."""
        payload = as_payload(data)
        expected = self.space.selection_elements(count) * self.dtype.itemsize
        if payload.nbytes != expected:
            raise ValueError(
                f"payload is {payload.nbytes} B, selection needs {expected} B"
            )
        yield from self._ensure_chunks(start, count)
        cursor = 0
        for addr, nbytes in self._byte_runs(start, count):
            fragment = payload.slice(cursor, cursor + nbytes)
            cursor += nbytes
            if addr < 0:
                raise AssertionError("writing an unallocated chunk")
            yield from self.file.vfd.write_raw(
                addr, fragment, self.file.data_aligned
            )
        return payload.nbytes

    def read(self, start: Sequence[int], count: Sequence[int]) -> Generator:
        """Task helper: read a hyperslab; returns a row-major payload."""
        parts: List[Payload] = []
        for addr, nbytes in self._byte_runs(start, count):
            if addr < 0:
                parts.append(ZeroPayload(nbytes))  # fill value
            else:
                part = yield from self.file.vfd.read_raw(
                    addr, nbytes, self.file.data_aligned
                )
                if part.nbytes < nbytes:  # sparse region past EOF
                    part = concat_payloads(
                        [part, ZeroPayload(nbytes - part.nbytes)]
                    )
                parts.append(part)
        return concat_payloads(parts)

    def read_all(self) -> Generator:
        zeros = [0] * self.space.rank
        return (yield from self.read(zeros, list(self.space.dims)))
