"""Datasets: hyperslab-addressed arrays, stored by the file's VOL.

The dataset owns the *logical* description (dataspace, datatype, attrs)
and the storage-assigned layout record; how a hyperslab maps to bytes on
storage is the connector's business (:mod:`repro.hdf5.vol`): native
layouts are contiguous or chunked-along-axis-0 file addresses, the DAOS
connector maps element runs straight onto a byte array object.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Sequence

from repro.daos.vos.payload import as_payload
from repro.hdf5.dataspace import Dataspace
from repro.hdf5.datatype import Datatype


class Dataset:
    """An open dataset inside an :class:`~repro.hdf5.file.H5File`."""

    def __init__(
        self,
        file,
        name: str,
        space: Dataspace,
        dtype: Datatype,
        layout: Dict,
        attrs: Optional[Dict] = None,
    ):
        self.file = file
        self.name = name
        self.space = space
        self.dtype = dtype
        self.layout = layout
        self.attrs = attrs if attrs is not None else {}

    # ------------------------------------------------------------- records
    def to_record(self) -> Dict:
        return {
            "space": self.space.to_record(),
            "dtype": self.dtype.to_record(),
            "layout": self.layout,
            "attrs": self.attrs,
        }

    @classmethod
    def from_record(cls, file, name: str, record: Dict) -> "Dataset":
        return cls(
            file,
            name,
            Dataspace.from_record(record["space"]),
            Datatype.from_record(record["dtype"]),
            record["layout"],
            record.get("attrs", {}),
        )

    # ------------------------------------------------------------- helpers
    @property
    def nbytes(self) -> int:
        return self.space.n_elements * self.dtype.itemsize

    # ------------------------------------------------------------- I/O
    def write(
        self, start: Sequence[int], count: Sequence[int], data
    ) -> Generator:
        """Task helper: write a hyperslab (row-major source payload)."""
        payload = as_payload(data)
        expected = self.space.selection_elements(count) * self.dtype.itemsize
        if payload.nbytes != expected:
            raise ValueError(
                f"payload is {payload.nbytes} B, selection needs {expected} B"
            )
        return (
            yield from self.file.vol.dataset_write(
                self.file, self, start, count, payload
            )
        )

    def read(self, start: Sequence[int], count: Sequence[int]) -> Generator:
        """Task helper: read a hyperslab; returns a row-major payload."""
        return (
            yield from self.file.vol.dataset_read(
                self.file, self, start, count
            )
        )

    def read_all(self) -> Generator:
        zeros = [0] * self.space.rank
        return (yield from self.read(zeros, list(self.space.dims)))
