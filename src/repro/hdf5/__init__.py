"""HDF5-lite: a self-describing array file format with pluggable VFDs.

Structurally modelled on HDF5 (not byte-compatible — see DESIGN.md §5):

- a fixed-location superblock pointing at the metadata catalog and
  tracking EOF and the *alignment* file-creation property,
- datasets with dataspaces (N-d dims), datatypes, and contiguous or
  chunked layouts, addressed through hyperslab selections,
- virtual file drivers: ``sec2`` (any POSIX-like mount — a DFuse mount
  in the paper) and ``mpio`` (collective I/O over MPI-IO),
- virtual object layers (VOL, mirroring HDF5 1.12's plugin seam): the
  *native* connector (the format above, through a VFD) and the *daos*
  connector, which maps datasets onto DAOS arrays and metadata onto KV
  objects with no POSIX layer at all (see :mod:`repro.hdf5.vol`).

Performance-relevant fidelity: with the default ``alignment=1`` the raw
data lands at unaligned offsets interleaved with metadata, and the sec2
driver pays H5Dread/H5Dwrite staging through HDF5's internal conversion/
sieve buffering (a memcpy-bound client-side pipeline) — the mechanism
behind "HDF5 using the DFuse mount gives much lower performance" in the
paper. Setting ``alignment`` to the filesystem's preferred I/O size
restores direct I/O (ablation A4), and the ``mpio`` VFD bypasses the
staging entirely via collective buffering (the shared-file result).
"""

from repro.hdf5.file import H5File
from repro.hdf5.datatype import Datatype
from repro.hdf5.dataspace import Dataspace
from repro.hdf5.vfd import MpioVfd, Sec2Vfd
from repro.hdf5.vol import DaosVol, NativeVol, Vol, daos_vol_unlink

__all__ = [
    "H5File", "Datatype", "Dataspace", "Sec2Vfd", "MpioVfd",
    "Vol", "NativeVol", "DaosVol", "daos_vol_unlink",
]
