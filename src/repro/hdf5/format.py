"""On-disk framing for HDF5-lite metadata.

Metadata is serialized as length-prefixed JSON frames (structural
fidelity, not byte-format fidelity — DESIGN.md §5): a fixed 512-byte
superblock at address 0 holding the catalog pointer, EOF and the
alignment property, and a catalog frame re-written on flush holding
every dataset header and the file attributes.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Tuple

SUPERBLOCK_SIZE = 512
MAGIC = b"\x89RHDF5\r\n"
VERSION = 1

_LEN = struct.Struct("<Q")


class FormatError(Exception):
    pass


def pack_superblock(
    catalog_addr: int, catalog_len: int, eof: int, alignment: int
) -> bytes:
    body = json.dumps(
        {
            "version": VERSION,
            "catalog_addr": catalog_addr,
            "catalog_len": catalog_len,
            "eof": eof,
            "alignment": alignment,
        }
    ).encode("utf-8")
    if len(MAGIC) + _LEN.size + len(body) > SUPERBLOCK_SIZE:
        raise FormatError("superblock body too large")
    frame = MAGIC + _LEN.pack(len(body)) + body
    return frame + b"\x00" * (SUPERBLOCK_SIZE - len(frame))


def unpack_superblock(raw: bytes) -> Dict[str, Any]:
    if len(raw) < SUPERBLOCK_SIZE or not raw.startswith(MAGIC):
        raise FormatError("not an HDF5-lite file (bad magic)")
    (length,) = _LEN.unpack_from(raw, len(MAGIC))
    start = len(MAGIC) + _LEN.size
    record = json.loads(raw[start : start + length].decode("utf-8"))
    if record.get("version") != VERSION:
        raise FormatError(f"unsupported version {record.get('version')}")
    return record


def pack_catalog(catalog: Dict[str, Any]) -> bytes:
    body = json.dumps(catalog, sort_keys=True).encode("utf-8")
    return _LEN.pack(len(body)) + body


def unpack_catalog(raw: bytes) -> Dict[str, Any]:
    if len(raw) < _LEN.size:
        raise FormatError("truncated catalog frame")
    (length,) = _LEN.unpack_from(raw, 0)
    if len(raw) < _LEN.size + length:
        raise FormatError("truncated catalog body")
    return json.loads(raw[_LEN.size : _LEN.size + length].decode("utf-8"))
