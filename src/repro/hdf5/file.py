"""H5File: create/open, the space allocator, and the metadata catalog.

Parallel semantics follow HDF5: structural metadata operations
(``create_dataset``) must be performed collectively with identical
arguments, so every rank's in-memory catalog and allocator evolve in
lock-step; only rank 0 writes metadata frames at flush/close time.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Sequence

from repro.errors import ReproError
from repro.hdf5.dataset import Dataset
from repro.hdf5.dataspace import Dataspace
from repro.hdf5.datatype import Datatype
from repro.hdf5.format import (
    SUPERBLOCK_SIZE,
    FormatError,
    pack_catalog,
    pack_superblock,
    unpack_catalog,
    unpack_superblock,
)
from repro.hdf5.vfd import MpioVfd, Vfd

#: generous fixed region after the superblock reserved for the catalog;
#: real HDF5 interleaves metadata with data, which is exactly why its
#: default layout leaves raw data unaligned — we reproduce that by
#: starting raw data right after this (odd-sized) region when
#: ``alignment`` is 1.
CATALOG_REGION = 64 * 1024 - 512 - 37


class H5Error(ReproError):
    pass


class H5File:
    """An open HDF5-lite file."""

    def __init__(self, vfd: Vfd, alignment: int):
        self.vfd = vfd
        self.alignment = max(1, alignment)
        self.datasets: Dict[str, Dataset] = {}
        self.attrs: Dict[str, object] = {}
        self._eof = SUPERBLOCK_SIZE + CATALOG_REGION
        self._dirty = False
        self._open = False

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def create(
        cls, vfd: Vfd, path: str, alignment: int = 1
    ) -> Generator:
        """Task helper: create a fresh file (truncating any old one)."""
        h5 = cls(vfd, alignment)
        yield from vfd.open(path, create=True, trunc=True)
        h5._open = True
        h5._dirty = True
        yield from h5.flush()
        return h5

    @classmethod
    def open(cls, vfd: Vfd, path: str) -> Generator:
        """Task helper: open an existing file, loading its catalog."""
        yield from vfd.open(path, create=False, trunc=False)
        raw = yield from vfd.read_meta(0, SUPERBLOCK_SIZE)
        record = unpack_superblock(raw.materialize())
        h5 = cls(vfd, record["alignment"])
        h5._eof = record["eof"]
        if record["catalog_len"]:
            raw_catalog = yield from vfd.read_meta(
                record["catalog_addr"], record["catalog_len"]
            )
            catalog = unpack_catalog(raw_catalog.materialize())
            h5.attrs = catalog.get("attrs", {})
            for name, ds_record in catalog.get("datasets", {}).items():
                h5.datasets[name] = Dataset.from_record(h5, name, ds_record)
        h5._open = True
        return h5

    @property
    def data_aligned(self) -> bool:
        """Raw data is aligned iff the alignment property covers the
        storage's preferred I/O size — the A4 ablation knob."""
        return self.alignment >= self.vfd.preferred_io

    # ------------------------------------------------------------- allocator
    def _alloc_raw(self, nbytes: int) -> int:
        addr = self._eof
        if self.alignment > 1 and addr % self.alignment:
            addr += self.alignment - addr % self.alignment
        self._eof = addr + nbytes
        return addr

    def _metadata_dirty(self) -> Generator:
        self._dirty = True
        yield 0.0
        return None

    # ------------------------------------------------------------- datasets
    def create_dataset(
        self,
        name: str,
        dims: Sequence[int],
        dtype: str = "u1",
        chunk_rows: Optional[int] = None,
        attrs: Optional[Dict] = None,
    ) -> Generator:
        """Task helper (collective in parallel files): define a dataset.

        ``chunk_rows`` switches to the chunked layout, chunking along
        the outermost axis every ``chunk_rows`` rows.
        """
        if not self._open:
            raise H5Error("file not open")
        if name in self.datasets:
            raise H5Error(f"dataset {name!r} exists")
        space = Dataspace(tuple(dims))
        datatype = Datatype(dtype)
        if chunk_rows is None:
            layout = {
                "kind": "contiguous",
                "addr": self._alloc_raw(space.n_elements * datatype.itemsize),
            }
        else:
            if not (0 < chunk_rows <= dims[0]):
                raise H5Error(f"bad chunk_rows {chunk_rows}")
            layout = {"kind": "chunked", "chunk_rows": chunk_rows, "chunks": {}}
        dataset = Dataset(self, name, space, datatype, layout, attrs)
        self.datasets[name] = dataset
        yield from self._metadata_dirty()
        return dataset

    def dataset(self, name: str) -> Dataset:
        try:
            return self.datasets[name]
        except KeyError:
            raise H5Error(f"no dataset {name!r}") from None

    # ------------------------------------------------------------- metadata I/O
    def _catalog_record(self) -> Dict:
        return {
            "attrs": self.attrs,
            "datasets": {
                name: ds.to_record() for name, ds in self.datasets.items()
            },
        }

    def flush(self) -> Generator:
        """Task helper: persist catalog + superblock (rank 0 in parallel)."""
        if not self._open:
            raise H5Error("file not open")
        if not self._dirty:
            return None
        frame = pack_catalog(self._catalog_record())
        if len(frame) > CATALOG_REGION:
            raise H5Error("catalog overflow (too many datasets)")
        is_mpio = isinstance(self.vfd, MpioVfd)
        writer = (not is_mpio) or self.vfd.ctx.rank == 0
        if writer:
            yield from self.vfd.write_meta(SUPERBLOCK_SIZE, frame)
            yield from self.vfd.write_meta(
                0,
                pack_superblock(
                    SUPERBLOCK_SIZE, len(frame), self._eof, self.alignment
                ),
            )
        if is_mpio:
            yield from self.vfd.ctx.barrier()
        self._dirty = False
        return None

    def close(self) -> Generator:
        """Task helper: flush and release."""
        yield from self.flush()
        yield from self.vfd.close()
        self._open = False
        return None
