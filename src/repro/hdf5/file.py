"""H5File: create/open and the metadata catalog, over a pluggable VOL.

Parallel semantics follow HDF5: structural metadata operations
(``create_dataset``) must be performed collectively with identical
arguments, so every rank's in-memory catalog evolves in lock-step; the
connector decides who persists metadata at flush/close time (rank 0 for
the native mpio path, any rank for the DAOS KV path).

Storage connectors implement :class:`~repro.hdf5.vol.Vol`; passing a
bare :class:`~repro.hdf5.vfd.Vfd` keeps the pre-VOL call signature
working by wrapping it in the native-format connector.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Sequence

from repro.hdf5.dataset import Dataset
from repro.hdf5.dataspace import Dataspace
from repro.hdf5.datatype import Datatype
from repro.hdf5.vol import CATALOG_REGION, H5Error, Vol, as_vol

__all__ = ["H5File", "H5Error", "CATALOG_REGION"]


class H5File:
    """An open HDF5-lite file."""

    def __init__(self, vol: Vol, alignment: int):
        self.vol = vol
        self.alignment = max(1, alignment)
        self.datasets: Dict[str, Dataset] = {}
        self.attrs: Dict[str, object] = {}
        self._dirty = False
        self._open = False

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def create(
        cls, storage, path: str, alignment: int = 1
    ) -> Generator:
        """Task helper: create a fresh file (truncating any old one).

        ``storage`` is a :class:`~repro.hdf5.vol.Vol` connector or a
        bare :class:`~repro.hdf5.vfd.Vfd` (native format implied).
        """
        vol = as_vol(storage)
        h5 = cls(vol, alignment)
        yield from vol.create_file(h5, path)
        h5._open = True
        h5._dirty = True
        yield from h5.flush()
        return h5

    @classmethod
    def open(cls, storage, path: str) -> Generator:
        """Task helper: open an existing file, loading its catalog."""
        vol = as_vol(storage)
        record = yield from vol.open_file(path)
        h5 = cls(vol, record["alignment"])
        h5.attrs = record.get("attrs", {})
        for name, ds_record in record.get("datasets", {}).items():
            h5.datasets[name] = Dataset.from_record(h5, name, ds_record)
        h5._open = True
        return h5

    @property
    def vfd(self):
        """The native connector's VFD (None for non-native VOLs)."""
        return self.vol.vfd

    @property
    def data_aligned(self) -> bool:
        """Raw data is aligned iff the connector says transfers skip
        client-side staging — for the native format, iff the alignment
        property covers the storage's preferred I/O size (the A4
        ablation knob); always true for the DAOS connector."""
        return self.vol.data_aligned(self)

    def _metadata_dirty(self) -> Generator:
        self._dirty = True
        yield 0.0
        return None

    # ------------------------------------------------------------- datasets
    def create_dataset(
        self,
        name: str,
        dims: Sequence[int],
        dtype: str = "u1",
        chunk_rows: Optional[int] = None,
        attrs: Optional[Dict] = None,
    ) -> Generator:
        """Task helper (collective in parallel files): define a dataset.

        ``chunk_rows`` switches to the chunked layout, chunking along
        the outermost axis every ``chunk_rows`` rows.
        """
        if not self._open:
            raise H5Error("file not open")
        if name in self.datasets:
            raise H5Error(f"dataset {name!r} exists")
        space = Dataspace(tuple(dims))
        datatype = Datatype(dtype)
        if chunk_rows is not None and not (0 < chunk_rows <= dims[0]):
            raise H5Error(f"bad chunk_rows {chunk_rows}")
        dataset = Dataset(self, name, space, datatype, {}, attrs)
        yield from self.vol.dataset_added(self, dataset, chunk_rows)
        self.datasets[name] = dataset
        yield from self._metadata_dirty()
        return dataset

    def dataset(self, name: str) -> Dataset:
        try:
            return self.datasets[name]
        except KeyError:
            raise H5Error(f"no dataset {name!r}") from None

    # ------------------------------------------------------------- metadata I/O
    def _catalog_record(self) -> Dict:
        return {
            "attrs": self.attrs,
            "datasets": {
                name: ds.to_record() for name, ds in self.datasets.items()
            },
        }

    def flush(self) -> Generator:
        """Task helper: persist the catalog through the connector
        (rank 0 writes it in native parallel files)."""
        if not self._open:
            raise H5Error("file not open")
        if not self._dirty:
            return None
        yield from self.vol.flush_meta(self)
        self._dirty = False
        return None

    def sync(self) -> Generator:
        """Task helper: durability barrier for raw data."""
        yield from self.vol.sync()
        return None

    def close(self) -> Generator:
        """Task helper: flush and release."""
        yield from self.flush()
        yield from self.vol.close_file(self)
        self._open = False
        return None
