"""Dataspaces and hyperslab selections.

A dataspace is an N-dimensional extent; a hyperslab selection
``(start, count)`` picks a rectangular region. :meth:`Dataspace.runs`
linearizes a selection into maximal contiguous element runs in row-major
order — the quantity every layout driver consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class Dataspace:
    dims: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims or any(d <= 0 for d in self.dims):
            raise ValueError(f"bad dataspace dims {self.dims}")

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def n_elements(self) -> int:
        total = 1
        for d in self.dims:
            total *= d
        return total

    def validate_selection(
        self, start: Sequence[int], count: Sequence[int]
    ) -> None:
        if len(start) != self.rank or len(count) != self.rank:
            raise ValueError(
                f"selection rank {len(start)}/{len(count)} != dataspace rank "
                f"{self.rank}"
            )
        for s, c, d in zip(start, count, self.dims):
            if s < 0 or c <= 0 or s + c > d:
                raise ValueError(
                    f"selection [{s}, {s + c}) outside extent {d}"
                )

    def selection_elements(self, count: Sequence[int]) -> int:
        total = 1
        for c in count:
            total *= c
        return total

    def runs(
        self, start: Sequence[int], count: Sequence[int]
    ) -> Iterator[Tuple[int, int]]:
        """Yield (linear_element_offset, n_elements) contiguous runs of
        the hyperslab, row-major, coalescing full trailing dimensions."""
        self.validate_selection(start, count)
        # k = outermost axis that still belongs to one contiguous run:
        # every axis deeper than k must be selected in full.
        k = self.rank - 1
        while k > 0 and start[k] == 0 and count[k] == self.dims[k]:
            k -= 1
        # row-major strides
        strides = [1] * self.rank
        for axis in range(self.rank - 2, -1, -1):
            strides[axis] = strides[axis + 1] * self.dims[axis + 1]
        run_len = count[k] * strides[k]
        base = start[k] * strides[k]
        outer = list(range(k))
        index = [0] * len(outer)
        while True:
            offset = base
            for i, axis in enumerate(outer):
                offset += (start[axis] + index[i]) * strides[axis]
            yield offset, run_len
            for i in range(len(outer) - 1, -1, -1):
                index[i] += 1
                if index[i] < count[outer[i]]:
                    break
                index[i] = 0
            else:
                return

    def to_record(self) -> List[int]:
        return list(self.dims)

    @classmethod
    def from_record(cls, record: Sequence[int]) -> "Dataspace":
        return cls(tuple(record))
