"""Virtual file drivers: how HDF5-lite bytes reach storage.

``sec2`` issues plain pread/pwrite against a mounted
:class:`~repro.posix.vfs.FileSystem`. Raw-data transfers additionally
pay *staging* — H5D read/write packing through HDF5's conversion/sieve
buffering, a client-side memcpy-bound pipeline — whenever the file was
created without an alignment matching the mount's preferred I/O size
(the HDF5 default, ``alignment=1``). Metadata I/O is small and always
direct.

``mpio`` maps raw-data transfers to MPI-IO (collective or independent);
collective buffering packs on the aggregators as part of the exchange,
so no extra staging is charged.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.daos.vos.payload import Payload, as_payload
from repro.mpiio.file import MpiFile
from repro.posix.vfs import FileSystem


class Vfd:
    """Driver interface used by :class:`~repro.hdf5.file.H5File`."""

    #: preferred I/O size of the underlying storage (for the alignment check)
    preferred_io: int = 4096

    def open(self, path: str, create: bool, trunc: bool) -> Generator:
        raise NotImplementedError

    def read_meta(self, addr: int, length: int) -> Generator:
        raise NotImplementedError

    def write_meta(self, addr: int, data) -> Generator:
        raise NotImplementedError

    def read_raw(self, addr: int, length: int, aligned: bool) -> Generator:
        raise NotImplementedError

    def write_raw(self, addr: int, data, aligned: bool) -> Generator:
        raise NotImplementedError

    def size(self) -> Generator:
        raise NotImplementedError

    def sync(self) -> Generator:
        raise NotImplementedError

    def close(self) -> Generator:
        raise NotImplementedError


class Sec2Vfd(Vfd):
    """POSIX driver over any VFS mount (DFuse, Lustre)."""

    def __init__(
        self,
        mount: FileSystem,
        h5_op_cpu: float = 30e-6,
        staging_bw: float = 0.6e9,
    ):
        self.mount = mount
        self.preferred_io = mount.blksize
        #: per-H5D operation software cost (dataspace/datatype checks)
        self.h5_op_cpu = h5_op_cpu
        #: conversion/sieve staging pipeline bandwidth for unaligned raw I/O
        self.staging_bw = staging_bw
        self._handle = None

    def open(self, path: str, create: bool, trunc: bool) -> Generator:
        flags = {"r", "w"}
        if create:
            flags.add("creat")
        if trunc:
            flags.add("trunc")
        self._handle = yield from self.mount.open(path, flags)
        return None

    def read_meta(self, addr: int, length: int) -> Generator:
        return (yield from self._handle.pread(addr, length))

    def write_meta(self, addr: int, data) -> Generator:
        return (yield from self._handle.pwrite(addr, data))

    def _staging(self, nbytes: int, aligned: bool) -> float:
        cost = self.h5_op_cpu
        if not aligned:
            cost += nbytes / self.staging_bw
        return cost

    def read_raw(self, addr: int, length: int, aligned: bool) -> Generator:
        yield self._staging(length, aligned)
        return (yield from self._handle.pread(addr, length))

    def write_raw(self, addr: int, data, aligned: bool) -> Generator:
        payload = as_payload(data)
        yield self._staging(payload.nbytes, aligned)
        return (yield from self._handle.pwrite(addr, payload))

    def size(self) -> Generator:
        return (yield from self._handle.size())

    def sync(self) -> Generator:
        yield from self._handle.fsync()
        return None

    def close(self) -> Generator:
        yield from self._handle.close()
        self._handle = None
        return None


class MpioVfd(Vfd):
    """Parallel driver over MPI-IO; raw transfers may be collective."""

    def __init__(self, ctx, driver, collective: bool = True,
                 h5_op_cpu: float = 30e-6,
                 cb_buffer: int = None, aio_depth: int = 0):
        from repro.mpiio.romio import DEFAULT_CB_BUFFER

        self.ctx = ctx
        self.driver = driver
        self.collective = collective
        self.h5_op_cpu = h5_op_cpu
        self.cb_buffer = DEFAULT_CB_BUFFER if cb_buffer is None else cb_buffer
        #: aggregator-side event-queue depth inside collective calls
        self.aio_depth = aio_depth
        self._file: Optional[MpiFile] = None

    def open(self, path: str, create: bool, trunc: bool) -> Generator:
        self._file = yield from MpiFile.open(
            self.ctx, path, self.driver, create=create, trunc=trunc,
            cb_buffer=self.cb_buffer, aio_depth=self.aio_depth,
        )
        return None

    def read_meta(self, addr: int, length: int) -> Generator:
        return (yield from self._file.read_at(addr, length))

    def write_meta(self, addr: int, data) -> Generator:
        return (yield from self._file.write_at(addr, data))

    def read_raw(self, addr: int, length: int, aligned: bool) -> Generator:
        yield self.h5_op_cpu
        if self.collective:
            return (yield from self._file.read_at_all(addr, length))
        return (yield from self._file.read_at(addr, length))

    def write_raw(self, addr: int, data, aligned: bool) -> Generator:
        yield self.h5_op_cpu
        if self.collective:
            return (yield from self._file.write_at_all(addr, data))
        return (yield from self._file.write_at(addr, data))

    def size(self) -> Generator:
        return (yield from self._file.get_size())

    def sync(self) -> Generator:
        yield from self._file.sync()
        return None

    def close(self) -> Generator:
        yield from self._file.close()
        self._file = None
        return None
