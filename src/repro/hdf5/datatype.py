"""Datatypes: fixed-size scalar element types."""

from __future__ import annotations

from dataclasses import dataclass

_SIZES = {
    "u1": 1,
    "i1": 1,
    "u2": 2,
    "i2": 2,
    "u4": 4,
    "i4": 4,
    "u8": 8,
    "i8": 8,
    "f4": 4,
    "f8": 8,
}


@dataclass(frozen=True)
class Datatype:
    """A scalar element type identified by a numpy-style code."""

    code: str

    def __post_init__(self) -> None:
        if self.code not in _SIZES:
            raise ValueError(f"unknown datatype {self.code!r}")

    @property
    def itemsize(self) -> int:
        return _SIZES[self.code]

    def to_record(self) -> str:
        return self.code

    @classmethod
    def from_record(cls, record: str) -> "Datatype":
        return cls(record)
