"""Virtual Object Layer: how HDF5-lite *objects* reach storage.

The VFD seam (:mod:`repro.hdf5.vfd`) swaps the byte transport under one
on-disk file format. The VOL seam sits one level higher — it swaps the
*storage model* itself, mirroring HDF5 1.12's VOL plugin architecture:

- :class:`NativeVol` is the native-format connector: superblock +
  catalog frames and address-allocated raw data, written through any
  :class:`~repro.hdf5.vfd.Vfd` (``sec2`` or ``mpio``). It is exactly the
  paper's HDF5 path, factored out of ``H5File``/``Dataset``.
- :class:`DaosVol` is the DAOS connector (the HDF Group's daos-vol,
  PAPERS.md "DAOS for Extreme-scale Systems in Scientific
  Applications"): each dataset's raw data is a :class:`DaosArray`, file
  and dataset metadata are :class:`DaosKV` records, and a container-wide
  namespace KV at a reserved OID maps paths to file roots. No DFuse
  mount, no HDF5 on-disk format, no staging — raw I/O goes straight to
  the object layer, so ``data_aligned`` is unconditionally true and
  concurrent dataset I/O pipelines like any native-object workload.

One VOL instance backs one open file: it owns the transient connector
state (the native allocator's EOF, the DAOS handles), matching how a
VFD instance owns one file handle.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.daos.vos.payload import Payload, ZeroPayload, concat_payloads
from repro.errors import ReproError
from repro.hdf5.format import (
    SUPERBLOCK_SIZE,
    pack_catalog,
    pack_superblock,
    unpack_catalog,
    unpack_superblock,
)
from repro.hdf5.vfd import MpioVfd, Vfd
from repro.units import MiB

#: generous fixed region after the superblock reserved for the catalog;
#: real HDF5 interleaves metadata with data, which is exactly why its
#: default layout leaves raw data unaligned — we reproduce that by
#: starting raw data right after this (odd-sized) region when
#: ``alignment`` is 1.
CATALOG_REGION = 64 * 1024 - 512 - 37

#: reserved OID lo for the DAOS VOL's path->file-root namespace KV
#: (lo=2 is the IOR DAOS backend's catalog; both sit below the range
#: the container's OID allocator hands out)
NAMESPACE_LO = 3


class H5Error(ReproError):
    pass


class Vol:
    """Storage-connector interface used by :class:`~repro.hdf5.file.H5File`.

    All ``*_file``/``dataset_*``/``flush_meta``/``sync`` methods are task
    helpers. A connector instance backs exactly one open file.
    """

    #: connector label used in spans/metrics (``hdf5.*{vol=...}``)
    kind = "?"
    #: whether concurrent dataset I/O on one open file may pipeline
    #: through an event queue
    supports_async = False

    #: the underlying VFD when the connector has one (native only)
    vfd: Optional[Vfd] = None

    def create_file(self, h5, path: str) -> Generator:
        """Create/truncate the file's storage-side objects."""
        raise NotImplementedError

    def open_file(self, path: str) -> Generator:
        """Open an existing file; returns the catalog record
        ``{"alignment", "attrs", "datasets"}``."""
        raise NotImplementedError

    def dataset_added(self, h5, dataset, chunk_rows: Optional[int]) -> Generator:
        """Bind storage to a freshly defined dataset (sets its layout)."""
        raise NotImplementedError

    def dataset_write(self, h5, dataset, start, count, payload) -> Generator:
        raise NotImplementedError

    def dataset_read(self, h5, dataset, start, count) -> Generator:
        raise NotImplementedError

    def flush_meta(self, h5) -> Generator:
        """Persist the file's metadata (catalog equivalent)."""
        raise NotImplementedError

    def sync(self) -> Generator:
        """Durability barrier for raw data (fsync equivalent)."""
        raise NotImplementedError

    def close_file(self, h5) -> Generator:
        raise NotImplementedError

    def data_aligned(self, h5) -> bool:
        """Whether raw transfers bypass client-side staging."""
        raise NotImplementedError


def as_vol(storage) -> "Vol":
    """Accept either a :class:`Vol` or a bare :class:`Vfd` (wrapped in
    the native connector) — the pre-VOL call signature."""
    if isinstance(storage, Vol):
        return storage
    if isinstance(storage, Vfd):
        return NativeVol(storage)
    raise TypeError(f"expected a Vol or Vfd, got {type(storage).__name__}")


class NativeVol(Vol):
    """The native HDF5-lite format over a VFD (the paper's HDF5 path)."""

    kind = "native"

    def __init__(self, vfd: Vfd):
        self.vfd = vfd
        self._eof = SUPERBLOCK_SIZE + CATALOG_REGION

    # ------------------------------------------------------------- lifecycle
    def create_file(self, h5, path: str) -> Generator:
        yield from self.vfd.open(path, create=True, trunc=True)
        return None

    def open_file(self, path: str) -> Generator:
        yield from self.vfd.open(path, create=False, trunc=False)
        raw = yield from self.vfd.read_meta(0, SUPERBLOCK_SIZE)
        record = unpack_superblock(raw.materialize())
        self._eof = record["eof"]
        catalog: Dict = {}
        if record["catalog_len"]:
            raw_catalog = yield from self.vfd.read_meta(
                record["catalog_addr"], record["catalog_len"]
            )
            catalog = unpack_catalog(raw_catalog.materialize())
        return {
            "alignment": record["alignment"],
            "attrs": catalog.get("attrs", {}),
            "datasets": catalog.get("datasets", {}),
        }

    def flush_meta(self, h5) -> Generator:
        frame = pack_catalog(h5._catalog_record())
        if len(frame) > CATALOG_REGION:
            raise H5Error("catalog overflow (too many datasets)")
        is_mpio = isinstance(self.vfd, MpioVfd)
        writer = (not is_mpio) or self.vfd.ctx.rank == 0
        if writer:
            yield from self.vfd.write_meta(SUPERBLOCK_SIZE, frame)
            yield from self.vfd.write_meta(
                0,
                pack_superblock(
                    SUPERBLOCK_SIZE, len(frame), self._eof, h5.alignment
                ),
            )
        if is_mpio:
            yield from self.vfd.ctx.barrier()
        return None

    def sync(self) -> Generator:
        yield from self.vfd.sync()
        return None

    def close_file(self, h5) -> Generator:
        yield from self.vfd.close()
        return None

    def data_aligned(self, h5) -> bool:
        return h5.alignment >= self.vfd.preferred_io

    # ------------------------------------------------------------- allocator
    def _alloc_raw(self, h5, nbytes: int) -> int:
        addr = self._eof
        if h5.alignment > 1 and addr % h5.alignment:
            addr += h5.alignment - addr % h5.alignment
        self._eof = addr + nbytes
        return addr

    # ------------------------------------------------------------- datasets
    def dataset_added(self, h5, dataset, chunk_rows: Optional[int]) -> Generator:
        if chunk_rows is None:
            dataset.layout = {
                "kind": "contiguous",
                "addr": self._alloc_raw(h5, dataset.nbytes),
            }
        else:
            dataset.layout = {
                "kind": "chunked", "chunk_rows": chunk_rows, "chunks": {},
            }
        return None
        yield  # pragma: no cover - marks this as a (zero-hop) task helper

    def _byte_runs(self, dataset, start, count) -> List[Tuple[int, int]]:
        """(file_address, nbytes) runs for a selection, layout-resolved.

        Chunked layouts may return runs with address -1 for chunks that
        were never allocated (read as fill value)."""
        item = dataset.dtype.itemsize
        out: List[Tuple[int, int]] = []
        if dataset.layout["kind"] == "contiguous":
            base = dataset.layout["addr"]
            for off_el, len_el in dataset.space.runs(start, count):
                out.append((base + off_el * item, len_el * item))
            return out
        # chunked along axis 0
        chunk_rows = dataset.layout["chunk_rows"]
        row_bytes = (
            dataset.space.n_elements // dataset.space.dims[0]
        ) * item  # bytes per outermost row
        chunk_bytes = chunk_rows * row_bytes
        chunks: Dict[str, int] = dataset.layout["chunks"]
        for off_el, len_el in dataset.space.runs(start, count):
            byte_off = off_el * item
            remaining = len_el * item
            while remaining > 0:
                chunk_idx = byte_off // chunk_bytes
                within = byte_off % chunk_bytes
                take = min(chunk_bytes - within, remaining)
                addr = chunks.get(str(chunk_idx), -1)
                out.append(
                    (addr + within if addr >= 0 else -1, take)
                )
                byte_off += take
                remaining -= take
        return out

    def _ensure_chunks(self, h5, dataset, start, count) -> Generator:
        """Allocate the chunks a write touches (collective-deterministic)."""
        if dataset.layout["kind"] != "chunked":
            return None
        chunk_rows = dataset.layout["chunk_rows"]
        lo = start[0] // chunk_rows
        hi = (start[0] + count[0] - 1) // chunk_rows
        row_bytes = (
            dataset.space.n_elements // dataset.space.dims[0]
        ) * dataset.dtype.itemsize
        chunk_bytes = chunk_rows * row_bytes
        dirty = False
        for chunk_idx in range(lo, hi + 1):
            key = str(chunk_idx)
            if key not in dataset.layout["chunks"]:
                dataset.layout["chunks"][key] = self._alloc_raw(h5, chunk_bytes)
                dirty = True
        if dirty:
            yield from h5._metadata_dirty()
        return None

    def dataset_write(self, h5, dataset, start, count, payload) -> Generator:
        yield from self._ensure_chunks(h5, dataset, start, count)
        aligned = self.data_aligned(h5)
        cursor = 0
        for addr, nbytes in self._byte_runs(dataset, start, count):
            fragment = payload.slice(cursor, cursor + nbytes)
            cursor += nbytes
            if addr < 0:
                raise AssertionError("writing an unallocated chunk")
            yield from self.vfd.write_raw(addr, fragment, aligned)
        return payload.nbytes

    def dataset_read(self, h5, dataset, start, count) -> Generator:
        aligned = self.data_aligned(h5)
        parts: List[Payload] = []
        for addr, nbytes in self._byte_runs(dataset, start, count):
            if addr < 0:
                parts.append(ZeroPayload(nbytes))  # fill value
            else:
                part = yield from self.vfd.read_raw(addr, nbytes, aligned)
                if part.nbytes < nbytes:  # sparse region past EOF
                    part = concat_payloads(
                        [part, ZeroPayload(nbytes - part.nbytes)]
                    )
                parts.append(part)
        return concat_payloads(parts)


class DaosVol(Vol):
    """The DAOS connector: HDF5 objects mapped straight onto DAOS objects.

    File layout in the container:

    - a namespace KV at the reserved OID ``(S1, lo=NAMESPACE_LO)``
      mapping file paths to per-file root-KV OIDs;
    - per file, a *root KV* holding the ``file`` record (alignment +
      file attrs) and one ``ds:<name>`` record per dataset (dataspace,
      datatype, attrs, and the backing array's OID);
    - per dataset, a byte-cell :class:`DaosArray` holding the raw data
      in row-major linearized order. Unwritten extents read back as
      zeros — the object layer's hole semantics double as the HDF5
      fill value.
    """

    kind = "daos"
    supports_async = True

    def __init__(self, cont, oclass=None, chunk_bytes: int = MiB):
        self.cont = cont
        self.oclass = oclass
        self.chunk_bytes = chunk_bytes
        self._root = None  # DaosKV of the open file
        self._arrays: Dict[str, object] = {}

    # ------------------------------------------------------------- plumbing
    def _ns(self):
        from repro.daos.kv import DaosKV
        from repro.daos.objid import ObjId
        from repro.daos.oclass import S1

        return DaosKV.open(self.cont, ObjId.generate(S1, lo=NAMESPACE_LO))

    # ------------------------------------------------------------- lifecycle
    def create_file(self, h5, path: str) -> Generator:
        from repro.daos.kv import DaosKV
        from repro.daos.objid import ObjId

        ns = self._ns()
        old = yield from ns.get(path, default=None)
        if old is not None:  # truncate semantics: drop the old file
            yield from _punch_file(self.cont, ObjId(old[0], old[1]))
        root = yield from DaosKV.create(self.cont, self.oclass)
        yield from ns.put(path, [root.oid.hi, root.oid.lo])
        ns.close()
        self._root = root
        return None

    def open_file(self, path: str) -> Generator:
        from repro.daos.kv import DaosKV
        from repro.daos.objid import ObjId

        ns = self._ns()
        hi_lo = yield from ns.get(path)  # DerNonexist when absent
        ns.close()
        root = DaosKV.open(self.cont, ObjId(hi_lo[0], hi_lo[1]))
        self._root = root
        meta = yield from root.get("file")
        datasets: Dict[str, Dict] = {}
        for key in (yield from root.scan("ds:")):
            datasets[key[3:]] = yield from root.get(key)
        return {
            "alignment": meta["alignment"],
            "attrs": meta.get("attrs", {}),
            "datasets": datasets,
        }

    def flush_meta(self, h5) -> Generator:
        yield from self._root.put(
            "file", {"alignment": h5.alignment, "attrs": h5.attrs}
        )
        for name, dataset in h5.datasets.items():
            yield from self._root.put("ds:" + name, dataset.to_record())
        return None

    def sync(self) -> Generator:
        # DAOS updates are persistent on completion; nothing to flush.
        yield 0.0
        return None

    def close_file(self, h5) -> Generator:
        for array in self._arrays.values():
            array.close()
        self._arrays.clear()
        if self._root is not None:
            self._root.close()
            self._root = None
        yield 0.0
        return None

    def data_aligned(self, h5) -> bool:
        return True  # no format addresses, no sieve buffer, no staging

    # ------------------------------------------------------------- datasets
    def dataset_added(self, h5, dataset, chunk_rows: Optional[int]) -> Generator:
        from repro.daos.array import DaosArray

        array = yield from DaosArray.create(
            self.cont,
            cell_size=1,
            chunk_cells=self.chunk_bytes,
            oclass=self.oclass,
        )
        dataset.layout = {
            "kind": "daos-array",
            "oid": [array.obj.oid.hi, array.obj.oid.lo],
            "chunk_bytes": self.chunk_bytes,
        }
        if chunk_rows is not None:
            # descriptive only: the array is chunked by chunk_bytes
            dataset.layout["chunk_rows"] = chunk_rows
        self._arrays[dataset.name] = array
        return None

    def _array(self, dataset) -> Generator:
        from repro.daos.array import DaosArray
        from repro.daos.objid import ObjId

        array = self._arrays.get(dataset.name)
        if array is None:
            hi, lo = dataset.layout["oid"]
            array = yield from DaosArray.open(self.cont, ObjId(hi, lo))
            self._arrays[dataset.name] = array
        return array

    def dataset_write(self, h5, dataset, start, count, payload) -> Generator:
        array = yield from self._array(dataset)
        item = dataset.dtype.itemsize
        cursor = 0
        for off_el, len_el in dataset.space.runs(start, count):
            nbytes = len_el * item
            fragment = payload.slice(cursor, cursor + nbytes)
            cursor += nbytes
            yield from array.write(off_el * item, fragment)
        return payload.nbytes

    def dataset_read(self, h5, dataset, start, count) -> Generator:
        array = yield from self._array(dataset)
        item = dataset.dtype.itemsize
        parts: List[Payload] = []
        for off_el, len_el in dataset.space.runs(start, count):
            # the object layer zero-fills holes, so fill value is free
            part = yield from array.read(off_el * item, len_el * item)
            parts.append(part)
        return concat_payloads(parts)


def _punch_file(cont, root_oid) -> Generator:
    """Punch one file's arrays and root KV (given the root's OID)."""
    from repro.daos.kv import DaosKV
    from repro.daos.objid import ObjId

    root = DaosKV.open(cont, root_oid)
    for key in (yield from root.scan("ds:")):
        record = yield from root.get(key)
        layout = record.get("layout", {})
        if layout.get("kind") == "daos-array" and "oid" in layout:
            obj = cont.open_object(ObjId(*layout["oid"]))
            yield from obj.punch_object()
            obj.close()
    yield from root.obj.punch_object()
    root.close()
    return None


def daos_vol_unlink(cont, path: str) -> Generator:
    """Task helper: remove a DAOS-VOL file (namespace entry, root KV and
    every dataset array); no-op when the path does not exist."""
    from repro.daos.kv import DaosKV
    from repro.daos.objid import ObjId
    from repro.daos.oclass import S1

    ns = DaosKV.open(cont, ObjId.generate(S1, lo=NAMESPACE_LO))
    hi_lo = yield from ns.get(path, default=None)
    if hi_lo is None:
        ns.close()
        return False
    yield from _punch_file(cont, ObjId(hi_lo[0], hi_lo[1]))
    yield from ns.remove(path)
    ns.close()
    return True
