"""Exception hierarchy shared across the repro stack.

The DAOS layers raise :class:`DaosError` subclasses carrying errno-style
codes mirroring the real libdaos/DFS return values; the POSIX-like layers
(DFuse, Lustre) translate them into :class:`OSError`-alikes so that code
written against the VFS abstraction behaves like code written against a
kernel filesystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class DeadlockError(SimulationError):
    """run() ran out of events while tasks were still waiting."""


class NetworkError(ReproError):
    """Fabric/flow-model failures (unknown endpoint, link down, ...)."""


class ConsensusError(ReproError):
    """Raft-level failures (no leader, not leader, stale term, ...)."""


class NotLeaderError(ConsensusError):
    """A client sent a write to a replica that is not the current leader."""

    def __init__(self, hint: int | None = None):
        super().__init__(f"not the raft leader (hint={hint})")
        #: best-effort id of the actual leader, or None if unknown
        self.hint = hint


class MpiError(ReproError):
    """Simulated-MPI misuse (rank out of range, mismatched collective...)."""


class DaosError(ReproError):
    """Base for object-store errors; carries a DER_* style code."""

    code = "DER_MISC"

    def __init__(self, msg: str = ""):
        super().__init__(f"{self.code}: {msg}" if msg else self.code)


class DerNonexist(DaosError):
    """Entity (pool, container, object, key, path) does not exist."""

    code = "DER_NONEXIST"


class DerExist(DaosError):
    """Entity already exists."""

    code = "DER_EXIST"


class DerInval(DaosError):
    """Invalid argument."""

    code = "DER_INVAL"


class DerNoPerm(DaosError):
    """Permission denied."""

    code = "DER_NO_PERM"


class DerBusy(DaosError):
    """Resource busy (e.g. destroying an open container)."""

    code = "DER_BUSY"


class DerNotDir(DaosError):
    """Path component is not a directory."""

    code = "DER_NOTDIR"


class DerIsDir(DaosError):
    """File operation attempted on a directory."""

    code = "DER_ISDIR"


class DerNoSpace(DaosError):
    """Target out of space."""

    code = "DER_NOSPACE"


class DerTimedOut(DaosError):
    """RPC or operation timed out."""

    code = "DER_TIMEDOUT"


class DerCanceled(DaosError):
    """Operation aborted before completion (``daos_event_abort``)."""

    code = "DER_CANCELED"


class DerStale(DaosError):
    """Client pool-map version is older than the server's.

    Raised by engines fencing mutating I/O: a writer holding a stale map
    could route around a target that has since come back (or into one
    that has since left), so the server rejects the op and the client
    refreshes its map and retries — exactly the DER_STALE dance libdaos
    performs.
    """

    code = "DER_STALE"


class DerDataLoss(DaosError):
    """Data unreachable: every replica/shard holding a range is excluded
    or failed (degraded mode past the object class's redundancy)."""

    code = "DER_DATA_LOSS"


class CacheWritebackError(ReproError):
    """Unflushed write-behind data could not be committed to the store.

    Raised by ``fsync``/``close`` on a cached file when a flush fails
    (e.g. the serving engine crashed mid-outage): the caller learns
    exactly which byte ranges are still pending instead of silently
    losing them. The buffer keeps the data, so a later ``fsync`` after
    recovery retries the flush.
    """

    def __init__(self, path: str, pending: list, cause: Exception):
        lost = sum(n for _off, n in pending)
        super().__init__(
            f"{path}: {lost} dirty bytes in {len(pending)} extent(s) "
            f"not flushed ({cause})"
        )
        #: file the data belongs to
        self.path = path
        #: [(offset, nbytes), ...] of the still-dirty extents
        self.pending = list(pending)
        #: total unflushed bytes
        self.lost_bytes = lost
        #: the underlying storage error that failed the flush
        self.cause = cause


class FsError(ReproError):
    """POSIX-layer error with an errno-style symbolic code."""

    def __init__(self, errno_name: str, msg: str = ""):
        super().__init__(f"[{errno_name}] {msg}" if msg else errno_name)
        self.errno_name = errno_name


def fs_error_from_daos(err: DaosError, msg: str = "") -> FsError:
    """Translate a DAOS error into the equivalent POSIX errno for VFS users."""
    mapping = {
        "DER_NONEXIST": "ENOENT",
        "DER_EXIST": "EEXIST",
        "DER_INVAL": "EINVAL",
        "DER_NO_PERM": "EACCES",
        "DER_BUSY": "EBUSY",
        "DER_NOTDIR": "ENOTDIR",
        "DER_ISDIR": "EISDIR",
        "DER_NOSPACE": "ENOSPC",
        "DER_TIMEDOUT": "ETIMEDOUT",
        "DER_DATA_LOSS": "EIO",
    }
    return FsError(mapping.get(err.code, "EIO"), msg or str(err))
