"""mdtest-style metadata benchmark (the IO500 companion to IOR).

Each rank creates/stats/removes a private tree of empty files; rates are
ops/second aggregated IOR-style (slowest rank defines the phase). On
DAOS the operations fan out across engine targets (directory-entry KV
RPCs); on Lustre every operation funnels through the single MDS — the
metadata-scalability contrast the paper's introduction motivates (small
files "can severely stress the metadata functionality").
"""

from repro.mdtest.mdtest import MdtestParams, MdtestResult, run_mdtest

__all__ = ["MdtestParams", "MdtestResult", "run_mdtest"]
