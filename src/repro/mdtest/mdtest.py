"""The mdtest workload driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.cluster.builder import Cluster, LustreCluster
from repro.ior.env import DaosIorEnv, LustreIorEnv
from repro.ior.config import IorParams
from repro.mpi import MpiWorld


@dataclass
class MdtestParams:
    """Workload: files per rank, optional tiny write per file."""

    files_per_rank: int = 64
    #: bytes written into each file (0 = empty creates, mdtest -w)
    write_bytes: int = 0
    test_dir: str = "/mdtest"
    phases: tuple = ("create", "stat", "remove")


@dataclass
class MdtestResult:
    nprocs: int
    params: MdtestParams
    #: phase -> ops/second (aggregate)
    rates: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [f"mdtest (simulated): {self.nprocs} procs, "
                 f"{self.params.files_per_rank} files/proc"]
        for phase, rate in self.rates.items():
            lines.append(f"  {phase:7s}: {rate:12.0f} ops/s")
        return "\n".join(lines)


def run_mdtest(
    cluster,
    params: Optional[MdtestParams] = None,
    ppn: int = 16,
    client_nodes: Optional[int] = None,
    limit: float = 1e7,
) -> MdtestResult:
    """Run an mdtest sweep on a DAOS or Lustre cluster."""
    params = params or MdtestParams()
    nodes = cluster.clients[: client_nodes or len(cluster.clients)]
    ior_params = IorParams(api="POSIX", test_dir=params.test_dir,
                           block_size="1m", transfer_size="1m")
    if isinstance(cluster, LustreCluster):
        env = LustreIorEnv(cluster, ior_params)
    else:
        env = DaosIorEnv(cluster, ior_params)
    cluster.run(env.prepare())

    world = MpiWorld(cluster.sim, cluster.fabric, nodes, ppn)
    rates: Dict[str, List[float]] = {}

    def rank_main(ctx) -> Generator:
        storage = yield from env.rank_setup(ctx)
        mount = storage.mount
        rank_dir = f"{params.test_dir}/rank{ctx.rank:05d}"
        yield from mount.mkdir(rank_dir)
        paths = [
            f"{rank_dir}/file.{i:06d}" for i in range(params.files_per_rank)
        ]
        out = {}
        for phase in params.phases:
            yield from ctx.barrier()
            start = ctx.sim.now
            if phase == "create":
                for path in paths:
                    handle = yield from mount.open(path, ("w", "creat"))
                    if params.write_bytes:
                        yield from handle.pwrite(
                            0, b"m" * params.write_bytes
                        )
                    yield from handle.close()
            elif phase == "stat":
                for path in paths:
                    yield from mount.stat(path)
            elif phase == "remove":
                for path in paths:
                    yield from mount.unlink(path)
            else:
                raise ValueError(f"unknown phase {phase!r}")
            end = yield from ctx.allreduce(ctx.sim.now, op=max)
            out[phase] = end - start
        return out

    results = world.run_to_completion(rank_main, limit=limit)
    total_ops = params.files_per_rank * world.nprocs
    phase_rates = {}
    for phase in params.phases:
        seconds = results[0][phase]
        phase_rates[phase] = total_ops / seconds if seconds > 0 else 0.0
    return MdtestResult(world.nprocs, params, phase_rates)
