"""Simulated MPI runtime.

SPMD rank functions are ordinary generator functions taking a
:class:`~repro.mpi.runtime.RankCtx`; the :class:`~repro.mpi.runtime.MpiWorld`
launches one simulated task per rank, placed across client nodes with a
fixed processes-per-node, exactly like ``mpiexec -ppn``. Collectives
exchange real Python payloads with latency/bandwidth cost models
(log-tree for barrier/bcast/reduce, linear terms for the data-sized
collectives) patterned after mpi4py's lower-case object interface.
"""

from repro.mpi.comm import Comm
from repro.mpi.runtime import MpiWorld, RankCtx

__all__ = ["Comm", "MpiWorld", "RankCtx"]
