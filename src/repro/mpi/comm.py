"""Communicators and collective operations.

Semantics follow MPI: the *n*-th collective call on each rank of a
communicator matches the *n*-th call on every other rank (call-sequence
matching, no tags), all ranks must participate, and a collective
completes no earlier than the last participant's arrival plus the
modelled communication cost.

Cost models (``p`` ranks, ``s`` payload bytes, ``L`` per-message delay,
``B`` NIC bandwidth):

- barrier: ``ceil(log2 p) * L``  (dissemination)
- bcast / reduce / allreduce: ``ceil(log2 p) * (L + s/B)`` (binomial
  tree; allreduce doubles the rounds)
- gather / scatter / allgather: ``L*ceil(log2 p) + p*s/B`` (the root's
  NIC serializes the aggregate volume)
- alltoallv: ``L*p + max_r(bytes_out_r, bytes_in_r)/B`` (per-rank port
  model — each rank is limited by its own NIC in both directions)

Payloads are exchanged for real (deep object graphs included), so
layers above (two-phase I/O, IOR verification) observe correct data.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import MpiError
from repro.sim.core import Simulator
from repro.sim.sync import Gate, Queue


class _Collective:
    """Rendezvous state for one matched collective call."""

    __slots__ = ("arrived", "payloads", "gate", "n", "last_arrival")

    def __init__(self, sim: Simulator, n: int):
        self.arrived = 0
        self.payloads: Dict[int, Any] = {}
        self.gate = Gate(sim)
        self.n = n
        self.last_arrival = 0.0


class Comm:
    """An MPI communicator over the simulated world."""

    def __init__(self, world: "object", ranks: Optional[List[int]] = None):
        # ``world`` is an MpiWorld; typed loosely to avoid a cycle.
        self.world = world
        self.sim: Simulator = world.sim
        self.ranks = list(ranks) if ranks is not None else list(range(world.nprocs))
        self._counters: Dict[int, int] = {r: 0 for r in self.ranks}
        self._pending: Dict[int, _Collective] = {}
        self._p2p: Dict[Tuple[int, int, Any], Queue] = {}

    @property
    def size(self) -> int:
        return len(self.ranks)

    # -- cost helpers -----------------------------------------------------
    def _msg_delay(self, nbytes: int = 64) -> float:
        fabric = self.world.fabric
        return fabric.base_latency + 2 * fabric.software_overhead + (
            nbytes / fabric.msg_bandwidth
        )

    def _nic_bw(self) -> float:
        return self.world.min_nic_bw

    def _rounds(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.size))))

    # -- rendezvous core -------------------------------------------------------
    def _join(self, rank: int, payload: Any, cost_fn: Callable[["_Collective"], float]):
        """Register arrival of ``rank``; returns the collective's gate."""
        if rank not in self._counters:
            raise MpiError(f"rank {rank} not in communicator")
        seq = self._counters[rank]
        self._counters[rank] += 1
        ctx = self._pending.get(seq)
        if ctx is None:
            ctx = self._pending[seq] = _Collective(self.sim, self.size)
        if rank in ctx.payloads:
            raise MpiError(f"rank {rank} joined collective {seq} twice")
        ctx.payloads[rank] = payload
        ctx.arrived += 1
        ctx.last_arrival = self.sim.now
        if ctx.arrived == ctx.n:
            del self._pending[seq]
            self.sim.schedule(cost_fn(ctx), ctx.gate.open, ctx.payloads)
        return ctx

    # -- collectives (generator methods) ------------------------------------------
    def barrier(self):
        """``yield from comm.barrier()``"""

        def run(rank: int):
            ctx = self._join(rank, None, lambda c: self._rounds() * self._msg_delay())
            yield ctx.gate
            return None

        return run

    def bcast(self, value_if_root: Any = None, root: int = 0, nbytes: int = 64):
        def run(rank: int):
            payload = value_if_root if rank == root else None
            cost = lambda c: self._rounds() * self._msg_delay(nbytes)  # noqa: E731
            ctx = self._join(rank, payload, cost)
            payloads = yield ctx.gate
            return payloads[root]

        return run

    def gather(self, value: Any, root: int = 0, nbytes: int = 64):
        def run(rank: int):
            cost = lambda c: (  # noqa: E731
                self._rounds() * self._msg_delay()
                + self.size * nbytes / self._nic_bw()
            )
            ctx = self._join(rank, value, cost)
            payloads = yield ctx.gate
            if rank == root:
                return [payloads[r] for r in self.ranks]
            return None

        return run

    def allgather(self, value: Any, nbytes: int = 64):
        def run(rank: int):
            cost = lambda c: (  # noqa: E731
                self._rounds() * self._msg_delay()
                + self.size * nbytes / self._nic_bw()
            )
            ctx = self._join(rank, value, cost)
            payloads = yield ctx.gate
            return [payloads[r] for r in self.ranks]

        return run

    def scatter(self, values_if_root: Optional[List[Any]] = None, root: int = 0,
                nbytes: int = 64):
        def run(rank: int):
            payload = values_if_root if rank == root else None
            cost = lambda c: (  # noqa: E731
                self._rounds() * self._msg_delay()
                + self.size * nbytes / self._nic_bw()
            )
            ctx = self._join(rank, payload, cost)
            payloads = yield ctx.gate
            values = payloads[root]
            if values is None or len(values) != self.size:
                raise MpiError("scatter: root must supply size values")
            return values[self.ranks.index(rank)]

        return run

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0,
               nbytes: int = 64):
        def run(rank: int):
            cost = lambda c: self._rounds() * self._msg_delay(nbytes)  # noqa: E731
            ctx = self._join(rank, value, cost)
            payloads = yield ctx.gate
            if rank == root:
                acc = None
                for r in self.ranks:
                    acc = payloads[r] if acc is None else op(acc, payloads[r])
                return acc
            return None

        return run

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any], nbytes: int = 64):
        def run(rank: int):
            cost = lambda c: 2 * self._rounds() * self._msg_delay(nbytes)  # noqa: E731
            ctx = self._join(rank, value, cost)
            payloads = yield ctx.gate
            acc = None
            for r in self.ranks:
                acc = payloads[r] if acc is None else op(acc, payloads[r])
            return acc

        return run

    def alltoallv(self, sendmap: Dict[int, Any], nbytes_map: Dict[int, int]):
        """Each rank supplies ``{dst_rank: payload}`` plus per-dst sizes;
        returns ``{src_rank: payload}`` of what was addressed to it."""

        def run(rank: int):
            def cost(ctx: _Collective) -> float:
                bw = self._nic_bw()
                worst = 0.0
                out_bytes = {r: 0 for r in self.ranks}
                in_bytes = {r: 0 for r in self.ranks}
                for src, (smap, sizes) in ctx.payloads.items():
                    for dst, size in sizes.items():
                        out_bytes[src] += size
                        in_bytes[dst] += size
                for r in self.ranks:
                    worst = max(worst, out_bytes[r], in_bytes[r])
                return self.size * self._msg_delay() / 4 + worst / bw

            ctx = self._join(rank, (sendmap, nbytes_map), cost)
            payloads = yield ctx.gate
            received = {}
            for src, (smap, _sizes) in payloads.items():
                if rank in smap:
                    received[src] = smap[rank]
            return received

        return run

    # -- point to point ----------------------------------------------------------
    def _mailbox(self, src: int, dst: int, tag: Any) -> Queue:
        key = (src, dst, tag)
        queue = self._p2p.get(key)
        if queue is None:
            queue = self._p2p[key] = Queue(self.sim)
        return queue

    def send(self, value: Any, dst: int, tag: Any = 0, nbytes: int = 64,
             src: int = 0) -> None:
        """Non-blocking (buffered) send from ``src`` to ``dst``."""
        if dst not in self._counters:
            raise MpiError(f"send to invalid rank {dst}")
        queue = self._mailbox(src, dst, tag)
        self.sim.schedule(self._msg_delay(nbytes), queue.put, value)

    def recv(self, src: int, tag: Any = 0, dst: int = 0):
        """Awaitable receive matching (src, tag)."""
        return self._mailbox(src, dst, tag).get()
