"""SPMD job launcher and per-rank context.

``MpiWorld(sim, fabric, nodes, ppn)`` models an ``mpiexec`` invocation:
rank *r* runs on ``nodes[r // ppn]``. Rank functions are generator
functions ``fn(ctx)`` using the mpi4py-flavoured helpers on
:class:`RankCtx`::

    def rank_main(ctx):
        data = yield from ctx.bcast({"cfg": 1}, root=0)
        yield from ctx.barrier()
        total = yield from ctx.allreduce(ctx.rank, op=lambda a, b: a + b)
        return total
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from repro.errors import MpiError
from repro.hardware.node import ClientNode
from repro.mpi.comm import Comm
from repro.network.fabric import Fabric
from repro.sim.core import Simulator, Task


class MpiWorld:
    """One SPMD job: rank→node placement plus COMM_WORLD."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        nodes: List[ClientNode],
        ppn: int,
        nprocs: Optional[int] = None,
    ):
        if not nodes:
            raise MpiError("MpiWorld needs at least one client node")
        if ppn <= 0:
            raise MpiError("ppn must be positive")
        self.sim = sim
        self.fabric = fabric
        self.nodes = nodes
        self.ppn = ppn
        self.nprocs = nprocs if nprocs is not None else len(nodes) * ppn
        if self.nprocs > len(nodes) * ppn:
            raise MpiError(
                f"{self.nprocs} ranks do not fit on {len(nodes)} nodes x {ppn} ppn"
            )
        self.min_nic_bw = min(
            node.spec.nic_bw * node.spec.nic_rails for node in nodes
        )
        self.comm_world = Comm(self)

    def node_of(self, rank: int) -> ClientNode:
        return self.nodes[rank // self.ppn]

    def launch(
        self,
        rank_fn: Callable[["RankCtx"], Generator],
        env: Optional[Dict[str, Any]] = None,
    ) -> List[Task]:
        """Spawn every rank; returns the per-rank tasks (join them to get
        per-rank return values)."""
        tasks = []
        for rank in range(self.nprocs):
            ctx = RankCtx(self, rank, env or {})
            tasks.append(self.sim.spawn(rank_fn(ctx), f"mpi:rank{rank}"))
        return tasks

    def run_to_completion(self, rank_fn, env=None, limit: float = 1e9) -> List[Any]:
        """Convenience for tests/benchmarks: launch and drive the sim until
        all ranks finish; returns rank results in rank order. A rank's
        exception re-raises here when its result is collected."""
        tasks = [task.defuse() for task in self.launch(rank_fn, env)]
        results = []
        for task in tasks:
            results.append(self.sim.run_until_complete(task, limit=limit))
        return results


class RankCtx:
    """What a rank sees: identity, its node, the world, and comm helpers.

    The collective helpers bind this rank's id so rank code reads like
    mpi4py: ``value = yield from ctx.bcast(x, root=0)``.
    """

    def __init__(self, world: MpiWorld, rank: int, env: Dict[str, Any]):
        self.world = world
        self.rank = rank
        self.env = env
        self.node = world.node_of(rank)
        self.comm = world.comm_world

    @property
    def size(self) -> int:
        return self.world.nprocs

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    # -- bound collective helpers ------------------------------------------
    def barrier(self):
        return self.comm.barrier()(self.rank)

    def bcast(self, value: Any = None, root: int = 0, nbytes: int = 64):
        return self.comm.bcast(value, root, nbytes)(self.rank)

    def gather(self, value: Any, root: int = 0, nbytes: int = 64):
        return self.comm.gather(value, root, nbytes)(self.rank)

    def allgather(self, value: Any, nbytes: int = 64):
        return self.comm.allgather(value, nbytes)(self.rank)

    def scatter(self, values: Optional[List[Any]] = None, root: int = 0,
                nbytes: int = 64):
        return self.comm.scatter(values, root, nbytes)(self.rank)

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0,
               nbytes: int = 64):
        return self.comm.reduce(value, op, root, nbytes)(self.rank)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any],
                  nbytes: int = 64):
        return self.comm.allreduce(value, op, nbytes)(self.rank)

    def alltoallv(self, sendmap: Dict[int, Any], nbytes_map: Dict[int, int]):
        return self.comm.alltoallv(sendmap, nbytes_map)(self.rank)

    def send(self, value: Any, dst: int, tag: Any = 0, nbytes: int = 64) -> None:
        self.comm.send(value, dst, tag, nbytes, src=self.rank)

    def recv(self, src: int, tag: Any = 0):
        return self.comm.recv(src, tag, dst=self.rank)

    def compute(self, seconds: float):
        """Awaitable local CPU time (think time, (de)serialization...)."""
        return float(seconds)
