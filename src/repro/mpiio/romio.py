"""Two-phase collective buffering (ROMIO's generalized collective I/O).

For a collective write:

1. every rank publishes its access range (allgather of metadata);
2. the file is partitioned into *file domains* on a static cyclic
   1 MiB grid, one owner per block among the aggregators (one
   aggregator per client node, ROMIO's ``cb_config_list`` default;
   static striped domains are ROMIO's recommended layout on lock-based
   filesystems because an aggregator's extent locks stay valid across
   calls);
3. each rank ships the pieces of its buffer that fall in each domain to
   that domain's aggregator (alltoallv with the real payload bytes);
4. aggregators coalesce the received pieces into contiguous runs and
   write them with at most ``cb_buffer_size`` per underlying call.

Collective reads run the phases in reverse. The win on DFuse is that
aggregated runs are large and aligned regardless of how ragged the
application accesses are — this is why HDF5-over-MPI-IO keeps up on the
shared-file benchmark while HDF5-over-sec2 does not.

With ``aio_depth > 1`` the aggregator-side storage calls pipeline
through an event queue (:mod:`repro.daos.eq`) with a bounded in-flight
window — ROMIO's ``romio_cb_{read,write} = enable`` plus double
buffering, generalized to N buffers: while one ``cb_buffer``-sized call
is in flight the aggregator launches the next, overlapping storage
latency within a collective call. ``aio_depth <= 1`` keeps the
sequential loops bit-exactly.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.daos.eq import EventQueue
from repro.daos.vos.payload import Payload, ZeroPayload, as_payload, concat_payloads
from repro.mpi.runtime import RankCtx
from repro.units import MiB

DEFAULT_CB_BUFFER = 16 * MiB


def choose_aggregators(ctx: RankCtx) -> List[int]:
    """One aggregator per client node: the lowest rank on each node."""
    world = ctx.world
    seen = {}
    for rank in range(world.nprocs):
        node = world.node_of(rank).name
        if node not in seen:
            seen[node] = rank
    return sorted(seen.values())


#: absolute file-domain granularity: aggregator ownership is decided in
#: blocks of this size on a static grid (ROMIO's striped ``cb_fd``
#: layout, the recommended mode on lock-based filesystems)
FD_GRAN = MiB


def domain_owner(offset: int, aggregators: List[int],
                 gran: int = FD_GRAN) -> int:
    """The aggregator rank owning the file-domain block at ``offset``.

    Ownership is a *static cyclic* map over absolute file offsets, so an
    aggregator's extent locks from one collective call never conflict
    with another aggregator's next call — the property that lets
    collective buffering sidestep LDLM lock ping-pong entirely.
    """
    return aggregators[(offset // gran) % len(aggregators)]


def split_by_domain(
    offset: int,
    length: int,
    aggregators: List[int],
    gran: int = FD_GRAN,
) -> List[Tuple[int, int, int]]:
    """Split [offset, offset+length) at domain-block boundaries; yields
    (aggregator, start, stop) pieces."""
    out: List[Tuple[int, int, int]] = []
    cursor = offset
    stop = offset + length
    while cursor < stop:
        block_end = (cursor // gran + 1) * gran
        end = min(block_end, stop)
        out.append((domain_owner(cursor, aggregators, gran), cursor, end))
        cursor = end
    return out


def _intersect(
    offset: int, payload_len: int, domain: Tuple[int, int]
) -> Optional[Tuple[int, int]]:
    lo = max(offset, domain[0])
    hi = min(offset + payload_len, domain[1])
    if lo >= hi:
        return None
    return lo, hi


def _coalesce(pieces: List[Tuple[int, Payload]]) -> List[Tuple[int, Payload]]:
    """Merge adjacent (offset, payload) pieces into contiguous runs."""
    pieces.sort(key=lambda p: p[0])
    runs: List[Tuple[int, List[Payload]]] = []
    for offset, payload in pieces:
        if runs and runs[-1][0] + sum(p.nbytes for p in runs[-1][1]) == offset:
            runs[-1][1].append(payload)
        else:
            runs.append((offset, [payload]))
    return [(off, concat_payloads(parts)) for off, parts in runs]


def collective_write(
    ctx: RankCtx,
    driver,
    offset: int,
    data,
    cb_buffer: int = DEFAULT_CB_BUFFER,
    aio_depth: int = 0,
) -> Generator:
    """Task helper (collective): two-phase write; returns bytes written
    by this rank's original request.

    ``aio_depth > 1`` pipelines the aggregator's cb-buffer calls through
    an event queue, keeping up to that many storage writes in flight."""
    payload = as_payload(data)
    yield from ctx.allgather((offset, payload.nbytes), nbytes=32)
    aggregators = choose_aggregators(ctx)

    # Phase 1: exchange — ship my pieces to their domain owners.
    sendmap: Dict[int, List[Tuple[int, Payload]]] = {}
    sizes: Dict[int, int] = {}
    for agg, start, stop in split_by_domain(offset, payload.nbytes,
                                            aggregators):
        piece = payload.slice(start - offset, stop - offset)
        sendmap.setdefault(agg, []).append((start, piece))
        sizes[agg] = sizes.get(agg, 0) + piece.nbytes
    received = yield from ctx.alltoallv(sendmap, sizes)

    # Phase 2: aggregators write their domain in cb-buffer sized calls.
    if ctx.rank in aggregators:
        gathered: List[Tuple[int, Payload]] = []
        for _src, pieces in received.items():
            gathered.extend(pieces)
        runs = _coalesce(gathered)
        if aio_depth > 1:
            eq = EventQueue(ctx.sim, depth=aio_depth,
                            name=f"cb.w{ctx.rank}", metered=False)
            for run_offset, run_payload in runs:
                written = 0
                while written < run_payload.nbytes:
                    take = min(cb_buffer, run_payload.nbytes - written)
                    yield from eq.submit(
                        driver.write_at(
                            run_offset + written,
                            run_payload.slice(written, written + take),
                        ),
                        name=f"cb.write@{run_offset + written}",
                    )
                    written += take
            for event in (yield from eq.drain()):
                event.result  # surface any aggregator write error
            eq.close()
        else:
            for run_offset, run_payload in runs:
                written = 0
                while written < run_payload.nbytes:
                    take = min(cb_buffer, run_payload.nbytes - written)
                    yield from driver.write_at(
                        run_offset + written,
                        run_payload.slice(written, written + take),
                    )
                    written += take
    yield from ctx.barrier()
    return payload.nbytes


def collective_read(
    ctx: RankCtx,
    driver,
    offset: int,
    length: int,
    cb_buffer: int = DEFAULT_CB_BUFFER,
    aio_depth: int = 0,
) -> Generator:
    """Task helper (collective): two-phase read; returns this rank's
    payload.

    ``aio_depth > 1`` pipelines the aggregator's file-domain block reads
    through an event queue, keeping up to that many in flight."""
    ranges = yield from ctx.allgather((offset, length), nbytes=32)
    lo = min(r[0] for r in ranges)
    hi = max(r[0] + r[1] for r in ranges)
    aggregators = choose_aggregators(ctx)

    # Phase 1: aggregators read the file-domain blocks they own.
    my_blocks: List[Tuple[int, Payload]] = []
    if ctx.rank in aggregators:
        blocks = [
            (start, stop)
            for agg, start, stop in split_by_domain(lo, hi - lo, aggregators)
            if agg == ctx.rank
        ]
        if aio_depth > 1:
            eq = EventQueue(ctx.sim, depth=aio_depth,
                            name=f"cb.r{ctx.rank}", metered=False)
            pending: List[Tuple[int, int, object]] = []
            for start, stop in blocks:
                event = yield from eq.submit(
                    driver.read_at(start, stop - start),
                    name=f"cb.read@{start}",
                )
                pending.append((start, stop, event))
            yield from eq.drain()
            eq.close()
            parts = [
                (start, stop, event.result) for start, stop, event in pending
            ]
        else:
            parts = []
            for start, stop in blocks:
                part = yield from driver.read_at(start, stop - start)
                parts.append((start, stop, part))
        for start, stop, part in parts:
            if part.nbytes < stop - start:  # EOF: zero-fill
                part = concat_payloads(
                    [part, ZeroPayload(stop - start - part.nbytes)]
                )
            my_blocks.append((start, part))

    # Phase 2: scatter pieces back to the requesting ranks.
    sendmap: Dict[int, List[Tuple[int, Payload]]] = {}
    sizes: Dict[int, int] = {}
    for b_off, b_payload in my_blocks:
        for rank, (r_off, r_len) in enumerate(ranges):
            hit = _intersect(r_off, r_len, (b_off, b_off + b_payload.nbytes))
            if hit is None:
                continue
            piece = b_payload.slice(hit[0] - b_off, hit[1] - b_off)
            sendmap.setdefault(rank, []).append((hit[0], piece))
            sizes[rank] = sizes.get(rank, 0) + piece.nbytes
    received = yield from ctx.alltoallv(sendmap, sizes)

    pieces: List[Tuple[int, Payload]] = []
    for _src, chunk in received.items():
        pieces.extend(chunk)
    pieces.sort(key=lambda p: p[0])
    if not pieces:
        return as_payload(b"")
    out: List[Payload] = []
    cursor = offset
    for p_off, p_payload in pieces:
        if p_off > cursor:
            out.append(ZeroPayload(p_off - cursor))
            cursor = p_off
        out.append(p_payload)
        cursor += p_payload.nbytes
    if cursor < offset + length:
        out.append(ZeroPayload(offset + length - cursor))
    return concat_payloads(out)
