"""ADIO-like drivers: the per-rank backends MPI-IO dispatches to."""

from __future__ import annotations

from typing import Generator, Optional

from repro.daos.vos.payload import Payload
from repro.dfs.dfs import Dfs
from repro.posix.vfs import FileSystem


class Driver:
    """One rank's connection to the underlying storage for one file."""

    def open(self, path: str, create: bool, trunc: bool) -> Generator:
        raise NotImplementedError

    def read_at(self, offset: int, length: int) -> Generator:
        raise NotImplementedError

    def write_at(self, offset: int, data) -> Generator:
        raise NotImplementedError

    def size(self) -> Generator:
        raise NotImplementedError

    def truncate(self, size: int) -> Generator:
        raise NotImplementedError

    def sync(self) -> Generator:
        raise NotImplementedError

    def close(self) -> Generator:
        raise NotImplementedError


class UfsDriver(Driver):
    """ROMIO ``ufs``: plain POSIX calls against a mounted FileSystem
    (a DFuse mount in the paper's MPI-IO runs; a Lustre client in the
    baseline)."""

    def __init__(self, mount: FileSystem):
        self.mount = mount
        self._handle = None

    def open(self, path: str, create: bool, trunc: bool) -> Generator:
        flags = {"r", "w"}
        if create:
            flags.add("creat")
        if trunc:
            flags.add("trunc")
        self._handle = yield from self.mount.open(path, flags)
        return None

    def read_at(self, offset: int, length: int) -> Generator:
        return (yield from self._handle.pread(offset, length))

    def write_at(self, offset: int, data) -> Generator:
        return (yield from self._handle.pwrite(offset, data))

    def size(self) -> Generator:
        return (yield from self._handle.size())

    def truncate(self, size: int) -> Generator:
        yield from self._handle.truncate(size)
        return None

    def sync(self) -> Generator:
        yield from self._handle.fsync()
        return None

    def close(self) -> Generator:
        yield from self._handle.close()
        return None


class DfsDriver(Driver):
    """The DAOS-native ROMIO driver: straight to libdfs, no FUSE."""

    def __init__(self, dfs: Dfs):
        self.dfs = dfs
        self._file = None

    def open(self, path: str, create: bool, trunc: bool) -> Generator:
        self._file = yield from self.dfs.open_file(
            path, create=create, trunc=trunc
        )
        return None

    def read_at(self, offset: int, length: int) -> Generator:
        return (yield from self._file.read(offset, length))

    def write_at(self, offset: int, data) -> Generator:
        return (yield from self._file.write(offset, data))

    def size(self) -> Generator:
        return (yield from self._file.get_size())

    def truncate(self, size: int) -> Generator:
        yield from self._file.truncate(size)
        return None

    def sync(self) -> Generator:
        yield from self._file.sync()
        return None

    def close(self) -> Generator:
        self._file.close()
        return None
        yield  # pragma: no cover - keeps this a generator
