"""The MPI_File layer.

Open/close are collective over the job's communicator (mirroring
``MPI_File_open``); data operations come in independent
(``read_at``/``write_at``) and collective (``read_at_all``/
``write_at_all``) flavours. Each rank owns a driver instance bound to
its node's mount, exactly how ROMIO drivers hold per-process state.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.errors import MpiError
from repro.mpi.runtime import RankCtx
from repro.mpiio.drivers import Driver
from repro.mpiio.romio import DEFAULT_CB_BUFFER, collective_read, collective_write


class MpiFile:
    """One rank's handle on a (possibly shared) MPI-IO file."""

    def __init__(self, ctx: RankCtx, driver: Driver, path: str,
                 cb_buffer: int = DEFAULT_CB_BUFFER, aio_depth: int = 0):
        self.ctx = ctx
        self.driver = driver
        self.path = path
        self.cb_buffer = cb_buffer
        #: event-queue depth for aggregator-side pipelining inside
        #: collective calls (ROMIO double-buffering generalized); <= 1
        #: keeps the sequential aggregator loops
        self.aio_depth = aio_depth
        self._open = False

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def open(
        cls,
        ctx: RankCtx,
        path: str,
        driver: Driver,
        create: bool = False,
        trunc: bool = False,
        cb_buffer: int = DEFAULT_CB_BUFFER,
        aio_depth: int = 0,
    ) -> Generator:
        """Task helper (collective): open the file on every rank.

        When all ranks open the same path (shared file), creation is
        performed by rank 0 before the others open, avoiding a create
        storm on one directory entry (ROMIO does the same). When ranks
        open distinct paths (file-per-process jobs, which IOR drives
        with MPI_COMM_SELF), every rank creates its own file."""
        handle = cls(ctx, driver, path, cb_buffer, aio_depth)
        paths = yield from ctx.allgather(path, nbytes=128)
        shared = all(p == paths[0] for p in paths)
        if not shared:
            yield from driver.open(path, create=create, trunc=trunc)
        elif create and ctx.rank == 0:
            yield from driver.open(path, create=True, trunc=trunc)
            yield from ctx.barrier()
        else:
            if create:
                yield from ctx.barrier()
            yield from driver.open(path, create=False, trunc=False)
        handle._open = True
        return handle

    def close(self) -> Generator:
        """Task helper (collective)."""
        self._require_open()
        yield from self.driver.close()
        yield from self.ctx.barrier()
        self._open = False
        return None

    def _require_open(self) -> None:
        if not self._open:
            raise MpiError(f"file {self.path!r} is not open")

    # ------------------------------------------------------------- independent
    def read_at(self, offset: int, length: int) -> Generator:
        self._require_open()
        return (yield from self.driver.read_at(offset, length))

    def write_at(self, offset: int, data) -> Generator:
        self._require_open()
        return (yield from self.driver.write_at(offset, data))

    # ------------------------------------------------------------- collective
    def read_at_all(self, offset: int, length: int) -> Generator:
        self._require_open()
        return (
            yield from collective_read(
                self.ctx, self.driver, offset, length, self.cb_buffer,
                self.aio_depth,
            )
        )

    def write_at_all(self, offset: int, data) -> Generator:
        self._require_open()
        return (
            yield from collective_write(
                self.ctx, self.driver, offset, data, self.cb_buffer,
                self.aio_depth,
            )
        )

    # ------------------------------------------------------------- misc
    def get_size(self) -> Generator:
        self._require_open()
        return (yield from self.driver.size())

    def set_size(self, size: int) -> Generator:
        self._require_open()
        yield from self.driver.truncate(size)
        return None

    def sync(self) -> Generator:
        self._require_open()
        yield from self.driver.sync()
        return None
