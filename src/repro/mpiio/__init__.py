"""MPI-IO: independent and collective file I/O over pluggable drivers.

The shape follows ROMIO: a thin ``MPI_File`` layer
(:mod:`repro.mpiio.file`) dispatching to an ADIO-like driver — ``ufs``
(any :class:`~repro.posix.vfs.FileSystem`, e.g. a DFuse mount or a
Lustre client) or ``dfs`` (native DFS, the DAOS ROMIO driver) — plus
two-phase collective buffering (:mod:`repro.mpiio.romio`) with
aggregator selection and file-domain partitioning.
"""

from repro.mpiio.file import MpiFile
from repro.mpiio.drivers import DfsDriver, UfsDriver

__all__ = ["MpiFile", "UfsDriver", "DfsDriver"]
