"""The Lustre metadata server.

One MDS resolves every namespace operation (NEXTGenIO-era Lustre: a
single MDT). Operations arrive as intent RPCs — one round trip performs
lookup + create/open, as Lustre's intent locking does — and are bounded
by a service-thread semaphore, which is what turns many-client create
storms into queueing delay (the mdtest contrast experiment).

The namespace itself is a real tree of inodes; file inodes carry the
stripe layout chosen at create time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.errors import FsError
from repro.network.fabric import Fabric, NodeAddr
from repro.sim.core import Simulator
from repro.sim.sync import Semaphore


@dataclass
class Inode:
    ino: int
    is_dir: bool
    mode: int = 0o644
    #: directory entries (name -> ino)
    children: Dict[str, int] = field(default_factory=dict)
    #: file stripe layout: OST indices, assigned round-robin at create
    stripe_osts: List[int] = field(default_factory=list)
    stripe_size: int = 0
    #: authoritative size, maintained by OST size callbacks on write
    size: int = 0
    nlink: int = 1


class Mds:
    """Metadata server state + service model."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        addr: NodeAddr,
        n_osts: int,
        default_stripe_count: int = 4,
        default_stripe_size: int = 1 << 20,
        service_threads: int = 16,
        op_cpu: float = 100e-6,
    ):
        self.sim = sim
        self.fabric = fabric
        self.addr = addr
        self.n_osts = n_osts
        self.default_stripe_count = min(default_stripe_count, n_osts)
        self.default_stripe_size = default_stripe_size
        self.op_cpu = op_cpu
        self._threads = Semaphore(sim, service_threads)
        self._ino_seq = itertools.count(2)
        self._next_ost = 0
        self.root = Inode(ino=1, is_dir=True, mode=0o755)
        self.inodes: Dict[int, Inode] = {1: self.root}
        self.ops = 0

    # ------------------------------------------------------------- service model
    def service(self, client_addr: NodeAddr, rounds: int = 1) -> Generator:
        """Task helper: charge one intent RPC (client rtt + MDS thread)."""
        rtt = 2 * self.fabric.msg_delay(client_addr, self.addr, 256)
        guard = yield from self._threads.held()
        try:
            self.ops += 1
            yield self.op_cpu * rounds
        finally:
            guard.release()
        yield rtt
        return None

    # ------------------------------------------------------------- namespace core
    def resolve(self, parts: List[str]) -> Inode:
        node = self.root
        for name in parts:
            if not node.is_dir:
                raise FsError("ENOTDIR", "/".join(parts))
            child = node.children.get(name)
            if child is None:
                raise FsError("ENOENT", "/".join(parts))
            node = self.inodes[child]
        return node

    def resolve_parent(self, parts: List[str]) -> Inode:
        if not parts:
            raise FsError("EINVAL", "cannot address the root this way")
        return self.resolve(parts[:-1])

    def _alloc_stripes(self, stripe_count: int) -> List[int]:
        osts = []
        for _ in range(stripe_count):
            osts.append(self._next_ost % self.n_osts)
            self._next_ost += 1
        return osts

    # ------------------------------------------------------------- operations
    def create_file(
        self,
        parts: List[str],
        excl: bool,
        stripe_count: Optional[int] = None,
        stripe_size: Optional[int] = None,
    ) -> Inode:
        parent = self.resolve_parent(parts)
        name = parts[-1]
        existing = parent.children.get(name)
        if existing is not None:
            if excl:
                raise FsError("EEXIST", "/".join(parts))
            inode = self.inodes[existing]
            if inode.is_dir:
                raise FsError("EISDIR", "/".join(parts))
            return inode
        inode = Inode(
            ino=next(self._ino_seq),
            is_dir=False,
            stripe_osts=self._alloc_stripes(
                stripe_count or self.default_stripe_count
            ),
            stripe_size=stripe_size or self.default_stripe_size,
        )
        self.inodes[inode.ino] = inode
        parent.children[name] = inode.ino
        return inode

    def mkdir(self, parts: List[str]) -> Inode:
        parent = self.resolve_parent(parts)
        name = parts[-1]
        if name in parent.children:
            raise FsError("EEXIST", "/".join(parts))
        inode = Inode(ino=next(self._ino_seq), is_dir=True, mode=0o755)
        self.inodes[inode.ino] = inode
        parent.children[name] = inode.ino
        return inode

    def unlink(self, parts: List[str]) -> Inode:
        parent = self.resolve_parent(parts)
        name = parts[-1]
        ino = parent.children.get(name)
        if ino is None:
            raise FsError("ENOENT", "/".join(parts))
        inode = self.inodes[ino]
        if inode.is_dir:
            raise FsError("EISDIR", "/".join(parts))
        del parent.children[name]
        del self.inodes[ino]
        return inode

    def rmdir(self, parts: List[str]) -> None:
        parent = self.resolve_parent(parts)
        name = parts[-1]
        ino = parent.children.get(name)
        if ino is None:
            raise FsError("ENOENT", "/".join(parts))
        inode = self.inodes[ino]
        if not inode.is_dir:
            raise FsError("ENOTDIR", "/".join(parts))
        if inode.children:
            raise FsError("ENOTEMPTY", "/".join(parts))
        del parent.children[name]
        del self.inodes[ino]

    def rename(self, old_parts: List[str], new_parts: List[str]) -> None:
        old_parent = self.resolve_parent(old_parts)
        ino = old_parent.children.get(old_parts[-1])
        if ino is None:
            raise FsError("ENOENT", "/".join(old_parts))
        new_parent = self.resolve_parent(new_parts)
        existing = new_parent.children.get(new_parts[-1])
        if existing is not None and self.inodes[existing].is_dir:
            raise FsError("EISDIR", "/".join(new_parts))
        new_parent.children[new_parts[-1]] = ino
        del old_parent.children[old_parts[-1]]
