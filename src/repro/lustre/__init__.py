"""A Lustre-like parallel filesystem — the paper's implicit baseline.

The conclusions contrast DAOS's "shared-file ≈ file-per-process" result
with "the performance standard parallel filesystems provide"; this
package provides that standard filesystem so the contrast is measurable:

- a single metadata server (:mod:`repro.lustre.mds`) resolving the whole
  namespace (the classic MDS bottleneck for create/stat storms),
- OSTs with RAID-backed bandwidth served through object storage servers,
- the LDLM distributed extent-lock manager (:mod:`repro.lustre.ldlm`)
  whose lock ping-pong is what collapses shared-file write bandwidth,
- a striping client (:mod:`repro.lustre.client`) implementing the same
  :class:`~repro.posix.vfs.FileSystem` interface as DFuse, so IOR runs
  on either unchanged.

Client write-back caching is not modelled (I/O is write-through, the
behaviour of ``O_DIRECT``/IOR ``-B`` runs); see DESIGN.md §5.
"""

from repro.lustre.fs import LustreFs
from repro.lustre.client import LustreMount

__all__ = ["LustreFs", "LustreMount"]
