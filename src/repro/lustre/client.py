"""The Lustre client: striping, LDLM locking, and the VFS interface.

File offsets map onto OST objects RAID-0 style::

    chunk      = offset // stripe_size
    stripe     = chunk % stripe_count          (which OST object)
    obj_offset = (chunk // stripe_count) * stripe_size + offset % stripe_size

Every data operation first ensures extent locks on the touched OST
objects (cheap when the client already holds a covering lock — the
file-per-process case; a synchronous revocation storm when writers
interleave — the shared-file case), then moves bytes through a fluid
flow across the stripe OSTs, write-through.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, Generator, Iterable, List, Optional, Tuple

from repro.daos.vos.payload import Payload, as_payload, concat_payloads
from repro.errors import FsError
from repro.hardware.node import ClientNode
from repro.lustre.fs import LustreFs, Ost
from repro.lustre.ldlm import PR, PW, acquire
from repro.lustre.mds import Inode
from repro.network.flows import Flow
from repro.posix.vfs import FileHandle, FileSystem, StatResult, normalize, validate_flags

_client_seq = itertools.count(1)


class LustreMount(FileSystem):
    """A Lustre client mount on one compute node."""

    def __init__(self, fs: LustreFs, node: ClientNode, name: str = ""):
        self.fs = fs
        self.sim = fs.sim
        self.fabric = fs.fabric
        self.node = node
        self.name = name or f"lclient:{node.name}:{next(_client_seq)}"
        self.blksize = fs.mds.default_stripe_size
        #: client-side syscall cost (no FUSE here: native kernel client)
        self.syscall_cost = 2.0e-6

    # ------------------------------------------------------------- FileSystem API
    def open(self, path: str, flags: Iterable[str] = ("r",)) -> Generator:
        flag_set = validate_flags(flags)
        parts = normalize(path)
        yield self.syscall_cost
        yield from self.fs.mds.service(self.node.addr)
        if "creat" in flag_set:
            inode = self.fs.mds.create_file(parts, excl="excl" in flag_set)
        else:
            inode = self.fs.mds.resolve(parts)
            if inode.is_dir:
                raise FsError("EISDIR", path)
        handle = LustreFile(self, inode)
        if "trunc" in flag_set and inode.size > 0:
            yield from handle.truncate(0)
        return handle

    def mkdir(self, path: str) -> Generator:
        yield self.syscall_cost
        yield from self.fs.mds.service(self.node.addr)
        self.fs.mds.mkdir(normalize(path))
        return None

    def readdir(self, path: str) -> Generator:
        yield self.syscall_cost
        yield from self.fs.mds.service(self.node.addr)
        inode = self.fs.mds.resolve(normalize(path))
        if not inode.is_dir:
            raise FsError("ENOTDIR", path)
        return sorted(inode.children)

    def stat(self, path: str) -> Generator:
        yield self.syscall_cost
        yield from self.fs.mds.service(self.node.addr)
        inode = self.fs.mds.resolve(normalize(path))
        if not inode.is_dir:
            # glimpse the last-stripe OST for the authoritative size
            yield 2 * self.fabric.msg_delay(self.node.addr,
                                            self.fs.osts[0].node.addr, 128)
        return StatResult(
            is_dir=inode.is_dir,
            size=inode.size,
            mode=inode.mode,
            blksize=self.blksize,
        )

    def unlink(self, path: str) -> Generator:
        yield self.syscall_cost
        yield from self.fs.mds.service(self.node.addr)
        inode = self.fs.mds.unlink(normalize(path))
        for stripe, ost_idx in enumerate(inode.stripe_osts):
            self.fs.osts[ost_idx].drop(inode.ino)
        return None

    def rmdir(self, path: str) -> Generator:
        yield self.syscall_cost
        yield from self.fs.mds.service(self.node.addr)
        self.fs.mds.rmdir(normalize(path))
        return None

    def rename(self, old: str, new: str) -> Generator:
        yield self.syscall_cost
        yield from self.fs.mds.service(self.node.addr)
        self.fs.mds.rename(normalize(old), normalize(new))
        return None


class LustreFile(FileHandle):
    """An open striped file."""

    def __init__(self, mount: LustreMount, inode: Inode):
        self.mount = mount
        self.fs = mount.fs
        self.inode = inode
        self.owner = f"{mount.name}:fd{id(self):x}"
        self._flows: Dict[str, Flow] = {}

    # ------------------------------------------------------------- striping math
    def _pieces(self, offset: int, length: int
                ) -> List[Tuple[Ost, int, int, int]]:
        """Split a file range into (ost, stripe_idx, obj_offset, nbytes)."""
        out = []
        stripe_size = self.inode.stripe_size
        stripe_count = len(self.inode.stripe_osts)
        cursor = offset
        stop = offset + length
        while cursor < stop:
            chunk = cursor // stripe_size
            within = cursor % stripe_size
            take = min(stripe_size - within, stop - cursor)
            stripe = chunk % stripe_count
            obj_offset = (chunk // stripe_count) * stripe_size + within
            out.append(
                (self.fs.osts[self.inode.stripe_osts[stripe]], stripe,
                 obj_offset, take)
            )
            cursor += take
        return out

    # ------------------------------------------------------------- flows
    def _flow(self, direction: str) -> Flow:
        flow = self._flows.get(direction)
        if flow is not None:
            return flow
        fabric = self.mount.fabric
        weight = 1.0 / max(1, len(self.inode.stripe_osts))
        per_link: Dict[object, float] = defaultdict(float)
        if direction == "write":
            per_link[fabric.nic_tx(self.mount.node.addr)] += 1.0
        else:
            per_link[fabric.nic_rx(self.mount.node.addr)] += 1.0
        for ost_idx in self.inode.stripe_osts:
            ost = self.fs.osts[ost_idx]
            if direction == "write":
                per_link[fabric.nic_rx(ost.node.addr)] += weight
                per_link[ost.hw.engine.media_write] += weight
                per_link[ost.hw.write_link] += weight
            else:
                per_link[fabric.nic_tx(ost.node.addr)] += weight
                per_link[ost.hw.engine.media_read] += weight
                per_link[ost.hw.read_link] += weight
        flow = fabric.flownet.open(
            list(per_link.items()), label=f"{self.owner}:{direction}"
        )
        self._flows[direction] = flow
        return flow

    # ------------------------------------------------------------- locking
    def _lock(self, ost: Ost, stripe: int, mode: str, start: int, stop: int
              ) -> Generator:
        fabric = self.mount.fabric
        rtt = 2 * fabric.msg_delay(self.mount.node.addr, ost.node.addr, 256)

        def enqueue_cost():
            yield rtt + 20e-6

        def revoke_cost(_lock):
            yield self.fs.ldlm_callback_cost + rtt

        space = ost.lockspace(self.inode.ino, stripe)
        yield from acquire(
            space, self.owner, mode, start, stop, enqueue_cost, revoke_cost
        )
        return None

    # ------------------------------------------------------------- data ops
    def pwrite(self, offset: int, data) -> Generator:
        payload = as_payload(data)
        if payload.nbytes == 0:
            return 0
        yield self.mount.syscall_cost
        pieces = self._pieces(offset, payload.nbytes)
        fabric = self.mount.fabric
        widest = 0.0
        for ost, stripe, obj_offset, nbytes in pieces:
            yield from self._lock(
                ost, stripe, PW, obj_offset, obj_offset + nbytes
            )
            rtt = 2 * fabric.msg_delay(self.mount.node.addr, ost.node.addr, 256)
            widest = max(widest, rtt + ost.per_rpc_cpu)
        yield widest + self.mount.node.spec.client_cpu_per_op
        flow = self._flow("write")
        yield flow.transfer(payload.nbytes)
        consumed = 0
        for ost, stripe, obj_offset, nbytes in pieces:
            fragment = payload.slice(consumed, consumed + nbytes)
            ost.data(self.inode.ino, stripe).write(
                obj_offset, fragment, epoch=int(self.fs.sim.now * 1e9)
            )
            consumed += nbytes
        self.inode.size = max(self.inode.size, offset + payload.nbytes)
        return payload.nbytes

    def pread(self, offset: int, length: int) -> Generator:
        yield self.mount.syscall_cost
        if offset >= self.inode.size:
            return as_payload(b"")
        length = min(length, self.inode.size - offset)
        pieces = self._pieces(offset, length)
        fabric = self.mount.fabric
        widest = 0.0
        for ost, stripe, obj_offset, nbytes in pieces:
            yield from self._lock(
                ost, stripe, PR, obj_offset, obj_offset + nbytes
            )
            rtt = 2 * fabric.msg_delay(self.mount.node.addr, ost.node.addr, 256)
            widest = max(widest, rtt + ost.per_rpc_cpu)
        yield widest + self.mount.node.spec.client_cpu_per_op
        flow = self._flow("read")
        yield flow.transfer(length)
        parts: List[Payload] = []
        for ost, stripe, obj_offset, nbytes in pieces:
            parts.append(
                ost.data(self.inode.ino, stripe).read(obj_offset, nbytes)
            )
        return concat_payloads(parts)

    def fsync(self) -> Generator:
        yield self.mount.syscall_cost  # write-through: nothing buffered
        return None

    def truncate(self, size: int) -> Generator:
        yield self.mount.syscall_cost
        yield from self.fs.mds.service(self.mount.node.addr)
        if size < self.inode.size:
            for ost, stripe, obj_offset, nbytes in self._pieces(
                size, self.inode.size - size
            ):
                yield from self._lock(
                    ost, stripe, PW, obj_offset, obj_offset + nbytes
                )
                ost.data(self.inode.ino, stripe).punch(obj_offset, nbytes)
        self.inode.size = size
        return None

    def size(self) -> Generator:
        yield self.mount.syscall_cost
        return self.inode.size

    def close(self) -> Generator:
        yield self.mount.syscall_cost
        for stripe, ost_idx in enumerate(self.inode.stripe_osts):
            self.fs.osts[ost_idx].lockspace(self.inode.ino, stripe).drop_owner(
                self.owner
            )
        for flow in self._flows.values():
            self.mount.fabric.flownet.close(flow)
        self._flows.clear()
        return None
