"""LustreFs assembly: MDS + OSTs over server nodes.

Each server node contributes its storage targets as OSTs (one OST per
hardware target, served by that node's NIC), so the DAOS-vs-Lustre
contrast benchmark runs both stacks on identical simulated hardware.
Each OST owns the extent-lock spaces of the objects it stores and the
file data itself (an extent tree per OST object).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.daos.vos.extent import ExtentTree
from repro.hardware.node import ServerNode, StorageTarget
from repro.lustre.ldlm import LockSpace
from repro.lustre.mds import Mds
from repro.network.fabric import Fabric
from repro.sim.core import Simulator
from repro.sim.sync import Semaphore
from repro.units import MiB


@dataclass
class Ost:
    """One object storage target: hardware + object store + lock server."""

    index: int
    node: ServerNode
    hw: StorageTarget
    credits: Semaphore
    #: per-(ino, stripe-index) data and lock state
    objects: Dict[Tuple[int, int], ExtentTree] = field(default_factory=dict)
    locks: Dict[Tuple[int, int], LockSpace] = field(default_factory=dict)
    #: OST service CPU per I/O RPC
    per_rpc_cpu: float = 15e-6

    def data(self, ino: int, stripe: int) -> ExtentTree:
        key = (ino, stripe)
        tree = self.objects.get(key)
        if tree is None:
            tree = self.objects[key] = ExtentTree()
        return tree

    def lockspace(self, ino: int, stripe: int) -> LockSpace:
        key = (ino, stripe)
        space = self.locks.get(key)
        if space is None:
            space = self.locks[key] = LockSpace()
        return space

    def drop(self, ino: int) -> None:
        for key in [k for k in self.objects if k[0] == ino]:
            del self.objects[key]
        for key in [k for k in self.locks if k[0] == ino]:
            del self.locks[key]


class LustreFs:
    """A deployed filesystem: one MDS (first server) + OSTs (all targets)."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        servers: List[ServerNode],
        default_stripe_count: int = 4,
        default_stripe_size: int = MiB,
        ost_inflight: int = 16,
        ldlm_callback_cost: float = 400e-6,
    ):
        if not servers:
            raise ValueError("LustreFs needs server nodes")
        self.sim = sim
        self.fabric = fabric
        self.servers = servers
        self.osts: List[Ost] = []
        for node in servers:
            for target in node.all_targets():
                self.osts.append(
                    Ost(
                        index=len(self.osts),
                        node=node,
                        hw=target,
                        credits=Semaphore(sim, ost_inflight),
                    )
                )
        self.mds = Mds(
            sim,
            fabric,
            servers[0].addr,
            n_osts=len(self.osts),
            default_stripe_count=min(default_stripe_count, len(self.osts)),
            default_stripe_size=default_stripe_size,
        )
        #: cost of one blocking-callback + cancel round during revocation
        #: (holder must drain in-flight I/O under the lock before
        #: cancelling — dominated by that drain, not the wire)
        self.ldlm_callback_cost = ldlm_callback_cost

    @property
    def epoch_source(self):
        # per-file-object epochs only need to be monotone per OST object;
        # simulation time order suffices
        return self.sim
